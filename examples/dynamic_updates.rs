//! Dynamic update maintenance (paper Section 8.3): lazy insertions and
//! deletions with periodic rebuild.
//!
//! ```sh
//! cargo run --release --example dynamic_updates
//! ```

use islabel::core::BuildConfig;
use islabel::graph::generators::{barabasi_albert, WeightModel};
use islabel::IsLabelIndex;

fn main() {
    let graph = barabasi_albert(5_000, 3, WeightModel::Unit, 11);
    let mut index = IsLabelIndex::build(&graph, BuildConfig::default());
    println!("initial index: {}", index.stats());

    // A new member joins and connects to two existing vertices.
    let friend_a = 42u32;
    let friend_b = 4_999u32;
    let newcomer = index.insert_vertex(&[(friend_a, 1), (friend_b, 1)]);
    println!("\ninserted vertex {newcomer} with edges to {friend_a} and {friend_b}");
    println!(
        "dist({newcomer}, {friend_a})      = {:?}",
        index.distance(newcomer, friend_a)
    );
    println!(
        "dist({newcomer}, {friend_b})    = {:?}",
        index.distance(newcomer, friend_b)
    );
    println!(
        "dist({newcomer}, 0)       = {:?}  (upper bound until rebuild)",
        index.distance(newcomer, 0)
    );

    // A new relationship between existing members.
    index.insert_edge(7, 4_998, 1);
    println!(
        "\ninserted edge (7, 4998): dist(7, 4998) = {:?}",
        index.distance(7, 4_998)
    );

    // A member leaves.
    index.delete_vertex(friend_a);
    println!("\ndeleted vertex {friend_a}:");
    println!(
        "  dist({newcomer}, {friend_a}) = {:?} (deleted endpoints answer None)",
        index.distance(newcomer, friend_a)
    );
    println!(
        "  index stale? {} (deleting a peeled vertex leaves stale shortcuts)",
        index.is_stale()
    );

    // Periodic rebuild restores exactness, as the paper prescribes.
    index.rebuild();
    println!("\nafter rebuild: {}", index.stats());
    println!(
        "  stale? {}   dist({newcomer}, 0) = {:?}",
        index.is_stale(),
        index.distance(newcomer, 0)
    );
}
