//! Engine shootout: build every distance engine on one generated graph
//! through the `Engine` registry and compare them behind
//! `Box<dyn DistanceOracle>` — index footprint, batch-query throughput,
//! and (of course) identical answers.
//!
//! ```sh
//! cargo run --release --example engine_shootout
//! ```

use islabel::graph::generators::{barabasi_albert, WeightModel};
use islabel::prelude::*;
use std::time::Instant;

fn main() {
    // A scale-free graph: hubs flatter the labeling schemes, long tails
    // keep the search baselines honest.
    let g = barabasi_albert(3_000, 4, WeightModel::UniformRange(1, 8), 0x5107);
    println!(
        "graph: {} vertices, {} edges\n",
        g.num_vertices(),
        g.num_edges()
    );

    // One deterministic workload for everyone.
    let pairs: Vec<(VertexId, VertexId)> = (0..4_000u32)
        .map(|i| ((i * 97) % 3_000, (i * 131 + 17) % 3_000))
        .collect();
    let options = BatchOptions::default(); // available_parallelism() workers

    println!(
        "{:<12} {:>10} {:>14} {:>12} {:>16}",
        "engine", "build", "index bytes", "batch", "throughput"
    );
    let mut reference: Option<Vec<Option<Dist>>> = None;
    for engine in Engine::ALL {
        let t0 = Instant::now();
        let oracle: Box<dyn DistanceOracle> =
            build_oracle(engine, &g, &BuildConfig::default()).expect("default config is valid");
        let build = t0.elapsed();

        let t0 = Instant::now();
        let answers = oracle
            .distance_batch(&pairs, options)
            .expect("workload is in range");
        let batch = t0.elapsed();

        // Interchangeability check: all engines answer identically.
        match &reference {
            None => reference = Some(answers),
            Some(expect) => assert_eq!(&answers, expect, "{engine} diverged"),
        }

        println!(
            "{:<12} {:>10.2?} {:>14} {:>12.2?} {:>12.0} q/s",
            oracle.engine_name(),
            build,
            oracle.index_bytes(),
            batch,
            pairs.len() as f64 / batch.as_secs_f64()
        );
    }

    println!(
        "\nall {} engines agree on {} queries",
        Engine::ALL.len(),
        pairs.len()
    );
}
