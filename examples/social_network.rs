//! Social-network distance queries — the paper's motivating workload
//! ("social network analysis ... context-aware search in social networking
//! sites", Section 1).
//!
//! Builds a preferential-attachment graph (the structure of real social
//! networks), indexes it, and compares IS-LABEL query latency against
//! in-memory bidirectional Dijkstra on a batch of "degrees of separation"
//! queries.
//!
//! ```sh
//! cargo run --release --example social_network
//! ```

use islabel::baselines::BiDijkstra;
use islabel::core::BuildConfig;
use islabel::graph::generators::{barabasi_albert, WeightModel};
use islabel::IsLabelIndex;
use std::time::Instant;

fn main() {
    let n = 50_000;
    println!("generating a {n}-member social network (preferential attachment)...");
    let graph = barabasi_albert(n, 4, WeightModel::Unit, 2024);
    println!(
        "  {} members, {} friendships, max degree {}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.max_degree()
    );

    let t0 = Instant::now();
    let index = IsLabelIndex::build(&graph, BuildConfig::default());
    println!("indexed in {:.2?}: {}", t0.elapsed(), index.stats());

    // 2000 random "how far apart are these two people" queries.
    let pairs: Vec<(u32, u32)> = (0..2000u32)
        .map(|i| {
            (
                (i.wrapping_mul(2654435761)) % n as u32,
                (i.wrapping_mul(40503) + 7) % n as u32,
            )
        })
        .collect();

    let t0 = Instant::now();
    let mut total_sep = 0u64;
    for &(s, t) in &pairs {
        total_sep += index.distance(s, t).expect("BA graphs are connected");
    }
    let is_time = t0.elapsed();

    let mut bidij = BiDijkstra::new(n);
    let t0 = Instant::now();
    let mut check = 0u64;
    for &(s, t) in &pairs {
        check += bidij.distance(&graph, s, t).expect("connected");
    }
    let dij_time = t0.elapsed();
    assert_eq!(total_sep, check, "methods must agree");

    println!(
        "average separation: {:.2} hops",
        total_sep as f64 / pairs.len() as f64
    );
    println!(
        "IS-LABEL: {:.2?} total ({:.1} µs/query)   bi-Dijkstra: {:.2?} total ({:.1} µs/query)",
        is_time,
        is_time.as_secs_f64() * 1e6 / pairs.len() as f64,
        dij_time,
        dij_time.as_secs_f64() * 1e6 / pairs.len() as f64,
    );
}
