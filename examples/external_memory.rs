//! Disk-resident querying with counted I/O (paper Sections 6.2 and 7.2).
//!
//! Stores the vertex labels on real disk files, answers queries with one
//! positioned read per non-residual endpoint, and reports both measured
//! time and the paper-style modeled I/O time (10 ms per seek — how the
//! paper's Table 4 attributes Time (a) to its 7200 RPM disk).
//!
//! ```sh
//! cargo run --release --example external_memory
//! ```

use islabel::core::disklabel::DiskLabelStore;
use islabel::core::BuildConfig;
use islabel::extmem::storage::Storage;
use islabel::extmem::{DirStorage, IoCostModel};
use islabel::graph::{Dataset, Scale};
use islabel::IsLabelIndex;
use std::time::Instant;

fn main() -> std::io::Result<()> {
    let graph = Dataset::BtcLike.generate(Scale::Small);
    println!(
        "BTC-like graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );
    let index = IsLabelIndex::build(&graph, BuildConfig::default());
    println!("index: {}", index.stats());

    // Real files under a temp directory, every byte counted.
    let dir = std::env::temp_dir().join(format!("islabel-example-{}", std::process::id()));
    let storage = DirStorage::new(&dir)?;
    let store = DiskLabelStore::write(&storage, "labels", index.labels())?;
    println!(
        "wrote {} labels ({} bytes) to {}",
        store.num_vertices(),
        store.data_bytes(),
        dir.display()
    );

    let cost = IoCostModel::default();
    let stats = storage.stats();
    stats.reset();

    let queries: Vec<(u32, u32)> = (0..200u32)
        .map(|i| {
            (
                (i * 131) % graph.num_vertices() as u32,
                (i * 4099 + 5) % graph.num_vertices() as u32,
            )
        })
        .collect();

    let t0 = Instant::now();
    let mut answered = 0usize;
    for &(s, t) in &queries {
        let ls = store.fetch(&storage, s)?;
        let lt = store.fetch(&storage, t)?;
        if index.distance_from_labels(ls.view(), lt.view()).is_some() {
            answered += 1;
        }
    }
    let wall = t0.elapsed();
    let snap = stats.snapshot();
    println!("\n{answered}/{} queries answered", queries.len());
    println!(
        "I/O: {} seeks, {} bytes read  (measured wall {:.2?}, modeled disk {:.2?})",
        snap.seeks,
        snap.bytes_read,
        wall,
        cost.modeled_time(&snap),
    );
    println!(
        "modeled Time (a) per query: {:.2?}  — the paper's ~20 ms for two label fetches",
        cost.modeled_time(&snap) / queries.len() as u32
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
