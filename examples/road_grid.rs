//! Weighted grid ("road network") workload with shortest-*path* queries.
//!
//! Road networks are the regime the paper contrasts against (Section 3:
//! methods tuned to low highway dimension don't transfer to general
//! graphs — but IS-LABEL still works here). This example runs point-to-point
//! routes on a weighted grid and verifies every returned path edge-by-edge.
//!
//! ```sh
//! cargo run --release --example road_grid
//! ```

use islabel::core::BuildConfig;
use islabel::graph::generators::{grid2d, WeightModel};
use islabel::IsLabelIndex;

fn main() {
    let (rows, cols) = (120usize, 120usize);
    // Travel times between 1 and 9 minutes per segment.
    let graph = grid2d(rows, cols, WeightModel::UniformRange(1, 9), 7);
    println!(
        "road grid: {} intersections, {} segments",
        graph.num_vertices(),
        graph.num_edges()
    );

    let index = IsLabelIndex::build(&graph, BuildConfig::default());
    println!("index: {}", index.stats());

    let id = |r: usize, c: usize| (r * cols + c) as u32;
    let routes = [
        (id(0, 0), id(rows - 1, cols - 1), "corner to corner"),
        (id(0, cols - 1), id(rows - 1, 0), "anti-diagonal"),
        (id(rows / 2, 0), id(rows / 2, cols - 1), "straight across"),
    ];

    for (s, t, what) in routes {
        let path = index.shortest_path(s, t).expect("grid is connected");
        path.validate_against(&graph)
            .expect("path must be edge-valid");
        println!(
            "{what}: travel time {} over {} segments (distance query agrees: {})",
            path.length,
            path.num_edges(),
            index.distance(s, t).unwrap() == path.length,
        );
    }
}
