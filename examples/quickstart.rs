//! Quickstart: build an IS-LABEL index and answer distance + path queries.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use islabel::core::BuildConfig;
use islabel::{GraphBuilder, IsLabelIndex};

fn main() {
    // The 9-vertex example graph from the paper's Figure 1 (a = 0 ... i = 8).
    // Every edge has weight 1 except (e, f) with weight 3.
    let mut builder = GraphBuilder::new(9);
    for (u, v, w) in [
        (0, 1, 1), // a-b
        (1, 2, 1), // b-c
        (1, 4, 1), // b-e
        (0, 4, 1), // a-e
        (3, 4, 1), // d-e
        (4, 5, 3), // e-f
        (4, 8, 1), // e-i
        (5, 7, 1), // f-h
        (6, 7, 1), // g-h
        (3, 6, 1), // d-g
    ] {
        builder.add_edge(u, v, w);
    }
    let graph = builder.build();

    // Build with the paper's defaults (σ = 0.95 k-selection, greedy
    // min-degree independent sets, path info retained).
    let index = IsLabelIndex::build(&graph, BuildConfig::default());
    println!("built index: {}", index.stats());

    let names = ["a", "b", "c", "d", "e", "f", "g", "h", "i"];

    // Example 4 of the paper: dist(h, e) = 3.
    let (h, e) = (7, 4);
    println!(
        "dist({}, {}) = {:?}",
        names[h as usize],
        names[e as usize],
        index.distance(h, e)
    );

    // Section 8.1: full shortest-path reconstruction.
    let path = index.shortest_path(h, e).expect("h and e are connected");
    let pretty: Vec<&str> = path.vertices.iter().map(|&v| names[v as usize]).collect();
    println!(
        "path(h -> e) = {} (length {})",
        pretty.join(" -> "),
        path.length
    );

    // Unreachable pairs answer None (the paper's ∞).
    let lonely = GraphBuilder::new(2).build();
    let empty_index = IsLabelIndex::build(&lonely, BuildConfig::default());
    println!(
        "disconnected: dist(0, 1) = {:?}",
        empty_index.distance(0, 1)
    );
}
