//! Remote shootout: build an index, serve it over loopback, and query it
//! from a pooled client — the copy-paste starting point for embedding the
//! [`DistanceServer`] in a process of your own.
//!
//! ```text
//! cargo run --release --example remote_shootout
//! ```

use islabel::graph::generators::{erdos_renyi_gnm, WeightModel};
use islabel::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // 1. Build: a synthetic graph and its IS-LABEL index, exactly as for
    //    in-process serving.
    let n = 5_000u32;
    let g = erdos_renyi_gnm(n as usize, 15_000, WeightModel::UniformRange(1, 10), 42);
    println!(
        "graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );
    let t0 = Instant::now();
    let index = IsLabelIndex::build(&g, BuildConfig::default());
    println!("index built in {:.2?}", t0.elapsed());

    // 2. Serve: bind a loopback port (0 = OS-assigned) and expose the
    //    index over the wire protocol. `NetConfig` carries the limits
    //    (frame cap, batch cap, connection cap).
    let server = DistanceServer::start(Arc::new(index), "127.0.0.1:0", NetConfig::default())
        .expect("bind loopback");
    let addr = server.local_addr();
    println!("serving on {addr}");

    // 3. Query: a pool of 4 connections. Singles round-robin; batches fan
    //    out across the pool and come back in input order.
    let pool = ClientPool::connect(addr, 4).expect("connect pool");
    let d = pool.distance(0, n - 1).expect("remote query");
    println!("dist(0, {}) = {d:?}", n - 1);

    let pairs: Vec<(VertexId, VertexId)> = (0..2_000u32)
        .map(|i| ((i * 13) % n, (i * 37 + 5) % n))
        .collect();
    let t0 = Instant::now();
    let answers = pool.distance_batch(&pairs).expect("remote batch");
    let took = t0.elapsed();
    let reachable = answers.iter().flatten().count();
    println!(
        "{} remote queries in {:.2?} ({:.0} queries/sec), {} reachable",
        pairs.len(),
        took,
        pairs.len() as f64 / took.as_secs_f64(),
        reachable
    );

    // 4. Typed errors round-trip the wire: an out-of-range vertex comes
    //    back as the same QueryError the library raises in-process.
    let err = pool.distance(0, n + 7).expect_err("out of range");
    println!(
        "remote error round-trip: {:?}",
        err.as_query_error().expect("maps to a QueryError")
    );

    // 5. Observe: server-side counters and real latency percentiles, both
    //    from the wire Stats opcode and from the shutdown stats.
    let stats = pool.stats().expect("stats");
    println!(
        "server stats: engine={} gen={} queries={} p50={}µs p99={}µs",
        stats.engine, stats.snapshot_version, stats.queries, stats.p50_us, stats.p99_us
    );

    let final_stats = server.shutdown();
    println!(
        "shutdown: {} queries over {} connections, {} errors",
        final_stats.queries, final_stats.connections_total, final_stats.errors
    );
}
