//! Directed web-graph querying (paper Section 8.2): in/out labels,
//! asymmetric distances, and reachability for free.
//!
//! ```sh
//! cargo run --release --example web_directed
//! ```

use islabel::core::BuildConfig;
use islabel::{DiIsLabelIndex, DigraphBuilder};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn main() {
    // A synthetic "web": hyperlinks are directed, popular pages attract
    // links (preferential attachment on the in-degree side), plus a sparse
    // back-link layer.
    let n = 20_000usize;
    let mut rng = StdRng::seed_from_u64(99);
    let mut b = DigraphBuilder::new(n);
    let mut urn: Vec<u32> = vec![0];
    for v in 1..n as u32 {
        for _ in 0..3 {
            let target = urn[rng.gen_range(0..urn.len())];
            if target != v {
                b.add_arc(v, target, 1);
                urn.push(target);
            }
        }
        urn.push(v);
        // Occasional reverse link.
        if rng.gen_bool(0.15) {
            let back = rng.gen_range(0..v);
            b.add_arc(back, v, 1);
        }
    }
    let web = b.build();
    println!(
        "web graph: {} pages, {} hyperlinks",
        web.num_vertices(),
        web.num_arcs()
    );

    let index = DiIsLabelIndex::build(&web, BuildConfig::default());
    println!("directed index: {}", index.stats());

    let mut reachable = 0usize;
    let mut asym = 0usize;
    let samples = 500;
    for _ in 0..samples {
        let s = rng.gen_range(0..n as u32);
        let t = rng.gen_range(0..n as u32);
        let fwd = index.distance(s, t);
        let bwd = index.distance(t, s);
        if fwd.is_some() {
            reachable += 1;
        }
        if fwd != bwd {
            asym += 1;
        }
    }
    println!("{reachable}/{samples} random (s, t) pairs are s → t reachable");
    println!("{asym}/{samples} pairs have asymmetric distances (dist(s,t) ≠ dist(t,s))");

    // Reachability is answered by the same index (paper Section 9).
    let (s, t) = (5u32, 17u32);
    println!(
        "page {s} {} reach page {t} (dist = {:?})",
        if index.reachable(s, t) {
            "can"
        } else {
            "cannot"
        },
        index.distance(s, t)
    );
}
