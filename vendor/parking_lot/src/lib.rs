//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly instead of `Result`s.
//! Poisoning is handled by recovering the inner guard — a panic while a
//! lock is held does not make the data permanently inaccessible, matching
//! `parking_lot` semantics closely enough for this workspace's I/O-counter
//! and storage-registry uses.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock with `parking_lot`'s panic-free interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Mutual-exclusion lock with `parking_lot`'s panic-free interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1u32);
        {
            let a = lock.read();
            let b = lock.read();
            assert_eq!(*a + *b, 2);
        }
        *lock.write() += 4;
        assert_eq!(*lock.read(), 5);
        assert_eq!(lock.into_inner(), 5);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }
}
