//! Offline stand-in for `criterion`.
//!
//! Gives the workspace's `harness = false` benches the API they expect —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`BenchmarkId`], [`Throughput`], [`black_box`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros — and implements it
//! with straightforward wall-clock timing: a short warm-up, then timed
//! batches, reporting the mean per-iteration latency to stdout. No
//! statistics engine, plots, or baselines; `cargo bench` stays useful for
//! coarse comparisons and, more importantly, the benches stay compiling.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Throughput annotation; recorded so element rates appear in the report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Runs one benchmark body repeatedly and measures it.
pub struct Bencher {
    /// (total elapsed, iterations) filled in by `iter`.
    measurement: Option<(Duration, u64)>,
}

impl Bencher {
    /// Measures `f`: warm-up, then enough batches to fill a short
    /// measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run for ~50ms to stabilize caches and branch predictors.
        let warm_deadline = Instant::now() + Duration::from_millis(50);
        while Instant::now() < warm_deadline {
            black_box(f());
        }
        // Measure for ~250ms in geometrically growing batches so the clock
        // is read between batches, never inside the timed loop — a per-
        // iteration Instant::now() would dominate nanosecond-scale bodies.
        let mut iters: u64 = 0;
        let mut batch: u64 = 1;
        let mut elapsed = Duration::ZERO;
        let budget = Duration::from_millis(250);
        while elapsed < budget {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            elapsed += start.elapsed();
            iters += batch;
            batch = batch.saturating_mul(2).min(1 << 20);
        }
        self.measurement = Some((elapsed, iters.max(1)));
    }
}

fn format_latency(per_iter: Duration) -> String {
    let nanos = per_iter.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { measurement: None };
        f(&mut bencher);
        let (elapsed, iters) = bencher
            .measurement
            .expect("benchmark body never called Bencher::iter");
        let per_iter = elapsed / u32::try_from(iters).unwrap_or(u32::MAX);
        let mut line = format!(
            "{}/{}: {} per iter ({} iters)",
            self.name,
            id.id,
            format_latency(per_iter),
            iters
        );
        if let Some(Throughput::Elements(elems)) = self.throughput {
            let per_sec = elems as f64 * iters as f64 / elapsed.as_secs_f64();
            line.push_str(&format!(", {per_sec:.0} elem/s"));
        }
        println!("{line}");
        self
    }

    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name).bench_function(name, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_benches_run_and_measure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10).throughput(Throughput::Elements(2));
        let mut count = 0u64;
        group.bench_function(BenchmarkId::new("incr", "tiny"), |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.finish();
        assert!(count > 0, "bench body never executed");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
