//! Offline stand-in for `proptest`.
//!
//! Provides deterministic randomized property testing behind the exact
//! macro/trait surface this workspace's `property_suite` uses: the
//! [`proptest!`] macro (with optional `#![proptest_config(...)]` header),
//! the [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`,
//! [`strategy::Just`], [`prop_oneof!`], range/tuple strategies,
//! `collection::{vec, btree_map}` and `prop_assert*` macros.
//!
//! Differences from the real crate, all acceptable for this workspace:
//! no shrinking (a failing case reports its seed and values via the
//! panic message instead of a minimized counterexample), and failures
//! surface as panics rather than `TestCaseError`.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SampleUniform};
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value` from an RNG.
    ///
    /// Unlike the real proptest there is no value tree: `generate` draws a
    /// fresh value and no shrinking occurs.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn generate(&self, rng: &mut StdRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    impl<T: SampleUniform> Strategy for Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T: SampleUniform> Strategy for RangeInclusive<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// Boxes a strategy for use in heterogeneous unions (`prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Uniform choice among boxed strategies with a common value type.
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut StdRng) -> V {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    /// Marker so `PhantomData` stays imported if future strategies need it.
    #[doc(hidden)]
    pub type _Phantom = PhantomData<()>;
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Strategy for a `Vec` whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "empty size range {size:?}");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for a `BTreeMap` with up to `size.end - 1` entries (key
    /// collisions collapse, as in the real proptest).
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        assert!(!size.is_empty(), "empty size range {size:?}");
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-block configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic RNG for one test case: a fixed base seed mixed with
    /// the test name and case index, so every run explores the same inputs
    /// and distinct tests explore distinct ones.
    pub fn rng_for_case(test_name: &str, case: u32) -> StdRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(h ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)))
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares deterministic property tests. Supports the subset of the real
/// macro this workspace uses: an optional `#![proptest_config(expr)]`
/// header followed by `#[test] fn name(binding in strategy, ...) { body }`
/// items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg); $($rest)*);
    };
    (@munch ($cfg:expr); ) => {};
    (@munch ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng =
                    $crate::test_runner::rng_for_case(stringify!($name), case);
                $(
                    let $arg = $crate::strategy::Strategy::generate(
                        &($strat),
                        &mut __proptest_rng,
                    );
                )+
                $body
            }
        }
        $crate::proptest!(@munch ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Uniform choice among strategies sharing a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Asserts a condition inside a property test (panics on failure; no
/// shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::rng_for_case;

    #[test]
    fn ranges_tuples_and_collections_generate_in_bounds() {
        let mut rng = rng_for_case("smoke", 0);
        let s = (0u32..10, 1u64..5, 0.0f64..1.0);
        for _ in 0..200 {
            let (a, b, c) = Strategy::generate(&s, &mut rng);
            assert!(a < 10 && (1..5).contains(&b) && (0.0..1.0).contains(&c));
        }
        let v = crate::collection::vec(0u32..4, 2..6);
        for _ in 0..50 {
            let xs = Strategy::generate(&v, &mut rng);
            assert!((2..6).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 4));
        }
        let m = crate::collection::btree_map(0u32..8, 0u64..3, 0..5);
        for _ in 0..50 {
            let map = Strategy::generate(&m, &mut rng);
            assert!(map.len() < 5);
        }
    }

    #[test]
    fn oneof_map_and_flat_map() {
        let mut rng = rng_for_case("oneof", 0);
        let s = prop_oneof![Just(1u32), 5u32..8, (0u32..2).prop_map(|x| x + 100)];
        let mut seen_levels = [false; 3];
        for _ in 0..300 {
            match Strategy::generate(&s, &mut rng) {
                1 => seen_levels[0] = true,
                5..=7 => seen_levels[1] = true,
                100..=101 => seen_levels[2] = true,
                other => panic!("out-of-domain value {other}"),
            }
        }
        assert!(seen_levels.iter().all(|&b| b), "union arm never sampled");

        let f = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u32..2, n..n + 1));
        for _ in 0..50 {
            let xs = Strategy::generate(&f, &mut rng);
            assert!((1..4).contains(&xs.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_end_to_end(x in 0u32..50, ys in crate::collection::vec(0u32..10, 0..4)) {
            prop_assert!(x < 50);
            prop_assert_eq!(ys.iter().filter(|&&y| y >= 10).count(), 0);
            prop_assert_ne!(x, 50);
        }
    }
}
