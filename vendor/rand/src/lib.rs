//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the real crates.io
//! `rand` cannot be fetched. This crate reimplements exactly the 0.8 API
//! surface the workspace uses — [`Rng`] (`gen`, `gen_bool`, `gen_range`),
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`] — over a
//! deterministic xoshiro256\*\* generator. Determinism is the property the
//! workspace actually relies on (every caller seeds explicitly); statistical
//! quality of xoshiro256\*\* is more than sufficient for graph generation
//! and workload sampling.

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s. The single required method; everything else
/// derives from it.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed. Identical seeds produce identical
    /// streams, which is what every test and generator in the workspace
    /// depends on.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types sampleable uniformly over their full domain via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with uniform sampling over a half-open `[lo, hi)` interval.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// The successor of `self`, used to turn `lo..=hi` into `lo..hi + 1`.
    /// Saturates at the type maximum, matching `rand`'s inclusive behavior
    /// closely enough for the in-range values this workspace draws.
    fn successor(self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                // Debiased multiply-shift (Lemire); span is never 0 here.
                let mut x = rng.next_u64();
                let mut m = (x as u128).wrapping_mul(span as u128);
                let mut l = m as u64;
                if l < span {
                    let t = span.wrapping_neg() % span;
                    while l < t {
                        x = rng.next_u64();
                        m = (x as u128).wrapping_mul(span as u128);
                        l = m as u64;
                    }
                }
                lo.wrapping_add((m >> 64) as u64 as $t)
            }
            #[inline]
            fn successor(self) -> Self {
                self.saturating_add(1)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                let off = u64::sample_range(rng, 0, span);
                ((lo as i64).wrapping_add(off as i64)) as $t
            }
            #[inline]
            fn successor(self) -> Self {
                self.saturating_add(1)
            }
        }
    )*};
}
impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
            #[inline]
            fn successor(self) -> Self {
                // Inclusive float ranges are not used by this workspace.
                self
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`]: `lo..hi` or `lo..=hi`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(rng, lo, hi.successor())
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::sample(self) < p
    }

    /// Uniform draw from `range` (`lo..hi` or `lo..=hi`). Panics on empty
    /// ranges, like the real `rand`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256\*\* generator standing in for `rand`'s
    /// `StdRng`. (The real `StdRng` is ChaCha12; no caller here depends on
    /// the exact stream, only on determinism per seed.)
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the full state,
            // exactly as Blackman & Vigna recommend.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.gen_range(5..=5);
            assert_eq!(y, 5);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: usize = rng.gen_range(0..4usize);
            assert!(u < 4);
        }
    }

    #[test]
    fn gen_bool_probabilities() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.2)).count();
        assert!((1_500..2_500).contains(&hits), "p=0.2 gave {hits}/10000");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn float_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
