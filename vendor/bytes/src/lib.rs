//! Offline stand-in for the `bytes` crate.
//!
//! Implements the [`Buf`] / [`BufMut`] trait surface the workspace's binary
//! formats use — little-endian integer/float accessors, `put_slice`,
//! `copy_to_slice`, `advance`, `remaining` — for the two concrete carriers
//! actually used: `&[u8]` readers and `Vec<u8>` writers. All reads panic on
//! underflow exactly like the real crate, which the persistence tests rely
//! on to catch truncated artifacts.

/// Sequential big-endian-free reader over a byte source.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consumes and returns the next `n` bytes as a slice.
    ///
    /// Internal primitive: every accessor below is defined in terms of it.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    #[inline]
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    #[inline]
    fn advance(&mut self, cnt: usize) {
        self.take_bytes(cnt);
    }

    #[inline]
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let src = self.take_bytes(dst.len());
        dst.copy_from_slice(src);
    }

    #[inline]
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }

    #[inline]
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_bytes(2).try_into().unwrap())
    }

    #[inline]
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_bytes(4).try_into().unwrap())
    }

    #[inline]
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_bytes(8).try_into().unwrap())
    }

    #[inline]
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn take_bytes(&mut self, n: usize) -> &[u8] {
        assert!(
            n <= self.len(),
            "buffer underflow: need {n} bytes, have {}",
            self.len()
        );
        let (head, tail) = self.split_at(n);
        *self = tail;
        head
    }
}

/// Sequential writer into a growable byte sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    #[inline]
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for &mut [u8] {
    /// Writes into the front of the slice and advances it, panicking when
    /// the slice is too short — the fixed-size-header behavior the real
    /// crate provides.
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        assert!(
            src.len() <= self.len(),
            "buffer overflow: need {} bytes, have {}",
            src.len(),
            self.len()
        );
        let this = std::mem::take(self);
        let (head, tail) = this.split_at_mut(src.len());
        head.copy_from_slice(src);
        *self = tail;
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }

    #[inline]
    fn put_u8(&mut self, v: u8) {
        (**self).put_u8(v);
    }

    #[inline]
    fn put_u32_le(&mut self, v: u32) {
        (**self).put_u32_le(v);
    }

    #[inline]
    fn put_u64_le(&mut self, v: u64) {
        (**self).put_u64_le(v);
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    #[inline]
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    #[inline]
    fn take_bytes(&mut self, n: usize) -> &[u8] {
        (**self).take_bytes(n)
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut};

    #[test]
    fn roundtrip_all_widths() {
        let mut out = Vec::new();
        out.put_u8(7);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u64_le(0x0123_4567_89AB_CDEF);
        out.put_f64_le(0.25);
        out.put_slice(b"xyz");

        let mut r: &[u8] = &out;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f64_le(), 0.25);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
        assert!(!r.has_remaining());
    }

    #[test]
    fn advance_skips() {
        let mut r: &[u8] = &[1, 2, 3, 4, 5];
        r.advance(2);
        assert_eq!(r.get_u8(), 3);
        assert_eq!(r.remaining(), 2);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1];
        let _ = r.get_u32_le();
    }
}
