//! Broad randomized correctness: IS-LABEL answers must equal Dijkstra
//! answers on every dataset family, weight model, and k-selection policy
//! (Theorems 2–4).

use islabel::baselines::{BiDijkstra, PllIndex, VcConfig, VcIndex};
use islabel::core::reference::dijkstra_p2p;
use islabel::core::{BuildConfig, IsLabelIndex};
use islabel::graph::generators::{
    barabasi_albert, erdos_renyi_gnm, grid2d, rmat, watts_strogatz, RmatParams, WeightModel,
};
use islabel::{CsrGraph, Dataset, Scale, VertexId};

fn check(g: &CsrGraph, config: BuildConfig, queries: usize, tag: &str) {
    let index = IsLabelIndex::build(g, config);
    let n = g.num_vertices();
    for i in 0..queries {
        let s = ((i * 2654435761) % n) as VertexId;
        let t = ((i * 40503 + n / 3) % n) as VertexId;
        assert_eq!(
            index.distance(s, t),
            dijkstra_p2p(g, s, t),
            "{tag} ({s}, {t})"
        );
    }
}

#[test]
fn every_generator_family() {
    let cases: Vec<(&str, CsrGraph)> = vec![
        ("er-unit", erdos_renyi_gnm(300, 700, WeightModel::Unit, 1)),
        (
            "er-weighted",
            erdos_renyi_gnm(300, 700, WeightModel::UniformRange(1, 50), 2),
        ),
        (
            "ba",
            barabasi_albert(300, 3, WeightModel::UniformRange(1, 5), 3),
        ),
        (
            "ws",
            watts_strogatz(300, 6, 0.2, WeightModel::UniformRange(1, 9), 4),
        ),
        ("grid", grid2d(17, 18, WeightModel::UniformRange(1, 4), 5)),
        (
            "rmat",
            rmat(8, 5, RmatParams::default(), WeightModel::Unit, 6),
        ),
    ];
    for (tag, g) in &cases {
        check(g, BuildConfig::default(), 80, tag);
    }
}

#[test]
fn every_k_selection_policy() {
    let g = barabasi_albert(400, 3, WeightModel::UniformRange(1, 7), 9);
    for (tag, config) in [
        ("sigma95", BuildConfig::sigma(0.95)),
        ("sigma70", BuildConfig::sigma(0.70)),
        ("k2", BuildConfig::fixed_k(2)),
        ("k5", BuildConfig::fixed_k(5)),
        ("full", BuildConfig::full()),
    ] {
        check(&g, config, 120, tag);
    }
}

#[test]
fn all_paper_datasets_at_tiny_scale() {
    for ds in Dataset::ALL {
        let g = ds.generate(Scale::Tiny);
        check(&g, BuildConfig::default(), 60, ds.name());
    }
}

#[test]
fn disconnected_forests() {
    // A forest of disjoint stars: most pairs are unreachable.
    let mut b = islabel::GraphBuilder::new(120);
    for c in 0..10u32 {
        let center = c * 12;
        for leaf in 1..12u32 {
            b.add_edge(center, center + leaf, leaf);
        }
    }
    let g = b.build();
    let index = IsLabelIndex::build(&g, BuildConfig::default());
    for s in (0..120u32).step_by(7) {
        for t in (0..120u32).step_by(11) {
            assert_eq!(index.distance(s, t), dijkstra_p2p(&g, s, t), "({s}, {t})");
        }
    }
}

#[test]
fn all_methods_agree_on_shared_workload() {
    // IS-LABEL, VC-Index(P2P), PLL and bidirectional Dijkstra must return
    // identical answers — the cross-validation behind Table 8.
    let g = Dataset::SkitterLike.generate(Scale::Tiny);
    let n = g.num_vertices();
    let index = IsLabelIndex::build(&g, BuildConfig::default());
    let vc = VcIndex::build(&g, VcConfig::default());
    let pll = PllIndex::build(&g);
    let mut bidij = BiDijkstra::new(n);
    for i in 0..150usize {
        let s = ((i * 48271) % n) as VertexId;
        let t = ((i * 16807 + 11) % n) as VertexId;
        let a = index.distance(s, t);
        let b = vc.distance(s, t);
        let c = pll.distance(s, t);
        let d = bidij.distance(&g, s, t);
        assert!(
            a == b && b == c && c == d,
            "({s}, {t}): {a:?} {b:?} {c:?} {d:?}"
        );
    }
}

#[test]
fn heavyweight_weights_work_within_contract() {
    // Large weights whose shortest-path sums still fit in u32 (the
    // documented construction contract); query distances accumulate in u64.
    let w = u32::MAX / 64;
    let mut b = islabel::GraphBuilder::new(40);
    for v in 0..39u32 {
        b.add_edge(v, v + 1, w);
    }
    let g = b.build();
    let index = IsLabelIndex::build(&g, BuildConfig::default());
    assert_eq!(index.distance(0, 39), Some(39 * w as u64));
}

#[test]
#[should_panic(expected = "augmenting edge weight overflows")]
fn overflowing_weights_fail_loudly_not_silently() {
    // Out-of-contract weights (2-hop repairs exceed u32) must panic with a
    // clear message instead of wrapping into wrong distances. A 5-path
    // forces the greedy IS to peel the middle vertex, whose repair edge
    // would weigh 2 · u32::MAX.
    let mut b = islabel::GraphBuilder::new(5);
    for v in 0..4u32 {
        b.add_edge(v, v + 1, u32::MAX);
    }
    let g = b.build();
    let _ = IsLabelIndex::build(&g, BuildConfig::default());
}
