//! Persistence integration: graph text/binary formats, disk-resident
//! labels on real files, and the modeled I/O accounting.

use islabel::core::disklabel::DiskLabelStore;
use islabel::core::{BuildConfig, IsLabelIndex};
use islabel::extmem::storage::Storage;
use islabel::extmem::{DirStorage, IoCostModel, MemStorage};
use islabel::graph::io::{parse_edge_list, read_csr_binary, write_csr_binary, write_edge_list};
use islabel::{Dataset, Scale};

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("islabel-it-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn graph_survives_both_serialization_formats() {
    let g = Dataset::GoogleLike.generate(Scale::Tiny);

    // Text roundtrip.
    let mut text = Vec::new();
    write_edge_list(&g, &mut text).unwrap();
    let parsed = parse_edge_list(std::str::from_utf8(&text).unwrap()).unwrap();
    assert_eq!(parsed, g);

    // Binary roundtrip.
    let mut bin = Vec::new();
    write_csr_binary(&g, &mut bin).unwrap();
    let decoded = read_csr_binary(&mut &bin[..]).unwrap();
    assert_eq!(decoded, g);
}

#[test]
fn index_built_from_reloaded_graph_is_identical() {
    let g = Dataset::WikiTalkLike.generate(Scale::Tiny);
    let mut bin = Vec::new();
    write_csr_binary(&g, &mut bin).unwrap();
    let g2 = read_csr_binary(&mut &bin[..]).unwrap();

    let a = IsLabelIndex::build(&g, BuildConfig::default());
    let b = IsLabelIndex::build(&g2, BuildConfig::default());
    assert_eq!(
        a.labels(),
        b.labels(),
        "deterministic build from equal graphs"
    );
    for i in 0..50u32 {
        let (s, t) = (
            (i * 13) % g.num_vertices() as u32,
            (i * 7 + 1) % g.num_vertices() as u32,
        );
        assert_eq!(a.distance(s, t), b.distance(s, t));
    }
}

#[test]
fn disk_labels_on_real_files() {
    let dir = tempdir("labels");
    let g = Dataset::BtcLike.generate(Scale::Tiny);
    let index = IsLabelIndex::build(&g, BuildConfig::default());

    let storage = DirStorage::new(&dir).unwrap();
    let store = DiskLabelStore::write(&storage, "labels", index.labels()).unwrap();

    // Reopen from disk (fresh offset table) and compare every label.
    let reopened = DiskLabelStore::open(&storage, "labels").unwrap();
    for v in (0..g.num_vertices() as u32).step_by(37) {
        let disk: Vec<(u32, u64)> = reopened.fetch(&storage, v).unwrap().view().iter().collect();
        let mem: Vec<(u32, u64)> = index.labels().label(v).iter().collect();
        assert_eq!(disk, mem, "label({v})");
    }

    // Queries straight off disk match in-memory answers.
    for (s, t) in [(0u32, 100u32), (5, 77), (50, 51)] {
        let ls = store.fetch(&storage, s).unwrap();
        let lt = store.fetch(&storage, t).unwrap();
        assert_eq!(
            index.distance_from_labels(ls.view(), lt.view()),
            index.distance(s, t),
            "({s}, {t})"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn io_accounting_feeds_cost_model() {
    let g = Dataset::GoogleLike.generate(Scale::Tiny);
    let index = IsLabelIndex::build(&g, BuildConfig::default());
    let storage = MemStorage::new();
    let store = DiskLabelStore::write(&storage, "labels", index.labels()).unwrap();

    let io = storage.stats();
    io.reset();
    store.fetch(&storage, 3).unwrap();
    store.fetch(&storage, 4).unwrap();
    let snap = io.snapshot();
    assert_eq!(snap.seeks, 2);

    // Two seeks at 10 ms each dominate the modeled time for small labels.
    let model = IoCostModel::default();
    let t = model.modeled_time(&snap);
    assert!(t >= std::time::Duration::from_millis(20), "{t:?}");
    assert!(t < std::time::Duration::from_millis(40), "{t:?}");
}

#[test]
fn mem_and_dir_storage_hold_identical_bytes() {
    let g = Dataset::SkitterLike.generate(Scale::Tiny);
    let index = IsLabelIndex::build(&g, BuildConfig::default());

    let mem = MemStorage::new();
    DiskLabelStore::write(&mem, "l", index.labels()).unwrap();

    let dir = tempdir("parity");
    let disk = DirStorage::new(&dir).unwrap();
    DiskLabelStore::write(&disk, "l", index.labels()).unwrap();

    for name in ["l", "l.idx"] {
        let mut a = Vec::new();
        mem.open(name).unwrap().read_to_end(&mut a).unwrap();
        let mut b = Vec::new();
        disk.open(name).unwrap().read_to_end(&mut b).unwrap();
        assert_eq!(a, b, "object {name}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

use std::io::Read;

#[test]
fn typed_persist_roundtrip_including_pending_updates() {
    use islabel::core::persist::{try_load_index_from_path, try_save_index_to_path};
    use islabel::core::Error;

    let dir = tempdir("typed-persist");
    let path = dir.join("i.islx");
    let g = Dataset::GoogleLike.generate(Scale::Tiny);
    let mut index = IsLabelIndex::build(&g, BuildConfig::default());

    // Pristine index: save + load roundtrips and answers identically.
    try_save_index_to_path(&index, &path).unwrap();
    let reloaded = try_load_index_from_path(&path).unwrap();
    for i in 0..40u32 {
        let n = g.num_vertices() as u32;
        let (s, t) = ((i * 11) % n, (i * 17 + 3) % n);
        assert_eq!(reloaded.distance(s, t), index.distance(s, t), "({s}, {t})");
    }

    // Pending dynamic updates persist too: the op log is sealed into the
    // artifact and replayed on load (the historical StaleIndex refusal is
    // gone), reconstructing the exact overlay.
    index.insert_edge(0, 1, 5);
    let u = index.insert_vertex(&[(0, 2)]);
    try_save_index_to_path(&index, &path).unwrap();
    let updated = try_load_index_from_path(&path).unwrap();
    assert!(updated.has_updates());
    assert_eq!(updated.pending_ops(), index.pending_ops());
    assert_eq!(updated.artifact_epoch(), index.artifact_epoch());
    for i in 0..40u32 {
        let n = g.num_vertices() as u32;
        let (s, t) = ((i * 11) % n, (i * 17 + 3) % n);
        assert_eq!(
            updated.try_distance(s, t).unwrap(),
            index.try_distance(s, t).unwrap(),
            "({s}, {t})"
        );
    }
    assert_eq!(
        updated.try_distance(u, 1).unwrap(),
        index.try_distance(u, 1).unwrap()
    );

    // I/O failures map to Error::Persist.
    assert!(matches!(
        try_load_index_from_path(dir.join("does-not-exist.islx")),
        Err(Error::Persist(_))
    ));
    let rebuilt = {
        index.rebuild();
        index
    };
    assert!(matches!(
        try_save_index_to_path(&rebuilt, dir.join("no-such-dir").join("x.islx")),
        Err(Error::Persist(_))
    ));
    std::fs::remove_dir_all(&dir).ok();
}
