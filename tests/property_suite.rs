//! Property-based tests (proptest) over the core invariants:
//!
//! * index answers == Dijkstra answers on arbitrary graphs and k policies;
//! * hierarchy invariants (independence, level-ascending peel edges,
//!   partition);
//! * label invariants (self entry, upper bounds, ancestor-set equality with
//!   the Definition 3 reference);
//! * Equation 1 merge-join == naive quadratic intersection;
//! * path validity;
//! * serialization roundtrips.

use islabel::core::hierarchy::check_independence;
use islabel::core::hierarchy::VertexHierarchy;
use islabel::core::label::LabelSet;
use islabel::core::reference;
use islabel::core::{BuildConfig, IsLabelIndex};
use islabel::{CsrGraph, GraphBuilder, VertexId, INF};
use proptest::prelude::*;

/// Strategy: an arbitrary simple weighted graph with up to `n_max` vertices
/// and `m_max` candidate edges (self-loops and duplicates collapse in the
/// builder).
fn arb_graph(n_max: usize, m_max: usize) -> impl Strategy<Value = CsrGraph> {
    (2..n_max).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, 1..20u32), 0..m_max).prop_map(
            move |edges| {
                let mut b = GraphBuilder::new(n);
                for (u, v, w) in edges {
                    if u != v {
                        b.add_edge(u, v, w);
                    }
                }
                b.build()
            },
        )
    })
}

fn arb_config() -> impl Strategy<Value = BuildConfig> {
    prop_oneof![
        Just(BuildConfig::default()),
        Just(BuildConfig::full()),
        (2u32..6).prop_map(BuildConfig::fixed_k),
        (0.5f64..1.0).prop_map(BuildConfig::sigma),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn index_matches_dijkstra(g in arb_graph(40, 120), config in arb_config(), qseed in 0u32..1000) {
        let index = IsLabelIndex::build(&g, config);
        let n = g.num_vertices() as u32;
        for i in 0..12u32 {
            let s = (qseed.wrapping_add(i * 7919)) % n;
            let t = (qseed.wrapping_mul(31).wrapping_add(i * 104729)) % n;
            prop_assert_eq!(index.distance(s, t), reference::dijkstra_p2p(&g, s, t));
        }
    }

    #[test]
    fn hierarchy_invariants(g in arb_graph(50, 150), config in arb_config()) {
        let h = VertexHierarchy::build(&g, &config);
        // Independence at every level.
        prop_assert!(check_independence(&h).is_ok());
        // Peel edges strictly ascend levels.
        for v in g.vertices() {
            for e in h.peel_adj(v) {
                prop_assert!(h.level_of(e.to) > h.level_of(v));
            }
        }
        // Levels plus G_k partition the vertex set.
        let peeled: usize = h.levels().iter().map(|l| l.len()).sum();
        prop_assert_eq!(peeled + h.num_gk_vertices(), g.num_vertices());
        // Level sets are sorted and disjoint.
        let mut seen = vec![false; g.num_vertices()];
        for l in h.levels() {
            prop_assert!(l.windows(2).all(|w| w[0] < w[1]));
            for &v in l {
                prop_assert!(!seen[v as usize]);
                seen[v as usize] = true;
            }
        }
    }

    #[test]
    fn label_invariants(g in arb_graph(35, 90)) {
        let h = VertexHierarchy::build(&g, &BuildConfig::default());
        let ls = LabelSet::build(&h, true);
        for v in g.vertices() {
            let lv = ls.label(v);
            // Self entry with distance 0.
            prop_assert_eq!(lv.get(v), Some(0));
            // Ancestors sorted strictly ascending.
            prop_assert!(lv.ancestors.windows(2).all(|w| w[0] < w[1]));
            // d upper-bounds the true distance.
            let truth = reference::dijkstra_all(&g, v);
            for (anc, d) in lv.iter() {
                prop_assert!(truth[anc as usize] != INF);
                prop_assert!(d >= truth[anc as usize]);
            }
            // Algorithm 4 output equals the Definition 3 procedure.
            let expected = reference::definition3_label(&h, v);
            let got: Vec<(VertexId, u64)> = lv.iter().collect();
            prop_assert_eq!(got, expected);
        }
    }

    #[test]
    fn intersect_equals_naive(
        a in proptest::collection::btree_map(0u32..60, 1u64..50, 0..20),
        b in proptest::collection::btree_map(0u32..60, 1u64..50, 0..20),
    ) {
        let (aa, ad): (Vec<u32>, Vec<u64>) = a.iter().map(|(&k, &v)| (k, v)).unzip();
        let (ba, bd): (Vec<u32>, Vec<u64>) = b.iter().map(|(&k, &v)| (k, v)).unzip();
        let va = islabel::core::label::LabelView { ancestors: &aa, dists: &ad, first_hops: &[] };
        let vb = islabel::core::label::LabelView { ancestors: &ba, dists: &bd, first_hops: &[] };
        let (got, witness) = islabel::core::query::intersect_min(va, vb);

        let mut naive = INF;
        for (k, v) in &a {
            if let Some(w) = b.get(k) {
                naive = naive.min(v + w);
            }
        }
        prop_assert_eq!(got, naive);
        if got < INF {
            let w = witness.unwrap();
            prop_assert_eq!(a[&w] + b[&w], got);
        } else {
            prop_assert!(witness.is_none());
        }
    }

    #[test]
    fn paths_are_valid(g in arb_graph(30, 80), qseed in 0u32..500) {
        let index = IsLabelIndex::build(&g, BuildConfig::default());
        let n = g.num_vertices() as u32;
        for i in 0..8u32 {
            let s = (qseed + i * 97) % n;
            let t = (qseed * 3 + i * 389) % n;
            match (index.shortest_path(s, t), reference::dijkstra_p2p(&g, s, t)) {
                (Some(p), Some(d)) => {
                    prop_assert_eq!(p.length, d);
                    prop_assert!(p.validate_against(&g).is_ok());
                }
                (None, None) => {}
                (p, d) => prop_assert!(false, "path {:?} vs dist {:?}", p, d),
            }
        }
    }

    #[test]
    fn binary_roundtrip(g in arb_graph(40, 120)) {
        let mut buf = Vec::new();
        islabel::graph::io::write_csr_binary(&g, &mut buf).unwrap();
        let g2 = islabel::graph::io::read_csr_binary(&mut &buf[..]).unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn edge_list_roundtrip(g in arb_graph(30, 80)) {
        let mut text = Vec::new();
        islabel::graph::io::write_edge_list(&g, &mut text).unwrap();
        let g2 = islabel::graph::io::parse_edge_list(std::str::from_utf8(&text).unwrap()).unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn directed_index_matches_directed_dijkstra(
        n in 5usize..30,
        arcs in proptest::collection::vec((0u32..30, 0u32..30, 1u32..10), 0..100),
        qseed in 0u32..500,
    ) {
        let mut b = islabel::DigraphBuilder::new(n);
        for (u, v, w) in arcs {
            if (u as usize) < n && (v as usize) < n && u != v {
                b.add_arc(u, v, w);
            }
        }
        let g = b.build();
        let index = islabel::DiIsLabelIndex::build(&g, BuildConfig::default());
        for i in 0..10u32 {
            let s = (qseed + i * 13) % n as u32;
            let t = (qseed * 7 + i * 29) % n as u32;
            prop_assert_eq!(
                index.distance(s, t),
                islabel::core::directed::di_dijkstra_p2p(&g, s, t)
            );
        }
    }

    #[test]
    fn persisted_index_answers_identically(g in arb_graph(30, 80), qseed in 0u32..500) {
        let index = IsLabelIndex::build(&g, BuildConfig::default());
        let mut buf = Vec::new();
        islabel::core::persist::save_index(&index, &mut buf).unwrap();
        let loaded = islabel::core::persist::load_index(&mut &buf[..]).unwrap();
        let n = g.num_vertices() as u32;
        for i in 0..10u32 {
            let s = (qseed + i * 11) % n;
            let t = (qseed * 3 + i * 41) % n;
            prop_assert_eq!(loaded.distance(s, t), index.distance(s, t));
            prop_assert_eq!(loaded.shortest_path(s, t), index.shortest_path(s, t));
        }
    }

    #[test]
    fn updates_preserve_upper_bound_contract(
        g in arb_graph(25, 60),
        ops in proptest::collection::vec((0u32..25, 0u32..25, 1u32..8), 1..10),
        qseed in 0u32..500,
    ) {
        // Apply a random stream of vertex/edge insertions (no deletions of
        // peeled vertices, so staleness never triggers); every reported
        // distance must be >= the true distance on the updated graph, and
        // a rebuild must restore exactness.
        let mut index = IsLabelIndex::build(&g, BuildConfig::default());
        for (i, &(a, b, w)) in ops.iter().enumerate() {
            let n = index.num_vertices() as u32;
            let (a, b) = (a % n, b % n);
            if i % 2 == 0 {
                index.insert_vertex(&[(a, w)]);
            } else if a != b {
                index.insert_edge(a, b, w);
            }
        }
        let current = index.current_graph();
        let n = current.num_vertices() as u32;
        for i in 0..10u32 {
            let s = (qseed + i * 17) % n;
            let t = (qseed * 5 + i * 23) % n;
            let truth = reference::dijkstra_p2p(&current, s, t);
            match (index.distance(s, t), truth) {
                (Some(got), Some(want)) => prop_assert!(got >= want, "{got} < {want}"),
                (Some(_), None) => prop_assert!(false, "distance for unreachable pair"),
                _ => {}
            }
        }
        index.rebuild();
        for i in 0..10u32 {
            let s = (qseed + i * 17) % n;
            let t = (qseed * 5 + i * 23) % n;
            prop_assert_eq!(index.distance(s, t), reference::dijkstra_p2p(&current, s, t));
        }
    }

    #[test]
    fn external_sort_sorts(
        records in proptest::collection::vec((0u32..100, 0u32..100), 0..400),
        budget in 32usize..2048,
    ) {
        use islabel::extmem::Storage as _;
        let storage = islabel::extmem::MemStorage::new();
        let mut expected = records.clone();
        expected.sort();
        islabel::extmem::external_sort(
            &storage,
            records,
            "out",
            islabel::extmem::extsort::SortConfig { memory_budget: budget, fan_in: 2 },
        ).unwrap();
        let mut reader = islabel::extmem::RecordReader::new(storage.open("out").unwrap());
        let got: Vec<(u32, u32)> = reader.collect().unwrap();
        prop_assert_eq!(got, expected);
    }
}
