//! End-to-end replay of the paper's worked example (Figures 1–3,
//! Examples 1–6) through the public API.
//!
//! Vertex mapping: a=0, b=1, c=2, d=3, e=4, f=5, g=6, h=7, i=8.

use islabel::core::hierarchy::VertexHierarchy;
use islabel::core::label::LabelSet;
use islabel::core::{BuildConfig, IsLabelIndex};
use islabel::{CsrGraph, GraphBuilder};

fn paper_graph() -> CsrGraph {
    let mut b = GraphBuilder::new(9);
    for (u, v, w) in [
        (0, 1, 1), // a-b
        (1, 2, 1), // b-c
        (1, 4, 1), // b-e
        (0, 4, 1), // a-e
        (3, 4, 1), // d-e
        (4, 5, 3), // e-f  (the only non-unit weight)
        (4, 8, 1), // e-i
        (5, 7, 1), // f-h
        (6, 7, 1), // g-h
        (3, 6, 1), // d-g
    ] {
        b.add_edge(u, v, w);
    }
    b.build()
}

/// The paper's level assignment (Example 1): L1 = {c, f, i}, L2 = {b, d, h},
/// L3 = {e}, L4 = {a}, L5 = {g}.
const PAPER_LEVELS: [&[u32]; 5] = [&[2, 5, 8], &[1, 3, 7], &[4], &[0], &[6]];

fn paper_hierarchy() -> VertexHierarchy {
    let levels: Vec<Vec<u32>> = PAPER_LEVELS.iter().map(|l| l.to_vec()).collect();
    VertexHierarchy::build_with_forced_levels(&paper_graph(), &levels)
}

#[test]
fn figure1_hierarchy_structure() {
    let h = paper_hierarchy();
    // Example 2's level numbers.
    let expected_levels = [
        (2u32, 1u32),
        (5, 1),
        (8, 1),
        (1, 2),
        (3, 2),
        (7, 2),
        (4, 3),
        (0, 4),
        (6, 5),
    ];
    for (v, l) in expected_levels {
        assert_eq!(h.level_of(v), l, "ℓ(vertex {v})");
    }
    // "G4 consists of a single edge (a, g) of weight 3."
    let a_adj = h.peel_adj(0);
    assert_eq!(a_adj.len(), 1);
    assert_eq!((a_adj[0].to, a_adj[0].weight), (6, 3));
}

#[test]
fn example2_ancestors_of_f() {
    // "The ancestors of f will be e, h, a, g" (plus f itself).
    let h = paper_hierarchy();
    let ls = LabelSet::build(&h, false);
    let ancestors: Vec<u32> = ls.label(5).ancestors.to_vec();
    assert_eq!(ancestors, vec![0, 4, 5, 6, 7]); // a, e, f, g, h
}

#[test]
fn figure2_labels() {
    let h = paper_hierarchy();
    let ls = LabelSet::build(&h, false);
    let label = |v: u32| -> Vec<(u32, u64)> { ls.label(v).iter().collect() };

    assert_eq!(label(2), vec![(0, 2), (1, 1), (2, 0), (4, 2), (6, 4)]); // c
    assert_eq!(label(8), vec![(0, 2), (4, 1), (6, 3), (8, 0)]); // i
    assert_eq!(label(1), vec![(0, 1), (1, 0), (4, 1), (6, 3)]); // b
    assert_eq!(label(3), vec![(0, 2), (3, 0), (4, 1), (6, 1)]); // d
    assert_eq!(label(7), vec![(0, 5), (4, 4), (6, 1), (7, 0)]); // h
    assert_eq!(label(4), vec![(0, 1), (4, 0), (6, 2)]); // e
    assert_eq!(label(0), vec![(0, 0), (6, 3)]); // a
    assert_eq!(label(6), vec![(6, 0)]); // g

    // label(f): see islabel-core's label tests — the figure's (g, 5) entry
    // is inconsistent with Definition 3 (chain f→h→g has length 2); we
    // assert the Definition 3 value.
    assert_eq!(label(5), vec![(0, 4), (4, 3), (5, 0), (6, 2), (7, 1)]); // f

    // "Note that d(h, e) = 4 in label(h), while dist_G(h, e) = 3."
    assert_eq!(ls.label(7).get(4), Some(4));
}

#[test]
fn example4_queries_through_public_api() {
    let index = IsLabelIndex::build(&paper_graph(), BuildConfig::default());
    // dist(h, e) = 3 despite d(h, e) = 4 in the label.
    assert_eq!(index.distance(7, 4), Some(3));
    // dist(a, g): label(a) ∩ label(g) = {g}; 3 + 0 = 3.
    assert_eq!(index.distance(0, 6), Some(3));
}

#[test]
fn example5_k2_hierarchy_and_labels() {
    // Figure 3: truncate at k = 2 — only L1 = {c, f, i} is peeled.
    let h = VertexHierarchy::build_with_forced_levels(&paper_graph(), &[vec![2, 5, 8]]);
    assert_eq!(h.k(), 2);
    // All six remaining vertices are in G_2 at level 2.
    for v in [0u32, 1, 3, 4, 6, 7] {
        assert_eq!(h.level_of(v), 2, "ℓ({v})");
        assert!(h.is_in_gk(v));
    }
    let ls = LabelSet::build(&h, false);
    let label = |v: u32| -> Vec<(u32, u64)> { ls.label(v).iter().collect() };
    // The table in Example 5.
    assert_eq!(label(2), vec![(1, 1), (2, 0)]); // c: {(b,1), (c,0)}
    assert_eq!(label(5), vec![(4, 3), (5, 0), (7, 1)]); // f: {(e,3), (f,0), (h,1)}
    assert_eq!(label(8), vec![(4, 1), (8, 0)]); // i: {(e,1), (i,0)}

    // G_2 must contain the augmenting edge (e, h) of weight 4.
    assert_eq!(h.gk().edge_weight(4, 7), Some(4));
    assert_eq!(h.gk_via(4, 7), Some(5)); // via f
}

#[test]
fn example6_bidijkstra_query_on_k2() {
    // dist(c, i) = 3 via the label-seeded bidirectional search on G_2.
    // Through the public API with a fixed k = 2 the greedy IS picks its own
    // L1, but the answer must be identical.
    let index = IsLabelIndex::build(&paper_graph(), BuildConfig::fixed_k(2));
    assert_eq!(index.stats().k, 2);
    assert_eq!(index.distance(2, 8), Some(3));

    // And all pairwise answers at k = 2 equal the full-hierarchy answers.
    let full = IsLabelIndex::build(&paper_graph(), BuildConfig::full());
    for s in 0..9u32 {
        for t in 0..9u32 {
            assert_eq!(index.distance(s, t), full.distance(s, t), "({s}, {t})");
        }
    }
}

#[test]
fn all_pairs_match_dijkstra_on_paper_graph() {
    let g = paper_graph();
    let index = IsLabelIndex::build(&g, BuildConfig::default());
    for s in 0..9u32 {
        let truth = islabel::core::reference::dijkstra_all(&g, s);
        for t in 0..9u32 {
            assert_eq!(index.distance(s, t), Some(truth[t as usize]), "({s}, {t})");
        }
    }
}
