//! Network-serving correctness: every engine served over loopback must
//! answer bit-identically to an in-process session, under concurrent
//! pipelined clients; a wire-triggered `Reload` hot-swap completes while
//! in-flight remote queries finish on their pinned snapshot generation;
//! malformed frames error without dropping the connection; typed query
//! errors round-trip the wire.

use islabel::core::persist::try_save_index_to_path;
use islabel::graph::generators::{erdos_renyi_gnm, WeightModel};
use islabel::net::protocol::{self, Request, Response, WireError};
use islabel::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

fn pair_mix(n: u32, count: u32) -> Vec<(VertexId, VertexId)> {
    (0..count)
        .map(|i| ((i * 13) % n, (i * 37 + 5) % n))
        .collect()
}

/// Every engine, served over a real socket, hammered by pipelined
/// concurrent clients: answers must be bit-identical to an in-process
/// session on the same oracle.
#[test]
fn all_engines_bit_identical_over_loopback_under_pipelined_clients() {
    let g = erdos_renyi_gnm(200, 520, WeightModel::UniformRange(1, 9), 0xA7);
    let pairs = pair_mix(200, 100);

    for engine in Engine::ALL {
        let oracle: SharedOracle =
            Arc::from(build_oracle(engine, &g, &BuildConfig::default()).unwrap());
        let truth: Vec<Option<Dist>> = {
            let mut session = oracle.session();
            pairs
                .iter()
                .map(|&(s, t)| session.distance(s, t).unwrap())
                .collect()
        };
        let server =
            DistanceServer::start(Arc::clone(&oracle), "127.0.0.1:0", NetConfig::default())
                .unwrap();
        let addr = server.local_addr();

        std::thread::scope(|scope| {
            for c in 0..4usize {
                let pairs = &pairs;
                let truth = &truth;
                scope.spawn(move || {
                    let mut client = DistanceClient::connect(addr).unwrap();
                    // Pipelined: a window of 8 requests in flight, each
                    // client walking the mix from its own offset.
                    const DEPTH: usize = 8;
                    let order: Vec<usize> = (0..pairs.len())
                        .map(|i| (i + c * 23) % pairs.len())
                        .collect();
                    let mut sent = std::collections::VecDeque::new();
                    let mut next = 0;
                    while next < order.len() || !sent.is_empty() {
                        while next < order.len() && sent.len() < DEPTH {
                            let i = order[next];
                            let (s, t) = pairs[i];
                            let id = client.send(&Request::Query { s, t }).unwrap();
                            sent.push_back((id, i));
                            next += 1;
                        }
                        client.flush().unwrap();
                        let (rid, resp) = client.recv().unwrap();
                        let (id, i) = sent.pop_front().unwrap();
                        assert_eq!(rid, id, "{engine}: responses out of order");
                        assert_eq!(
                            resp,
                            Response::Distance(truth[i]),
                            "{engine}: client {c} pair {i} diverged from in-process"
                        );
                    }
                });
            }
        });

        // Batches through a pool agree too.
        let pool = ClientPool::connect(addr, 3).unwrap();
        assert_eq!(pool.distance_batch(&pairs).unwrap(), truth, "{engine}");

        let stats = server.shutdown();
        assert_eq!(stats.errors, 0, "{engine}");
        assert_eq!(
            stats.queries,
            4 * pairs.len() as u64 + pairs.len() as u64,
            "{engine}: query counter missed traffic"
        );
        assert!(stats.latency.count() == stats.queries, "{engine}");
        assert!(stats.latency.p99() >= stats.latency.p50(), "{engine}");
    }
}

/// A gate that lets the test hold a server-side query mid-flight (same
/// instrument as `tests/serve.rs`).
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
}

#[derive(Default)]
struct GateState {
    entered: bool,
    released: bool,
}

impl Gate {
    fn new() -> Self {
        Self {
            state: Mutex::new(GateState::default()),
            cv: Condvar::new(),
        }
    }

    fn pass(&self) {
        let mut st = self.state.lock().unwrap();
        st.entered = true;
        self.cv.notify_all();
        while !st.released {
            st = self.cv.wait(st).unwrap();
        }
    }

    fn wait_entered(&self) {
        let mut st = self.state.lock().unwrap();
        while !st.entered {
            st = self.cv.wait(st).unwrap();
        }
    }

    fn release(&self) {
        let mut st = self.state.lock().unwrap();
        st.released = true;
        self.cv.notify_all();
    }
}

struct GatedOracle {
    inner: IsLabelIndex,
    gate: Arc<Gate>,
}

impl DistanceOracle for GatedOracle {
    fn engine_name(&self) -> &'static str {
        "gated-islabel"
    }

    fn num_vertices(&self) -> usize {
        DistanceOracle::num_vertices(&self.inner)
    }

    fn index_bytes(&self) -> usize {
        self.inner.index_bytes()
    }

    fn try_distance(&self, s: VertexId, t: VertexId) -> Result<Option<Dist>, QueryError> {
        self.gate.pass();
        self.inner.try_distance(s, t)
    }

    fn session(&self) -> Box<dyn QuerySession + '_> {
        Box::new(GatedSession { oracle: self })
    }
}

struct GatedSession<'a> {
    oracle: &'a GatedOracle,
}

impl QuerySession for GatedSession<'_> {
    fn engine_name(&self) -> &'static str {
        "gated-islabel"
    }

    fn distance(&mut self, s: VertexId, t: VertexId) -> Result<Option<Dist>, QueryError> {
        self.oracle.try_distance(s, t)
    }
}

fn line_index(weight: u32) -> IsLabelIndex {
    let mut b = GraphBuilder::new(3);
    b.add_edge(0, 1, weight);
    b.add_edge(1, 2, weight);
    IsLabelIndex::build(&b.build(), BuildConfig::default())
}

/// The end-to-end Reload contract: an admin connection hot-swaps the
/// served index from a persisted artifact while another connection is
/// *inside* a query — that query finishes on the generation it pinned,
/// and the same connection's next query sees the new generation.
#[test]
fn wire_reload_swaps_while_in_flight_queries_finish_on_their_generation() {
    let artifact =
        std::env::temp_dir().join(format!("islabel-net-reload-{}.islx", std::process::id()));
    try_save_index_to_path(&line_index(1), &artifact).unwrap(); // dist(0,2) = 2

    let gate = Arc::new(Gate::new());
    let gated = GatedOracle {
        inner: line_index(5), // generation 0: dist(0, 2) = 10
        gate: Arc::clone(&gate),
    };
    let server =
        DistanceServer::start(Arc::new(gated), "127.0.0.1:0", NetConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut querier = DistanceClient::connect(addr).unwrap();
    let mut admin = DistanceClient::connect(addr).unwrap();

    let in_flight = std::thread::spawn(move || {
        let d = querier.distance(0, 2).unwrap();
        (d, querier)
    });
    // The server's reader for `querier` is now provably inside the query,
    // holding its generation-0 pin.
    gate.wait_entered();

    let (version, num_vertices) = admin.reload(artifact.to_str().unwrap()).unwrap();
    assert_eq!(version, 1);
    assert_eq!(num_vertices, 3);
    assert_eq!(server.handle().version(), 1);

    // Release the gated query: it must answer from generation 0.
    gate.release();
    let (d, mut querier) = in_flight.join().unwrap();
    assert_eq!(d, Some(10), "in-flight query escaped its pinned snapshot");

    // The same connection's next query runs on the reloaded snapshot
    // (the reader re-pins after observing the swap).
    assert_eq!(querier.distance(0, 2).unwrap(), Some(2));
    // And the admin connection sees it too.
    assert_eq!(admin.distance(0, 2).unwrap(), Some(2));

    let stats = admin.stats().unwrap();
    assert_eq!(stats.snapshot_version, 1);
    assert_eq!(
        stats.engine, "islabel-mmap",
        "a reloaded pristine v3 artifact is served zero-copy off the mapped file"
    );

    server.shutdown();
    std::fs::remove_file(&artifact).ok();
}

/// Regression: an *idle* connection used to hold its snapshot pin until
/// the client next spoke, keeping a retired index's memory alive
/// indefinitely after a hot swap. The reader's read-timeout tick
/// ([`NetConfig::idle_tick`]) must drop the retired pin within a tick,
/// with no traffic from the client.
#[test]
fn idle_connection_releases_retired_snapshot_within_a_tick() {
    let first: SharedOracle = Arc::new(line_index(5)); // dist(0, 2) = 10
    let observer = Arc::clone(&first);
    let server = DistanceServer::start(
        first,
        "127.0.0.1:0",
        NetConfig {
            idle_tick: Some(Duration::from_millis(30)),
            ..NetConfig::default()
        },
    )
    .unwrap();

    let mut idle = DistanceClient::connect(server.local_addr()).unwrap();
    assert_eq!(idle.distance(0, 2).unwrap(), Some(10)); // pins generation 0

    // Hot-swap while the connection sits silent; retire our own pin too.
    drop(server.handle().swap_oracle(line_index(1)));

    // Without a single byte from the client, the idle tick must release
    // the generation-0 oracle: our observer Arc becomes the last owner.
    let deadline = Instant::now() + Duration::from_secs(5);
    while Arc::strong_count(&observer) > 1 {
        assert!(
            Instant::now() < deadline,
            "idle connection still pins the retired snapshot after 5s"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // The same silent connection answers its next query on the new
    // generation (it already re-pinned during the tick).
    assert_eq!(idle.distance(0, 2).unwrap(), Some(2));
    server.shutdown();
}

/// With `NetConfig::admin_token` set, admin opcodes require the token
/// presented in the hello (stable code 21 otherwise) while query traffic
/// stays open; a wrong token connects but stays unprivileged.
#[test]
fn admin_token_gates_admin_opcodes_but_not_queries() {
    let server = DistanceServer::start(
        Arc::new(line_index(3)),
        "127.0.0.1:0",
        NetConfig {
            admin_token: Some("sesame".into()),
            ..NetConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let mut anon = DistanceClient::connect(addr).unwrap();
    assert_eq!(anon.distance(0, 2).unwrap(), Some(6), "queries stay open");
    for err in [
        anon.reload("whatever.islx").unwrap_err(),
        anon.compact().unwrap_err(),
        anon.shutdown_server().unwrap_err(),
    ] {
        assert!(
            matches!(&err, NetError::Remote(WireError::AdminDenied)),
            "{err:?}"
        );
    }
    assert_eq!(server.handle().version(), 0, "denied admin had no effect");
    assert_eq!(anon.distance(0, 2).unwrap(), Some(6), "connection survives");

    let mut wrong = DistanceClient::connect_with_token(addr, "guess").unwrap();
    assert!(matches!(
        wrong.shutdown_server().unwrap_err(),
        NetError::Remote(WireError::AdminDenied)
    ));

    let mut admin = DistanceClient::connect_with_token(addr, "sesame").unwrap();
    assert_eq!(admin.distance(0, 2).unwrap(), Some(6));
    // The token opens the gate; without a coordinator configured the
    // compaction itself fails typed — not a denial.
    assert!(matches!(
        admin.compact().unwrap_err(),
        NetError::Remote(WireError::CompactFailed { .. })
    ));
    admin.shutdown_server().unwrap();
    server.shutdown();
}

/// A reload of a nonexistent artifact is a frame-scoped typed error; the
/// connection and the served snapshot are untouched.
#[test]
fn failed_reload_keeps_generation_and_connection() {
    let server =
        DistanceServer::start(Arc::new(line_index(4)), "127.0.0.1:0", NetConfig::default())
            .unwrap();
    let mut client = DistanceClient::connect(server.local_addr()).unwrap();
    let err = client
        .reload("/nonexistent/definitely-missing.islx")
        .unwrap_err();
    assert!(
        matches!(&err, NetError::Remote(WireError::ReloadFailed { .. })),
        "{err:?}"
    );
    assert_eq!(server.handle().version(), 0);
    assert_eq!(client.distance(0, 2).unwrap(), Some(8));
    server.shutdown();
}

/// Typed query errors round-trip the wire: the remote error maps back to
/// the exact in-process `QueryError`.
#[test]
fn query_errors_round_trip_the_wire() {
    let server =
        DistanceServer::start(Arc::new(line_index(2)), "127.0.0.1:0", NetConfig::default())
            .unwrap();
    let mut client = DistanceClient::connect(server.local_addr()).unwrap();
    let err = client.distance(0, 999).unwrap_err();
    assert_eq!(
        err.as_query_error(),
        Some(QueryError::VertexOutOfRange {
            vertex: 999,
            universe: 3
        })
    );
    // A failing pair fails a batch with the same round-tripped error.
    let err = client.distance_batch(&[(0, 1), (7, 0)]).unwrap_err();
    assert_eq!(
        err.as_query_error(),
        Some(QueryError::VertexOutOfRange {
            vertex: 7,
            universe: 3
        })
    );
    // The connection is still healthy.
    assert_eq!(client.distance(0, 2).unwrap(), Some(4));
    let stats = server.shutdown();
    assert_eq!(stats.errors, 2);
}

/// Hand-rolled socket speaking the protocol directly: a malformed body in
/// a well-formed frame is answered with a `Malformed` error and the
/// connection keeps serving; an oversized length prefix is rejected and
/// the connection closed — but the server survives both for other
/// clients.
#[test]
fn malformed_frames_error_without_dropping_the_connection() {
    let server =
        DistanceServer::start(Arc::new(line_index(3)), "127.0.0.1:0", NetConfig::default())
            .unwrap();
    let addr = server.local_addr();

    let mut raw = TcpStream::connect(addr).unwrap();
    let mut hello = Vec::new();
    protocol::encode_hello(&mut hello);
    raw.write_all(&hello).unwrap();
    let mut server_hello = [0u8; protocol::HELLO_LEN];
    raw.read_exact(&mut server_hello).unwrap();
    assert_eq!(protocol::decode_hello(&server_hello), Ok(protocol::VERSION));

    let read_one = |raw: &mut TcpStream| -> (u64, Response) {
        let mut buf = Vec::new();
        assert!(protocol::read_frame(raw, 1 << 20, &mut buf).unwrap());
        protocol::decode_response(&buf).unwrap()
    };

    // 1. A garbage body (unknown opcode) in a valid frame: answered with
    //    Malformed, carrying the id we sent.
    let mut body = Vec::new();
    bytes::BufMut::put_u64_le(&mut body, 77u64);
    bytes::BufMut::put_u8(&mut body, 0xEE);
    let mut framed = Vec::new();
    protocol::encode_frame(&body, &mut framed);
    raw.write_all(&framed).unwrap();
    let (id, resp) = read_one(&mut raw);
    assert_eq!(id, 77);
    assert!(
        matches!(resp, Response::Error(WireError::Malformed { .. })),
        "{resp:?}"
    );

    // 2. The *same* connection still answers real queries.
    let mut body = Vec::new();
    protocol::encode_request(78, &Request::Query { s: 0, t: 2 }, &mut body);
    let mut framed = Vec::new();
    protocol::encode_frame(&body, &mut framed);
    raw.write_all(&framed).unwrap();
    let (id, resp) = read_one(&mut raw);
    assert_eq!((id, resp), (78, Response::Distance(Some(6))));

    // 3. A truncated frame (half a body, then close) must not take the
    //    server down.
    let mut truncating = TcpStream::connect(addr).unwrap();
    truncating.write_all(&hello).unwrap();
    truncating.read_exact(&mut server_hello).unwrap();
    truncating.write_all(&[200, 0, 0, 0, 1, 2, 3]).unwrap();
    drop(truncating);

    // 4. An oversized length prefix is answered with TooLarge and the
    //    connection is closed (the stream cannot be resynchronized).
    let mut lying = TcpStream::connect(addr).unwrap();
    lying.write_all(&hello).unwrap();
    lying.read_exact(&mut server_hello).unwrap();
    lying.write_all(&u32::MAX.to_le_bytes()).unwrap();
    let (_, resp) = read_one(&mut lying);
    assert!(
        matches!(resp, Response::Error(WireError::TooLarge { .. })),
        "{resp:?}"
    );
    let mut scratch = [0u8; 1];
    assert_eq!(
        lying.read(&mut scratch).unwrap(),
        0,
        "connection stayed open"
    );

    // 5. A client with a bad magic is closed before any frame.
    let mut imposter = TcpStream::connect(addr).unwrap();
    imposter.write_all(b"HTTP/1.1").unwrap();
    let mut sink = Vec::new();
    // The server sends its hello (so real-but-mismatched peers can
    // diagnose) and closes; nothing else arrives.
    imposter.read_to_end(&mut sink).unwrap();
    assert!(sink.len() <= protocol::HELLO_LEN);

    // The original well-behaved connection *still* works.
    let mut body = Vec::new();
    protocol::encode_request(79, &Request::Ping, &mut body);
    let mut framed = Vec::new();
    protocol::encode_frame(&body, &mut framed);
    raw.write_all(&framed).unwrap();
    let (id, resp) = read_one(&mut raw);
    assert_eq!((id, resp), (79, Response::Pong));

    let stats = server.shutdown();
    assert!(stats.errors >= 2, "{stats:?}");
}

/// Batches over the configured pair cap are refused with `TooLarge`
/// without killing the connection.
#[test]
fn oversized_batches_are_refused_frame_scoped() {
    let server = DistanceServer::start(
        Arc::new(line_index(2)),
        "127.0.0.1:0",
        NetConfig {
            max_batch_pairs: 4,
            ..NetConfig::default()
        },
    )
    .unwrap();
    let mut client = DistanceClient::connect(server.local_addr()).unwrap();
    let err = client.distance_batch(&[(0, 1); 5]).unwrap_err();
    assert!(
        matches!(&err, NetError::Remote(WireError::TooLarge { .. })),
        "{err:?}"
    );
    assert_eq!(
        client.distance_batch(&[(0, 1); 4]).unwrap(),
        vec![Some(2); 4]
    );
    server.shutdown();
}

/// Once a drain has been requested, work-carrying opcodes are refused
/// with the documented `ShuttingDown` code while Ping/Stats stay
/// answerable, and the refusal round-trips as a typed remote error.
#[test]
fn draining_server_refuses_queries_with_shutting_down() {
    let server =
        DistanceServer::start(Arc::new(line_index(2)), "127.0.0.1:0", NetConfig::default())
            .unwrap();
    let mut client = DistanceClient::connect(server.local_addr()).unwrap();
    assert_eq!(client.distance(0, 2).unwrap(), Some(4));

    server.request_shutdown();
    let err = client.distance(0, 2).unwrap_err();
    assert!(
        matches!(&err, NetError::Remote(WireError::ShuttingDown)),
        "{err:?}"
    );
    // Observability opcodes keep working so clients can see the drain.
    client.ping().unwrap();
    assert!(client.stats().unwrap().queries >= 1);
    server.shutdown();
}

/// A request that would exceed the frame cap is rejected locally, before
/// anything hits the wire, with a typed error instead of a dead socket.
#[test]
fn oversized_outbound_requests_are_rejected_client_side() {
    let server =
        DistanceServer::start(Arc::new(line_index(2)), "127.0.0.1:0", NetConfig::default())
            .unwrap();
    let mut client = DistanceClient::connect(server.local_addr()).unwrap();
    let huge: Vec<(VertexId, VertexId)> = vec![(0, 1); 200_000]; // > 1 MiB encoded
    let err = client.distance_batch(&huge).unwrap_err();
    assert!(matches!(&err, NetError::FrameTooLarge { .. }), "{err:?}");
    // The connection is untouched: nothing was sent.
    assert_eq!(client.distance(0, 2).unwrap(), Some(4));
    server.shutdown();
}

/// The wire `Stats` opcode reports real percentiles and counters.
#[test]
fn wire_stats_report_latency_percentiles() {
    let g = erdos_renyi_gnm(150, 400, WeightModel::UniformRange(1, 6), 0x33);
    let index = IsLabelIndex::build(&g, BuildConfig::default());
    let server =
        DistanceServer::start(Arc::new(index), "127.0.0.1:0", NetConfig::default()).unwrap();
    let mut client = DistanceClient::connect(server.local_addr()).unwrap();
    client.ping().unwrap();
    for &(s, t) in pair_mix(150, 50).iter() {
        client.distance(s, t).unwrap();
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.engine, "islabel");
    assert_eq!(stats.num_vertices, 150);
    assert_eq!(stats.queries, 50);
    assert_eq!(stats.connections_active, 1);
    // The wire fields are µs-truncated (0 is legitimate for sub-µs
    // queries on a fast machine); the nanosecond-precision histogram
    // behind them is what must prove real observations.
    assert!(stats.p99_us >= stats.p50_us);
    let server_stats = server.shutdown();
    assert_eq!(server_stats.latency.count(), 50);
    assert!(server_stats.latency.p50() > std::time::Duration::ZERO);
}

/// The wire `Stats` payload now carries the full latency histogram, so a
/// remote client derives the same percentiles the server computes — not
/// just the µs-truncated scalars.
#[test]
fn wire_stats_carry_full_histogram_buckets() {
    let g = erdos_renyi_gnm(120, 300, WeightModel::UniformRange(1, 6), 0x44);
    let index = IsLabelIndex::build(&g, BuildConfig::default());
    let server =
        DistanceServer::start(Arc::new(index), "127.0.0.1:0", NetConfig::default()).unwrap();
    let mut client = DistanceClient::connect(server.local_addr()).unwrap();
    for &(s, t) in pair_mix(120, 40).iter() {
        client.distance(s, t).unwrap();
    }
    let stats = client.stats().unwrap();
    let hist = stats.latency.expect("histogram tail present");
    assert_eq!(hist.count(), 40);
    assert!(hist.sum_nanos() > 0);
    // The scalar fields are the histogram's own percentiles, µs-truncated.
    assert_eq!(stats.p50_us, hist.p50().as_micros() as u64);
    assert_eq!(stats.p99_us, hist.p99().as_micros() as u64);
    server.shutdown();
}

/// The `Metrics` opcode (0x08) streams non-empty Prometheus exposition
/// text with the registered families over a live socket — and a draining
/// server refuses it like the other work-carrying opcodes.
#[test]
fn metrics_opcode_round_trips_and_is_refused_while_draining() {
    let g = erdos_renyi_gnm(100, 260, WeightModel::UniformRange(1, 5), 0x55);
    let index = IsLabelIndex::build(&g, BuildConfig::default());
    let server =
        DistanceServer::start(Arc::new(index), "127.0.0.1:0", NetConfig::default()).unwrap();
    let mut client = DistanceClient::connect(server.local_addr()).unwrap();
    for &(s, t) in pair_mix(100, 20).iter() {
        client.distance(s, t).unwrap();
    }

    let text = client.metrics().unwrap();
    assert!(!text.is_empty());
    // The server's own counter families are registered and typed.
    assert!(
        text.contains("# TYPE islabel_net_queries_total counter"),
        "{text}"
    );
    assert!(text.contains("islabel_net_connections_active"), "{text}");
    assert!(
        text.contains("# TYPE islabel_net_query_latency_seconds histogram"),
        "{text}"
    );
    // The per-phase query trace re-emitted by the frame loop shows up
    // with a nonzero traced-query count.
    let traced = text
        .lines()
        .find(|l| l.starts_with("islabel_query_traced_total"))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse::<u64>().ok())
        .expect("traced counter rendered");
    assert!(traced >= 20, "{traced}");

    server.request_shutdown();
    let err = client.metrics().unwrap_err();
    assert!(
        matches!(&err, NetError::Remote(WireError::ShuttingDown)),
        "{err:?}"
    );
    server.shutdown();
}
