//! Dynamic-update integration tests (Section 8.3): long interleaved update
//! sequences, the upper-bound contract, and rebuild reconciliation.

use islabel::core::reference::dijkstra_p2p;
use islabel::core::{BuildConfig, IsLabelIndex};
use islabel::graph::generators::{barabasi_albert, WeightModel};
use islabel::VertexId;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// After arbitrary updates (no deletions of peeled vertices), answers must
/// be upper bounds of the truth on the materialized current graph; after
/// rebuild they must be exact.
#[test]
fn long_update_sequence_upper_bound_then_exact() {
    let g = barabasi_albert(300, 3, WeightModel::UniformRange(1, 5), 17);
    let mut index = IsLabelIndex::build(&g, BuildConfig::default());
    let mut rng = StdRng::seed_from_u64(5);

    // 30 mixed updates: vertex inserts (attached anywhere), edge inserts,
    // and deletions restricted to G_k / inserted vertices (exact cases).
    for step in 0..30 {
        match step % 3 {
            0 => {
                let a = rng.gen_range(0..index.num_vertices() as VertexId);
                let b = rng.gen_range(0..index.num_vertices() as VertexId);
                let edges: Vec<(VertexId, u32)> = [a, b]
                    .iter()
                    .filter(|&&v| !deleted(&index, v))
                    .map(|&v| (v, rng.gen_range(1..5)))
                    .collect();
                if !edges.is_empty() {
                    index.insert_vertex(&edges);
                }
            }
            1 => {
                let a = rng.gen_range(0..index.num_vertices() as VertexId);
                let b = rng.gen_range(0..index.num_vertices() as VertexId);
                if a != b && !deleted(&index, a) && !deleted(&index, b) {
                    index.insert_edge(a, b, rng.gen_range(1..8));
                }
            }
            _ => {
                // Delete only residual-graph members: stays exact per the
                // documented semantics.
                let members = index.hierarchy().gk_members().to_vec();
                if let Some(&v) = members.get(rng.gen_range(0..members.len().max(1))) {
                    if !deleted(&index, v) {
                        index.delete_vertex(v);
                    }
                }
            }
        }
    }
    assert!(!index.is_stale(), "no peeled vertex was deleted");

    let current = index.current_graph();
    let mut upper_bound_hits = 0;
    for i in 0..150u32 {
        let s = (i * 37) % current.num_vertices() as VertexId;
        let t = (i * 101 + 3) % current.num_vertices() as VertexId;
        if deleted(&index, s) || deleted(&index, t) {
            assert_eq!(index.distance(s, t), None, "deleted endpoint ({s}, {t})");
            continue;
        }
        let truth = dijkstra_p2p(&current, s, t);
        match (index.distance(s, t), truth) {
            (Some(got), Some(want)) => {
                assert!(got >= want, "({s}, {t}): {got} < true {want}");
                upper_bound_hits += 1;
            }
            (Some(_), None) => panic!("({s}, {t}): distance reported for unreachable pair"),
            _ => {}
        }
    }
    assert!(
        upper_bound_hits > 0,
        "workload produced no comparable queries"
    );

    index.rebuild();
    let current = index.current_graph();
    for i in 0..150u32 {
        let s = (i * 37) % current.num_vertices() as VertexId;
        let t = (i * 101 + 3) % current.num_vertices() as VertexId;
        if deleted_after_rebuild(&current, s) || deleted_after_rebuild(&current, t) {
            continue;
        }
        assert_eq!(
            index.distance(s, t),
            dijkstra_p2p(&current, s, t),
            "post-rebuild ({s}, {t})"
        );
    }
}

fn deleted(index: &IsLabelIndex, v: VertexId) -> bool {
    index.distance(v, v).is_none()
}

fn deleted_after_rebuild(g: &islabel::CsrGraph, v: VertexId) -> bool {
    // After rebuild, tombstoned vertices survive as isolated ids.
    g.degree(v) == 0
}

#[test]
fn growth_only_workload_stays_connected_and_exact_for_gk_chains() {
    // Simulates a stream of new arrivals each linking to a residual vertex:
    // queries among the new vertices go exclusively through G_k and remain
    // exact without any rebuild.
    let g = barabasi_albert(200, 3, WeightModel::Unit, 3);
    let mut index = IsLabelIndex::build(&g, BuildConfig::default());
    let anchor = index.hierarchy().gk_members()[0];
    let mut ids = vec![anchor];
    for i in 0..15 {
        let parent = ids[i / 2];
        let v = index.insert_vertex(&[(parent, 1)]);
        ids.push(v);
    }
    let current = index.current_graph();
    for (i, &a) in ids.iter().enumerate() {
        for &b in ids.iter().skip(i) {
            assert_eq!(
                index.distance(a, b),
                dijkstra_p2p(&current, a, b),
                "({a}, {b})"
            );
        }
    }
}

#[test]
fn stale_flag_reports_and_clears() {
    let g = barabasi_albert(120, 2, WeightModel::Unit, 9);
    let mut index = IsLabelIndex::build(&g, BuildConfig::default());
    let peeled = (0..120u32).find(|&v| !index.is_in_gk(v)).unwrap();
    let other = if peeled == 0 { 1 } else { 0 };
    assert!(!index.is_stale());
    index.delete_vertex(peeled);
    assert!(index.is_stale());
    index.rebuild();
    assert!(!index.is_stale());
    // The deleted vertex stays deleted (isolated) through the rebuild.
    assert_eq!(index.distance(peeled, other), None);
}
