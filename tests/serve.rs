//! Concurrent-serving correctness: many threads hammering one
//! [`Snapshot`] through a [`QueryService`], checked against the reference
//! Dijkstra oracle, plus hot-swap semantics — in-flight queries finish on
//! the snapshot they started on, new queries see the new index.

use islabel::core::reference::dijkstra_p2p;
use islabel::graph::generators::{erdos_renyi_gnm, WeightModel};
use islabel::prelude::*;
use std::sync::{Arc, Condvar, Mutex};

fn pair_mix(n: u32, count: u32) -> Vec<(VertexId, VertexId)> {
    (0..count)
        .map(|i| ((i * 13) % n, (i * 37 + 5) % n))
        .collect()
}

/// N client threads hammer one snapshot of every engine through the
/// service; every answer must equal the reference Dijkstra on the base
/// graph. This is the concurrent conformance check of the serving layer:
/// per-shard sessions, batch fan-out and result collection may not distort
/// a single distance under contention.
#[test]
fn all_engines_stay_exact_under_concurrent_hammering() {
    let g = erdos_renyi_gnm(250, 600, WeightModel::UniformRange(1, 9), 0xC0);
    let pairs = pair_mix(250, 120);
    let truth: Vec<Option<Dist>> = pairs.iter().map(|&(s, t)| dijkstra_p2p(&g, s, t)).collect();

    for engine in Engine::ALL {
        let oracle: SharedOracle =
            Arc::from(build_oracle(engine, &g, &BuildConfig::default()).unwrap());
        let service = QueryService::start(
            Arc::clone(&oracle),
            ServeConfig {
                shards: 4,
                queue_capacity: 8, // small on purpose: exercise backpressure
            },
        );
        let clients = 6;
        std::thread::scope(|scope| {
            for c in 0..clients {
                let service = &service;
                let pairs = &pairs;
                let truth = &truth;
                scope.spawn(move || {
                    // Each client walks the mix from a different offset in
                    // small batches, so shards interleave different batches.
                    for start in 0..pairs.len() {
                        let i = (start + c * 17) % pairs.len();
                        let chunk_end = (i + 8).min(pairs.len());
                        let got = service.submit(&pairs[i..chunk_end]).wait().unwrap();
                        assert_eq!(
                            got,
                            truth[i..chunk_end],
                            "{engine}: client {c} chunk {i}..{chunk_end}"
                        );
                    }
                });
            }
        });
        let stats = service.shutdown();
        assert_eq!(stats.total_errors(), 0, "{engine}");
        assert!(
            stats.shards.iter().all(|s| s.queries > 0),
            "{engine}: an idle shard means fan-out is broken: {stats:?}"
        );
    }
}

/// A gate that lets the test observe a worker *inside* a query and hold it
/// there: the first gated query signals entry and blocks until released;
/// everything after the release passes through untouched.
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
}

#[derive(Default)]
struct GateState {
    entered: bool,
    released: bool,
}

impl Gate {
    fn new() -> Self {
        Self {
            state: Mutex::new(GateState::default()),
            cv: Condvar::new(),
        }
    }

    fn pass(&self) {
        let mut st = self.state.lock().unwrap();
        st.entered = true;
        self.cv.notify_all();
        while !st.released {
            st = self.cv.wait(st).unwrap();
        }
    }

    fn wait_entered(&self) {
        let mut st = self.state.lock().unwrap();
        while !st.entered {
            st = self.cv.wait(st).unwrap();
        }
    }

    fn release(&self) {
        let mut st = self.state.lock().unwrap();
        st.released = true;
        self.cv.notify_all();
    }
}

/// An engine wrapper whose queries stop at the gate — the instrument for
/// deterministically racing a hot swap against an in-flight query.
struct GatedOracle {
    inner: IsLabelIndex,
    gate: Arc<Gate>,
}

impl DistanceOracle for GatedOracle {
    fn engine_name(&self) -> &'static str {
        "gated-islabel"
    }

    fn num_vertices(&self) -> usize {
        DistanceOracle::num_vertices(&self.inner)
    }

    fn index_bytes(&self) -> usize {
        self.inner.index_bytes()
    }

    fn try_distance(&self, s: VertexId, t: VertexId) -> Result<Option<Dist>, QueryError> {
        self.gate.pass();
        self.inner.try_distance(s, t)
    }

    fn session(&self) -> Box<dyn QuerySession + '_> {
        Box::new(GatedSession { oracle: self })
    }
}

struct GatedSession<'a> {
    oracle: &'a GatedOracle,
}

impl QuerySession for GatedSession<'_> {
    fn engine_name(&self) -> &'static str {
        "gated-islabel"
    }

    fn distance(&mut self, s: VertexId, t: VertexId) -> Result<Option<Dist>, QueryError> {
        self.oracle.try_distance(s, t)
    }
}

fn line_index(weight: u32) -> IsLabelIndex {
    let mut b = GraphBuilder::new(3);
    b.add_edge(0, 1, weight);
    b.add_edge(1, 2, weight);
    IsLabelIndex::build(&b.build(), BuildConfig::default())
}

/// The hot-swap contract, deterministically: a query already being
/// processed when the swap lands finishes on the *old* snapshot; the next
/// query is answered by the *new* one.
#[test]
fn in_flight_queries_finish_on_the_old_snapshot() {
    let gate = Arc::new(Gate::new());
    let old = GatedOracle {
        inner: line_index(5), // dist(0, 2) = 10
        gate: Arc::clone(&gate),
    };
    let service = QueryService::start(
        Arc::new(old),
        ServeConfig {
            shards: 1, // single worker: the gated query is the in-flight one
            queue_capacity: 4,
        },
    );

    let ticket = service.submit(&[(0, 2)]);
    // The worker is now provably inside the query, on generation 0.
    gate.wait_entered();

    // Swap to an index that answers differently (dist(0, 2) = 2).
    let retired = service.swap_oracle(line_index(1));
    assert_eq!(retired.version(), 0);
    assert_eq!(service.handle().version(), 1);

    // Queue a second query *behind* the blocked one, then let the worker go.
    let after = service.submit(&[(0, 2)]);
    gate.release();

    // The in-flight query answered from the old snapshot...
    assert_eq!(ticket.wait(), Ok(vec![Some(10)]));
    // ... and the queued one from the new snapshot, because the worker
    // observed the swap and refreshed its session between jobs.
    assert_eq!(after.wait(), Ok(vec![Some(2)]));

    let stats = service.shutdown();
    assert_eq!(stats.shards[0].swaps_observed, 1, "{stats:?}");
}

/// Swaps racing a live workload: every answer must be coherent with *some*
/// generation (never a mix, never a crash), and the workload drains clean.
#[test]
fn answers_stay_generation_coherent_under_swap_storm() {
    let g = erdos_renyi_gnm(150, 400, WeightModel::UniformRange(1, 5), 0xD1);
    let pairs = pair_mix(150, 60);
    let truth1: Vec<Option<Dist>> = pairs.iter().map(|&(s, t)| dijkstra_p2p(&g, s, t)).collect();
    // Generation 2 = same topology, every weight tripled: its truth is
    // exactly 3x, so a per-query coherence check needs no second Dijkstra.
    let g3 = {
        let mut b = GraphBuilder::new(150);
        for (u, v, w) in g.edge_list() {
            b.add_edge(u, v, w * 3);
        }
        b.build()
    };

    let make = |tripled: bool| -> IsLabelIndex {
        IsLabelIndex::build(if tripled { &g3 } else { &g }, BuildConfig::default())
    };
    let service = QueryService::start(Arc::new(make(false)), ServeConfig::with_shards(3));
    std::thread::scope(|scope| {
        let swapper = scope.spawn(|| {
            for gen in 0..12u32 {
                service.swap_oracle(make(gen % 2 == 0));
                std::thread::yield_now();
            }
        });
        for c in 0..4 {
            let service = &service;
            let pairs = &pairs;
            let truth1 = &truth1;
            scope.spawn(move || {
                for round in 0..10 {
                    for (i, &(s, t)) in pairs.iter().enumerate() {
                        let got = service.query(s, t).unwrap();
                        let t1 = truth1[i];
                        let t3 = t1.map(|d| d * 3);
                        assert!(
                            got == t1 || got == t3,
                            "client {c} round {round} ({s}, {t}): {got:?} matches no generation"
                        );
                    }
                }
            });
        }
        swapper.join().unwrap();
    });
    // After the storm settles the service answers from the last generation
    // (gen 11 is odd, so the final swap installed the untripled graph).
    assert_eq!(service.handle().version(), 12);
    for (i, &(s, t)) in pairs.iter().enumerate() {
        assert_eq!(service.query(s, t).unwrap(), truth1[i]);
    }
    service.shutdown();
}
