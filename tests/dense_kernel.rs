//! Conformance suite for the dense search kernel (`islabel_core::dense`).
//!
//! The hashmap kernel of `islabel_core::query` is kept as the reference
//! implementation; this suite drives both kernels over the same indexes and
//! asserts **bit-identical** `(dist, meeting, settled)` outcomes across
//! ER / BA / grid graphs, both IS-LABEL directions, every oracle engine,
//! and dynamic-update overlays (which route through the sparse fallback).

use islabel::core::dense::{dense_bi_dijkstra, globalize_outcome, DenseScratch};
use islabel::core::label::LabelView;
use islabel::core::query::{
    intersect_min, label_bi_dijkstra_directed_in, label_bi_dijkstra_in, GkGraph, SearchOutcome,
    SearchParams, SearchScratch,
};
use islabel::core::reference::dijkstra_p2p;
use islabel::graph::generators::{barabasi_albert, erdos_renyi_gnm, grid2d, WeightModel};
use islabel::prelude::*;

fn test_graphs() -> Vec<(&'static str, CsrGraph)> {
    vec![
        (
            "er",
            erdos_renyi_gnm(400, 1100, WeightModel::UniformRange(1, 9), 11),
        ),
        (
            "ba",
            barabasi_albert(400, 3, WeightModel::UniformRange(1, 5), 7),
        ),
        ("grid", grid2d(20, 20, WeightModel::UniformRange(1, 4), 3)),
    ]
}

fn query_pairs(n: u32, count: u32) -> impl Iterator<Item = (VertexId, VertexId)> {
    (0..count).map(move |i| ((i * 7) % n, (i * 13 + 5) % n))
}

/// Runs the reference hashmap kernel for `(s, t)` over a pristine index.
fn sparse_outcome(
    index: &IsLabelIndex,
    s: VertexId,
    t: VertexId,
    scratch: &mut SearchScratch,
) -> SearchOutcome {
    let h = index.hierarchy();
    let ls = index.labels().label(s);
    let lt = index.labels().label(t);
    let (mu0, witness) = intersect_min(ls, lt);
    let seeds = |l: LabelView<'_>| -> Vec<(VertexId, Dist)> {
        l.iter().filter(|&(a, _)| h.is_in_gk(a)).collect()
    };
    label_bi_dijkstra_in(
        h.gk(),
        SearchParams {
            fseeds: &seeds(ls),
            rseeds: &seeds(lt),
            mu0,
            mu0_witness: witness,
            track_paths: false,
        },
        scratch,
    )
}

#[test]
fn dense_kernel_matches_hashmap_kernel_bit_for_bit() {
    for (name, g) in test_graphs() {
        for config in [
            BuildConfig::default(),
            BuildConfig::fixed_k(3),
            BuildConfig::sigma(0.5),
        ] {
            let index = IsLabelIndex::build(&g, config);
            let mut session = index.session();
            let mut sparse = SearchScratch::new();
            for (s, t) in query_pairs(g.num_vertices() as u32, 120) {
                if s == t {
                    continue;
                }
                let reference = sparse_outcome(&index, s, t, &mut sparse);
                let dense = session.search_outcome(s, t).unwrap();
                assert_eq!(dense.dist, reference.dist, "{name} {config:?} ({s}, {t})");
                assert_eq!(
                    dense.meeting, reference.meeting,
                    "{name} {config:?} ({s}, {t})"
                );
                assert_eq!(
                    dense.settled, reference.settled,
                    "{name} {config:?} ({s}, {t})"
                );
                // And both agree with ground truth.
                let truth = dijkstra_p2p(&g, s, t).unwrap_or(INF);
                assert_eq!(dense.dist, truth, "{name} truth ({s}, {t})");
            }
        }
    }
}

#[test]
fn dense_kernel_matches_reference_on_directed_graphs() {
    // Directed conformance: the session (dense kernel over fwd/transposed
    // compact CSRs) against the sparse kernel over the full-universe
    // residual digraph, plus directed Dijkstra ground truth.
    struct Fwd<'a>(&'a CsrDigraph);
    impl GkGraph for Fwd<'_> {
        fn edges_of(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
            self.0.out_edges(v)
        }
    }
    struct Bwd<'a>(&'a CsrDigraph);
    impl GkGraph for Bwd<'_> {
        fn edges_of(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
            self.0.in_edges(v)
        }
    }

    let mut b = DigraphBuilder::new(300);
    let mut state = 0xD1CEu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..1200 {
        let u = (next() % 300) as VertexId;
        let v = (next() % 300) as VertexId;
        if u != v {
            b.add_arc(u, v, (next() % 6 + 1) as Weight);
        }
    }
    let g = b.build();
    let index = DiIsLabelIndex::build(&g, BuildConfig::default());
    let mut session = index.session();
    let mut sparse = SearchScratch::new();
    for (s, t) in query_pairs(300, 150) {
        let got = session.distance(s, t).unwrap();
        let (mu0, witness) = intersect_min(index.out_label(s), index.in_label(t));
        let seeds = |l: LabelView<'_>| -> Vec<(VertexId, Dist)> {
            l.iter().filter(|&(a, _)| index.is_in_gk(a)).collect()
        };
        let reference = if s == t {
            None
        } else {
            let out = label_bi_dijkstra_directed_in(
                &Fwd(index.gk()),
                &Bwd(index.gk()),
                SearchParams {
                    fseeds: &seeds(index.out_label(s)),
                    rseeds: &seeds(index.in_label(t)),
                    mu0,
                    mu0_witness: witness,
                    track_paths: false,
                },
                &mut sparse,
            );
            (out.dist < INF).then_some(out.dist)
        };
        let expect = if s == t {
            Some(0)
        } else {
            islabel::core::directed::di_dijkstra_p2p(&g, s, t)
        };
        assert_eq!(got, expect, "truth ({s}, {t})");
        if s != t {
            assert_eq!(got, reference, "kernel parity ({s}, {t})");
        }
    }
}

#[test]
fn dense_kernel_drivable_from_public_parts() {
    // The substrate accessors are enough to drive the dense kernel by hand
    // (what benches do): seeds mapped through GkIdMap, outcome globalized.
    let g = erdos_renyi_gnm(300, 800, WeightModel::UniformRange(1, 7), 23);
    let index = IsLabelIndex::build(&g, BuildConfig::default());
    let dense = index.dense_gk();
    assert_eq!(dense.ids().len(), index.hierarchy().num_gk_vertices());
    let mut scratch = DenseScratch::new(dense.ids().len());
    let mut sparse = SearchScratch::new();
    for (s, t) in query_pairs(300, 60) {
        if s == t {
            continue;
        }
        let ls = index.labels().label(s);
        let lt = index.labels().label(t);
        let (mu0, witness) = intersect_min(ls, lt);
        let seed = |l: LabelView<'_>| -> Vec<(u32, Dist)> {
            l.iter()
                .filter_map(|(a, d)| dense.ids().dense(a).map(|da| (da, d)))
                .collect()
        };
        let out = globalize_outcome(
            dense_bi_dijkstra(
                dense.fwd(),
                dense.rev(),
                &seed(ls),
                &seed(lt),
                mu0,
                witness,
                &mut scratch,
            ),
            dense.ids(),
        );
        let reference = sparse_outcome(&index, s, t, &mut sparse);
        assert_eq!(
            (out.dist, out.meeting, out.settled),
            (reference.dist, reference.meeting, reference.settled),
            "({s}, {t})"
        );
    }
}

#[test]
fn all_engines_agree_through_sessions() {
    // Every DistanceOracle engine — IS-LABEL and di-IS-LABEL on the dense
    // kernel, bidij and VC on the shared indexed heap, PLL untouched —
    // answers identically to plain Dijkstra through its session.

    for (name, g) in test_graphs() {
        let config = BuildConfig::default();
        for engine in [
            Engine::IsLabel,
            Engine::DiIsLabel,
            Engine::Pll,
            Engine::Vc,
            Engine::BiDijkstra,
        ] {
            let oracle = build_oracle(engine, &g, &config).unwrap();
            let mut session = oracle.session();
            for (s, t) in query_pairs(g.num_vertices() as u32, 80) {
                let expect = dijkstra_p2p(&g, s, t);
                assert_eq!(
                    session.distance(s, t).unwrap(),
                    expect,
                    "{name} {engine:?} ({s}, {t})"
                );
            }
        }
    }
}

#[test]
fn overlay_session_matches_hashmap_reference_after_updates() {
    // A non-pristine index serves sessions through the dense kernel over a
    // `PatchedDense` view (tail + tombstones); the one-shot `try_distance`
    // path stays on the hashmap overlay kernel. The two must agree
    // bit-for-bit on every answer, with the documented upper-bound
    // semantics, and rebuild() returns to the plain dense path (exact).
    let g = barabasi_albert(250, 3, WeightModel::UniformRange(1, 4), 31);
    let mut index = IsLabelIndex::build(&g, BuildConfig::default());
    let gk_anchor = index.hierarchy().gk_members()[0];
    let peeled = g.vertices().find(|&v| !index.is_in_gk(v)).unwrap();
    let u = index.insert_vertex(&[(gk_anchor, 2), (peeled, 1)]);
    index.insert_edge(u, gk_anchor, 5);
    let victim = index.hierarchy().gk_members()[1];
    index.delete_vertex(victim);
    assert!(index.has_updates());

    let current = index.current_graph();
    let mut session = index.session();
    for (s, t) in query_pairs(250, 60).chain([(u, gk_anchor), (u, peeled), (victim, 0)]) {
        // Session and one-shot path answer identically (both route through
        // the overlay-aware sparse kernel).
        let via_session = session.distance(s, t).unwrap();
        assert_eq!(via_session, index.try_distance(s, t).unwrap(), "({s}, {t})");
        // Upper-bound contract against the materialized graph.
        let truth = dijkstra_p2p(&current, s, t);
        match (via_session, truth) {
            (Some(got), Some(tr)) => assert!(got >= tr, "({s}, {t}): {got} < {tr}"),
            (Some(_), None) => panic!("({s}, {t}): distance for unreachable pair"),
            _ => {}
        }
    }
    drop(session);

    index.rebuild();
    let current = index.current_graph();
    let mut session = index.session();
    for (s, t) in query_pairs(250, 60) {
        assert_eq!(
            session.distance(s, t).unwrap(),
            dijkstra_p2p(&current, s, t),
            "post-rebuild ({s}, {t})"
        );
    }
}
