//! Scalar-vs-SIMD equivalence for the dispatched intersection kernels.
//!
//! The contract under test: for every [`KernelTier`] supported on this
//! host, `intersect_min_at(tier, a, b)` is **bit-identical** to the
//! scalar reference `intersect_min` — same minimum *and* same witness
//! (first ancestor achieving it, in ascending order) — on adversarial
//! label shapes: empty and length-1 labels, all-match and no-match
//! pairs, lengths straddling the 4- and 8-lane chunk boundaries, skew
//! ratios on both sides of the gallop crossover, and distances at and
//! near `INF` where the saturating vector adds must behave exactly like
//! `Dist::saturating_add`.
//!
//! A final end-to-end test forces each tier through full IS-LABEL and
//! mmap sessions and pins the complete search outcome (distance, meeting
//! mechanism, settled count) against the scalar-forced run.

use islabel::core::kernel::{self, KernelTier};
use islabel::core::label::LabelView;
use islabel::core::query::{intersect_min, intersect_min_adaptive};
use islabel::core::DistanceOracle as _;
use islabel::graph::{Dist, VertexId, INF};
use proptest::prelude::*;

/// One label pair as owned parallel arrays (ancestors strictly
/// ascending, as the label contract requires).
#[derive(Debug, Clone)]
struct LabelPair {
    aa: Vec<VertexId>,
    ad: Vec<Dist>,
    ba: Vec<VertexId>,
    bd: Vec<Dist>,
}

impl LabelPair {
    fn views(&self) -> (LabelView<'_>, LabelView<'_>) {
        (
            LabelView {
                ancestors: &self.aa,
                dists: &self.ad,
                first_hops: &[],
            },
            LabelView {
                ancestors: &self.ba,
                dists: &self.bd,
                first_hops: &[],
            },
        )
    }
}

/// Distances that exercise the saturating-add corners: small values,
/// `INF` itself, and values close enough to `INF` that `d(s)+d(t)`
/// overflows u64 and must saturate in every lane.
fn arb_dist() -> impl Strategy<Value = Dist> {
    prop_oneof![
        0u64..5_000,
        0u64..5_000,
        0u64..5_000,
        Just(INF),
        (INF - 5_000)..INF,
    ]
}

/// A label pair built from one ascending id stream: each universe slot
/// lands in label A, label B, or both, so overlap density, run lengths,
/// and skew all vary freely while both sides stay strictly ascending.
fn arb_pair(max_universe: usize) -> impl Strategy<Value = LabelPair> {
    proptest::collection::vec((1u32..4, 0u8..4, arb_dist(), arb_dist()), 0..max_universe).prop_map(
        |slots| {
            let mut p = LabelPair {
                aa: Vec::new(),
                ad: Vec::new(),
                ba: Vec::new(),
                bd: Vec::new(),
            };
            let mut id = 0u32;
            for (gap, side, da, db) in slots {
                id += gap;
                // side: 0 = neither, 1 = A only, 2 = B only, 3 = both.
                if side & 1 != 0 {
                    p.aa.push(id);
                    p.ad.push(da);
                }
                if side & 2 != 0 {
                    p.ba.push(id);
                    p.bd.push(db);
                }
            }
            p
        },
    )
}

/// Asserts every supported tier (plus the adaptive scalar used for
/// skewed pairs) agrees with the linear scalar reference, both ways.
fn assert_all_tiers_match(p: &LabelPair) {
    let (a, b) = p.views();
    let want = intersect_min(a, b);
    prop_assert_eq!(intersect_min_adaptive(a, b), want, "adaptive a,b");
    prop_assert_eq!(intersect_min_adaptive(b, a), want, "adaptive b,a");
    for tier in KernelTier::ALL {
        if !tier.is_supported() {
            continue;
        }
        prop_assert_eq!(
            kernel::intersect_min_at(tier, a, b),
            want,
            "{} a,b",
            tier.name()
        );
        prop_assert_eq!(
            kernel::intersect_min_at(tier, b, a),
            want,
            "{} b,a",
            tier.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Free-form shapes: arbitrary overlap, gaps, and INF-adjacent sums.
    #[test]
    fn tiers_match_reference_on_arbitrary_pairs(p in arb_pair(72)) {
        assert_all_tiers_match(&p);
    }

    /// Skewed shapes on both sides of the gallop crossover: a short label
    /// of 0..=9 entries against a long one of up to ~200, so the
    /// `short * GALLOP_CROSSOVER <= long` delegation boundary is crossed
    /// in both directions.
    #[test]
    fn tiers_match_reference_on_skewed_pairs(
        short_slots in proptest::collection::vec((1u32..6, arb_dist()), 0..10),
        long_slots in proptest::collection::vec((1u32..3, arb_dist()), 0..200),
    ) {
        let mut p = LabelPair { aa: Vec::new(), ad: Vec::new(), ba: Vec::new(), bd: Vec::new() };
        let mut id = 0u32;
        for (gap, d) in short_slots {
            id += gap;
            p.aa.push(id);
            p.ad.push(d);
        }
        let mut id = 0u32;
        for (gap, d) in long_slots {
            id += gap;
            p.ba.push(id);
            p.bd.push(d);
        }
        assert_all_tiers_match(&p);
    }
}

/// Deterministic boundary shapes: identical ancestor sets (all-match)
/// and disjoint sets (no-match) at every length that straddles the
/// 4-lane SSE2/NEON and 8-lane AVX2 chunk edges, including the
/// equal-run fast path (all-match at len >= 8) and its INF saturation.
#[test]
fn chunk_boundary_lengths_all_match_and_no_match() {
    const LENS: [usize; 14] = [0, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33];
    // Three dist regimes: small, saturating, and mixed (INF on one side).
    for regime in 0..3 {
        for len in LENS {
            let dist = |side: u64, i: usize| -> Dist {
                match regime {
                    0 => (i as u64 * 7 + side * 3) % 1_000,
                    1 => INF - (i as u64 % 3),
                    _ if side == 0 && i.is_multiple_of(2) => INF,
                    _ => i as u64,
                }
            };
            // All-match: identical ancestor streams.
            let ids: Vec<VertexId> = (0..len as u32).map(|i| i * 2 + 1).collect();
            let p = LabelPair {
                aa: ids.clone(),
                ad: (0..len).map(|i| dist(0, i)).collect(),
                ba: ids.clone(),
                bd: (0..len).map(|i| dist(1, i)).collect(),
            };
            assert_all_tiers_match(&p);
            // No-match: interleaved odd/even ids, empty intersection.
            let p = LabelPair {
                aa: (0..len as u32).map(|i| i * 2).collect(),
                ad: (0..len).map(|i| dist(0, i)).collect(),
                ba: (0..len as u32).map(|i| i * 2 + 1).collect(),
                bd: (0..len).map(|i| dist(1, i)).collect(),
            };
            assert_all_tiers_match(&p);
        }
    }
}

/// Ties must resolve to the *first* (lowest-id) ancestor achieving the
/// minimum at every tier — the witness drives path reconstruction, so a
/// vectorized min that picked a later lane would corrupt paths even with
/// the distance right.
#[test]
fn tie_break_picks_first_witness_at_every_tier() {
    for len in [2usize, 8, 9, 16, 40] {
        let ids: Vec<VertexId> = (0..len as u32).map(|i| i * 3 + 2).collect();
        // Every entry sums to the same total: all-way tie.
        let p = LabelPair {
            aa: ids.clone(),
            ad: (0..len as u64).collect(),
            ba: ids.clone(),
            bd: (0..len as u64).map(|i| 100 - i).collect(),
        };
        let (a, b) = p.views();
        let want = intersect_min(a, b);
        assert_eq!(want, (100, Some(2)), "reference itself must tie-break low");
        assert_all_tiers_match(&p);
    }
}

/// End-to-end: force each supported tier through full sessions (heap
/// IS-LABEL and mmap) and pin the complete outcome against the
/// scalar-forced run. Mutates the process-global tier latch, so every
/// `force_tier` caller lives in this single test.
#[test]
fn forced_tiers_are_bit_identical_end_to_end() {
    use islabel::core::{BuildConfig, IsLabelIndex, MmapIndex};
    use islabel::graph::generators::{barabasi_albert, WeightModel};
    use std::io::Cursor;

    let g = barabasi_albert(400, 3, WeightModel::UniformRange(1, 9), 77);
    let index = IsLabelIndex::build(&g, BuildConfig::default());
    let buf = islabel::core::persist::v3::write_index(&index, Cursor::new(Vec::new()))
        .unwrap()
        .into_inner();
    let mapped = MmapIndex::from_bytes(buf).unwrap();
    let pairs: Vec<(u32, u32)> = (0..250u32)
        .map(|i| ((i * 11) % 400, (i * 29 + 3) % 400))
        .collect();

    type HeapOutcomes = Vec<(Dist, islabel::core::query::Meeting, usize)>;
    type MmapDists = Vec<Option<Dist>>;
    let run = |tier: KernelTier| -> (HeapOutcomes, MmapDists) {
        assert_eq!(kernel::force_tier(Some(tier)), tier);
        let mut s = index.session();
        let heap = pairs
            .iter()
            .map(|&(a, b)| {
                let o = s.search_outcome(a, b).unwrap();
                (o.dist, o.meeting, o.settled)
            })
            .collect();
        let mut ms = mapped.session();
        let mm = pairs
            .iter()
            .map(|&(a, b)| ms.distance(a, b).unwrap())
            .collect();
        (heap, mm)
    };

    let baseline = run(KernelTier::Scalar);
    for tier in KernelTier::ALL {
        if tier == KernelTier::Scalar || !tier.is_supported() {
            continue;
        }
        let got = run(tier);
        assert_eq!(
            got.0,
            baseline.0,
            "heap outcomes diverge at {}",
            tier.name()
        );
        assert_eq!(
            got.1,
            baseline.1,
            "mmap distances diverge at {}",
            tier.name()
        );
    }
    kernel::force_tier(None);
}
