//! Shortest-path reconstruction (Section 8.1) at integration scale: every
//! returned path must be edge-valid in the original graph and exactly as
//! long as the distance answer.

use islabel::core::reference::dijkstra_p2p;
use islabel::core::{BuildConfig, IsLabelIndex};
use islabel::graph::generators::{barabasi_albert, grid2d, WeightModel};
use islabel::{CsrGraph, Dataset, Scale, VertexId};

fn check_paths(g: &CsrGraph, config: BuildConfig, queries: usize, tag: &str) {
    let index = IsLabelIndex::build(g, config);
    let n = g.num_vertices();
    for i in 0..queries {
        let s = ((i * 2654435761) % n) as VertexId;
        let t = ((i * 97 + 13) % n) as VertexId;
        let expect = dijkstra_p2p(g, s, t);
        match (index.shortest_path(s, t), expect) {
            (Some(p), Some(d)) => {
                assert_eq!(p.length, d, "{tag} ({s}, {t}) length");
                assert_eq!(*p.vertices.first().unwrap(), s);
                assert_eq!(*p.vertices.last().unwrap(), t);
                p.validate_against(g)
                    .unwrap_or_else(|e| panic!("{tag} ({s}, {t}): {e}"));
            }
            (None, None) => {}
            (p, d) => panic!("{tag} ({s}, {t}): path {p:?} vs dist {d:?}"),
        }
    }
}

#[test]
fn paths_on_all_datasets() {
    for ds in Dataset::ALL {
        let g = ds.generate(Scale::Tiny);
        check_paths(&g, BuildConfig::default(), 50, ds.name());
    }
}

#[test]
fn paths_on_long_thin_graphs() {
    // Grids produce deep hierarchies and heavily nested augmenting edges —
    // the stress case for recursive expansion.
    let g = grid2d(40, 5, WeightModel::UniformRange(1, 6), 3);
    check_paths(&g, BuildConfig::default(), 80, "grid40x5");
    check_paths(&g, BuildConfig::full(), 80, "grid40x5-full");
}

#[test]
fn paths_with_every_k_policy() {
    let g = barabasi_albert(250, 3, WeightModel::UniformRange(1, 4), 8);
    for (tag, config) in [
        ("default", BuildConfig::default()),
        ("full", BuildConfig::full()),
        ("k3", BuildConfig::fixed_k(3)),
    ] {
        check_paths(&g, config, 70, tag);
    }
}

#[test]
fn path_endpoints_and_self_paths() {
    let g = barabasi_albert(100, 2, WeightModel::Unit, 5);
    let index = IsLabelIndex::build(&g, BuildConfig::default());
    for v in (0..100u32).step_by(13) {
        let p = index.shortest_path(v, v).unwrap();
        assert_eq!(p.vertices, vec![v]);
        assert_eq!(p.length, 0);
    }
}

#[test]
fn path_hop_counts_match_bfs_on_unweighted_graphs() {
    // On a unit-weight graph, path length == hop count == BFS distance.
    let g = barabasi_albert(300, 3, WeightModel::Unit, 21);
    let index = IsLabelIndex::build(&g, BuildConfig::default());
    let bfs = islabel::graph::algo::bfs_distances(&g, 17);
    for t in (0..300u32).step_by(29) {
        let p = index.shortest_path(17, t).unwrap();
        assert_eq!(p.num_edges() as u64, bfs[t as usize], "target {t}");
    }
}
