//! Integration suite for the v3 mmap store: the zero-copy engine must be
//! bit-identical to the heap engine on pristine artifacts, and opening
//! hostile bytes — mutated headers, truncations, random flips — must
//! yield typed errors or semantically-valid successes, never a panic.

use islabel::core::persist::{
    compact_index_with_wal, load_index_from_path, load_index_with_wal, save_index_to_path,
    save_index_v2_to_path, try_load_oracle_from_path,
};
use islabel::core::{BuildConfig, IsLabelIndex, MmapIndex};
use islabel::graph::generators::{barabasi_albert, erdos_renyi_gnm, grid2d, WeightModel};
use islabel::store::format::{DATA_START, SECTION_LABEL_DISTS};
use islabel::store::StoreReader;
use islabel::DistanceOracle;

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("islabel-smm-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Deterministic query pairs spread over the vertex universe.
fn pairs(n: usize, count: u32) -> impl Iterator<Item = (u32, u32)> {
    let n = n as u32;
    (0..count).map(move |i| ((i * 97 + 3) % n, (i * 131 + 50) % n))
}

/// A small pristine artifact reused by every corruption test.
fn sample_artifact() -> (IsLabelIndex, Vec<u8>) {
    let g = barabasi_albert(300, 3, WeightModel::UniformRange(1, 9), 7);
    let index = IsLabelIndex::build(&g, BuildConfig::default());
    let dir = tempdir("sample");
    let path = dir.join("sample.islx");
    save_index_to_path(&index, &path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    (index, bytes)
}

#[test]
fn mmap_is_bit_identical_to_heap_across_graphs_and_configs() {
    let graphs = [
        (
            "ba",
            barabasi_albert(600, 3, WeightModel::UniformRange(1, 10), 11),
        ),
        (
            "er",
            erdos_renyi_gnm(500, 1500, WeightModel::UniformRange(1, 6), 12),
        ),
        ("grid", grid2d(20, 25, WeightModel::Unit, 13)),
    ];
    let configs = [
        ("default", BuildConfig::default()),
        ("fixed-k", BuildConfig::fixed_k(3)),
        (
            "no-paths",
            BuildConfig {
                keep_path_info: false,
                ..BuildConfig::default()
            },
        ),
    ];
    let dir = tempdir("crosscheck");
    for (gname, g) in &graphs {
        for (cname, config) in &configs {
            let heap = IsLabelIndex::build(g, *config);
            let path = dir.join(format!("{gname}-{cname}.islx"));
            save_index_to_path(&heap, &path).unwrap();
            let mapped = MmapIndex::open_verified(&path).unwrap();
            assert_eq!(mapped.engine_name(), "islabel-mmap");
            assert_eq!(mapped.num_vertices(), heap.num_vertices());
            // The heap reload of the same v3 bytes is the third witness.
            let reloaded = load_index_from_path(&path).unwrap();
            let mut ms = mapped.session();
            let mut hs = heap.session();
            let mut rs = reloaded.session();
            for (s, t) in pairs(g.num_vertices(), 400) {
                let want = hs.distance(s, t);
                assert_eq!(ms.distance(s, t), want, "{gname}/{cname} mmap {s}->{t}");
                assert_eq!(rs.distance(s, t), want, "{gname}/{cname} reload {s}->{t}");
            }
        }
    }
}

#[test]
fn every_header_and_table_byte_mutation_is_contained() {
    let (index, good) = sample_artifact();
    let mut heap = index.session();
    // Exhaustive over the header + section table: every byte, one flip.
    // Outcomes are a typed error or a semantically identical artifact
    // (flips in reserved/padding bytes are invisible) — never a panic,
    // never a different answer.
    let mut accepted = 0usize;
    for at in 0..DATA_START {
        let mut bad = good.clone();
        bad[at] ^= 0x5A;
        match MmapIndex::from_bytes(bad) {
            Err(_) => {}
            Ok(m) => {
                accepted += 1;
                let mut s = m.session();
                for (a, b) in pairs(index.num_vertices(), 20) {
                    assert_eq!(s.distance(a, b), heap.distance(a, b), "byte {at}");
                }
            }
        }
    }
    // The load-bearing bytes must actually reject: a mutation budget far
    // below the region size proves the checks have teeth.
    assert!(
        accepted < DATA_START / 4,
        "{accepted} of {DATA_START} header mutations went undetected"
    );
}

#[test]
fn truncation_at_any_length_is_a_typed_error() {
    let (_, good) = sample_artifact();
    let mut lengths: Vec<usize> = vec![0, 1, 39, 40, 63, 64, 71, 72, DATA_START - 1, DATA_START];
    lengths.extend((1..=36).map(|i| good.len() * i / 37));
    lengths.push(good.len() - 1);
    for len in lengths {
        let err = MmapIndex::from_bytes(good[..len].to_vec())
            .err()
            .unwrap_or_else(|| panic!("truncation to {len} bytes accepted"));
        let _ = err.to_string(); // typed + printable, not a panic
    }
}

#[test]
fn random_corruption_never_panics_verified_or_not() {
    let (index, good) = sample_artifact();
    let dir = tempdir("fuzz");
    let path = dir.join("fuzzed.islx");
    let mut heap = index.session();
    // xorshift64*: deterministic, no external crates.
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut rng = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545F4914F6CDD1D)
    };
    for _ in 0..300 {
        let mut bad = good.clone();
        let at = (rng() as usize) % bad.len();
        let bit = 1u8 << (rng() % 8);
        bad[at] ^= bit;
        // Verified path (in-memory image): a content flip is caught by
        // the section checksum; survivors must answer identically.
        match MmapIndex::from_bytes(bad.clone()) {
            Err(_) => {}
            Ok(m) => {
                let mut s = m.session();
                for (a, b) in pairs(index.num_vertices(), 5) {
                    assert_eq!(s.distance(a, b), heap.distance(a, b), "byte {at} bit {bit}");
                }
            }
        }
        // Serving path (structural + semantic validation only): may
        // accept a flip in payload values, but every query must still
        // return — the semantic scan is what makes that sound.
        std::fs::write(&path, &bad).unwrap();
        if let Ok(m) = MmapIndex::open(&path) {
            let mut s = m.session();
            for (a, b) in pairs(index.num_vertices(), 5) {
                let _ = s.distance(a, b);
            }
        }
    }
}

#[test]
fn open_verified_catches_payload_corruption_that_open_tolerates() {
    let (_, good) = sample_artifact();
    let dir = tempdir("verify");
    let path = dir.join("flip.islx");
    // Locate the label-distances payload and nudge one value upward: the
    // result is structurally and semantically a valid artifact — only the
    // checksum knows.
    let r = StoreReader::from_bytes(good.clone()).unwrap();
    let sec = r.header().section(SECTION_LABEL_DISTS).unwrap();
    let at = sec.offset as usize; // low byte of the first distance
    drop(r);
    let mut bad = good.clone();
    bad[at] = bad[at].wrapping_add(1);
    std::fs::write(&path, &bad).unwrap();
    assert!(
        MmapIndex::open_verified(&path).is_err(),
        "checksum verification must flag the payload flip"
    );
    std::fs::write(&path, &good).unwrap();
    MmapIndex::open_verified(&path).unwrap();
}

#[test]
fn oracle_loader_prefers_mmap_for_v3_and_falls_back_for_v2() {
    let g = grid2d(12, 12, WeightModel::UniformRange(1, 4), 5);
    let index = IsLabelIndex::build(&g, BuildConfig::default());
    let dir = tempdir("loader");
    let v3 = dir.join("index.islx");
    let v2 = dir.join("index-v2.islx");
    save_index_to_path(&index, &v3).unwrap();
    save_index_v2_to_path(&index, &v2).unwrap();
    assert_eq!(
        try_load_oracle_from_path(&v3).unwrap().engine_name(),
        "islabel-mmap"
    );
    assert_eq!(
        try_load_oracle_from_path(&v2).unwrap().engine_name(),
        "islabel"
    );
}

#[test]
fn compact_returns_serving_to_the_mmap_engine() {
    let g = barabasi_albert(250, 3, WeightModel::UniformRange(1, 8), 21);
    let index = IsLabelIndex::build(&g, BuildConfig::default());
    let dir = tempdir("compact");
    let ipath = dir.join("index.islx");
    let wpath = dir.join("index.wal");
    save_index_to_path(&index, &ipath).unwrap();

    // Pristine artifact: mmap serves.
    assert_eq!(
        try_load_oracle_from_path(&ipath).unwrap().engine_name(),
        "islabel-mmap"
    );

    // Stream durable updates; the sealed artifact now needs the heap.
    let (mut live, _) = load_index_with_wal(&ipath, &wpath).unwrap();
    for i in 0..20u32 {
        live.try_insert_edge(i, (i * 3 + 40) % 250, 2).unwrap();
    }
    save_index_to_path(&live, &ipath).unwrap(); // seals the pending ops
    drop(live);
    assert_eq!(
        try_load_oracle_from_path(&ipath).unwrap().engine_name(),
        "islabel"
    );

    // Compaction folds the ops into a fresh pristine artifact: mmap again,
    // and the answers match a from-scratch heap rebuild of the same graph.
    let info = compact_index_with_wal(&ipath, &wpath).unwrap();
    assert_eq!(info.folded_ops, 20);
    let oracle = try_load_oracle_from_path(&ipath).unwrap();
    assert_eq!(oracle.engine_name(), "islabel-mmap");
    let reference = load_index_from_path(&ipath).unwrap();
    let mut os = oracle.session();
    let mut rs = reference.session();
    for (s, t) in pairs(250, 200) {
        assert_eq!(os.distance(s, t), rs.distance(s, t));
    }
}
