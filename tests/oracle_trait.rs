//! Trait-conformance suite: every [`Engine`] must satisfy the
//! [`DistanceOracle`] contract through one generic checker.
//!
//! The contract under test, per engine and per graph family (Erdős–Rényi,
//! 2-D grid, Barabási–Albert):
//!
//! * **exactness** — `try_distance` agrees with a reference Dijkstra,
//!   including `Ok(None)` on unreachable pairs;
//! * **typed failure** — out-of-range endpoints yield
//!   `Err(VertexOutOfRange)` (never a panic), on either side, for both the
//!   single and the batch entry point;
//! * **batch coherence** — `distance_batch` equals the sequential answers
//!   at every thread count, including the `available_parallelism` default;
//! * **session coherence** — a reused [`QuerySession`] answers the whole
//!   mix identically to `try_distance`, including typed errors, and many
//!   concurrent sessions over one shared oracle stay exact;
//! * **identity** — `s == t` answers `Some(0)`;
//! * **metadata** — `engine_name` matches the selector and `num_vertices`
//!   / `index_bytes` are sane.

use islabel::core::reference::dijkstra_p2p;
use islabel::graph::generators::{barabasi_albert, erdos_renyi_gnm, grid2d, WeightModel};
use islabel::prelude::*;

/// Deterministic query mix: spread pairs plus a few self and repeated
/// queries.
fn pairs(n: u32) -> Vec<(VertexId, VertexId)> {
    let mut v: Vec<(VertexId, VertexId)> = (0..96u32)
        .map(|i| ((i * 13) % n, (i * 37 + 5) % n))
        .collect();
    v.push((0, 0));
    v.push((n - 1, n - 1));
    v.push((0, n - 1));
    v.push((0, n - 1));
    v
}

/// The generic conformance check every engine must pass.
fn check<O: DistanceOracle + ?Sized>(oracle: &O, g: &CsrGraph, what: &str) {
    let n = g.num_vertices();
    assert_eq!(oracle.num_vertices(), n, "{what}: num_vertices");
    assert!(oracle.index_bytes() > 0, "{what}: index_bytes");

    // Exactness against the reference oracle, and s == t => Some(0).
    let pairs = pairs(n as u32);
    for &(s, t) in &pairs {
        let got = oracle
            .try_distance(s, t)
            .unwrap_or_else(|e| panic!("{what}: in-range query ({s}, {t}) errored: {e}"));
        if s == t {
            assert_eq!(got, Some(0), "{what}: self query ({s}, {t})");
        }
        assert_eq!(got, dijkstra_p2p(g, s, t), "{what}: query ({s}, {t})");
    }

    // Typed out-of-range on either endpoint, single and batch form.
    for (s, t) in [(0, n as VertexId), (n as VertexId + 7, 0)] {
        let bad = s.max(t);
        let expect = Err(QueryError::VertexOutOfRange {
            vertex: bad,
            universe: n,
        });
        assert_eq!(oracle.try_distance(s, t), expect, "{what}: oob ({s}, {t})");
        assert_eq!(
            oracle
                .distance_batch(&[(0, 0), (s, t)], BatchOptions::sequential())
                .map(|_| ()),
            expect.map(|_: Option<Dist>| ()),
            "{what}: batch oob ({s}, {t})"
        );
    }

    // Batch == sequential at several thread counts (0 = default pool).
    let sequential: Vec<Option<Dist>> = pairs
        .iter()
        .map(|&(s, t)| oracle.try_distance(s, t).unwrap())
        .collect();

    // A reused session answers the whole mix identically, reports the
    // engine, and types its errors like the oracle does.
    {
        let mut session = oracle.session();
        assert_eq!(session.engine_name(), oracle.engine_name(), "{what}");
        for round in 0..2 {
            for (&(s, t), expect) in pairs.iter().zip(&sequential) {
                assert_eq!(
                    session.distance(s, t),
                    Ok(*expect),
                    "{what}: session round {round} ({s}, {t})"
                );
            }
        }
        assert_eq!(
            session.distance(0, n as VertexId),
            Err(QueryError::VertexOutOfRange {
                vertex: n as VertexId,
                universe: n,
            }),
            "{what}: session oob"
        );
    }

    // Concurrent sessions: one per thread over the same shared oracle.
    std::thread::scope(|scope| {
        for worker in 0..4 {
            let pairs = &pairs;
            let sequential = &sequential;
            scope.spawn(move || {
                let mut session = oracle.session();
                for (&(s, t), expect) in pairs.iter().zip(sequential) {
                    assert_eq!(
                        session.distance(s, t),
                        Ok(*expect),
                        "{what}: concurrent session {worker} ({s}, {t})"
                    );
                }
            });
        }
    });
    for threads in [0usize, 1, 2, 5] {
        assert_eq!(
            oracle
                .distance_batch(&pairs, BatchOptions::with_threads(threads))
                .unwrap(),
            sequential,
            "{what}: batch at {threads} threads"
        );
    }
    assert!(
        oracle
            .distance_batch(&[], BatchOptions::default())
            .unwrap()
            .is_empty(),
        "{what}: empty batch"
    );
}

fn check_all_engines(g: &CsrGraph, family: &str) {
    for engine in Engine::ALL {
        let oracle =
            build_oracle(engine, g, &BuildConfig::default()).expect("default config is valid");
        assert_eq!(oracle.engine_name(), engine.name());
        check(oracle.as_ref(), g, &format!("{family}/{engine}"));
    }
}

#[test]
fn conformance_on_erdos_renyi() {
    // Sparse: many unreachable pairs exercise the Ok(None) case.
    let g = erdos_renyi_gnm(200, 360, WeightModel::UniformRange(1, 9), 0xA1);
    check_all_engines(&g, "er");
}

#[test]
fn conformance_on_grid() {
    let g = grid2d(13, 15, WeightModel::UniformRange(1, 4), 0xA2);
    check_all_engines(&g, "grid");
}

#[test]
fn conformance_on_barabasi_albert() {
    let g = barabasi_albert(250, 3, WeightModel::Unit, 0xA3);
    check_all_engines(&g, "ba");
}

#[test]
fn conformance_survives_non_default_configs() {
    // The trait contract holds whatever construction parameters produced
    // the IS-LABEL engines.
    let g = erdos_renyi_gnm(150, 320, WeightModel::UniformRange(1, 5), 0xA4);
    for config in [BuildConfig::full(), BuildConfig::fixed_k(3)] {
        for engine in [Engine::IsLabel, Engine::DiIsLabel] {
            let oracle = build_oracle(engine, &g, &config).unwrap();
            check(oracle.as_ref(), &g, &format!("cfg/{engine}"));
        }
    }
}
