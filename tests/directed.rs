//! Directed-graph integration tests (Section 8.2): distances against
//! directed Dijkstra, reachability semantics, and structural properties of
//! the in/out labels.

use islabel::core::directed::di_dijkstra_p2p;
use islabel::core::{BuildConfig, DiIsLabelIndex};
use islabel::{CsrDigraph, DigraphBuilder, VertexId};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn random_digraph(n: usize, m: usize, max_w: u32, seed: u64) -> CsrDigraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DigraphBuilder::new(n);
    for _ in 0..m {
        let u = rng.gen_range(0..n as VertexId);
        let v = rng.gen_range(0..n as VertexId);
        if u != v {
            b.add_arc(u, v, rng.gen_range(1..=max_w));
        }
    }
    b.build()
}

/// A directed "web crawl": preferential attachment with mostly forward
/// links and some back links (the structure the paper's Web dataset came
/// from before its undirected conversion).
fn weblike_digraph(n: usize, seed: u64) -> CsrDigraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DigraphBuilder::new(n);
    let mut urn: Vec<VertexId> = vec![0];
    for v in 1..n as VertexId {
        for _ in 0..3 {
            let t = urn[rng.gen_range(0..urn.len())];
            if t != v {
                b.add_arc(v, t, 1);
                urn.push(t);
            }
        }
        urn.push(v);
        if rng.gen_bool(0.2) {
            b.add_arc(rng.gen_range(0..v), v, 1);
        }
    }
    b.build()
}

#[test]
fn random_digraphs_match_dijkstra() {
    for seed in 0..3u64 {
        let g = random_digraph(200, 800, 9, seed);
        let index = DiIsLabelIndex::build(&g, BuildConfig::default());
        for i in 0..120u32 {
            let (s, t) = ((i * 17) % 200, (i * 31 + 3) % 200);
            assert_eq!(
                index.distance(s, t),
                di_dijkstra_p2p(&g, s, t),
                "seed {seed} ({s}, {t})"
            );
        }
    }
}

#[test]
fn weblike_digraph_matches_dijkstra_across_configs() {
    let g = weblike_digraph(500, 7);
    for config in [
        BuildConfig::default(),
        BuildConfig::full(),
        BuildConfig::fixed_k(4),
    ] {
        let index = DiIsLabelIndex::build(&g, config);
        for i in 0..100u32 {
            let (s, t) = ((i * 13) % 500, (i * 101 + 1) % 500);
            assert_eq!(
                index.distance(s, t),
                di_dijkstra_p2p(&g, s, t),
                "{:?} ({s}, {t})",
                config.k_selection
            );
        }
    }
}

#[test]
fn reachability_matches_bfs_closure() {
    let g = random_digraph(80, 160, 3, 11);
    let index = DiIsLabelIndex::build(&g, BuildConfig::default());
    for s in (0..80u32).step_by(7) {
        // Directed BFS closure as ground truth.
        let mut seen = [false; 80];
        let mut stack = vec![s];
        seen[s as usize] = true;
        while let Some(v) = stack.pop() {
            for (u, _) in g.out_edges(v) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    stack.push(u);
                }
            }
        }
        for t in 0..80u32 {
            assert_eq!(index.reachable(s, t), seen[t as usize], "({s}, {t})");
        }
    }
}

#[test]
fn undirected_graph_as_digraph_agrees_with_undirected_index() {
    // Encoding an undirected graph as symmetric arcs must give identical
    // answers to the undirected index.
    let ug = islabel::graph::generators::erdos_renyi_gnm(
        150,
        400,
        islabel::graph::generators::WeightModel::UniformRange(1, 6),
        13,
    );
    let mut b = DigraphBuilder::new(150);
    for (u, v, w) in ug.edge_list() {
        b.add_arc(u, v, w);
        b.add_arc(v, u, w);
    }
    let dg = b.build();
    let di = DiIsLabelIndex::build(&dg, BuildConfig::default());
    let ui = islabel::IsLabelIndex::build(&ug, BuildConfig::default());
    for i in 0..100u32 {
        let (s, t) = ((i * 7) % 150, (i * 11 + 5) % 150);
        assert_eq!(di.distance(s, t), ui.distance(s, t), "({s}, {t})");
    }
}

#[test]
fn level_partition_is_complete() {
    let g = weblike_digraph(300, 3);
    let index = DiIsLabelIndex::build(&g, BuildConfig::default());
    let peeled: usize = index.levels().iter().map(|l| l.len()).sum();
    let in_gk = (0..300u32).filter(|&v| index.is_in_gk(v)).count();
    assert_eq!(peeled + in_gk, 300);
}

#[test]
fn out_label_chains_ascend_levels() {
    let g = random_digraph(120, 500, 4, 21);
    let index = DiIsLabelIndex::build(&g, BuildConfig::default());
    for v in 0..120u32 {
        for &(to, _) in index.peel_out(v) {
            assert!(
                !index
                    .levels()
                    .iter()
                    .take(levels_of(&index, v) as usize)
                    .any(|l| l.contains(&to)),
                "peel-out target {to} of {v} is at a lower level"
            );
        }
    }
}

fn levels_of(index: &DiIsLabelIndex, v: VertexId) -> u32 {
    // Level of v = 1 + number of level sets before the one containing it.
    for (i, l) in index.levels().iter().enumerate() {
        if l.binary_search(&v).is_ok() {
            return i as u32 + 1;
        }
    }
    index.k()
}
