//! External-memory vs in-memory construction equivalence at integration
//! scale (Section 6): the disk pipeline must produce the *same index* —
//! labels, hierarchy, residual graph — as the in-memory builder, on both
//! storage backends.

use islabel::core::embuild::{build_external_from_csr, EmConfig};
use islabel::core::{BuildConfig, IsLabelIndex};
use islabel::extmem::storage::Storage;
use islabel::extmem::{DirStorage, MemStorage};
use islabel::graph::generators::{grid2d, WeightModel};
use islabel::{Dataset, Scale};

#[test]
fn equivalent_on_every_paper_dataset() {
    for ds in Dataset::ALL {
        let g = ds.generate(Scale::Tiny);
        let storage = MemStorage::new();
        let em = build_external_from_csr(&storage, &g, BuildConfig::default(), EmConfig::default())
            .unwrap();
        let im = IsLabelIndex::build(&g, BuildConfig::default());
        assert_eq!(em.labels(), im.labels(), "{}: labels", ds.name());
        assert_eq!(
            em.hierarchy().gk(),
            im.hierarchy().gk(),
            "{}: G_k",
            ds.name()
        );
        assert_eq!(em.stats().k, im.stats().k, "{}: k", ds.name());
        assert_eq!(
            em.stats().label_bytes,
            im.stats().label_bytes,
            "{}: label bytes",
            ds.name()
        );
    }
}

#[test]
fn equivalent_on_real_filesystem() {
    let dir = std::env::temp_dir().join(format!("islabel-embuild-{}", std::process::id()));
    let storage = DirStorage::new(&dir).unwrap();
    let g = Dataset::GoogleLike.generate(Scale::Tiny);
    let em =
        build_external_from_csr(&storage, &g, BuildConfig::default(), EmConfig::default()).unwrap();
    let im = IsLabelIndex::build(&g, BuildConfig::default());
    assert_eq!(em.labels(), im.labels());
    // All temp files cleaned off the real filesystem too.
    let leftovers: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
    assert!(leftovers.is_empty(), "leftover files: {leftovers:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn equivalent_under_pathological_memory_pressure() {
    // Deep hierarchy (grid) + tiny budget: many levels, many purges, many
    // label blocks, multi-pass sorts.
    let g = grid2d(20, 20, WeightModel::UniformRange(1, 5), 3);
    let storage = MemStorage::new();
    let em = build_external_from_csr(
        &storage,
        &g,
        BuildConfig::default(),
        EmConfig::tiny_for_tests(),
    )
    .unwrap();
    let im = IsLabelIndex::build(&g, BuildConfig::default());
    assert_eq!(em.labels(), im.labels());
    assert_eq!(em.hierarchy().levels(), im.hierarchy().levels());

    // Queries agree with ground truth end to end.
    for i in 0..60u32 {
        let (s, t) = ((i * 13) % 400, (i * 29 + 7) % 400);
        assert_eq!(
            em.distance(s, t),
            islabel::core::reference::dijkstra_p2p(&g, s, t),
            "({s}, {t})"
        );
    }
}

#[test]
fn external_build_io_volume_is_bounded() {
    // Sanity on the I/O model: the external build should move a few
    // multiples of the data size, not hundreds (scan/sort, not quadratic).
    let g = Dataset::BtcLike.generate(Scale::Tiny);
    let storage = MemStorage::new();
    let _ =
        build_external_from_csr(&storage, &g, BuildConfig::default(), EmConfig::default()).unwrap();
    let snap = storage.stats().snapshot();
    let data_bytes = (g.num_edges() * 2 * 12) as u64; // both directions, 12 B/entry
    assert!(
        snap.bytes_written < data_bytes * 200,
        "write amplification too high: {} vs data {}",
        snap.bytes_written,
        data_bytes
    );
}
