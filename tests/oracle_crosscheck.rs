//! Randomized differential test: three independent oracles must agree.
//!
//! IS-LABEL answers every point-to-point query by intersecting labels and
//! finishing in the residual graph `G_k`; bidirectional Dijkstra searches
//! the graph directly; Pruned Landmark Labeling is an unrelated 2-hop
//! scheme. The three share no code paths beyond the graph itself, so
//! pairwise agreement over many random queries on structurally different
//! graphs (Erdős–Rényi, 2-D grid, Barabási–Albert) is strong evidence of
//! correctness. Everything is seeded: a failure reproduces exactly.

use islabel::baselines::{BiDijkstra, PllIndex};
use islabel::core::{BuildConfig, IsLabelIndex};
use islabel::graph::generators::{barabasi_albert, erdos_renyi_gnm, grid2d, WeightModel};
use islabel::CsrGraph;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Queries per (graph, config) combination. 4 graphs x 2 configs x 128
/// queries x 3 oracles ≈ 3k cross-checked answers per run.
const QUERIES: usize = 128;

fn crosscheck(name: &str, g: &CsrGraph, config: BuildConfig, seed: u64) {
    let index = IsLabelIndex::build(g, config);
    let pll = PllIndex::build(g);
    let mut bidij = BiDijkstra::new(g.num_vertices());

    let n = g.num_vertices() as u32;
    let mut rng = StdRng::seed_from_u64(seed);
    for q in 0..QUERIES {
        let s = rng.gen_range(0..n);
        let t = rng.gen_range(0..n);
        let via_label = index.distance(s, t);
        let via_dijkstra = bidij.distance(g, s, t);
        let via_pll = pll.distance(s, t);
        assert_eq!(
            via_label, via_dijkstra,
            "{name}: IS-LABEL vs bi-Dijkstra disagree on query #{q} ({s}, {t})"
        );
        assert_eq!(
            via_dijkstra, via_pll,
            "{name}: bi-Dijkstra vs PLL disagree on query #{q} ({s}, {t})"
        );
    }
}

fn configs() -> [(&'static str, BuildConfig); 2] {
    [
        ("default", BuildConfig::default()),
        ("full", BuildConfig::full()),
    ]
}

#[test]
fn erdos_renyi_sparse() {
    // Just above the connectivity threshold: many unreachable pairs, so the
    // None-vs-Some paths of all three oracles get exercised too.
    let g = erdos_renyi_gnm(400, 700, WeightModel::UniformRange(1, 9), 0xE5);
    for (cname, config) in configs() {
        crosscheck(&format!("er-sparse/{cname}"), &g, config, 0x5EED_0001);
    }
}

#[test]
fn erdos_renyi_dense() {
    let g = erdos_renyi_gnm(250, 2_000, WeightModel::UniformRange(1, 20), 0xE6);
    for (cname, config) in configs() {
        crosscheck(&format!("er-dense/{cname}"), &g, config, 0x5EED_0002);
    }
}

#[test]
fn grid_road_like() {
    // Grids have large diameter and no hubs — the opposite regime from BA;
    // label-seeded search must fall through to the residual graph often.
    let g = grid2d(20, 24, WeightModel::UniformRange(1, 4), 0xE7);
    for (cname, config) in configs() {
        crosscheck(&format!("grid/{cname}"), &g, config, 0x5EED_0003);
    }
}

#[test]
fn barabasi_albert_scale_free() {
    let g = barabasi_albert(500, 3, WeightModel::Unit, 0xE8);
    for (cname, config) in configs() {
        crosscheck(&format!("ba/{cname}"), &g, config, 0x5EED_0004);
    }
}

#[test]
fn small_k_forces_residual_search() {
    // A tiny fixed k leaves most vertices in G_k, stressing Algorithm 1's
    // label-seeded bidirectional search rather than pure label intersection.
    let g = erdos_renyi_gnm(300, 900, WeightModel::UniformRange(1, 7), 0xE9);
    crosscheck("er/k=2", &g, BuildConfig::fixed_k(2), 0x5EED_0005);
    crosscheck("er/k=4", &g, BuildConfig::fixed_k(4), 0x5EED_0006);
}
