//! Crash-injection suite for the write-ahead log.
//!
//! A crash can cut or corrupt the log at **any byte offset**; the
//! contract is that recovery replays exactly the longest prefix of whole,
//! checksummed records and truncates the rest — restoring the overlay of
//! some applied prefix, or failing with a typed error, but never serving
//! from a wrong state. This suite proves it byte-by-byte: every possible
//! truncation point, a byte flip at every offset, the compaction
//! crash-window (stale epoch), mid-stream seal + resume, plus
//! property-based encode/decode identity for the record format itself.

use islabel::core::persist::wal::{decode_op, encode_op, scan_wal, WAL_HEADER_LEN};
use islabel::core::persist::{load_index_with_wal, try_save_index_to_path};
use islabel::core::UpdateOp;
use islabel::graph::generators::{barabasi_albert, WeightModel};
use islabel::{BuildConfig, CsrGraph, IsLabelIndex};
use proptest::collection;
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("islabel-walcrash-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Builds a small index, saves it pristine, attaches a WAL and streams a
/// fixed mixed op sequence through it (edge inserts, vertex inserts,
/// deletions — including one that may hit a peeled vertex, so staleness
/// replays too). Returns the artifact/WAL paths and, for every op-count
/// prefix `k`, the materialized graph the overlay must reconstruct to.
fn crashed_pair(dir: &Path) -> (PathBuf, PathBuf, Vec<CsrGraph>) {
    let index_path = dir.join("i.islx");
    let wal_path = dir.join("i.wal");
    let g = barabasi_albert(150, 3, WeightModel::UniformRange(1, 5), 9);
    let mut index = IsLabelIndex::build(&g, BuildConfig::default());
    try_save_index_to_path(&index, &index_path).unwrap();
    index.attach_wal(&wal_path).unwrap();

    let mut expected = vec![index.current_graph()];
    index.insert_edge(2, 77, 1);
    expected.push(index.current_graph());
    let u = index.insert_vertex(&[(3, 2), (50, 4)]);
    expected.push(index.current_graph());
    index.insert_edge(u, 10, 3);
    expected.push(index.current_graph());
    index.delete_vertex(5);
    expected.push(index.current_graph());
    let v = index.insert_vertex(&[(u, 1)]);
    expected.push(index.current_graph());
    index.insert_edge(0, 149, 2);
    expected.push(index.current_graph());
    index.delete_vertex(u);
    expected.push(index.current_graph());
    index.insert_edge(7, v, 4);
    expected.push(index.current_graph());
    // Crash: the process dies here. The index was never re-saved — the
    // artifact on disk is still pristine; only the WAL knows the ops.
    drop(index);
    (index_path, wal_path, expected)
}

#[test]
fn every_byte_truncation_replays_the_longest_valid_prefix() {
    let dir = tempdir("truncate");
    let (index_path, wal_path, expected) = crashed_pair(&dir);
    let wal_bytes = std::fs::read(&wal_path).unwrap();
    let scan = scan_wal(&wal_path).unwrap().unwrap();
    assert_eq!(scan.ops.len(), expected.len() - 1);
    assert_eq!(scan.valid_len, wal_bytes.len() as u64);
    assert!(!scan.truncated_tail);

    let cut_path = dir.join("cut.wal");
    for cut in 0..=wal_bytes.len() {
        std::fs::write(&cut_path, &wal_bytes[..cut]).unwrap();
        let (recovered, recovery) = load_index_with_wal(&index_path, &cut_path)
            .unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
        let k = if cut < WAL_HEADER_LEN as usize {
            // Not even a whole header survived: recovery starts a fresh
            // log; nothing could have been applied before the crash either
            // (ops are logged before application).
            assert!(recovery.created, "cut at {cut}");
            0
        } else {
            let k = scan.offsets.iter().filter(|&&o| o as usize <= cut).count();
            assert!(!recovery.created, "cut at {cut}");
            assert_eq!(recovery.replayed, k, "cut at {cut}");
            let at_boundary =
                cut == WAL_HEADER_LEN as usize || scan.offsets.iter().any(|&o| o as usize == cut);
            assert_eq!(recovery.truncated, !at_boundary, "cut at {cut}");
            k
        };
        // The replayed overlay reconstructs exactly the k-op prefix state.
        assert_eq!(recovered.pending_ops(), k, "cut at {cut}");
        assert_eq!(recovered.current_graph(), expected[k], "cut at {cut}");
        // And the log itself was repaired: a re-scan sees k whole records
        // and no torn tail — the pair is ready to serve and append.
        let rescan = scan_wal(&cut_path).unwrap().unwrap();
        assert_eq!(rescan.ops.len(), k, "cut at {cut}");
        assert!(!rescan.truncated_tail, "cut at {cut}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn byte_flip_corruption_replays_cleanly_or_fails_typed() {
    let dir = tempdir("flip");
    let (index_path, wal_path, expected) = crashed_pair(&dir);
    let wal_bytes = std::fs::read(&wal_path).unwrap();
    let scan = scan_wal(&wal_path).unwrap().unwrap();

    let flip_path = dir.join("flip.wal");
    for pos in 0..wal_bytes.len() {
        let mut flipped = wal_bytes.clone();
        flipped[pos] ^= 0xFF;
        std::fs::write(&flip_path, &flipped).unwrap();
        match load_index_with_wal(&index_path, &flip_path) {
            Err(_) => {
                // Only a damaged magic/version can refuse the whole file.
                assert!(pos < 8, "unexpected hard failure for flip at {pos}");
            }
            Ok((recovered, recovery)) => {
                let k = if pos < 8 {
                    panic!("flip at {pos} (magic/version) must not load");
                } else if pos < WAL_HEADER_LEN as usize {
                    // Epoch byte: the log no longer pairs with this
                    // artifact — discarded wholesale, exactly like the
                    // compaction crash-window.
                    assert!(recovery.discarded_stale, "flip at {pos}");
                    assert!(recovery.created, "flip at {pos}");
                    0
                } else {
                    // In-record damage: the checksum (or length bound)
                    // stops the scan at the damaged record; everything
                    // before it replays.
                    let k = scan
                        .offsets
                        .iter()
                        .filter(|&&o| (o as usize) <= pos)
                        .count();
                    assert_eq!(recovery.replayed, k, "flip at {pos}");
                    assert!(recovery.truncated, "flip at {pos}");
                    k
                };
                assert_eq!(recovered.pending_ops(), k, "flip at {pos}");
                assert_eq!(recovered.current_graph(), expected[k], "flip at {pos}");
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The compaction crash-window: a new artifact was renamed into place but
/// the process died before resetting the WAL. The stale-epoch log must be
/// discarded (its ops are already folded in), never replayed.
#[test]
fn stale_epoch_wal_is_discarded_not_replayed() {
    let dir = tempdir("epoch");
    let (index_path, wal_path, expected) = crashed_pair(&dir);

    // Fold everything and atomically replace the artifact — but "crash"
    // before touching the WAL, leaving the old log beside the new index.
    let (old, _) = load_index_with_wal(&index_path, &wal_path).unwrap();
    let folded = IsLabelIndex::build(&old.current_graph(), BuildConfig::default());
    drop(old); // release the WAL writer before recovery re-opens the log
    try_save_index_to_path(&folded, &index_path).unwrap();

    let (recovered, recovery) = load_index_with_wal(&index_path, &wal_path).unwrap();
    assert!(recovery.discarded_stale);
    assert!(recovery.created);
    assert_eq!(recovery.replayed, 0);
    assert!(!recovered.has_updates(), "folded ops must not double-apply");
    assert_eq!(recovered.current_graph(), *expected.last().unwrap());
    std::fs::remove_dir_all(&dir).ok();
}

/// Saving a non-pristine index seals its op history into the artifact;
/// recovery must replay only the WAL suffix beyond the sealed prefix.
#[test]
fn sealed_prefix_is_not_double_applied_on_recovery() {
    let dir = tempdir("seal");
    let index_path = dir.join("i.islx");
    let wal_path = dir.join("i.wal");
    let g = barabasi_albert(150, 3, WeightModel::UniformRange(1, 5), 21);
    let mut index = IsLabelIndex::build(&g, BuildConfig::default());
    try_save_index_to_path(&index, &index_path).unwrap();
    index.attach_wal(&wal_path).unwrap();

    index.insert_edge(1, 99, 2);
    let u = index.insert_vertex(&[(4, 3)]);
    // Checkpoint: the artifact now seals both ops; the WAL keeps them too.
    try_save_index_to_path(&index, &index_path).unwrap();
    index.insert_edge(u, 7, 1);
    index.delete_vertex(u);
    let want = index.current_graph();
    drop(index);

    let (recovered, recovery) = load_index_with_wal(&index_path, &wal_path).unwrap();
    assert_eq!(recovery.replayed, 2, "only the post-checkpoint suffix");
    assert_eq!(recovered.pending_ops(), 4);
    assert_eq!(recovered.current_graph(), want);
    std::fs::remove_dir_all(&dir).ok();
}

fn arb_op() -> impl Strategy<Value = UpdateOp> {
    prop_oneof![
        collection::vec((0u32..10_000, 1u32..1000), 0..24)
            .prop_map(|edges| UpdateOp::InsertVertex { edges }),
        (0u32..10_000, 0u32..10_000, 1u32..1000).prop_map(|(a, b, w)| UpdateOp::InsertEdge {
            a,
            b,
            w
        }),
        (0u32..10_000).prop_map(|v| UpdateOp::DeleteVertex { v }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn wal_record_encode_decode_identity(op in arb_op()) {
        let mut payload = Vec::new();
        encode_op(&op, &mut payload);
        prop_assert_eq!(decode_op(&payload), Ok(op));
    }

    #[test]
    fn truncated_record_payloads_always_reject(op in arb_op(), cut_seed in 0usize..10_000) {
        let mut payload = Vec::new();
        encode_op(&op, &mut payload);
        let cut = cut_seed % payload.len(); // strict prefix
        prop_assert!(decode_op(&payload[..cut]).is_err());
    }

    #[test]
    fn corrupted_record_payloads_never_panic(
        op in arb_op(),
        pos_seed in 0usize..10_000,
        flip in 1u8..=255,
    ) {
        let mut payload = Vec::new();
        encode_op(&op, &mut payload);
        let pos = pos_seed % payload.len();
        payload[pos] ^= flip;
        // Either a clean rejection or a *different* well-formed op (the
        // CRC above this layer catches those); never a panic.
        let _ = decode_op(&payload);
    }

    #[test]
    fn record_payloads_with_trailing_garbage_reject(op in arb_op(), extra in 1usize..8) {
        let mut payload = Vec::new();
        encode_op(&op, &mut payload);
        payload.extend(std::iter::repeat_n(0xAA, extra));
        prop_assert!(decode_op(&payload).is_err());
    }
}
