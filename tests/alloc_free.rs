// A counting GlobalAlloc needs `unsafe impl`; the workspace denies unsafe
// code everywhere else — this test binary is the single, audited exception
// (it only counts and forwards to the system allocator).
#![allow(unsafe_code)]

//! Steady-state allocation audit for the query hot path.
//!
//! The dense kernel's contract is that a warmed-up [`QuerySession`] answers
//! queries with **zero heap allocations**: the stamped slabs and both
//! indexed heaps are pre-sized against `|G_k|` (decrease-key bounds each
//! heap by one entry per vertex) and the seed buffers against the longest
//! label. This test installs a counting allocator, arms it after session
//! creation, replays a mixed query workload through every engine whose
//! session is documented allocation-free, and asserts the counter stayed
//! at zero.
//!
//! The whole audit runs as **one** `#[test]` so no concurrent test thread
//! can allocate while the counter is armed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System`; the counter is updated with
// atomics and performs no allocation itself.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds GlobalAlloc's contract; we only count.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: `layout` is forwarded unchanged to `System`.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller upholds GlobalAlloc's contract; we only count.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: `layout` is forwarded unchanged to `System`.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: caller upholds GlobalAlloc's contract; we only count.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: `ptr`/`layout`/`new_size` are forwarded unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: caller upholds GlobalAlloc's contract; we only count.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from `System` via the methods above.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `queries` through `run` with the counter armed; returns the number
/// of allocations the closure performed.
fn audited<F: FnMut()>(mut run: F) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    run();
    ARMED.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

#[test]
fn sessions_answer_queries_without_allocating() {
    use islabel::graph::generators::{barabasi_albert, WeightModel};
    use islabel::prelude::*;

    let n = 2000usize;
    let g = barabasi_albert(n, 3, WeightModel::UniformRange(1, 6), 42);
    let pairs: Vec<(VertexId, VertexId)> = (0..500u32)
        .map(|i| ((i * 97) % n as u32, (i * 131 + 50) % n as u32))
        .collect();

    // --- IS-LABEL: the tentpole claim. ---
    let index = IsLabelIndex::build(&g, BuildConfig::default());
    assert!(
        index.hierarchy().num_gk_vertices() > 0,
        "audit needs a non-trivial G_k"
    );
    let mut session = index.session();
    let mut checksum = 0u64;
    let count = audited(|| {
        for &(s, t) in &pairs {
            if let Ok(Some(d)) = session.distance(s, t) {
                checksum = checksum.wrapping_add(d);
            }
        }
    });
    assert_eq!(
        count,
        0,
        "IsLabelSession allocated {count} times over {} queries",
        pairs.len()
    );
    drop(session);

    // --- Every supported kernel tier holds the same contract. ---
    // Tier resolution (env read) happens at session construction, outside
    // the armed region; the armed queries then run the forced SIMD (or
    // scalar) intersection kernel, which must not allocate either.
    for tier in islabel::core::KernelTier::ALL {
        if !tier.is_supported() {
            continue;
        }
        islabel::core::kernel::force_tier(Some(tier));
        let mut session = index.session();
        let mut tier_checksum = 0u64;
        let count = audited(|| {
            for &(s, t) in &pairs {
                if let Ok(Some(d)) = session.distance(s, t) {
                    tier_checksum = tier_checksum.wrapping_add(d);
                }
            }
        });
        assert_eq!(
            count,
            0,
            "IsLabelSession on the {} kernel tier allocated {count} times",
            tier.name()
        );
        assert_eq!(tier_checksum, checksum, "{} tier checksum", tier.name());
    }
    islabel::core::kernel::force_tier(None);

    // --- IS-LABEL with pending updates: the PatchedDense session path. ---
    // A non-pristine index must stay on the dense kernel: the session
    // snapshots the overlay into a DensePatch at open time and pre-sizes
    // every buffer for the patched universe, so queries against an index
    // carrying inserts, new vertices, and tombstones allocate nothing.
    let mut updated = IsLabelIndex::build(&g, BuildConfig::default());
    for i in 0..30u32 {
        let a = (i * 37 + 1) % 1800;
        let b = (i * 53 + 400) % 1800;
        if a != b {
            updated.insert_edge(a, b, i % 5 + 1);
        }
    }
    for i in 0..10u32 {
        updated.insert_vertex(&[((i * 97 + 3) % 1800, 2), ((i * 61 + 700) % 1800, 4)]);
    }
    for v in 1900..1916u32 {
        updated.delete_vertex(v);
    }
    assert!(updated.has_updates());
    let mut patched_session = updated.session();
    let count = audited(|| {
        for &(s, t) in &pairs[..200] {
            if let Ok(Some(d)) = patched_session.distance(s, t) {
                checksum = checksum.wrapping_add(d);
            }
        }
    });
    assert_eq!(
        count, 0,
        "patched IsLabelSession allocated {count} times over 200 queries"
    );
    // Outside the armed region: the patched dense path must agree with the
    // hashmap overlay one-shot path on every audited pair.
    for &(s, t) in &pairs[..200] {
        assert_eq!(
            patched_session.distance(s, t).unwrap(),
            updated.try_distance(s, t).unwrap(),
            "patched session vs try_distance ({s}, {t})"
        );
    }
    drop(patched_session);

    // --- di-IS-LABEL over the symmetrized digraph. ---
    let mut b = DigraphBuilder::new(n);
    for (u, v, w) in g.edge_list() {
        b.add_arc(u, v, w);
        b.add_arc(v, u, w);
    }
    let dg = b.build();
    let di = DiIsLabelIndex::build(&dg, BuildConfig::default());
    let mut di_session = di.session();
    let count = audited(|| {
        for &(s, t) in &pairs {
            if let Ok(Some(d)) = di_session.distance(s, t) {
                checksum = checksum.wrapping_add(d);
            }
        }
    });
    assert_eq!(count, 0, "DiIsLabelSession allocated {count} times");
    drop(di_session);

    // --- The baselines sharing the indexed heap + stamped slabs. ---
    let bidij = BiDijkstraOracle::new(g.clone());
    let mut bd_session = DistanceOracle::session(&bidij);
    let count = audited(|| {
        for &(s, t) in &pairs[..100] {
            if let Ok(Some(d)) = bd_session.distance(s, t) {
                checksum = checksum.wrapping_add(d);
            }
        }
    });
    assert_eq!(count, 0, "BiDijkstraSession allocated {count} times");
    drop(bd_session);

    let vc = VcIndex::build(&g, VcConfig::default());
    let mut vc_session = DistanceOracle::session(&vc);
    let count = audited(|| {
        for &(s, t) in &pairs[..100] {
            if let Ok(Some(d)) = vc_session.distance(s, t) {
                checksum = checksum.wrapping_add(d);
            }
        }
    });
    assert_eq!(count, 0, "VcSession allocated {count} times");

    // The checksum keeps the query loops observable.
    assert!(checksum > 0);
}
