#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! # islabel — facade crate
//!
//! Re-exports the whole IS-LABEL workspace behind one dependency:
//!
//! * [`graph`] — graph substrate (CSR graphs, builders, generators, I/O).
//! * [`extmem`] — external-memory substrate (block devices, external sort,
//!   I/O accounting).
//! * [`core`] — the IS-LABEL index itself (hierarchy, labels, queries).
//! * [`baselines`] — comparison methods (Dijkstra, bi-Dijkstra, VC-Index,
//!   Pruned Landmark Labeling).
//! * [`serve`] — the concurrent serving layer ([`QueryService`] worker
//!   pool over hot-swappable [`Snapshot`]s).
//! * [`net`] — the network boundary: a binary wire protocol, a pipelining
//!   TCP [`DistanceServer`], and a blocking [`DistanceClient`] /
//!   [`ClientPool`].
//! * [`store`] — the on-disk v3 `.islx` artifact: flat sectioned format,
//!   streaming writer, and the validating zero-copy mapped reader that
//!   [`MmapIndex`] serves from.
//!
//! The most common entry points are re-exported at the top level:
//!
//! ```
//! use islabel::{GraphBuilder, IsLabelIndex, BuildConfig};
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1, 1);
//! b.add_edge(1, 2, 2);
//! b.add_edge(2, 3, 1);
//! let g = b.build();
//!
//! let index = IsLabelIndex::build(&g, BuildConfig::default());
//! assert_eq!(index.distance(0, 3), Some(4));
//! assert_eq!(index.distance(3, 3), Some(0));
//! ```
//!
//! Engine-agnostic code programs against [`DistanceOracle`] and builds any
//! engine through the [`Engine`] registry (see [`prelude`]):
//!
//! ```
//! use islabel::prelude::*;
//!
//! let mut b = GraphBuilder::new(3);
//! b.add_edge(0, 1, 4);
//! let g = b.build();
//! for engine in Engine::ALL {
//!     let oracle = build_oracle(engine, &g, &BuildConfig::default()).unwrap();
//!     assert_eq!(oracle.try_distance(0, 1), Ok(Some(4)));
//!     assert_eq!(oracle.try_distance(0, 2), Ok(None)); // unreachable
//!     assert!(oracle.try_distance(0, 7).is_err()); // typed, not a panic
//! }
//! ```

pub use islabel_baselines as baselines;
pub use islabel_core as core;
pub use islabel_extmem as extmem;
pub use islabel_graph as graph;
pub use islabel_net as net;
pub use islabel_serve as serve;
pub use islabel_store as store;

pub use islabel_baselines::{build_oracle, BiDijkstraOracle, Engine};
pub use islabel_core::{
    BatchOptions, BuildConfig, DiIsLabelIndex, DistanceOracle, Error, IsLabelIndex, MmapIndex,
    OracleHandle, QueryError, QuerySession, SharedOracle, Snapshot,
};
pub use islabel_graph::{
    CsrDigraph, CsrGraph, Dataset, DigraphBuilder, Dist, GraphBuilder, Scale, VertexId, Weight, INF,
};
pub use islabel_net::{ClientPool, DistanceClient, DistanceServer, NetConfig, NetError};
pub use islabel_serve::{
    BatchTicket, LatencyHistogram, QueryService, ServeConfig, ServiceStats, ShardStats,
};

/// One-stop imports for programming against the unified query API.
pub mod prelude {
    pub use islabel_baselines::{build_oracle, BiDijkstraOracle, Engine};
    pub use islabel_baselines::{PllIndex, VcConfig, VcIndex};
    pub use islabel_core::{
        BatchOptions, BuildConfig, DiIsLabelIndex, DistanceOracle, Error, IsLabelIndex, MmapIndex,
        OracleHandle, QueryError, QuerySession, SharedOracle, Snapshot,
    };
    pub use islabel_graph::{
        CsrDigraph, CsrGraph, DigraphBuilder, Dist, GraphBuilder, VertexId, Weight, INF,
    };
    pub use islabel_net::{ClientPool, DistanceClient, DistanceServer, NetConfig, NetError};
    pub use islabel_serve::{
        BatchTicket, LatencyHistogram, QueryService, ServeConfig, ServiceStats, ShardStats,
    };
}
