//! # islabel — facade crate
//!
//! Re-exports the whole IS-LABEL workspace behind one dependency:
//!
//! * [`graph`] — graph substrate (CSR graphs, builders, generators, I/O).
//! * [`extmem`] — external-memory substrate (block devices, external sort,
//!   I/O accounting).
//! * [`core`] — the IS-LABEL index itself (hierarchy, labels, queries).
//! * [`baselines`] — comparison methods (Dijkstra, bi-Dijkstra, VC-Index,
//!   Pruned Landmark Labeling).
//!
//! The most common entry points are re-exported at the top level:
//!
//! ```
//! use islabel::{GraphBuilder, IsLabelIndex, BuildConfig};
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1, 1);
//! b.add_edge(1, 2, 2);
//! b.add_edge(2, 3, 1);
//! let g = b.build();
//!
//! let index = IsLabelIndex::build(&g, BuildConfig::default());
//! assert_eq!(index.distance(0, 3), Some(4));
//! assert_eq!(index.distance(3, 3), Some(0));
//! ```

pub use islabel_baselines as baselines;
pub use islabel_core as core;
pub use islabel_extmem as extmem;
pub use islabel_graph as graph;

pub use islabel_core::{BuildConfig, DiIsLabelIndex, IsLabelIndex};
pub use islabel_graph::{
    CsrDigraph, CsrGraph, Dataset, DigraphBuilder, Dist, GraphBuilder, Scale, VertexId, Weight, INF,
};
