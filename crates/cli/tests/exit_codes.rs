//! Process-level exit-code contract for the `islabel` binary: scripts and
//! CI gate on these, so they are asserted here against the real executable
//! rather than the in-process `run()` helper.

use std::path::PathBuf;
use std::process::{Command, Output};

fn islabel(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_islabel"))
        .args(args)
        .output()
        .expect("spawn islabel")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("islabel-exit-{}-{name}", std::process::id()))
}

#[test]
fn help_exits_zero_and_documents_exit_codes() {
    let out = islabel(&["--help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("EXIT CODES"),
        "--help must document exit codes"
    );
    assert!(text.contains("recover\n        --check") || text.contains("recover"));
    assert!(text.contains("remote-query"));
}

#[test]
fn unknown_command_exits_one_with_error_on_stderr() {
    let out = islabel(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"), "stderr was: {err}");
    assert!(err.contains("frobnicate"), "stderr was: {err}");
}

#[test]
fn recover_check_exit_codes() {
    let graph = tmp("g.isgb");
    let index = tmp("i.islx");
    let wal = tmp("w.wal");
    let graph_s = graph.to_str().unwrap();
    let index_s = index.to_str().unwrap();
    let wal_s = wal.to_str().unwrap();

    assert!(
        islabel(&["gen", "google", "--scale", "tiny", "-o", graph_s])
            .status
            .success()
    );
    assert!(islabel(&["build", graph_s, "-o", index_s]).status.success());
    assert!(
        islabel(&["ingest", index_s, "--wal", wal_s, "--ops", "30", "--seed", "3"])
            .status
            .success()
    );

    // Healthy artifact + WAL: recover --check exits 0.
    let out = islabel(&["recover", index_s, "--wal", wal_s, "--check"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A WAL that is not a WAL: exit 1 and `error:` on stderr.
    std::fs::write(&wal, b"this is not a write-ahead log").unwrap();
    let out = islabel(&["recover", index_s, "--wal", wal_s, "--check"]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"), "stderr was: {err}");

    for f in [&graph, &index, &wal] {
        std::fs::remove_file(f).ok();
    }
}

#[test]
fn remote_query_against_dead_port_exits_one() {
    // Bind-then-drop reserves a port that nothing is listening on.
    let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = probe.local_addr().unwrap().to_string();
    drop(probe);

    let out = islabel(&["remote-query", &addr, "--ping"]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"), "stderr was: {err}");
}
