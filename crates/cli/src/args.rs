//! Tiny dependency-free flag parser: positional arguments plus
//! `--flag[=value]` / `--flag value` options.

use std::collections::BTreeMap;

/// Parsed command-line arguments.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
    /// Option names the command recognizes as taking a value.
    value_options: &'static [&'static str],
}

impl Args {
    /// Parses `argv`, treating any name in `value_options` as requiring a
    /// value (either `--name value` or `--name=value`); other `--name`
    /// occurrences are boolean flags.
    pub fn parse(argv: &[String], value_options: &'static [&'static str]) -> Result<Self, String> {
        let mut out = Args {
            value_options,
            ..Default::default()
        };
        let mut it = argv.iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if let Some((key, value)) = name.split_once('=') {
                    out.options.insert(key.to_string(), value.to_string());
                } else if value_options.contains(&name) {
                    let value = it
                        .next()
                        .ok_or_else(|| format!("--{name} requires a value"))?;
                    out.options.insert(name.to_string(), value.clone());
                } else {
                    out.flags.push(name.to_string());
                }
            } else if let Some(name) = arg.strip_prefix("-") {
                // Short alias: only -o for --out.
                if name == "o" {
                    let value = it.next().ok_or_else(|| "-o requires a value".to_string())?;
                    out.options.insert("out".to_string(), value.clone());
                } else {
                    return Err(format!("unknown option -{name}"));
                }
            } else {
                out.positional.push(arg.clone());
            }
        }
        Ok(out)
    }

    /// The `i`-th positional argument.
    pub fn pos(&self, i: usize, what: &str) -> Result<&str, String> {
        self.positional
            .get(i)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing {what}"))
    }

    /// Optional `--name value`.
    pub fn opt(&self, name: &str) -> Option<&str> {
        debug_assert!(
            self.value_options.contains(&name),
            "undeclared option {name}"
        );
        self.options.get(name).map(|s| s.as_str())
    }

    /// Parsed optional value.
    pub fn opt_parse<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.opt(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value '{v}' for --{name}")),
        }
    }

    /// Boolean `--name`.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Errors on unrecognized flags (catches typos).
    pub fn reject_unknown_flags(&self, known: &[&str]) -> Result<(), String> {
        for f in &self.flags {
            if !known.contains(&f.as_str()) {
                return Err(format!("unknown flag --{f}"));
            }
        }
        for k in self.options.keys() {
            if !self.value_options.contains(&k.as_str()) {
                return Err(format!("unknown option --{k}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn positional_and_options() {
        let a = Args::parse(
            &argv(&["graph.txt", "--sigma", "0.9", "--path", "-o", "x.islx"]),
            &["sigma", "out"],
        )
        .unwrap();
        assert_eq!(a.pos(0, "graph").unwrap(), "graph.txt");
        assert_eq!(a.opt("sigma"), Some("0.9"));
        assert_eq!(a.opt("out"), Some("x.islx"));
        assert!(a.flag("path"));
        assert!(!a.flag("other"));
    }

    #[test]
    fn equals_syntax() {
        let a = Args::parse(&argv(&["--sigma=0.85"]), &["sigma"]).unwrap();
        assert_eq!(a.opt_parse::<f64>("sigma").unwrap(), Some(0.85));
    }

    #[test]
    fn missing_value_errors() {
        assert!(Args::parse(&argv(&["--sigma"]), &["sigma"]).is_err());
    }

    #[test]
    fn unknown_flag_rejected() {
        let a = Args::parse(&argv(&["--bogus"]), &[]).unwrap();
        assert!(a.reject_unknown_flags(&["path"]).is_err());
    }

    #[test]
    fn bad_parse_reports_name() {
        let a = Args::parse(&argv(&["--sigma", "abc"]), &["sigma"]).unwrap();
        let err = a.opt_parse::<f64>("sigma").unwrap_err();
        assert!(err.contains("sigma"), "{err}");
    }
}
