#![forbid(unsafe_code)]

//! `islabel` — command-line interface to the IS-LABEL index.
//!
//! ```text
//! islabel gen <dataset> [--scale S] [-o graph.isgb]       generate a stand-in dataset
//! islabel convert <in> <out>                              edge-list <-> binary graph
//! islabel build <graph> -o index.islx [options]           build and persist an index
//! islabel query <index.islx> <s> <t> [--path]             one query
//! islabel bench <index.islx> [--queries N] [--seed S]     random-query benchmark
//! islabel serve <index.islx> [--shards N] [--smoke]       closed-loop serving workload
//! islabel serve <index.islx> --listen ADDR                TCP wire-protocol server
//! islabel remote-query <addr> [s t] [--stats|--shutdown]  client of a --listen server
//! islabel stats <index.islx|graph>                        artifact statistics
//! ```
//!
//! Graphs are read as edge lists (`.txt`, see `islabel_graph::io`) or binary
//! CSR snapshots (`.isgb`); indexes are the self-contained `.islx` artifact
//! of `islabel_core::persist`. Argument parsing is deliberately dependency-
//! free.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
