//! Command implementations.

use crate::args::Args;
use islabel_baselines::{build_oracle, Engine};
use islabel_core::persist::{
    compact_index_with_wal, load_index_from_path, load_index_with_wal, try_save_index_to_path,
};
use islabel_core::{
    BatchOptions, BuildConfig, DistanceOracle, IsLabelIndex, KSelection, QueryError, WalRecovery,
};
use islabel_extmem::storage::Storage as _;
use islabel_graph::algo::stats::{human_bytes, human_count};
use islabel_graph::io::{read_csr_binary, read_edge_list, write_csr_binary, write_edge_list};
use islabel_graph::{CsrGraph, Dataset, Scale, VertexId};
use islabel_net::{DistanceClient, DistanceServer, NetConfig};
use islabel_serve::{QueryService, ServeConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::path::Path;
use std::time::Instant;

const USAGE: &str = "\
islabel — IS-LABEL point-to-point distance index (VLDB 2013 reproduction)

USAGE:
    islabel gen <dataset> [--scale tiny|small|medium|large] [-o out.isgb]
    islabel convert <in> <out>                 (.txt <-> .isgb by extension)
    islabel convert <in.islx> <out.islx> --to v3|v2   (index format versions)
    islabel build <graph> -o <index.islx> [--sigma F | --k N | --full]
                  [--no-paths] [--external [--workdir DIR]]
    islabel query <index.islx | graph> <s> <t> [--path] [--engine E]
    islabel bench <index.islx | graph> [--queries N] [--seed S]
                  [--threads N] [--engine E]
    islabel serve [index.islx | graph] [--engine E] [--shards N]
                  [--clients N] [--requests N] [--batch B] [--seed S]
                  [--smoke] [--slow-query-ms MS]
    islabel serve <index.islx | graph> --listen ADDR [--engine E]
                  [--no-reload] [--admin-token T] [--wal WAL]
                  [--slow-query-ms MS]               (TCP server; see README)
    islabel remote-query <ADDR> [s t] [--ping] [--stats] [--token T]
                  [--reload PATH] [--compact] [--shutdown]
    islabel metrics <ADDR | --addr ADDR> [--watch SECS]
                  (scrape a server's Prometheus exposition; see README)
    islabel ingest <index.islx> --wal WAL [--ops N] [--seed S]
                  [--sleep-ms MS]       (apply WAL-logged random updates)
    islabel recover <index.islx> --wal WAL [--check]
    islabel compact <index.islx> --wal WAL   (fold the WAL into a rebuild)
    islabel stats <index.islx | graph> [--file]
                  (--file: on-disk format version, section sizes, residency)

ENGINES (for graph inputs; an .islx artifact is always an IS-LABEL index):
    islabel (default), di-islabel, pll, vc, bidij

DATASETS: btc, web, skitter, wikitalk, google (synthetic stand-ins for the
paper's evaluation graphs; see DESIGN.md).

EXIT CODES:
    0   success
    1   any failure, printed to stderr as `error: ...` — bad arguments or
        an unknown command, unreadable/corrupt artifacts, a `recover
        --check` cross-validation mismatch, or a `remote-query` that
        cannot connect or receives a wire error from the server.";

/// Routes `argv` to a command.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = argv.split_first() else {
        println!("{USAGE}");
        return Ok(());
    };
    match cmd.as_str() {
        "gen" => gen(rest),
        "convert" => convert(rest),
        "build" => build(rest),
        "query" => query(rest),
        "bench" => bench(rest),
        "serve" => serve(rest),
        "remote-query" => remote_query(rest),
        "metrics" => metrics(rest),
        "ingest" => ingest(rest),
        "recover" => recover(rest),
        "compact" => compact(rest),
        "stats" => stats(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

fn parse_dataset(name: &str) -> Result<Dataset, String> {
    Ok(match name {
        "btc" => Dataset::BtcLike,
        "web" => Dataset::WebLike,
        "skitter" => Dataset::SkitterLike,
        "wikitalk" => Dataset::WikiTalkLike,
        "google" => Dataset::GoogleLike,
        other => {
            return Err(format!(
                "unknown dataset '{other}' (btc|web|skitter|wikitalk|google)"
            ))
        }
    })
}

fn parse_scale(name: &str) -> Result<Scale, String> {
    Ok(match name {
        "tiny" => Scale::Tiny,
        "small" => Scale::Small,
        "medium" => Scale::Medium,
        "large" => Scale::Large,
        other => return Err(format!("unknown scale '{other}' (tiny|small|medium|large)")),
    })
}

fn load_graph(path: &str) -> Result<CsrGraph, String> {
    let p = Path::new(path);
    let file = std::fs::File::open(p).map_err(|e| format!("open {path}: {e}"))?;
    if p.extension().is_some_and(|e| e == "isgb") {
        read_csr_binary(&mut std::io::BufReader::new(file)).map_err(|e| format!("read {path}: {e}"))
    } else {
        read_edge_list(file).map_err(|e| format!("parse {path}: {e}"))
    }
}

fn save_graph(g: &CsrGraph, path: &str) -> Result<(), String> {
    let p = Path::new(path);
    let file = std::fs::File::create(p).map_err(|e| format!("create {path}: {e}"))?;
    let mut w = std::io::BufWriter::new(file);
    if p.extension().is_some_and(|e| e == "isgb") {
        write_csr_binary(g, &mut w).map_err(|e| format!("write {path}: {e}"))
    } else {
        write_edge_list(g, &mut w).map_err(|e| format!("write {path}: {e}"))
    }
}

fn gen(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["scale", "out"])?;
    args.reject_unknown_flags(&[])?;
    let dataset = parse_dataset(args.pos(0, "dataset name")?)?;
    let scale = parse_scale(args.opt("scale").unwrap_or("small"))?;
    let out = args
        .opt("out")
        .map(str::to_string)
        .unwrap_or_else(|| format!("{}.isgb", args.pos(0, "dataset").unwrap()));
    let t0 = Instant::now();
    let g = dataset.generate(scale);
    save_graph(&g, &out)?;
    println!(
        "{}: {} vertices, {} edges (avg deg {:.2}, max {}) -> {out} in {:.2?}",
        dataset.name(),
        human_count(g.num_vertices()),
        human_count(g.num_edges()),
        g.avg_degree(),
        g.max_degree(),
        t0.elapsed()
    );
    Ok(())
}

fn convert(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["to"])?;
    args.reject_unknown_flags(&[])?;
    let input = args.pos(0, "input path")?;
    let output = args.pos(1, "output path")?;
    if input.ends_with(".islx") {
        // Index-format conversion: load whichever version `input` is
        // (auto-detected) and rewrite it as the requested version.
        if !output.ends_with(".islx") {
            return Err("index conversion needs an .islx output path".into());
        }
        let to = args.opt("to").unwrap_or("v3");
        let index = load_index_from_path(input).map_err(|e| format!("load {input}: {e}"))?;
        match to {
            "v3" => islabel_core::persist::save_index_to_path(&index, output),
            "v2" => islabel_core::persist::save_index_v2_to_path(&index, output),
            other => return Err(format!("--to {other}: expected v2 or v3")),
        }
        .map_err(|e| format!("save {output}: {e}"))?;
        let bytes = std::fs::metadata(output).map(|m| m.len()).unwrap_or(0);
        println!(
            "{input} -> {output} ({to} artifact, {} vertices, {} pending op(s), {})",
            human_count(index.num_vertices()),
            index.pending_ops(),
            human_bytes(bytes as usize)
        );
        return Ok(());
    }
    if args.opt("to").is_some() {
        return Err("--to only applies to .islx index inputs".into());
    }
    let g = load_graph(input)?;
    save_graph(&g, output)?;
    println!(
        "{input} -> {output} ({} vertices, {} edges)",
        g.num_vertices(),
        g.num_edges()
    );
    Ok(())
}

fn build(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["sigma", "k", "out", "workdir"])?;
    args.reject_unknown_flags(&["full", "no-paths", "external"])?;
    let graph_path = args.pos(0, "graph path")?;
    let out = args
        .opt("out")
        .ok_or("missing -o <index.islx>")?
        .to_string();

    let mut config = BuildConfig::default();
    match (
        args.opt_parse::<f64>("sigma")?,
        args.opt_parse::<u32>("k")?,
        args.flag("full"),
    ) {
        (Some(_), Some(_), _) | (Some(_), _, true) | (_, Some(_), true) => {
            return Err("--sigma, --k and --full are mutually exclusive".into())
        }
        (Some(s), None, false) => config.k_selection = KSelection::SigmaThreshold(s),
        (None, Some(k), false) => config.k_selection = KSelection::FixedK(k),
        (None, None, true) => config.k_selection = KSelection::Full,
        (None, None, false) => {}
    }
    if args.flag("no-paths") {
        config.keep_path_info = false;
    }
    config.try_validate().map_err(|e| e.to_string())?;

    let g = load_graph(graph_path)?;
    println!(
        "building over {} vertices / {} edges ...",
        human_count(g.num_vertices()),
        human_count(g.num_edges())
    );
    let index = if args.flag("external") {
        let workdir = args.opt("workdir").map(str::to_string).unwrap_or_else(|| {
            std::env::temp_dir()
                .join("islabel-build")
                .to_string_lossy()
                .into_owned()
        });
        let storage = islabel_extmem::DirStorage::new(&workdir)
            .map_err(|e| format!("workdir {workdir}: {e}"))?;
        let index = islabel_core::embuild::build_external_from_csr(
            &storage,
            &g,
            config,
            islabel_core::embuild::EmConfig::default(),
        )
        .map_err(|e| format!("external build: {e}"))?;
        let io = storage.stats().snapshot();
        println!(
            "external build I/O: {} read, {} written",
            human_bytes(io.bytes_read as usize),
            human_bytes(io.bytes_written as usize)
        );
        index
    } else {
        IsLabelIndex::build(&g, config)
    };
    println!("{}", index.stats());
    try_save_index_to_path(&index, &out).map_err(|e| format!("save {out}: {e}"))?;
    let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    println!("index written to {out} ({})", human_bytes(bytes as usize));
    Ok(())
}

/// A queryable engine a command was pointed at. The concrete index is kept
/// when available because `--path` needs more than the trait exposes.
enum Loaded {
    Index(Box<IsLabelIndex>),
    Oracle(Box<dyn DistanceOracle>),
}

impl Loaded {
    fn as_oracle(&self) -> &dyn DistanceOracle {
        match self {
            Loaded::Index(index) => index.as_ref(),
            Loaded::Oracle(oracle) => oracle.as_ref(),
        }
    }
}

/// Loads an `.islx` artifact (always the IS-LABEL index) or builds the
/// selected `--engine` in-process from a graph file.
fn load_engine(engine_opt: Option<&str>, input: &str) -> Result<Loaded, String> {
    let engine = match engine_opt {
        Some(name) => Engine::parse(name).map_err(|e| e.to_string())?,
        None => Engine::IsLabel,
    };
    if input.ends_with(".islx") {
        if engine != Engine::IsLabel {
            return Err(format!(
                "--engine {engine} needs a graph input; {input} is a prebuilt IS-LABEL index"
            ));
        }
        let index = load_index_from_path(input).map_err(|e| format!("load {input}: {e}"))?;
        return Ok(Loaded::Index(Box::new(index)));
    }
    let g = load_graph(input)?;
    println!(
        "building engine '{engine}' over {} vertices / {} edges ...",
        human_count(g.num_vertices()),
        human_count(g.num_edges())
    );
    // Keep the concrete index for the default engine so `--path` works on
    // graph inputs too, not only on prebuilt .islx artifacts.
    if engine == Engine::IsLabel {
        let index =
            IsLabelIndex::try_build(&g, BuildConfig::default()).map_err(|e| e.to_string())?;
        return Ok(Loaded::Index(Box::new(index)));
    }
    let oracle = build_oracle(engine, &g, &BuildConfig::default()).map_err(|e| e.to_string())?;
    Ok(Loaded::Oracle(oracle))
}

fn query(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["engine"])?;
    args.reject_unknown_flags(&["path"])?;
    let input = args.pos(0, "index or graph path")?;
    let s: VertexId = args
        .pos(1, "source vertex")?
        .parse()
        .map_err(|_| "invalid source vertex id")?;
    let t: VertexId = args
        .pos(2, "target vertex")?
        .parse()
        .map_err(|_| "invalid target vertex id")?;
    let loaded = load_engine(args.opt("engine"), input)?;
    let oracle = loaded.as_oracle();
    let t0 = Instant::now();
    let d = oracle.try_distance(s, t).map_err(|e| e.to_string())?;
    let took = t0.elapsed();
    match d {
        Some(d) => println!("dist({s}, {t}) = {d}   [{took:.2?}]"),
        None => println!("dist({s}, {t}) = unreachable   [{took:.2?}]"),
    }
    if args.flag("path") {
        match &loaded {
            Loaded::Index(index) => match index.try_shortest_path(s, t) {
                Ok(Some(p)) => {
                    let verts: Vec<String> = p.vertices.iter().map(|v| v.to_string()).collect();
                    println!("path ({} edges): {}", p.num_edges(), verts.join(" -> "));
                }
                Ok(None) => {}
                Err(QueryError::NoPathInfo) => {
                    println!("path unavailable (index built with --no-paths)")
                }
                Err(e) => return Err(e.to_string()),
            },
            Loaded::Oracle(o) => println!(
                "path unavailable (--engine {} answers distances only; build an .islx index)",
                o.engine_name()
            ),
        }
    }
    Ok(())
}

fn bench(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["queries", "seed", "threads", "engine"])?;
    args.reject_unknown_flags(&[])?;
    let input = args.pos(0, "index or graph path")?;
    let queries: usize = args.opt_parse("queries")?.unwrap_or(1000);
    let seed: u64 = args.opt_parse("seed")?.unwrap_or(42);
    let threads: usize = args.opt_parse("threads")?.unwrap_or(1);
    let loaded = load_engine(args.opt("engine"), input)?;
    let oracle = loaded.as_oracle();
    let n = oracle.num_vertices();
    if n < 2 {
        return Err("index too small to benchmark".into());
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let pairs: Vec<(VertexId, VertexId)> = (0..queries)
        .map(|_| {
            (
                rng.gen_range(0..n as VertexId),
                rng.gen_range(0..n as VertexId),
            )
        })
        .collect();
    let t0 = Instant::now();
    let answers = oracle
        .distance_batch(&pairs, BatchOptions::with_threads(threads))
        .map_err(|e| e.to_string())?;
    let took = t0.elapsed();
    let reachable = answers.iter().filter(|d| d.is_some()).count();
    let checksum = answers
        .iter()
        .flatten()
        .fold(0u64, |acc, &d| acc.wrapping_add(d));
    println!(
        "[{}] {queries} queries in {took:.2?} ({:.1} µs/query, {} threads); \
         {reachable} reachable, checksum {checksum}; index {}",
        oracle.engine_name(),
        took.as_secs_f64() * 1e6 / queries as f64,
        BatchOptions::with_threads(threads).effective_threads(queries),
        human_bytes(oracle.index_bytes())
    );
    Ok(())
}

/// Drives a synthetic closed-loop workload through a [`QueryService`] and
/// prints per-shard and latency tables. `--smoke` is the one-shot CI mode:
/// small fixed workload, in-memory generated graph if no input is given,
/// and a correctness cross-check that fails the command on any mismatch.
fn serve(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(
        argv,
        &[
            "engine",
            "shards",
            "clients",
            "requests",
            "batch",
            "seed",
            "listen",
            "admin-token",
            "wal",
            "slow-query-ms",
        ],
    )?;
    args.reject_unknown_flags(&["smoke", "no-reload"])?;
    let smoke = args.flag("smoke");

    // Arm the process-wide slow-query log before any query runs; entries
    // surface in the `metrics` exposition (wire opcode 0x08).
    if let Some(ms) = args.opt_parse::<u64>("slow-query-ms")? {
        islabel_obs::SlowQueryLog::global().set_threshold_ns(ms.saturating_mul(1_000_000));
        println!("slow-query log armed at {ms} ms");
    }

    // The wire server takes no workload: the closed-loop options are
    // in-process-mode only, and silently dropping them would turn a
    // mistyped smoke run into an indefinite hang. Checked before any
    // index loading so the mistake surfaces immediately.
    if args.opt("listen").is_some() {
        if smoke {
            return Err("--listen and --smoke are mutually exclusive \
                 (the network smoke drives the server via `remote-query`)"
                .into());
        }
        for opt in ["shards", "clients", "requests", "batch", "seed"] {
            if args.opt(opt).is_some() {
                return Err(format!(
                    "--{opt} applies to the in-process workload mode, not --listen"
                ));
            }
        }
    } else {
        for opt in ["admin-token", "wal"] {
            if args.opt(opt).is_some() {
                return Err(format!("--{opt} applies to the --listen wire server only"));
            }
        }
    }
    // Wire compaction rebuilds from the on-disk artifact + WAL pair, so it
    // needs an .islx input, not an engine built in memory from a graph.
    if args.opt("wal").is_some() && !args.pos(0, "input").is_ok_and(|p| p.ends_with(".islx")) {
        return Err(
            "--wal needs an .islx index input (compaction rebuilds from the artifact)".into(),
        );
    }

    let loaded = match args.pos(0, "index or graph path") {
        Ok(path) => load_engine(args.opt("engine"), path)?,
        Err(_) if smoke => {
            // One-shot mode needs no artifacts: generate a tiny stand-in
            // graph in memory and build the selected engine over it.
            let engine = match args.opt("engine") {
                Some(name) => Engine::parse(name).map_err(|e| e.to_string())?,
                None => Engine::IsLabel,
            };
            let g = Dataset::GoogleLike.generate(Scale::Tiny);
            println!(
                "smoke: engine '{engine}' over generated graph ({} vertices, {} edges)",
                human_count(g.num_vertices()),
                human_count(g.num_edges())
            );
            Loaded::Oracle(
                build_oracle(engine, &g, &BuildConfig::default()).map_err(|e| e.to_string())?,
            )
        }
        Err(e) => return Err(format!("{e} (or pass --smoke to generate one)")),
    };
    let oracle: std::sync::Arc<dyn DistanceOracle> = match loaded {
        Loaded::Index(index) => std::sync::Arc::new(*index),
        Loaded::Oracle(boxed) => std::sync::Arc::from(boxed),
    };
    let n = oracle.num_vertices();
    if n < 2 {
        return Err("index too small to serve".into());
    }

    if let Some(listen) = args.opt("listen") {
        let wal = args.opt("wal").map(|wal| {
            (
                args.pos(0, "index path").unwrap().to_string(),
                wal.to_string(),
            )
        });
        return serve_listen(
            oracle,
            listen,
            !args.flag("no-reload"),
            args.opt("admin-token"),
            wal,
        );
    }

    let shards: usize = args
        .opt_parse("shards")?
        .unwrap_or(if smoke { 2 } else { 0 });
    let clients: usize = args
        .opt_parse("clients")?
        .unwrap_or(if smoke { 2 } else { 4 });
    let requests: usize = args
        .opt_parse("requests")?
        .unwrap_or(if smoke { 400 } else { 20_000 });
    let batch: usize = args
        .opt_parse("batch")?
        .unwrap_or(if smoke { 16 } else { 64 });
    let seed: u64 = args.opt_parse("seed")?.unwrap_or(42);
    if clients == 0 || requests == 0 || batch == 0 {
        return Err("--clients, --requests and --batch must be positive".into());
    }

    let service = QueryService::start(
        std::sync::Arc::clone(&oracle),
        ServeConfig {
            shards,
            queue_capacity: 256,
        },
    );
    // Re-emit the per-shard counters through the process-wide registry so
    // the same exposition the wire server streams is available here.
    service.register_metrics(islabel_obs::Registry::global());
    println!(
        "serving [{}] on {} shard(s): {} clients x {} requests (batch {})",
        oracle.engine_name(),
        service.num_shards(),
        clients,
        requests,
        batch
    );

    // Cross-check one deterministic batch against the direct query path —
    // in smoke mode this is the assertion CI relies on.
    let check: Vec<(VertexId, VertexId)> = (0..64usize)
        .map(|i| (((i * 13) % n) as VertexId, ((i * 29 + 7) % n) as VertexId))
        .collect();
    let served = service.submit(&check).wait().map_err(|e| e.to_string())?;
    for (&(s, t), got) in check.iter().zip(&served) {
        let expect = oracle.try_distance(s, t).map_err(|e| e.to_string())?;
        if *got != expect {
            return Err(format!(
                "serve cross-check failed: dist({s}, {t}) served {got:?}, direct {expect:?}"
            ));
        }
    }

    // Closed-loop synthetic workload: each client thread submits a batch,
    // waits for it, repeats. Queries served before this point (the
    // cross-check) are excluded from the throughput figure.
    let pre_workload_queries = service.stats().total_queries();
    let t0 = Instant::now();
    let mut latencies: Vec<std::time::Duration> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                let service = &service;
                let per_client = requests.div_ceil(clients);
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed ^ (0x9E37_79B9 * (c as u64 + 1)));
                    let mut lats = Vec::new();
                    let mut remaining = per_client;
                    while remaining > 0 {
                        let size = batch.min(remaining);
                        let pairs: Vec<(VertexId, VertexId)> = (0..size)
                            .map(|_| {
                                (
                                    rng.gen_range(0..n as VertexId),
                                    rng.gen_range(0..n as VertexId),
                                )
                            })
                            .collect();
                        let t = Instant::now();
                        service
                            .submit(&pairs)
                            .wait()
                            .expect("in-range queries cannot fail");
                        lats.push(t.elapsed());
                        remaining -= size;
                    }
                    lats
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("client thread panicked"))
            .collect()
    });
    let wall = t0.elapsed();
    let stats = service.shutdown();

    println!("\nper-shard stats");
    println!(
        "  shard |   queries |  batches |      busy | mean µs/query |  p50 µs |  p99 µs | swaps seen"
    );
    for s in &stats.shards {
        println!(
            "  {:>5} | {:>9} | {:>8} | {:>9.2?} | {:>13.2} | {:>7.1} | {:>7.1} | {:>10}",
            s.shard,
            s.queries,
            s.batches,
            s.busy,
            s.mean_query_latency().as_secs_f64() * 1e6,
            s.latency.p50().as_secs_f64() * 1e6,
            s.latency.p99().as_secs_f64() * 1e6,
            s.swaps_observed
        );
    }
    let service_latency = stats.latency();
    println!(
        "  per-query service time: p50 {:.1} µs, p99 {:.1} µs over {} queries",
        service_latency.p50().as_secs_f64() * 1e6,
        service_latency.p99().as_secs_f64() * 1e6,
        service_latency.count()
    );
    latencies.sort_unstable();
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
    println!("\nclient batch latency (batch of {batch})");
    println!(
        "  p50 {:.2?}   p95 {:.2?}   p99 {:.2?}   max {:.2?}",
        pct(0.50),
        pct(0.95),
        pct(0.99),
        latencies[latencies.len() - 1]
    );
    let served_queries = stats.total_queries() - pre_workload_queries;
    println!(
        "\n{} queries in {wall:.2?} -> {:.0} queries/sec across {} shard(s)",
        served_queries,
        served_queries as f64 / wall.as_secs_f64(),
        stats.shards.len()
    );
    if smoke {
        println!("smoke OK: cross-check passed, workload drained, workers joined");
    }
    Ok(())
}

/// `serve --listen ADDR`: expose the loaded engine over the wire protocol
/// and block until a remote `Shutdown` request, then drain and print the
/// final server stats.
fn serve_listen(
    oracle: std::sync::Arc<dyn DistanceOracle>,
    listen: &str,
    allow_reload: bool,
    admin_token: Option<&str>,
    wal: Option<(String, String)>,
) -> Result<(), String> {
    let config = NetConfig {
        allow_reload,
        admin_token: admin_token.map(str::to_string),
        ..NetConfig::default()
    };
    // Build the handle first so the compaction coordinator can be wired
    // before the server accepts its first connection — an early `Compact`
    // must never race the wiring and see "no coordinator configured".
    let handle = std::sync::Arc::new(islabel_core::OracleHandle::new(
        islabel_core::Snapshot::from_arc(oracle),
    ));
    let coordinator = wal.as_ref().map(|(index_path, wal_path)| {
        std::sync::Arc::new(islabel_serve::RebuildCoordinator::new(
            std::sync::Arc::clone(&handle),
            index_path,
            wal_path,
            BuildConfig::default(),
        ))
    });
    let server = DistanceServer::bind_with_coordinator(handle, listen, config, coordinator)
        .map_err(|e| format!("bind {listen}: {e}"))?;
    if let Some((index_path, wal_path)) = &wal {
        println!("wire compaction enabled over {index_path} + {wal_path}");
    }
    println!(
        "listening on {} (reload {}, admin token {}); stop with `islabel remote-query {} --shutdown`",
        server.local_addr(),
        if allow_reload { "enabled" } else { "disabled" },
        if admin_token.is_some() {
            "required"
        } else {
            "open"
        },
        server.local_addr()
    );
    server.wait_for_shutdown_request();
    println!("shutdown requested; draining connections ...");
    let stats = server.shutdown();
    println!(
        "served {} queries ({} batches, {} errors) over {} connection(s) in {:.2?}",
        stats.queries, stats.batches, stats.errors, stats.connections_total, stats.uptime
    );
    println!(
        "per-query service time: p50 {:.1} µs, p99 {:.1} µs",
        stats.latency.p50().as_secs_f64() * 1e6,
        stats.latency.p99().as_secs_f64() * 1e6
    );
    Ok(())
}

/// Client-side operations against a running `serve --listen` server:
/// optional `s t` query plus `--ping`, `--stats`, `--reload PATH`,
/// `--compact` and `--shutdown` admin calls, executed in that order.
/// `--token` presents the server's admin secret in the hello.
fn remote_query(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["reload", "token"])?;
    args.reject_unknown_flags(&["ping", "stats", "shutdown", "compact"])?;
    let addr = args.pos(0, "server address (host:port)")?;
    let mut client = match args.opt("token") {
        Some(token) => DistanceClient::connect_with_token(addr, token),
        None => DistanceClient::connect(addr),
    }
    .map_err(|e| format!("connect {addr}: {e}"))?;
    // A wedged or partitioned server must not hang the CLI forever; a
    // compaction rebuild legitimately takes a while, so the bound is
    // generous rather than tight.
    client
        .set_read_timeout(Some(std::time::Duration::from_secs(
            if args.flag("compact") { 600 } else { 30 },
        )))
        .map_err(|e| e.to_string())?;

    if args.flag("ping") {
        let t0 = Instant::now();
        client.ping().map_err(|e| e.to_string())?;
        println!("ping: ok   [{:.2?}]", t0.elapsed());
    }
    if let Ok(s) = args.pos(1, "source vertex") {
        let s: VertexId = s.parse().map_err(|_| "invalid source vertex id")?;
        let t: VertexId = args
            .pos(2, "target vertex")?
            .parse()
            .map_err(|_| "invalid target vertex id")?;
        let t0 = Instant::now();
        let d = client.distance(s, t).map_err(|e| e.to_string())?;
        let took = t0.elapsed();
        match d {
            Some(d) => println!("dist({s}, {t}) = {d}   [{took:.2?}]"),
            None => println!("dist({s}, {t}) = unreachable   [{took:.2?}]"),
        }
    }
    if let Some(path) = args.opt("reload") {
        let (version, num_vertices) = client.reload(path).map_err(|e| e.to_string())?;
        println!("reloaded {path}: snapshot generation {version}, {num_vertices} vertices");
    }
    if args.flag("compact") {
        let t0 = Instant::now();
        let (version, num_vertices) = client.compact().map_err(|e| e.to_string())?;
        println!(
            "compacted: snapshot generation {version}, {num_vertices} vertices   [{:.2?}]",
            t0.elapsed()
        );
    }
    if args.flag("stats") {
        let s = client.stats().map_err(|e| e.to_string())?;
        println!("server stats ({addr})");
        println!("  engine:       {} ({} vertices)", s.engine, s.num_vertices);
        println!("  snapshot:     generation {}", s.snapshot_version);
        println!(
            "  connections:  {} total, {} active",
            s.connections_total, s.connections_active
        );
        println!(
            "  traffic:      {} frames, {} queries, {} batches, {} errors",
            s.frames, s.queries, s.batches, s.errors
        );
        // Prefer the full histogram tail (µs-precise percentiles derived
        // client-side); fall back to the truncated scalars a pre-histogram
        // server sends.
        match &s.latency {
            Some(h) => println!(
                "  latency:      p50 {:.1} µs, p99 {:.1} µs ({} samples)",
                h.p50().as_secs_f64() * 1e6,
                h.p99().as_secs_f64() * 1e6,
                h.count()
            ),
            None => println!("  latency:      p50 {} µs, p99 {} µs", s.p50_us, s.p99_us),
        }
        println!("  uptime:       {:.1} s", s.uptime_ms as f64 / 1e3);
    }
    if args.flag("shutdown") {
        client.shutdown_server().map_err(|e| e.to_string())?;
        println!("shutdown acknowledged");
    }
    Ok(())
}

/// `metrics ADDR [--watch SECS]`: fetch a running server's Prometheus
/// exposition text over the wire `Metrics` opcode and print it verbatim
/// (so `islabel metrics HOST:PORT > scrape.prom` is a valid scrape).
/// `--watch` re-fetches every N seconds until interrupted.
fn metrics(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["addr", "watch"])?;
    args.reject_unknown_flags(&[])?;
    let addr = match args.opt("addr") {
        Some(addr) => addr,
        None => args.pos(0, "server address (host:port, or --addr)")?,
    };
    let watch: Option<u64> = args.opt_parse("watch")?;
    if watch == Some(0) {
        return Err("--watch needs a positive number of seconds".into());
    }
    let mut client = DistanceClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    client
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    loop {
        let text = client.metrics().map_err(|e| e.to_string())?;
        print!("{text}");
        let Some(secs) = watch else {
            return Ok(());
        };
        std::thread::sleep(std::time::Duration::from_secs(secs));
    }
}

fn describe_recovery(r: &WalRecovery) -> String {
    let mut notes = Vec::new();
    if r.created {
        notes.push("log created".to_string());
    }
    if r.discarded_stale {
        notes.push("stale-epoch log discarded".to_string());
    }
    if r.truncated {
        notes.push("torn tail truncated".to_string());
    }
    if notes.is_empty() {
        format!("{} op(s) replayed from WAL", r.replayed)
    } else {
        format!(
            "{} op(s) replayed from WAL ({})",
            r.replayed,
            notes.join(", ")
        )
    }
}

/// Picks a live (not deleted) vertex, or `None` when the sampler keeps
/// hitting tombstones.
fn pick_live(rng: &mut StdRng, index: &IsLabelIndex) -> Option<VertexId> {
    let n = index.num_vertices() as VertexId;
    (0..64)
        .map(|_| rng.gen_range(0..n))
        .find(|&v| !index.is_vertex_deleted(v))
}

/// `ingest INDEX --wal WAL`: attach the log and stream a synthetic update
/// workload (~70% edge inserts, ~20% vertex inserts, ~10% deletions)
/// through the WAL-backed mutation path. The index is intentionally
/// *never* re-saved: durability of the applied ops comes from the log
/// alone, which is exactly what `recover` (and the CI crash smoke, which
/// `kill -9`s this command mid-stream) exercises.
fn ingest(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["wal", "ops", "seed", "sleep-ms"])?;
    args.reject_unknown_flags(&[])?;
    let index_path = args.pos(0, "index path (.islx)")?;
    let wal_path = args.opt("wal").ok_or("missing --wal <path>")?;
    let ops: usize = args.opt_parse("ops")?.unwrap_or(1000);
    let seed: u64 = args.opt_parse("seed")?.unwrap_or(42);
    let sleep_ms: u64 = args.opt_parse("sleep-ms")?.unwrap_or(0);

    let (mut index, recovery) = load_index_with_wal(index_path, wal_path)
        .map_err(|e| format!("load {index_path} + {wal_path}: {e}"))?;
    println!(
        "ingesting into {index_path} ({} vertices, {})",
        human_count(index.num_vertices()),
        describe_recovery(&recovery)
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = [0usize; 3]; // edges, vertices, deletions
    let t0 = Instant::now();
    for _ in 0..ops {
        let roll: u32 = rng.gen_range(0..100);
        if roll < 70 {
            let (Some(a), Some(b)) = (pick_live(&mut rng, &index), pick_live(&mut rng, &index))
            else {
                continue;
            };
            if a == b {
                continue;
            }
            let w = rng.gen_range(1..=10);
            index.try_insert_edge(a, b, w).map_err(|e| e.to_string())?;
            counts[0] += 1;
        } else if roll < 90 {
            let degree = rng.gen_range(1..=3);
            let edges: Vec<(VertexId, islabel_graph::Weight)> = (0..degree)
                .filter_map(|_| pick_live(&mut rng, &index).map(|v| (v, rng.gen_range(1..=10))))
                .collect();
            if edges.is_empty() {
                continue;
            }
            index.try_insert_vertex(&edges).map_err(|e| e.to_string())?;
            counts[1] += 1;
        } else {
            let Some(v) = pick_live(&mut rng, &index) else {
                continue;
            };
            index.try_delete_vertex(v).map_err(|e| e.to_string())?;
            counts[2] += 1;
        }
        if sleep_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(sleep_ms));
        }
    }
    let took = t0.elapsed();
    let applied: usize = counts.iter().sum();
    println!(
        "applied {applied} op(s) ({} edge inserts, {} vertex inserts, {} deletions) \
         in {took:.2?} ({:.0} ops/sec); stale: {}",
        counts[0],
        counts[1],
        counts[2],
        applied as f64 / took.as_secs_f64().max(1e-9),
        index.is_stale()
    );
    println!(
        "pending ops now {}; durable in {wal_path}",
        index.pending_ops()
    );
    Ok(())
}

/// `recover INDEX --wal WAL [--check]`: replay the log against the
/// artifact and report what recovery did. `--check` cross-validates the
/// recovered overlay: session answers must equal the direct query path,
/// and (while the index is not stale) both must equal a from-scratch
/// Dijkstra on the materialized current graph. Any mismatch fails the
/// command — the CI crash smoke turns that into a red build.
fn recover(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["wal"])?;
    args.reject_unknown_flags(&["check"])?;
    let index_path = args.pos(0, "index path (.islx)")?;
    let wal_path = args.opt("wal").ok_or("missing --wal <path>")?;
    let (index, recovery) = load_index_with_wal(index_path, wal_path)
        .map_err(|e| format!("load {index_path} + {wal_path}: {e}"))?;
    println!(
        "recovered {index_path}: {} vertices, {} pending op(s), {}; stale: {}",
        human_count(index.num_vertices()),
        index.pending_ops(),
        describe_recovery(&recovery),
        index.is_stale()
    );
    if args.flag("check") {
        let g = index.current_graph();
        let mut session = index.session();
        let n = index.num_vertices();
        let mut checked = 0usize;
        for i in 0..400usize {
            let (s, t) = (((i * 13) % n) as VertexId, ((i * 29 + 7) % n) as VertexId);
            if index.is_vertex_deleted(s) || index.is_vertex_deleted(t) {
                continue;
            }
            let direct = index.try_distance(s, t).map_err(|e| e.to_string())?;
            let served = session.distance(s, t).map_err(|e| e.to_string())?;
            if served != direct {
                return Err(format!(
                    "recover check failed: dist({s}, {t}) session {served:?} != direct {direct:?}"
                ));
            }
            if !index.is_stale() {
                let exact = islabel_core::reference::dijkstra_p2p(&g, s, t);
                if direct != exact {
                    return Err(format!(
                        "recover check failed: dist({s}, {t}) index {direct:?} != reference {exact:?}"
                    ));
                }
            }
            checked += 1;
        }
        println!(
            "check OK: {checked} pair(s) agree across session, direct and {} paths",
            if index.is_stale() {
                "(stale; reference skipped)"
            } else {
                "reference"
            }
        );
    }
    Ok(())
}

/// `compact INDEX --wal WAL`: offline rebuild-then-truncate — fold the
/// artifact's sealed ops plus the WAL tail into a fresh pristine index,
/// persist it atomically, then reset the log (same ordering as the live
/// `RebuildCoordinator`).
fn compact(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["wal"])?;
    args.reject_unknown_flags(&[])?;
    let index_path = args.pos(0, "index path (.islx)")?;
    let wal_path = args.opt("wal").ok_or("missing --wal <path>")?;
    let t0 = Instant::now();
    let info = compact_index_with_wal(index_path, wal_path)
        .map_err(|e| format!("compact {index_path} + {wal_path}: {e}"))?;
    println!(
        "compacted {index_path}: folded {} op(s) ({} from WAL) into a pristine index of \
         {} vertices / {} edges (epoch {:#x}) in {:.2?}",
        info.folded_ops,
        info.replayed_ops,
        human_count(info.num_vertices),
        human_count(info.num_edges),
        info.epoch,
        t0.elapsed()
    );
    Ok(())
}

fn stats(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    args.reject_unknown_flags(&["file"])?;
    let path = args.pos(0, "artifact path")?;
    if args.flag("file") {
        if !path.ends_with(".islx") {
            return Err("--file reports on-disk index artifacts (.islx)".into());
        }
        return file_stats(path);
    }
    if path.ends_with(".islx") {
        let index = load_index_from_path(path).map_err(|e| format!("load {path}: {e}"))?;
        let s = index.stats();
        println!("index: {path}");
        println!("  vertices:      {}", human_count(s.num_vertices));
        println!("  edges:         {}", human_count(s.num_edges));
        println!("  k:             {}", s.k);
        println!(
            "  |V_Gk|:        {} ({:.1}%)",
            human_count(s.gk_vertices),
            100.0 * s.gk_vertex_fraction()
        );
        println!("  |E_Gk|:        {}", human_count(s.gk_edges));
        println!(
            "  label entries: {} (avg {:.1}, max {})",
            human_count(s.label_entries),
            s.avg_label_len,
            s.max_label_len
        );
        println!("  label bytes:   {}", human_bytes(s.label_bytes));
        println!("  path info:     {}", index.labels().has_path_info());
        let dense = index.dense_gk();
        println!(
            "  dense kernel:  {} compact ids, {} adjacency entries, {}",
            human_count(dense.ids().len()),
            human_count(dense.fwd().num_entries()),
            human_bytes(dense.memory_bytes())
        );
    } else {
        let g = load_graph(path)?;
        println!("graph: {path}");
        println!("  vertices: {}", human_count(g.num_vertices()));
        println!("  edges:    {}", human_count(g.num_edges()));
        println!("  avg deg:  {:.2}", g.avg_degree());
        println!("  max deg:  {}", g.max_degree());
        println!("  CSR size: {}", human_bytes(g.memory_bytes()));
    }
    Ok(())
}

/// `stats --file`: the on-disk view of an `.islx` artifact — format
/// version, header facts, per-section byte layout (v3) and whether
/// serving it would be memory-mapped or heap-resident.
fn file_stats(path: &str) -> Result<(), String> {
    let bytes = std::fs::metadata(path)
        .map(|m| m.len() as usize)
        .map_err(|e| format!("stat {path}: {e}"))?;
    let mut head = [0u8; 8];
    {
        use std::io::Read as _;
        let mut f = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
        f.read_exact(&mut head)
            .map_err(|e| format!("read {path}: {e}"))?;
    }
    if &head[..4] != b"ISLX" {
        return Err(format!("{path}: not an ISLX artifact"));
    }
    let version = u32::from_le_bytes([head[4], head[5], head[6], head[7]]);
    println!("artifact: {path}");
    println!("  file size:     {}", human_bytes(bytes));
    if version != islabel_store::format::FORMAT_VERSION {
        println!("  format:        v{version} (stream; loads fully onto the heap)");
        println!("  residency:     heap (convert --to v3 for mmap serving)");
        return Ok(());
    }
    let reader = islabel_store::StoreReader::open(std::path::Path::new(path))
        .map_err(|e| format!("open {path}: {e}"))?;
    let h = reader.header();
    println!("  format:        v{version} (flat sections; mmap-servable)");
    println!("  epoch:         {}", h.epoch);
    println!("  k:             {}", h.k);
    println!("  vertices:      {}", human_count(h.n as usize));
    println!("  |V_Gk|:        {}", human_count(h.dense_m as usize));
    println!("  sealed ops:    {}", h.op_count);
    println!(
        "  residency:     {}",
        match (reader.is_mapped(), h.op_count == 0) {
            (true, true) => "mmap (zero-copy; served in place)",
            (true, false) => "mmap for inspection; serving loads to heap (sealed ops)",
            (false, _) => "heap (mapping unavailable on this platform)",
        }
    );
    println!("  sections:      {} of 16 slots", h.sections.len());
    let data_bytes: u64 = h.sections.iter().map(|s| s.len).sum();
    for s in &h.sections {
        println!(
            "    {:<16} {:>12}   offset {:>10}   checksum 0x{:016x}",
            islabel_store::format::section_kind_name(s.kind),
            human_bytes(s.len as usize),
            s.offset,
            s.checksum
        );
    }
    println!(
        "  overhead:      {} header + padding ({} data)",
        human_bytes(bytes.saturating_sub(data_bytes as usize)),
        human_bytes(data_bytes as usize)
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("islabel-cli-{}-{name}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    fn run(args: &[&str]) -> Result<(), String> {
        dispatch(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    /// Serializes the tests that bind a real TCP listener. Ports are
    /// reserved by bind-then-drop, so if two such tests overlap the kernel
    /// can hand both the same ephemeral port; the loser's server dies with
    /// AddrInUse and its client talks to the *other* test's server.
    static WIRE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn wire_lock() -> std::sync::MutexGuard<'static, ()> {
        WIRE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn end_to_end_gen_build_query_bench_stats() {
        let graph = tmp("g.isgb");
        let index = tmp("i.islx");
        run(&["gen", "google", "--scale", "tiny", "-o", &graph]).unwrap();
        run(&["stats", &graph]).unwrap();
        run(&["build", &graph, "-o", &index]).unwrap();
        run(&["stats", &index]).unwrap();
        run(&["query", &index, "0", "5", "--path"]).unwrap();
        run(&["bench", &index, "--queries", "50"]).unwrap();
        std::fs::remove_file(&graph).ok();
        std::fs::remove_file(&index).ok();
    }

    #[test]
    fn external_build_via_cli() {
        let graph = tmp("ge.isgb");
        let index = tmp("ie.islx");
        let workdir = tmp("wd");
        run(&["gen", "wikitalk", "--scale", "tiny", "-o", &graph]).unwrap();
        run(&[
            "build",
            &graph,
            "-o",
            &index,
            "--external",
            "--workdir",
            &workdir,
            "--sigma",
            "0.9",
        ])
        .unwrap();
        run(&["query", &index, "1", "2"]).unwrap();
        std::fs::remove_file(&graph).ok();
        std::fs::remove_file(&index).ok();
        std::fs::remove_dir_all(&workdir).ok();
    }

    #[test]
    fn convert_roundtrip() {
        let bin = tmp("c.isgb");
        let txt = tmp("c.txt");
        let back = tmp("c2.isgb");
        run(&["gen", "btc", "--scale", "tiny", "-o", &bin]).unwrap();
        run(&["convert", &bin, &txt]).unwrap();
        run(&["convert", &txt, &back]).unwrap();
        let a = load_graph(&bin).unwrap();
        let b = load_graph(&back).unwrap();
        assert_eq!(a, b);
        for f in [&bin, &txt, &back] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn convert_index_versions_and_file_stats() {
        let graph = tmp("cvi.isgb");
        let v3 = tmp("cvi.islx");
        let v2 = tmp("cvi2.islx");
        let back = tmp("cvi3.islx");
        run(&["gen", "google", "--scale", "tiny", "-o", &graph]).unwrap();
        run(&["build", &graph, "-o", &v3]).unwrap();

        let version_of = |p: &str| {
            let bytes = std::fs::read(p).unwrap();
            u32::from_le_bytes(bytes[4..8].try_into().unwrap())
        };
        // Builds write v3 by default; conversion reaches v2 and back.
        assert_eq!(version_of(&v3), 3);
        run(&["convert", &v3, &v2, "--to", "v2"]).unwrap();
        assert_eq!(version_of(&v2), 2);
        run(&["convert", &v2, &back]).unwrap(); // --to defaults to v3
        assert_eq!(version_of(&back), 3);

        // Every version answers queries, and --file reports each layout.
        for p in [&v3, &v2, &back] {
            run(&["query", p, "0", "5"]).unwrap();
            run(&["stats", p, "--file"]).unwrap();
        }

        // Misuse is rejected cleanly.
        let err = run(&["convert", &graph, &v2, "--to", "v2"]).unwrap_err();
        assert!(err.contains("--to"), "{err}");
        let err = run(&["convert", &v3, "out.txt", "--to", "v2"]).unwrap_err();
        assert!(err.contains(".islx"), "{err}");
        let err = run(&["convert", &v3, &v2, "--to", "v7"]).unwrap_err();
        assert!(err.contains("v2 or v3"), "{err}");
        let err = run(&["stats", &graph, "--file"]).unwrap_err();
        assert!(err.contains(".islx"), "{err}");

        for f in [&graph, &v3, &v2, &back] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn conflicting_k_selection_rejected() {
        let err = run(&[
            "build", "x.isgb", "-o", "y.islx", "--sigma", "0.9", "--full",
        ])
        .unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn unknown_command_mentions_usage() {
        let err = run(&["frobnicate"]).unwrap_err();
        assert!(err.contains("USAGE"), "{err}");
    }

    #[test]
    fn query_out_of_range_rejected() {
        let graph = tmp("r.isgb");
        let index = tmp("r.islx");
        run(&["gen", "google", "--scale", "tiny", "-o", &graph]).unwrap();
        run(&["build", &graph, "-o", &index]).unwrap();
        let err = run(&["query", &index, "0", "99999999"]).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        std::fs::remove_file(&graph).ok();
        std::fs::remove_file(&index).ok();
    }

    #[test]
    fn query_and_bench_accept_every_engine_on_graph_input() {
        let graph = tmp("eng.isgb");
        run(&["gen", "google", "--scale", "tiny", "-o", &graph]).unwrap();
        for engine in ["islabel", "di-islabel", "pll", "vc", "bidij"] {
            run(&["query", &graph, "0", "5", "--engine", engine]).unwrap();
            run(&[
                "bench",
                &graph,
                "--queries",
                "30",
                "--threads",
                "2",
                "--engine",
                engine,
            ])
            .unwrap();
        }
        // `--path` works for the default engine on graph inputs ...
        run(&["query", &graph, "0", "5", "--path"]).unwrap();
        // ... and degrades gracefully for engines without path support.
        run(&["query", &graph, "0", "5", "--engine", "pll", "--path"]).unwrap();
        std::fs::remove_file(&graph).ok();
    }

    #[test]
    fn engine_flag_is_validated() {
        let graph = tmp("engbad.isgb");
        let index = tmp("engbad.islx");
        run(&["gen", "btc", "--scale", "tiny", "-o", &graph]).unwrap();
        let err = run(&["query", &graph, "0", "1", "--engine", "warp-drive"]).unwrap_err();
        assert!(err.contains("unknown engine"), "{err}");
        // A prebuilt .islx is always IS-LABEL; other engines need the graph.
        run(&["build", &graph, "-o", &index]).unwrap();
        let err = run(&["query", &index, "0", "1", "--engine", "pll"]).unwrap_err();
        assert!(err.contains("needs a graph input"), "{err}");
        std::fs::remove_file(&graph).ok();
        std::fs::remove_file(&index).ok();
    }

    #[test]
    fn serve_smoke_without_input() {
        run(&["serve", "--smoke"]).unwrap();
    }

    #[test]
    fn serve_smoke_on_prebuilt_index_and_engines() {
        let graph = tmp("srv.isgb");
        let index = tmp("srv.islx");
        run(&["gen", "btc", "--scale", "tiny", "-o", &graph]).unwrap();
        run(&["build", &graph, "-o", &index]).unwrap();
        run(&[
            "serve",
            &index,
            "--smoke",
            "--shards",
            "3",
            "--clients",
            "2",
            "--requests",
            "120",
        ])
        .unwrap();
        run(&["serve", &graph, "--smoke", "--engine", "bidij"]).unwrap();
        std::fs::remove_file(&graph).ok();
        std::fs::remove_file(&index).ok();
    }

    #[test]
    fn serve_requires_input_or_smoke() {
        let err = run(&["serve"]).unwrap_err();
        assert!(err.contains("--smoke"), "{err}");
        let err = run(&["serve", "--smoke", "--batch", "0"]).unwrap_err();
        assert!(err.contains("positive"), "{err}");
        // The wire server takes no in-process workload options.
        let err = run(&["serve", "--smoke", "--listen", "127.0.0.1:0"]).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        let err = run(&[
            "serve",
            "x.isgb",
            "--listen",
            "127.0.0.1:0",
            "--shards",
            "4",
        ])
        .unwrap_err();
        assert!(err.contains("--shards"), "{err}");
    }

    #[test]
    fn serve_listen_and_remote_query_end_to_end() {
        let _net = wire_lock();
        let graph = tmp("net.isgb");
        let index = tmp("net.islx");
        run(&["gen", "google", "--scale", "tiny", "-o", &graph]).unwrap();
        run(&["build", &graph, "-o", &index]).unwrap();

        // Reserve an ephemeral port, free it, and hand it to --listen.
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap().to_string();
        drop(probe);

        let server = {
            let index = index.clone();
            let addr = addr.clone();
            std::thread::spawn(move || run(&["serve", &index, "--listen", &addr]))
        };
        // The server thread needs a moment to bind; retry until it answers.
        let mut attempts = 0;
        loop {
            match run(&["remote-query", &addr, "0", "5", "--ping", "--stats"]) {
                Ok(()) => break,
                Err(e) if attempts < 50 => {
                    assert!(e.contains("connect"), "unexpected failure: {e}");
                    attempts += 1;
                    std::thread::sleep(std::time::Duration::from_millis(100));
                }
                Err(e) => panic!("server never came up: {e}"),
            }
        }
        run(&["remote-query", &addr, "--shutdown"]).unwrap();
        server.join().unwrap().unwrap();
        std::fs::remove_file(&graph).ok();
        std::fs::remove_file(&index).ok();
    }

    #[test]
    fn metrics_command_scrapes_a_listening_server() {
        let _net = wire_lock();
        let graph = tmp("met.isgb");
        let index = tmp("met.islx");
        run(&["gen", "google", "--scale", "tiny", "-o", &graph]).unwrap();
        run(&["build", &graph, "-o", &index]).unwrap();

        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap().to_string();
        drop(probe);
        let server = {
            let (index, addr) = (index.clone(), addr.clone());
            std::thread::spawn(move || {
                run(&["serve", &index, "--listen", &addr, "--slow-query-ms", "250"])
            })
        };
        let mut attempts = 0;
        loop {
            match run(&["remote-query", &addr, "0", "5"]) {
                Ok(()) => break,
                Err(e) if attempts < 50 => {
                    assert!(e.contains("connect"), "unexpected failure: {e}");
                    attempts += 1;
                    std::thread::sleep(std::time::Duration::from_millis(100));
                }
                Err(e) => panic!("server never came up: {e}"),
            }
        }
        // Both address spellings scrape successfully.
        run(&["metrics", &addr]).unwrap();
        run(&["metrics", "--addr", &addr]).unwrap();
        // The exposition itself carries the registered families.
        let text = DistanceClient::connect(&addr).unwrap().metrics().unwrap();
        assert!(text.contains("islabel_net_queries_total"), "{text}");

        // Misuse is rejected cleanly.
        let err = run(&["metrics"]).unwrap_err();
        assert!(err.contains("address"), "{err}");
        let err = run(&["metrics", &addr, "--watch", "0"]).unwrap_err();
        assert!(err.contains("--watch"), "{err}");

        run(&["remote-query", &addr, "--shutdown"]).unwrap();
        server.join().unwrap().unwrap();
        std::fs::remove_file(&graph).ok();
        std::fs::remove_file(&index).ok();
    }

    #[test]
    fn ingest_recover_compact_lifecycle() {
        let graph = tmp("wal.isgb");
        let index = tmp("wal.islx");
        let wal = tmp("wal.wal");
        run(&["gen", "google", "--scale", "tiny", "-o", &graph]).unwrap();
        run(&["build", &graph, "-o", &index]).unwrap();

        // Stream a logged workload, then prove recovery from artifact+WAL.
        run(&[
            "ingest", &index, "--wal", &wal, "--ops", "60", "--seed", "7",
        ])
        .unwrap();
        run(&["recover", &index, "--wal", &wal, "--check"]).unwrap();
        // A second ingest resumes the same log instead of restarting it.
        run(&[
            "ingest", &index, "--wal", &wal, "--ops", "40", "--seed", "8",
        ])
        .unwrap();
        run(&["recover", &index, "--wal", &wal, "--check"]).unwrap();

        // Fold everything back into a pristine pair; afterwards recovery
        // replays nothing and the check still holds.
        run(&["compact", &index, "--wal", &wal]).unwrap();
        run(&["recover", &index, "--wal", &wal, "--check"]).unwrap();

        // Missing --wal is a clean CLI error on all three commands.
        for cmd in ["ingest", "recover", "compact"] {
            let err = run(&[cmd, &index]).unwrap_err();
            assert!(err.contains("--wal"), "{cmd}: {err}");
        }
        for f in [&graph, &index, &wal] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn wire_admin_token_gates_compact_and_shutdown() {
        let _net = wire_lock();
        let graph = tmp("tok.isgb");
        let index = tmp("tok.islx");
        let wal = tmp("tok.wal");
        run(&["gen", "google", "--scale", "tiny", "-o", &graph]).unwrap();
        run(&["build", &graph, "-o", &index]).unwrap();
        run(&[
            "ingest", &index, "--wal", &wal, "--ops", "20", "--seed", "3",
        ])
        .unwrap();

        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap().to_string();
        drop(probe);
        let server = {
            let (index, wal, addr) = (index.clone(), wal.clone(), addr.clone());
            std::thread::spawn(move || {
                run(&[
                    "serve",
                    &index,
                    "--listen",
                    &addr,
                    "--admin-token",
                    "hunter2",
                    "--wal",
                    &wal,
                ])
            })
        };
        let mut attempts = 0;
        loop {
            match run(&["remote-query", &addr, "0", "5", "--ping"]) {
                Ok(()) => break,
                Err(e) if attempts < 50 => {
                    assert!(e.contains("connect"), "unexpected failure: {e}");
                    attempts += 1;
                    std::thread::sleep(std::time::Duration::from_millis(100));
                }
                Err(e) => panic!("server never came up: {e}"),
            }
        }
        // Queries flow without the token; admin opcodes do not.
        let err = run(&["remote-query", &addr, "--compact"]).unwrap_err();
        assert!(err.contains("admin"), "{err}");
        let err = run(&["remote-query", &addr, "--shutdown"]).unwrap_err();
        assert!(err.contains("admin"), "{err}");
        // With the token, compaction folds the WAL and swaps the snapshot.
        run(&["remote-query", &addr, "--token", "hunter2", "--compact"]).unwrap();
        run(&["remote-query", &addr, "--token", "hunter2", "--shutdown"]).unwrap();
        server.join().unwrap().unwrap();

        // The on-disk pair is pristine after the wire compaction.
        run(&["recover", &index, "--wal", &wal, "--check"]).unwrap();
        for f in [&graph, &index, &wal] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn serve_listen_flags_are_validated() {
        let err = run(&["serve", "--smoke", "--admin-token", "x"]).unwrap_err();
        assert!(err.contains("--listen"), "{err}");
        let err = run(&["serve", "g.isgb", "--listen", "127.0.0.1:0", "--wal", "w"]).unwrap_err();
        assert!(err.contains(".islx"), "{err}");
    }

    #[test]
    fn build_rejects_bad_sigma_cleanly() {
        let graph = tmp("sig.isgb");
        run(&["gen", "btc", "--scale", "tiny", "-o", &graph]).unwrap();
        // An invalid σ must surface as a clean CLI error, not a panic.
        let err = run(&["build", &graph, "-o", "x.islx", "--sigma", "1.5"]).unwrap_err();
        assert!(err.contains("invalid configuration"), "{err}");
        std::fs::remove_file(&graph).ok();
    }
}
