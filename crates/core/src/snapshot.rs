//! Immutable index snapshots and atomic hot-swap: [`Snapshot`] and
//! [`OracleHandle`].
//!
//! The paper's serving model is *build once, query forever*: a disk-based
//! index is constructed offline and then answers point-to-point queries
//! (Section 2). A long-running query server adds one requirement on top —
//! replacing the index with a freshly built artifact without stopping the
//! world. This module provides the two pieces:
//!
//! * [`Snapshot`] — an immutable, cheaply-cloneable (`Arc`-backed) view of
//!   a built [`DistanceOracle`]. Cloning is one atomic refcount bump;
//!   every clone answers from exactly the same index version.
//! * [`OracleHandle`] — a shared slot holding the *current* snapshot.
//!   Readers [`load`](OracleHandle::load) a clone and query it for as long
//!   as they like; a writer [`swap`](OracleHandle::swap)s in a new oracle
//!   atomically. Queries already running against the old snapshot finish
//!   on it untouched (their `Arc` keeps it alive); the old index is freed
//!   when its last in-flight reader drops.
//!
//! Snapshots are version-stamped so serving layers can detect a swap and
//! refresh per-thread [`QuerySession`]s.
//!
//! # Examples
//!
//! ```
//! use islabel_core::snapshot::{OracleHandle, Snapshot};
//! use islabel_core::{BuildConfig, IsLabelIndex};
//! use islabel_graph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new(3);
//! b.add_edge(0, 1, 5);
//! let g = b.build();
//!
//! let handle = OracleHandle::new(Snapshot::new(IsLabelIndex::build(
//!     &g,
//!     BuildConfig::default(),
//! )));
//! let reader = handle.load(); // in-flight view
//! assert_eq!(reader.oracle().try_distance(0, 1), Ok(Some(5)));
//!
//! // Rebuild with a different weight and hot-swap it in.
//! let mut b = GraphBuilder::new(3);
//! b.add_edge(0, 1, 9);
//! let retired = handle.swap_oracle(IsLabelIndex::build(&b.build(), BuildConfig::default()));
//!
//! // New loads see the new index; the old reader finishes on the old one.
//! assert_eq!(handle.load().oracle().try_distance(0, 1), Ok(Some(9)));
//! assert_eq!(reader.oracle().try_distance(0, 1), Ok(Some(5)));
//! assert_eq!(retired.version(), reader.version());
//! ```

use crate::oracle::{DistanceOracle, QuerySession};
use parking_lot::RwLock;
use std::sync::Arc;

/// A shared, heap-allocated distance engine: what [`Snapshot`]s are made
/// of. `dyn DistanceOracle` is `Send + Sync` by the trait's supertraits,
/// so the same oracle serves any number of threads.
pub type SharedOracle = Arc<dyn DistanceOracle>;

/// An immutable, cheaply-cloneable view of one built index.
///
/// A snapshot never changes: all clones answer from the same underlying
/// oracle, and the version stamp identifies which generation of the index
/// a reader is on (see [`OracleHandle`]). Dropping the last clone frees
/// the index.
#[derive(Clone)]
pub struct Snapshot {
    oracle: SharedOracle,
    version: u64,
}

impl Snapshot {
    /// Wraps a freshly built engine as generation-0.
    pub fn new(oracle: impl DistanceOracle + 'static) -> Self {
        Self::from_arc(Arc::new(oracle))
    }

    /// Wraps an already-shared engine as generation-0 (used when the
    /// caller needs to keep its own `Arc` to the oracle).
    pub fn from_arc(oracle: SharedOracle) -> Self {
        Self { oracle, version: 0 }
    }

    /// The underlying engine.
    pub fn oracle(&self) -> &dyn DistanceOracle {
        &*self.oracle
    }

    /// A clone of the underlying `Arc` (for handing the engine to another
    /// owner, e.g. a second [`OracleHandle`]).
    pub fn shared(&self) -> SharedOracle {
        Arc::clone(&self.oracle)
    }

    /// Which swap generation this snapshot belongs to: 0 for the snapshot
    /// a handle started with, incremented by every
    /// [`OracleHandle::swap`].
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Opens a per-thread [`QuerySession`] on this snapshot's engine.
    pub fn session(&self) -> Box<dyn QuerySession + '_> {
        self.oracle.session()
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("engine", &self.oracle.engine_name())
            .field("version", &self.version)
            .field("num_vertices", &self.oracle.num_vertices())
            .finish()
    }
}

/// A shared slot holding the current [`Snapshot`], with atomic hot-swap.
///
/// The read path is wait-free in practice: [`load`](OracleHandle::load)
/// takes a read lock only long enough to clone an `Arc`. A
/// [`swap`](OracleHandle::swap) publishes a new snapshot for all future
/// loads and returns the retired one; readers that loaded before the swap
/// keep serving from the old index until they drop it — zero-downtime
/// replacement with no coordination.
pub struct OracleHandle {
    current: RwLock<Snapshot>,
}

impl OracleHandle {
    /// A handle serving `initial` (stamped as its generation as-is;
    /// usually a fresh generation-0 [`Snapshot::new`]).
    pub fn new(initial: Snapshot) -> Self {
        Self {
            current: RwLock::new(initial),
        }
    }

    /// Convenience: wraps a freshly built engine directly.
    pub fn from_oracle(oracle: impl DistanceOracle + 'static) -> Self {
        Self::new(Snapshot::new(oracle))
    }

    /// The current snapshot, cloned (one refcount bump). The returned
    /// snapshot stays valid — and keeps its index alive — for as long as
    /// the caller holds it, across any number of concurrent swaps.
    pub fn load(&self) -> Snapshot {
        self.current.read().clone()
    }

    /// The current generation counter (equals `load().version()` but
    /// without cloning).
    pub fn version(&self) -> u64 {
        self.current.read().version
    }

    /// Atomically publishes `oracle` as the new current snapshot and
    /// returns the retired one. The new snapshot's version is the retired
    /// version plus one. In-flight readers of the retired snapshot are
    /// unaffected.
    pub fn swap(&self, oracle: SharedOracle) -> Snapshot {
        let mut slot = self.current.write();
        let next = Snapshot {
            oracle,
            version: slot.version + 1,
        };
        std::mem::replace(&mut *slot, next)
    }

    /// Convenience: [`swap`](OracleHandle::swap) for an unshared engine.
    pub fn swap_oracle(&self, oracle: impl DistanceOracle + 'static) -> Snapshot {
        self.swap(Arc::new(oracle))
    }
}

impl std::fmt::Debug for OracleHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OracleHandle")
            .field("current", &*self.current.read())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BuildConfig;
    use crate::index::IsLabelIndex;
    use islabel_graph::GraphBuilder;

    fn line_index(weight: u32) -> IsLabelIndex {
        let mut b = GraphBuilder::new(4);
        for v in 0..3u32 {
            b.add_edge(v, v + 1, weight);
        }
        IsLabelIndex::build(&b.build(), BuildConfig::default())
    }

    #[test]
    fn snapshot_clones_share_one_index() {
        let snap = Snapshot::new(line_index(2));
        let clone = snap.clone();
        assert_eq!(snap.version(), clone.version());
        assert_eq!(clone.oracle().try_distance(0, 3), Ok(Some(6)));
        assert!(Arc::ptr_eq(&snap.shared(), &clone.shared()));
    }

    #[test]
    fn swap_retires_old_generation_and_bumps_version() {
        let handle = OracleHandle::from_oracle(line_index(1));
        assert_eq!(handle.version(), 0);
        let before = handle.load();

        let retired = handle.swap_oracle(line_index(10));
        assert_eq!(retired.version(), 0);
        assert_eq!(handle.version(), 1);
        // The pre-swap reader still answers from the old index.
        assert_eq!(before.oracle().try_distance(0, 3), Ok(Some(3)));
        assert_eq!(handle.load().oracle().try_distance(0, 3), Ok(Some(30)));

        let retired = handle.swap_oracle(line_index(100));
        assert_eq!(retired.version(), 1);
        assert_eq!(handle.load().version(), 2);
    }

    #[test]
    fn concurrent_loads_and_swaps_never_tear() {
        // Weights are generation-coherent: every loaded snapshot must
        // answer with a distance consistent with a single index, even
        // while another thread swaps generations as fast as it can.
        let handle = OracleHandle::from_oracle(line_index(1));
        std::thread::scope(|scope| {
            let swapper = scope.spawn(|| {
                for w in 2..40u32 {
                    handle.swap_oracle(line_index(w));
                }
            });
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..200 {
                        let snap = handle.load();
                        let d01 = snap.oracle().try_distance(0, 1).unwrap().unwrap();
                        let d03 = snap.oracle().try_distance(0, 3).unwrap().unwrap();
                        assert_eq!(d03, 3 * d01, "snapshot tore across generations");
                    }
                });
            }
            swapper.join().unwrap();
        });
        assert_eq!(handle.version(), 38);
    }

    #[test]
    fn sessions_pin_the_snapshot_they_came_from() {
        let handle = OracleHandle::from_oracle(line_index(5));
        let snap = handle.load();
        let mut session = snap.session();
        handle.swap_oracle(line_index(7));
        // The session keeps answering from the generation it was opened on.
        assert_eq!(session.distance(0, 2), Ok(Some(10)));
        assert_eq!(handle.load().session().distance(0, 2), Ok(Some(14)));
    }
}
