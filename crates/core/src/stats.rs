//! Index construction statistics — the columns of the paper's Tables 3, 6
//! and 7 (`k`, `|V_{G_k}|`, `|E_{G_k}|`, label size, indexing time).

use std::time::Duration;

/// Statistics captured while building an [`crate::IsLabelIndex`].
#[derive(Debug, Clone, PartialEq)]
pub struct IndexStats {
    /// Vertices of the input graph.
    pub num_vertices: usize,
    /// Edges of the input graph.
    pub num_edges: usize,
    /// Number of hierarchy levels `k`.
    pub k: u32,
    /// `|V_{G_k}|`: vertices surviving in the residual graph.
    pub gk_vertices: usize,
    /// `|E_{G_k}|`: edges of the residual graph.
    pub gk_edges: usize,
    /// Total label entries over all vertices.
    pub label_entries: usize,
    /// Resident bytes of the label arrays (the paper's "label size").
    pub label_bytes: usize,
    /// Mean label entries per vertex.
    pub avg_label_len: f64,
    /// Largest single label.
    pub max_label_len: usize,
    /// Time spent building the vertex hierarchy (Algorithms 2 + 3).
    pub hierarchy_time: Duration,
    /// Time spent in top-down labeling (Algorithm 4).
    pub labeling_time: Duration,
    /// End-to-end build time (the paper's "indexing time").
    pub build_time: Duration,
}

impl IndexStats {
    /// Fraction of vertices that survive into `G_k`.
    pub fn gk_vertex_fraction(&self) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            self.gk_vertices as f64 / self.num_vertices as f64
        }
    }
}

impl std::fmt::Display for IndexStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use islabel_graph::algo::stats::{human_bytes, human_count};
        write!(
            f,
            "k={} |V_Gk|={} |E_Gk|={} labels={} ({}) avg_label={:.1} build={:.2?}",
            self.k,
            human_count(self.gk_vertices),
            human_count(self.gk_edges),
            human_count(self.label_entries),
            human_bytes(self.label_bytes),
            self.avg_label_len,
            self.build_time,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> IndexStats {
        IndexStats {
            num_vertices: 100,
            num_edges: 250,
            k: 6,
            gk_vertices: 25,
            gk_edges: 80,
            label_entries: 700,
            label_bytes: 9100,
            avg_label_len: 7.0,
            max_label_len: 31,
            hierarchy_time: Duration::from_millis(5),
            labeling_time: Duration::from_millis(3),
            build_time: Duration::from_millis(9),
        }
    }

    #[test]
    fn fraction_and_display() {
        let s = sample();
        assert!((s.gk_vertex_fraction() - 0.25).abs() < 1e-12);
        let text = s.to_string();
        assert!(text.contains("k=6"), "{text}");
        assert!(text.contains("8.9 KB"), "{text}");
    }

    #[test]
    fn empty_graph_fraction_is_zero() {
        let s = IndexStats {
            num_vertices: 0,
            gk_vertices: 0,
            ..sample()
        };
        assert_eq!(s.gk_vertex_fraction(), 0.0);
    }
}
