//! Index construction configuration.

/// How the number of hierarchy levels `k` is chosen (paper Section 5.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KSelection {
    /// Stop at the first level where peeling shrinks the graph by less than
    /// `1 − σ`: `k` is the first `i` with `|G_i| / |G_{i−1}| > σ`
    /// (Definition 4 discussion; the paper's default is `σ = 0.95` and
    /// Table 7 uses `0.90`).
    SigmaThreshold(f64),
    /// Build exactly `k` levels (peel `k − 1` independent sets), clamped to
    /// the natural height if the graph empties first. Used by the Table 6
    /// sweep around the automatically selected `k`.
    FixedK(u32),
    /// Peel until the graph is empty (`k = h + 1`, `G_k = ∅`): every query
    /// is answered by Equation 1 alone. Section 4's un-truncated hierarchy.
    Full,
}

/// Strategy for choosing each level's independent set. The paper uses
/// greedy minimum-degree (following Halldórsson–Radhakrishnan, "greed is
/// good"); the alternatives exist for the ablation study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsStrategy {
    /// Paper's choice: visit vertices in ascending (degree, id) order.
    MinDegreeGreedy,
    /// Ablation: visit vertices in a seeded random order.
    Random(u64),
    /// Ablation: visit vertices in descending (degree, id) order — the
    /// deliberately bad choice that maximizes augmenting-edge blowup.
    MaxDegreeGreedy,
}

/// Configuration for [`crate::IsLabelIndex::build`].
///
/// # Weight contract
///
/// Input edge weights are positive `u32`s (the paper's `ω : E → N+`).
/// During construction, augmenting-edge weights are sums of weights along
/// real paths and are kept in `u32` as well; graphs whose shortest-path
/// lengths exceed `u32::MAX` therefore fail construction with an explicit
/// panic rather than producing wrong distances. Query-time accumulation
/// always happens in `u64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuildConfig {
    /// How `k` is selected. Default: `σ = 0.95` (the paper's default).
    pub k_selection: KSelection,
    /// Independent-set strategy. Default: greedy min-degree.
    pub is_strategy: IsStrategy,
    /// Record the per-edge via vertices and per-entry first hops needed to
    /// answer shortest-*path* (not just distance) queries (Section 8.1).
    /// Costs one extra `u32` per label entry and per augmenting edge.
    /// Default: `true`.
    pub keep_path_info: bool,
    /// Hard cap on the number of levels, as a safety net against
    /// pathological inputs. Default: 10 000 (never reached in practice —
    /// each level peels at least one vertex).
    pub max_levels: u32,
}

impl Default for BuildConfig {
    fn default() -> Self {
        Self {
            k_selection: KSelection::SigmaThreshold(0.95),
            is_strategy: IsStrategy::MinDegreeGreedy,
            keep_path_info: true,
            max_levels: 10_000,
        }
    }
}

impl BuildConfig {
    /// Paper default (`σ = 0.95`).
    pub fn sigma(threshold: f64) -> Self {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "σ must be in (0, 1], got {threshold}"
        );
        Self {
            k_selection: KSelection::SigmaThreshold(threshold),
            ..Default::default()
        }
    }

    /// Exactly `k` levels.
    pub fn fixed_k(k: u32) -> Self {
        assert!(k >= 2, "k must be at least 2 (k = 1 would peel nothing)");
        Self {
            k_selection: KSelection::FixedK(k),
            ..Default::default()
        }
    }

    /// Full hierarchy (`G_k` empty; label-only queries).
    pub fn full() -> Self {
        Self {
            k_selection: KSelection::Full,
            ..Default::default()
        }
    }

    /// Validates the configuration, returning
    /// [`Error::InvalidConfig`](crate::Error::InvalidConfig) on nonsense
    /// values — the fallible form used by
    /// [`IsLabelIndex::try_build`](crate::IsLabelIndex::try_build) and the
    /// CLI so malformed flags produce a clean message instead of a panic.
    pub fn try_validate(&self) -> Result<(), crate::Error> {
        let bad = |msg: String| Err(crate::Error::InvalidConfig(msg));
        match self.k_selection {
            KSelection::SigmaThreshold(s) if !(s > 0.0 && s <= 1.0) => {
                return bad(format!("σ must be in (0, 1], got {s}"));
            }
            KSelection::FixedK(k) if k < 2 => {
                return bad(format!("k must be at least 2, got {k}"));
            }
            _ => {}
        }
        if self.max_levels < 2 {
            return bad(format!(
                "max_levels must allow at least one peel, got {}",
                self.max_levels
            ));
        }
        Ok(())
    }

    /// Validates the configuration, panicking on nonsense values
    /// (convenience over [`BuildConfig::try_validate`]).
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = BuildConfig::default();
        assert_eq!(c.k_selection, KSelection::SigmaThreshold(0.95));
        assert_eq!(c.is_strategy, IsStrategy::MinDegreeGreedy);
        assert!(c.keep_path_info);
        c.validate();
    }

    #[test]
    fn constructors() {
        assert_eq!(
            BuildConfig::sigma(0.9).k_selection,
            KSelection::SigmaThreshold(0.9)
        );
        assert_eq!(BuildConfig::fixed_k(5).k_selection, KSelection::FixedK(5));
        assert_eq!(BuildConfig::full().k_selection, KSelection::Full);
    }

    #[test]
    #[should_panic(expected = "σ must be in (0, 1]")]
    fn sigma_zero_rejected() {
        BuildConfig::sigma(0.0);
    }

    #[test]
    #[should_panic(expected = "k must be at least 2")]
    fn k_one_rejected() {
        BuildConfig::fixed_k(1);
    }

    #[test]
    fn try_validate_reports_typed_errors() {
        let bad_sigma = BuildConfig {
            k_selection: KSelection::SigmaThreshold(1.5),
            ..BuildConfig::default()
        };
        let err = bad_sigma.try_validate().unwrap_err();
        assert!(matches!(err, crate::Error::InvalidConfig(_)));
        assert!(err.to_string().contains("σ"), "{err}");

        let bad_k = BuildConfig {
            k_selection: KSelection::FixedK(1),
            ..BuildConfig::default()
        };
        assert!(bad_k.try_validate().is_err());

        let bad_levels = BuildConfig {
            max_levels: 1,
            ..BuildConfig::default()
        };
        assert!(bad_levels.try_validate().is_err());

        assert!(BuildConfig::default().try_validate().is_ok());
        assert!(BuildConfig::full().try_validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid configuration")]
    fn validate_panics_via_try_form() {
        BuildConfig {
            k_selection: KSelection::FixedK(0),
            ..BuildConfig::default()
        }
        .validate();
    }
}
