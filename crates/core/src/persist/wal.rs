//! Write-ahead logging for dynamic updates.
//!
//! A serving process that accepts inserts and deletes needs those
//! mutations to survive a crash without paying a full index rebuild per
//! op. The WAL provides that: every [`UpdateOp`] is appended to an on-disk
//! log **before** it is applied to the overlay (see
//! [`IsLabelIndex::attach_wal`](crate::IsLabelIndex::attach_wal)), and
//! [`load_index_with_wal`](crate::persist::load_index_with_wal) replays
//! the log's valid prefix through the normal mutation path — the patching
//! algorithms are deterministic, so replay reconstructs the exact overlay
//! of the crashed process at the last record boundary.
//!
//! ## File format (little-endian)
//!
//! ```text
//! header   magic "ISWL" | version u32 | epoch u64          (16 bytes)
//! record*  len u32 | crc32 u32 (IEEE, over payload) | payload
//! payload  kind u8 + body:
//!            1 = InsertVertex  count u32, then count × (v u32, w u32)
//!            2 = InsertEdge    a u32, b u32, w u32
//!            3 = DeleteVertex  v u32
//! ```
//!
//! The `epoch` pairs the log with exactly one index artifact lineage
//! (minted at build time, stored in the v2 `.islx` header): replay is only
//! attempted when the epochs match, which closes the crash window between
//! "new artifact renamed into place" and "old WAL truncated" during
//! compaction — a stale log is discarded, never replayed onto the wrong
//! base.
//!
//! ## Crash behavior
//!
//! A crash can truncate or corrupt the log at **any byte offset**. The
//! scanner stops at the first record whose length prefix, checksum, or
//! payload fails to verify and reports the byte length of the valid
//! prefix; recovery replays exactly those records and truncates the rest
//! — replay either restores the exact overlay of some applied prefix or
//! fails with a typed error, never with a wrong distance (asserted
//! byte-by-byte in `tests/wal_crash.rs`).
//!
//! This module is a **panic-free zone** and its record kinds/version are
//! pinned by `docs/wire_registry.toml` — both enforced by `islabel-lint`
//! (see `lint.toml` at the repo root).

use crate::updates::UpdateOp;
use islabel_graph::{VertexId, Weight};
use std::fs;
use std::io::{self, Seek, SeekFrom, Write};
use std::path::Path;

/// Magic bytes of a WAL file.
pub const WAL_MAGIC: &[u8; 4] = b"ISWL";
/// Current WAL format version.
pub const WAL_VERSION: u32 = 1;
/// Byte length of the WAL header (magic + version + epoch).
pub const WAL_HEADER_LEN: u64 = 16;
/// Upper bound on one record's payload — anything larger is corruption,
/// not data (an insert-vertex op would need ~2M neighbors to reach it).
pub const MAX_RECORD_LEN: u32 = 1 << 24;

const KIND_INSERT_VERTEX: u8 = 1;
const KIND_INSERT_EDGE: u8 = 2;
const KIND_DELETE_VERTEX: u8 = 3;

/// IEEE CRC-32 of `data` (the checksum stored in every WAL record). The
/// one implementation lives in `islabel-store` — the same function
/// checksums v3 artifact sections, so the two formats cannot drift.
pub use islabel_store::format::crc32;

/// Process-wide WAL counters, registered lazily on the global metrics
/// registry the first time any writer touches the log. Handles are cached
/// so the append path pays one `Arc` deref + one relaxed increment.
struct WalMetrics {
    appends: std::sync::Arc<islabel_obs::Counter>,
    fsync_batches: std::sync::Arc<islabel_obs::Counter>,
}

fn wal_metrics() -> &'static WalMetrics {
    static METRICS: std::sync::OnceLock<WalMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = islabel_obs::Registry::global();
        WalMetrics {
            appends: registry.counter(
                islabel_obs::names::METRIC_WAL_APPENDS_TOTAL,
                "Records appended to the write-ahead log.",
                &[],
            ),
            fsync_batches: registry.counter(
                islabel_obs::names::METRIC_WAL_FSYNC_BATCHES_TOTAL,
                "fsync calls that flushed a batch of appended WAL records.",
                &[],
            ),
        }
    })
}

/// Re-emits a recovery outcome through the global metrics registry.
/// Called once per [`attach_wal`](crate::IsLabelIndex::attach_wal), from
/// the index layer (this file stays panic-free; the registry panics only
/// on a kind clash between two registrations of the same name, which the
/// `docs/wire_registry.toml` metric-name registry pins statically).
pub(crate) fn record_recovery_metrics(recovery: &WalRecovery) {
    let outcome = if recovery.discarded_stale {
        "discarded_stale"
    } else if recovery.created {
        "created"
    } else if recovery.truncated {
        "truncated"
    } else {
        "clean"
    };
    let registry = islabel_obs::Registry::global();
    registry
        .counter(
            islabel_obs::names::METRIC_WAL_RECOVERIES_TOTAL,
            "WAL recovery attempts by outcome.",
            &[("outcome", outcome)],
        )
        .inc();
    if recovery.replayed > 0 {
        registry
            .counter(
                islabel_obs::names::METRIC_WAL_RECOVERED_OPS_TOTAL,
                "Update ops replayed from the WAL during recovery.",
                &[("kind", "replayed")],
            )
            .add(recovery.replayed as u64);
    }
}

/// Serializes one op as a WAL record payload (kind byte + body), appending
/// to `out`. The inverse of [`decode_op`].
pub fn encode_op(op: &UpdateOp, out: &mut Vec<u8>) {
    match op {
        UpdateOp::InsertVertex { edges } => {
            out.push(KIND_INSERT_VERTEX);
            out.extend_from_slice(&(edges.len() as u32).to_le_bytes());
            for &(v, w) in edges {
                out.extend_from_slice(&v.to_le_bytes());
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
        UpdateOp::InsertEdge { a, b, w } => {
            out.push(KIND_INSERT_EDGE);
            out.extend_from_slice(&a.to_le_bytes());
            out.extend_from_slice(&b.to_le_bytes());
            out.extend_from_slice(&w.to_le_bytes());
        }
        UpdateOp::DeleteVertex { v } => {
            out.push(KIND_DELETE_VERTEX);
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Parses one record payload back into an [`UpdateOp`]. Fails (with a
/// human-readable reason) on unknown kinds, short bodies, or trailing
/// garbage — the scanner treats any failure as a corrupt tail.
pub fn decode_op(payload: &[u8]) -> Result<UpdateOp, String> {
    let &kind = payload.first().ok_or("empty record payload")?;
    let mut pos = 1usize;
    let mut take_u32 = |payload: &[u8]| -> Result<u32, String> {
        let end = pos.checked_add(4).ok_or("record length overflow")?;
        let bytes = payload
            .get(pos..end)
            .ok_or("record body shorter than declared")?;
        pos = end;
        // `get(pos..end)` guarantees 4 bytes; map instead of unwrap keeps
        // recovery panic-free even if the invariant ever breaks.
        let bytes: [u8; 4] = bytes
            .try_into()
            .map_err(|_| "record body shorter than declared".to_string())?;
        Ok(u32::from_le_bytes(bytes))
    };
    let op = match kind {
        KIND_INSERT_VERTEX => {
            let count = take_u32(payload)? as usize;
            if count > (MAX_RECORD_LEN as usize) / 8 {
                return Err(format!("implausible neighbor count {count}"));
            }
            let mut edges: Vec<(VertexId, Weight)> = Vec::with_capacity(count);
            for _ in 0..count {
                let v = take_u32(payload)?;
                let w = take_u32(payload)?;
                edges.push((v, w));
            }
            UpdateOp::InsertVertex { edges }
        }
        KIND_INSERT_EDGE => {
            let a = take_u32(payload)?;
            let b = take_u32(payload)?;
            let w = take_u32(payload)?;
            UpdateOp::InsertEdge { a, b, w }
        }
        KIND_DELETE_VERTEX => {
            let v = take_u32(payload)?;
            UpdateOp::DeleteVertex { v }
        }
        other => return Err(format!("unknown record kind {other}")),
    };
    if pos != payload.len() {
        return Err("trailing bytes in record payload".to_string());
    }
    Ok(op)
}

/// What [`IsLabelIndex::attach_wal`](crate::IsLabelIndex::attach_wal)
/// found and did while pairing an index with its log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalRecovery {
    /// Ops replayed from the log on top of the artifact's sealed state.
    pub replayed: usize,
    /// The log was (re)created fresh — it was missing, a creation-time
    /// stub, or inconsistent with the artifact's sealed op history.
    pub created: bool,
    /// A log from a different artifact lineage was discarded (the crash
    /// window between a compaction's artifact rename and its WAL reset —
    /// those ops are already folded into the artifact).
    pub discarded_stale: bool,
    /// A torn or corrupt tail was dropped (the file is truncated back to
    /// the last verified, applicable record).
    pub truncated: bool,
}

/// The verified content of a WAL file: its epoch, the decodable op prefix,
/// and where the valid bytes end (see [`scan_wal`]).
#[derive(Debug)]
pub struct WalScan {
    /// Artifact-lineage epoch from the header.
    pub epoch: u64,
    /// Every fully verified record, in append order.
    pub ops: Vec<UpdateOp>,
    /// End offset (bytes) of record `i` — `offsets[i]` is where a recovery
    /// that keeps records `..=i` should truncate the file.
    pub offsets: Vec<u64>,
    /// Byte length of the valid prefix (header plus verified records).
    pub valid_len: u64,
    /// Whether bytes after the valid prefix were ignored (torn write,
    /// checksum mismatch, or undecodable payload).
    pub truncated_tail: bool,
}

/// Checked little-endian u32 read at `at` (`None` past the end).
fn le_u32(bytes: &[u8], at: usize) -> Option<u32> {
    let raw: [u8; 4] = bytes.get(at..at.checked_add(4)?)?.try_into().ok()?;
    Some(u32::from_le_bytes(raw))
}

/// Checked little-endian u64 read at `at` (`None` past the end).
fn le_u64(bytes: &[u8], at: usize) -> Option<u64> {
    let raw: [u8; 8] = bytes.get(at..at.checked_add(8)?)?.try_into().ok()?;
    Some(u64::from_le_bytes(raw))
}

/// Reads and verifies a WAL file without applying anything.
///
/// Returns `Ok(None)` when the file is shorter than the header — the
/// signature of a crash during [`WalWriter::create`], before any op could
/// have been logged (callers recreate the log; nothing is lost). A wrong
/// magic or unsupported version is a typed error: the file is not a WAL,
/// and destroying it silently would be worse than refusing.
pub fn scan_wal(path: &Path) -> io::Result<Option<WalScan>> {
    let bytes = fs::read(path)?;
    if (bytes.len() as u64) < WAL_HEADER_LEN {
        return Ok(None);
    }
    // The header-length check above makes every `get` below succeed; the
    // checked accessors keep recovery panic-free on any byte sequence.
    if bytes.get(..4) != Some(WAL_MAGIC.as_slice()) {
        return Err(bad("not an ISWL write-ahead log"));
    }
    let Some(version) = le_u32(&bytes, 4) else {
        return Ok(None);
    };
    if version != WAL_VERSION {
        return Err(bad(&format!("unsupported WAL version {version}")));
    }
    let Some(epoch) = le_u64(&bytes, 8) else {
        return Ok(None);
    };

    let mut ops = Vec::new();
    let mut offsets = Vec::new();
    let mut pos = WAL_HEADER_LEN as usize;
    let mut truncated_tail = false;
    while pos < bytes.len() {
        let (Some(len), Some(crc)) = (le_u32(&bytes, pos), le_u32(&bytes, pos + 4)) else {
            truncated_tail = true;
            break;
        };
        if len > MAX_RECORD_LEN {
            truncated_tail = true;
            break;
        }
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len as usize) else {
            truncated_tail = true;
            break;
        };
        if crc32(payload) != crc {
            truncated_tail = true;
            break;
        }
        let Ok(op) = decode_op(payload) else {
            truncated_tail = true;
            break;
        };
        ops.push(op);
        pos += 8 + len as usize;
        offsets.push(pos as u64);
    }
    let valid_len = offsets.last().copied().unwrap_or(WAL_HEADER_LEN);
    Ok(Some(WalScan {
        epoch,
        ops,
        offsets,
        valid_len,
        truncated_tail,
    }))
}

/// Appender for one WAL file: length-prefixed, checksummed records with
/// batched `fsync` (every `sync_every` appends; 1 = sync each op).
///
/// Writers are obtained through
/// [`IsLabelIndex::attach_wal`](crate::IsLabelIndex::attach_wal), which
/// guarantees the log's prefix always equals the overlay's op history for
/// the paired artifact epoch.
#[derive(Debug)]
pub struct WalWriter {
    file: fs::File,
    epoch: u64,
    sync_every: u32,
    pending: u32,
    buf: Vec<u8>,
}

impl WalWriter {
    /// Creates (truncating) the log at `path` with the given epoch and
    /// syncs the header to disk.
    pub fn create(path: &Path, epoch: u64, sync_every: u32) -> io::Result<Self> {
        let mut file = fs::File::create(path)?;
        let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
        header.extend_from_slice(WAL_MAGIC);
        header.extend_from_slice(&WAL_VERSION.to_le_bytes());
        header.extend_from_slice(&epoch.to_le_bytes());
        file.write_all(&header)?;
        file.sync_all()?;
        Ok(Self {
            file,
            epoch,
            sync_every: sync_every.max(1),
            pending: 0,
            buf: Vec::new(),
        })
    }

    /// Reopens an existing log for appending, first truncating it to
    /// `valid_len` (dropping a torn tail found by [`scan_wal`]).
    pub fn resume(path: &Path, epoch: u64, sync_every: u32, valid_len: u64) -> io::Result<Self> {
        let mut file = fs::OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(valid_len)?;
        file.sync_all()?;
        file.seek(SeekFrom::End(0))?;
        Ok(Self {
            file,
            epoch,
            sync_every: sync_every.max(1),
            pending: 0,
            buf: Vec::new(),
        })
    }

    /// The artifact-lineage epoch this log is paired with.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Appends one record (buffered sync: see [`WalWriter::sync`]).
    pub fn append(&mut self, op: &UpdateOp) -> io::Result<()> {
        self.buf.clear();
        encode_op(op, &mut self.buf);
        let mut record = Vec::with_capacity(8 + self.buf.len());
        record.extend_from_slice(&(self.buf.len() as u32).to_le_bytes());
        record.extend_from_slice(&crc32(&self.buf).to_le_bytes());
        record.extend_from_slice(&self.buf);
        self.file.write_all(&record)?;
        wal_metrics().appends.inc();
        self.pending += 1;
        if self.pending >= self.sync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces all appended records to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        if self.pending > 0 {
            wal_metrics().fsync_batches.inc();
        }
        self.pending = 0;
        Ok(())
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn ops_roundtrip_through_payload_encoding() {
        let ops = [
            UpdateOp::InsertVertex { edges: vec![] },
            UpdateOp::InsertVertex {
                edges: vec![(0, 1), (7, 1000), (u32::MAX - 1, u32::MAX)],
            },
            UpdateOp::InsertEdge { a: 3, b: 9, w: 42 },
            UpdateOp::DeleteVertex { v: 12345 },
        ];
        for op in &ops {
            let mut buf = Vec::new();
            encode_op(op, &mut buf);
            assert_eq!(&decode_op(&buf).unwrap(), op);
            // Any strict prefix (or extension) must fail, not misparse.
            for cut in 0..buf.len() {
                assert!(decode_op(&buf[..cut]).is_err(), "prefix {cut}");
            }
            let mut extended = buf.clone();
            extended.push(0);
            assert!(decode_op(&extended).is_err());
        }
    }

    #[test]
    fn writer_and_scanner_roundtrip_with_torn_tail() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("islabel-waltest-{}.wal", std::process::id()));
        let ops = vec![
            UpdateOp::InsertEdge { a: 1, b: 2, w: 3 },
            UpdateOp::InsertVertex {
                edges: vec![(0, 5)],
            },
            UpdateOp::DeleteVertex { v: 1 },
        ];
        let mut w = WalWriter::create(&path, 0xFEED, 2).unwrap();
        for op in &ops {
            w.append(op).unwrap();
        }
        w.sync().unwrap();
        drop(w);

        let scan = scan_wal(&path).unwrap().unwrap();
        assert_eq!(scan.epoch, 0xFEED);
        assert_eq!(scan.ops, ops);
        assert!(!scan.truncated_tail);
        assert_eq!(scan.valid_len, std::fs::metadata(&path).unwrap().len());
        assert_eq!(scan.offsets.len(), 3);

        // A torn final record is dropped, earlier records survive.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let scan = scan_wal(&path).unwrap().unwrap();
        assert_eq!(scan.ops, ops[..2]);
        assert!(scan.truncated_tail);

        // Resuming truncates the tear and appends cleanly.
        let mut w = WalWriter::resume(&path, 0xFEED, 1, scan.valid_len).unwrap();
        w.append(&ops[2]).unwrap();
        drop(w);
        let scan = scan_wal(&path).unwrap().unwrap();
        assert_eq!(scan.ops, ops);
        assert!(!scan.truncated_tail);

        // A header-only stub (crash during create) scans as None.
        std::fs::write(&path, &full[..7]).unwrap();
        assert!(scan_wal(&path).unwrap().is_none());
        // Garbage with the wrong magic is a typed refusal.
        std::fs::write(&path, vec![0xAB; 64]).unwrap();
        assert!(scan_wal(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
