//! The v3 flat artifact: writing an [`IsLabelIndex`] into the
//! `islabel-store` section container and loading it back — either fully
//! into heap structures (this module's [`read_index`]) or zero-copy via
//! [`crate::mmapindex::MmapIndex`], which shares this module's
//! `Sections` resolution and semantic validation so the two load paths
//! cannot drift in what they accept.
//!
//! Unlike the v2 stream, every array is its own 8-byte-aligned section
//! (see `islabel_store::format` for the layout constants), which is what
//! makes mmap-and-serve possible. The residual graph `G_k` is stored
//! *only* in compact (dense-id) form; the heap loader reconstructs the
//! full-universe CSR through [`GraphBuilder`], which is exact because CSR
//! construction is canonical (sorted, deduplicated) and the dense
//! sections were derived from a CSR built the same way.

use crate::config::{BuildConfig, KSelection};
use crate::hierarchy::{PeelEdge, VertexHierarchy};
use crate::index::IsLabelIndex;
use crate::label::LabelSet;
use crate::persist::wal;
use crate::stats::IndexStats;
use islabel_graph::io::{read_csr_binary, write_csr_binary};
use islabel_graph::{FxHashMap, GraphBuilder, VertexId};
use islabel_store::format::{
    FLAG_HAS_HOPS, FLAG_KEEP_PATH_INFO, SECTION_GK_DENSE_OF, SECTION_GK_GLOBAL_OF,
    SECTION_GK_OFFSETS, SECTION_GK_TARGETS, SECTION_GK_VIAS, SECTION_GK_WEIGHTS, SECTION_GRAPH,
    SECTION_LABEL_ANCESTORS, SECTION_LABEL_DISTS, SECTION_LABEL_HOPS, SECTION_LABEL_OFFSETS,
    SECTION_LEVELS, SECTION_OPS, SECTION_PEEL_EDGES, SECTION_PEEL_OFFSETS,
};
use islabel_store::{ArtifactMeta, StoreReader, StoreWriter};
use std::io::{self, Seek, Write};
use std::time::Duration;

use crate::dense::NO_DENSE;

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn ksel_encode(config: &BuildConfig) -> (u32, u64) {
    match config.k_selection {
        KSelection::SigmaThreshold(s) => (0, s.to_bits()),
        KSelection::FixedK(k) => (1, (k as f64).to_bits()),
        KSelection::Full => (2, 0),
    }
}

fn ksel_decode(tag: u32, bits: u64) -> io::Result<KSelection> {
    match tag {
        0 => Ok(KSelection::SigmaThreshold(f64::from_bits(bits))),
        1 => Ok(KSelection::FixedK(f64::from_bits(bits) as u32)),
        2 => Ok(KSelection::Full),
        t => Err(bad(&format!("unknown k-selection tag {t}"))),
    }
}

/// Serializes `index` as a v3 flat artifact. Needs [`Seek`] because the
/// header (with section table and checksums) is patched in at the end of
/// the single forward pass. Returns the writer so path-level callers can
/// `sync_all` the file.
pub fn write_index<W: Write + Seek>(index: &IsLabelIndex, out: W) -> io::Result<W> {
    let h = index.hierarchy();
    let labels = index.labels();
    let dense = index.dense_gk();
    let config = index.config();
    let n = h.universe();
    let (ksel_tag, ksel_bits) = ksel_encode(config);
    let ops = index.overlay.ops();
    let mut flags = 0u32;
    if config.keep_path_info {
        flags |= FLAG_KEEP_PATH_INFO;
    }
    if labels.has_path_info() {
        flags |= FLAG_HAS_HOPS;
    }
    let meta = ArtifactMeta {
        epoch: index.artifact_epoch(),
        flags,
        k: h.k(),
        ksel_tag,
        ksel_bits,
        n: n as u64,
        dense_m: dense.ids().len() as u64,
        op_count: ops.len() as u64,
    };
    let mut w = StoreWriter::new(out, meta)?;

    // Base graph, reusing the self-describing CSR block format.
    let mut graph_block = Vec::new();
    write_csr_binary(index.base_graph(), &mut graph_block)?;
    w.begin_section(SECTION_GRAPH)?;
    w.write_bytes(&graph_block)?;
    w.end_section()?;
    drop(graph_block);

    // Hierarchy levels.
    w.begin_section(SECTION_LEVELS)?;
    let mut buf32: Vec<u32> = Vec::with_capacity(4096);
    for v in 0..n as VertexId {
        buf32.push(h.level_of(v));
        if buf32.len() == 4096 {
            w.write_u32s(&buf32)?;
            buf32.clear();
        }
    }
    w.write_u32s(&buf32)?;
    w.end_section()?;

    // Peel adjacency: an entry-index offset table, then the flat triples.
    w.begin_section(SECTION_PEEL_OFFSETS)?;
    let mut buf64: Vec<u64> = Vec::with_capacity(4096);
    let mut total = 0u64;
    buf64.push(0);
    for v in 0..n as VertexId {
        total += h.peel_adj(v).len() as u64;
        buf64.push(total);
        if buf64.len() >= 4096 {
            w.write_u64s(&buf64)?;
            buf64.clear();
        }
    }
    w.write_u64s(&buf64)?;
    w.end_section()?;
    w.begin_section(SECTION_PEEL_EDGES)?;
    buf32.clear();
    for v in 0..n as VertexId {
        for e in h.peel_adj(v) {
            buf32.extend_from_slice(&[e.to, e.weight, e.via]);
        }
        if buf32.len() >= 4096 {
            w.write_u32s(&buf32)?;
            buf32.clear();
        }
    }
    w.write_u32s(&buf32)?;
    w.end_section()?;

    // Dense G_k: the compact CSR and both id maps. The in-memory CSR
    // interleaves (neighbor, weight) pairs for the search's cache
    // behavior; the on-disk sections are a compatibility surface and
    // stay split, so the writer de-interleaves through the streaming
    // buffer here.
    let fwd_csr = dense.fwd();
    w.begin_section(SECTION_GK_OFFSETS)?;
    w.write_u32s(fwd_csr.offsets_raw())?;
    w.end_section()?;
    w.begin_section(SECTION_GK_TARGETS)?;
    buf32.clear();
    for &(t, _) in fwd_csr.entries_raw() {
        buf32.push(t);
        if buf32.len() >= 4096 {
            w.write_u32s(&buf32)?;
            buf32.clear();
        }
    }
    w.write_u32s(&buf32)?;
    buf32.clear();
    w.end_section()?;
    w.begin_section(SECTION_GK_WEIGHTS)?;
    for &(_, wt) in fwd_csr.entries_raw() {
        buf32.push(wt);
        if buf32.len() >= 4096 {
            w.write_u32s(&buf32)?;
            buf32.clear();
        }
    }
    w.write_u32s(&buf32)?;
    buf32.clear();
    w.end_section()?;
    w.begin_section(SECTION_GK_DENSE_OF)?;
    w.write_u32s(dense.ids().dense_of_raw())?;
    w.end_section()?;
    w.begin_section(SECTION_GK_GLOBAL_OF)?;
    w.write_u32s(dense.ids().global_of_raw())?;
    w.end_section()?;

    // Via annotations, global ids (path expansion only).
    w.begin_section(SECTION_GK_VIAS)?;
    buf32.clear();
    for (u, v, _) in h.gk().edge_list() {
        if let Some(via) = h.gk_via(u, v) {
            buf32.extend_from_slice(&[u, v, via]);
        }
        if buf32.len() >= 4096 {
            w.write_u32s(&buf32)?;
            buf32.clear();
        }
    }
    w.write_u32s(&buf32)?;
    w.end_section()?;

    // Labels, struct-of-arrays.
    w.begin_section(SECTION_LABEL_OFFSETS)?;
    buf64.clear();
    buf64.push(0);
    let mut total = 0u64;
    for v in 0..n as VertexId {
        total += labels.label(v).len() as u64;
        buf64.push(total);
        if buf64.len() >= 4096 {
            w.write_u64s(&buf64)?;
            buf64.clear();
        }
    }
    w.write_u64s(&buf64)?;
    w.end_section()?;
    w.begin_section(SECTION_LABEL_ANCESTORS)?;
    for v in 0..n as VertexId {
        w.write_u32s(labels.label(v).ancestors)?;
    }
    w.end_section()?;
    w.begin_section(SECTION_LABEL_DISTS)?;
    for v in 0..n as VertexId {
        w.write_u64s(labels.label(v).dists)?;
    }
    w.end_section()?;
    if labels.has_path_info() {
        w.begin_section(SECTION_LABEL_HOPS)?;
        for v in 0..n as VertexId {
            w.write_u32s(labels.label(v).first_hops)?;
        }
        w.end_section()?;
    }

    // Sealed dynamic updates (WAL payload format, length-framed).
    w.begin_section(SECTION_OPS)?;
    let mut rec = Vec::new();
    let mut framed = Vec::new();
    for op in ops {
        rec.clear();
        wal::encode_op(op, &mut rec);
        framed.extend_from_slice(&(rec.len() as u32).to_le_bytes());
        framed.extend_from_slice(&rec);
        if framed.len() >= 1 << 16 {
            w.write_bytes(&framed)?;
            framed.clear();
        }
    }
    w.write_bytes(&framed)?;
    w.end_section()?;

    w.finish()
}

/// The resolved, typed views of every v3 section, plus the header facts
/// queries need. Produced by [`Sections::resolve`]; semantic validity
/// (value ranges, monotonicity, cross-section consistency) is checked
/// once by [`Sections::validate`] — both the heap loader and `MmapIndex`
/// run it, so the two paths accept exactly the same artifacts.
#[derive(Debug)]
pub(crate) struct Sections<'a> {
    pub n: usize,
    pub m: usize,
    pub k: u32,
    pub has_hops: bool,
    pub keep_path_info: bool,
    pub k_selection: KSelection,
    pub epoch: u64,
    pub op_count: u64,
    pub graph: &'a [u8],
    pub levels: &'a [u32],
    pub peel_offsets: &'a [u64],
    pub peel_edges: &'a [u32],
    pub gk_offsets: &'a [u32],
    pub gk_targets: &'a [u32],
    pub gk_weights: &'a [u32],
    pub dense_of: &'a [u32],
    pub global_of: &'a [u32],
    pub gk_vias: &'a [u32],
    pub label_offsets: &'a [u64],
    pub label_ancestors: &'a [u32],
    pub label_dists: &'a [u64],
    /// Empty when the artifact has no hop section.
    pub label_hops: &'a [u32],
    pub ops: &'a [u8],
}

fn need_u32s<'a>(r: &'a StoreReader, kind: u32, what: &str) -> io::Result<&'a [u32]> {
    r.section_u32s(kind)?
        .ok_or_else(|| bad(&format!("missing section: {what}")))
}

fn need_u64s<'a>(r: &'a StoreReader, kind: u32, what: &str) -> io::Result<&'a [u64]> {
    r.section_u64s(kind)?
        .ok_or_else(|| bad(&format!("missing section: {what}")))
}

impl<'a> Sections<'a> {
    /// Resolves every section to a typed slice and cross-checks all the
    /// O(1) length facts (array sizes against `n`, `m`, and each other).
    /// Cheap enough to re-run per session; the O(index) value scans live
    /// in [`validate`](Self::validate).
    pub(crate) fn resolve(r: &'a StoreReader) -> io::Result<Sections<'a>> {
        let h = r.header();
        let n = usize::try_from(h.n).map_err(|_| bad("vertex count overflows usize"))?;
        let m = usize::try_from(h.dense_m).map_err(|_| bad("G_k size overflows usize"))?;
        if n > u32::MAX as usize || m > n {
            return Err(bad("vertex counts out of range"));
        }
        let s = Sections {
            n,
            m,
            k: h.k,
            has_hops: h.flags & FLAG_HAS_HOPS != 0,
            keep_path_info: h.flags & FLAG_KEEP_PATH_INFO != 0,
            k_selection: ksel_decode(h.ksel_tag, h.ksel_bits)?,
            epoch: h.epoch,
            op_count: h.op_count,
            graph: r
                .section_bytes(SECTION_GRAPH)
                .ok_or_else(|| bad("missing section: graph"))?,
            levels: need_u32s(r, SECTION_LEVELS, "levels")?,
            peel_offsets: need_u64s(r, SECTION_PEEL_OFFSETS, "peel offsets")?,
            peel_edges: need_u32s(r, SECTION_PEEL_EDGES, "peel edges")?,
            gk_offsets: need_u32s(r, SECTION_GK_OFFSETS, "gk offsets")?,
            gk_targets: need_u32s(r, SECTION_GK_TARGETS, "gk targets")?,
            gk_weights: need_u32s(r, SECTION_GK_WEIGHTS, "gk weights")?,
            dense_of: need_u32s(r, SECTION_GK_DENSE_OF, "gk dense ids")?,
            global_of: need_u32s(r, SECTION_GK_GLOBAL_OF, "gk global ids")?,
            gk_vias: need_u32s(r, SECTION_GK_VIAS, "gk vias")?,
            label_offsets: need_u64s(r, SECTION_LABEL_OFFSETS, "label offsets")?,
            label_ancestors: need_u32s(r, SECTION_LABEL_ANCESTORS, "label ancestors")?,
            label_dists: need_u64s(r, SECTION_LABEL_DISTS, "label dists")?,
            label_hops: match (
                h.flags & FLAG_HAS_HOPS != 0,
                r.section_u32s(SECTION_LABEL_HOPS)?,
            ) {
                (true, Some(hops)) => hops,
                (true, None) => return Err(bad("missing section: label hops")),
                (false, Some(_)) => return Err(bad("hop section without the hops flag")),
                (false, None) => &[],
            },
            ops: r.section_bytes(SECTION_OPS).unwrap_or(&[]),
        };

        // Length cross-checks (O(1) each).
        if s.levels.len() != n {
            return Err(bad("level table size mismatch"));
        }
        if s.peel_offsets.len() != n + 1 {
            return Err(bad("peel offset table size mismatch"));
        }
        if s.peel_offsets.first() != Some(&0)
            || s.peel_offsets.last().copied().unwrap_or(0) as u128 * 3 != s.peel_edges.len() as u128
        {
            return Err(bad("peel offsets inconsistent with edge array"));
        }
        if s.gk_offsets.len() != m + 1 {
            return Err(bad("gk offset table size mismatch"));
        }
        if s.gk_offsets.first() != Some(&0)
            || s.gk_offsets.last().copied().unwrap_or(0) as usize != s.gk_targets.len()
            || s.gk_targets.len() != s.gk_weights.len()
        {
            return Err(bad("gk offsets inconsistent with adjacency arrays"));
        }
        if s.dense_of.len() != n || s.global_of.len() != m {
            return Err(bad("gk id map size mismatch"));
        }
        if !s.gk_vias.len().is_multiple_of(3) {
            return Err(bad("via table length not a multiple of 3"));
        }
        if s.label_offsets.len() != n + 1 {
            return Err(bad("label offset table size mismatch"));
        }
        let label_total = s.label_offsets.last().copied().unwrap_or(0);
        if s.label_offsets.first() != Some(&0)
            || label_total as u128 != s.label_ancestors.len() as u128
            || s.label_ancestors.len() != s.label_dists.len()
            || (s.has_hops && s.label_hops.len() != s.label_ancestors.len())
        {
            return Err(bad("label offsets inconsistent with entry arrays"));
        }
        Ok(s)
    }

    /// The O(index) semantic scans: every stored value is range-checked
    /// and every cross-array invariant verified, so queries over these
    /// slices can never index out of bounds. Run once at open.
    ///
    /// The scan groups (peel graph / G_k arrays / id maps / labels) are
    /// independent, so for large artifacts they run on scoped threads —
    /// validate-on-open sits on the hot-reload path and its latency is
    /// the price of every swap. Error precedence matches the sequential
    /// order regardless of which thread finishes first.
    pub(crate) fn validate(&self) -> io::Result<()> {
        /// Entry count (summed over the big arrays) above which the
        /// scans fan out to threads; below it thread spawn overhead
        /// would exceed the scan itself.
        const PARALLEL_VALIDATE_ENTRIES: usize = 1 << 18;
        let work =
            self.n + self.peel_edges.len() + self.gk_targets.len() + self.label_ancestors.len();
        if work < PARALLEL_VALIDATE_ENTRIES {
            self.validate_levels_and_peel()?;
            self.validate_gk_and_vias()?;
            self.validate_id_maps()?;
            return self.validate_labels(0, self.n);
        }
        // Labels dominate (one entry per (vertex, ancestor) pair), so
        // that group is itself chunked by vertex range.
        let quarter = (self.n / 4).max(1);
        std::thread::scope(|scope| {
            let handles = [
                scope.spawn(|| self.validate_levels_and_peel()),
                scope.spawn(|| self.validate_gk_and_vias()),
                scope.spawn(|| self.validate_id_maps()),
                scope.spawn(|| self.validate_labels(0, quarter.min(self.n))),
                scope
                    .spawn(|| self.validate_labels(quarter.min(self.n), (2 * quarter).min(self.n))),
                scope.spawn(|| {
                    self.validate_labels((2 * quarter).min(self.n), (3 * quarter).min(self.n))
                }),
                scope.spawn(|| self.validate_labels((3 * quarter).min(self.n), self.n)),
            ];
            handles.into_iter().try_for_each(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(bad("validation worker panicked")))
            })
        })
    }

    fn validate_levels_and_peel(&self) -> io::Result<()> {
        let n = self.n;
        let nv = n as u32;
        if self.levels.iter().any(|&l| l == 0 || l > self.k) {
            return Err(bad("level number out of range"));
        }
        if !self.peel_offsets.windows(2).all(|w| w[0] <= w[1]) {
            return Err(bad("peel offsets not monotone"));
        }
        if self.peel_offsets.windows(2).any(|w| w[1] - w[0] > n as u64) {
            return Err(bad("peel adjacency larger than the vertex universe"));
        }
        for t in self.peel_edges.chunks_exact(3) {
            let (to, weight, via) = (t[0], t[1], t[2]);
            if to >= nv || weight == 0 || (via != islabel_graph::adjacency::NO_VIA && via >= nv) {
                return Err(bad("peel edge out of range"));
            }
        }
        Ok(())
    }

    fn validate_gk_and_vias(&self) -> io::Result<()> {
        let m = self.m;
        let nv = self.n as u32;
        if !self.gk_offsets.windows(2).all(|w| w[0] <= w[1]) {
            return Err(bad("gk offsets not monotone"));
        }
        if self.gk_targets.iter().any(|&t| t as usize >= m) {
            return Err(bad("gk target out of range"));
        }
        if self.gk_weights.contains(&0) {
            return Err(bad("gk edge weight zero"));
        }
        for t in self.gk_vias.chunks_exact(3) {
            if t[0] >= nv || t[1] >= nv || t[2] >= nv {
                return Err(bad("via annotation out of range"));
            }
        }
        Ok(())
    }

    /// The id maps must be mutually inverse bijections between the m
    /// dense ids and an ascending subset of the universe, and dense
    /// membership must agree with the level table (level == k) — the
    /// heap loader reconstructs membership from levels while the mmap
    /// engine reads `dense_of`, so this is what keeps them identical.
    fn validate_id_maps(&self) -> io::Result<()> {
        let m = self.m;
        let nv = self.n as u32;
        if !self.global_of.windows(2).all(|w| w[0] < w[1]) {
            return Err(bad("gk global ids not ascending"));
        }
        if self.global_of.last().is_some_and(|&g| g >= nv) {
            return Err(bad("gk global id out of range"));
        }
        for (d, &g) in self.global_of.iter().enumerate() {
            if self.dense_of.get(g as usize) != Some(&(d as u32)) {
                return Err(bad("gk id maps not inverse"));
            }
        }
        let mut members = 0usize;
        for (v, &d) in self.dense_of.iter().enumerate() {
            let in_gk = d != NO_DENSE;
            if in_gk {
                members += 1;
                if d as usize >= m {
                    return Err(bad("gk dense id out of range"));
                }
            }
            if in_gk != (self.levels.get(v).copied() == Some(self.k)) {
                return Err(bad("gk membership disagrees with level table"));
            }
        }
        if members != m {
            return Err(bad("gk member count disagrees with header"));
        }
        Ok(())
    }

    /// Label scans over the vertex range `lo..hi`. Chunks overlap on
    /// the shared boundary offset pair, so every adjacent pair of
    /// `label_offsets` is covered by exactly one chunk's monotone
    /// check. A locally-monotone chunk of a globally non-monotone
    /// table could still point past the entry arrays (resolve only
    /// pins the final offset), so the end offset is bounds-checked
    /// here before any slicing.
    fn validate_labels(&self, lo: usize, hi: usize) -> io::Result<()> {
        let n = self.n;
        let nv = n as u32;
        let Some(offs) = self.label_offsets.get(lo..=hi) else {
            return Ok(());
        };
        if !offs.windows(2).all(|w| w[0] <= w[1]) {
            return Err(bad("label offsets not monotone"));
        }
        if offs.windows(2).any(|w| w[1] - w[0] > n as u64) {
            return Err(bad("label larger than the vertex universe"));
        }
        let first = offs.first().copied().unwrap_or(0);
        let last = offs.last().copied().unwrap_or(0);
        if first > last || last > self.label_ancestors.len() as u64 {
            return Err(bad("label offsets not monotone"));
        }
        if self.label_ancestors[first as usize..last as usize]
            .iter()
            .any(|&a| a >= nv)
        {
            return Err(bad("label ancestor out of range"));
        }
        for w in offs.windows(2) {
            let entries = &self.label_ancestors[w[0] as usize..w[1] as usize];
            if !entries.windows(2).all(|e| e[0] < e[1]) {
                return Err(bad("label entries not sorted"));
            }
        }
        Ok(())
    }

    /// The zero-universe sections — every slice empty, every query
    /// rejected by the bounds check. Used as the unreachable fallback in
    /// `MmapIndex::sections` so re-resolution never needs to panic.
    pub(crate) fn empty() -> Sections<'static> {
        Sections {
            n: 0,
            m: 0,
            k: 1,
            has_hops: false,
            keep_path_info: false,
            k_selection: KSelection::Full,
            epoch: 0,
            op_count: 0,
            graph: &[],
            levels: &[],
            peel_offsets: &[],
            peel_edges: &[],
            gk_offsets: &[],
            gk_targets: &[],
            gk_weights: &[],
            dense_of: &[],
            global_of: &[],
            gk_vias: &[],
            label_offsets: &[],
            label_ancestors: &[],
            label_dists: &[],
            label_hops: &[],
            ops: &[],
        }
    }

    /// One vertex's label as a [`crate::label::LabelView`] over the
    /// mapped slices. `v` must be `< n` (callers bounds-check first).
    #[inline]
    pub(crate) fn label_view(&self, v: VertexId) -> crate::label::LabelView<'a> {
        let lo = self.label_offsets[v as usize] as usize;
        let hi = self.label_offsets[v as usize + 1] as usize;
        crate::label::LabelView {
            ancestors: &self.label_ancestors[lo..hi],
            dists: &self.label_dists[lo..hi],
            first_hops: if self.label_hops.is_empty() {
                &[]
            } else {
                &self.label_hops[lo..hi]
            },
        }
    }
}

/// Loads a v3 artifact fully into heap structures — the same
/// [`IsLabelIndex`] the v2 loader produces, including sealed-op replay.
pub fn read_index(reader: &StoreReader) -> io::Result<IsLabelIndex> {
    let s = Sections::resolve(reader)?;
    s.validate()?;
    let n = s.n;
    let m = s.m;

    let graph = read_csr_binary(&mut &s.graph[..])?;
    if graph.num_vertices() != n {
        return Err(bad("graph universe disagrees with header"));
    }

    let level_of = s.levels.to_vec();
    let mut levels: Vec<Vec<VertexId>> = vec![Vec::new(); s.k.saturating_sub(1) as usize];
    let mut gk_members = Vec::with_capacity(m);
    for (v, &l) in level_of.iter().enumerate() {
        if l == s.k {
            gk_members.push(v as VertexId);
        } else {
            levels[(l - 1) as usize].push(v as VertexId);
        }
    }

    let mut peel_adj: Vec<Box<[PeelEdge]>> = Vec::with_capacity(n);
    for w in s.peel_offsets.windows(2) {
        let adj: Vec<PeelEdge> = s.peel_edges[w[0] as usize * 3..w[1] as usize * 3]
            .chunks_exact(3)
            .map(|t| PeelEdge {
                to: t[0],
                weight: t[1],
                via: t[2],
            })
            .collect();
        peel_adj.push(adj.into_boxed_slice());
    }

    // Reconstruct the full-universe residual CSR from the dense sections.
    // CSR construction is canonical (sorted, min-deduplicated), so this is
    // bit-identical to the graph the dense sections were derived from.
    let mut b = GraphBuilder::new(n);
    b.reserve(s.gk_targets.len() / 2);
    for d in 0..m {
        let (lo, hi) = (s.gk_offsets[d] as usize, s.gk_offsets[d + 1] as usize);
        for (&t, &w) in s.gk_targets[lo..hi].iter().zip(&s.gk_weights[lo..hi]) {
            if t as usize > d {
                b.add_edge(s.global_of[d], s.global_of[t as usize], w);
            }
        }
    }
    let gk = b.build();

    let mut gk_vias = FxHashMap::default();
    for t in s.gk_vias.chunks_exact(3) {
        gk_vias.insert((t[0], t[1]), t[2]);
    }

    let mut per_vertex: Vec<Vec<(VertexId, u64, VertexId)>> = Vec::with_capacity(n);
    for w in s.label_offsets.windows(2) {
        let (lo, hi) = (w[0] as usize, w[1] as usize);
        let entries = (lo..hi)
            .map(|e| {
                let hop = if s.has_hops {
                    s.label_hops[e]
                } else {
                    crate::label::NO_HOP
                };
                (s.label_ancestors[e], s.label_dists[e], hop)
            })
            .collect();
        per_vertex.push(entries);
    }
    let labels = LabelSet::from_per_vertex(per_vertex, s.has_hops);

    let hierarchy =
        VertexHierarchy::from_parts(level_of, s.k, levels, peel_adj, gk, gk_vias, gk_members);
    let config = BuildConfig {
        k_selection: s.k_selection,
        keep_path_info: s.keep_path_info,
        ..BuildConfig::default()
    };
    let stats = IndexStats {
        num_vertices: n,
        num_edges: graph.num_edges(),
        k: s.k,
        gk_vertices: hierarchy.num_gk_vertices(),
        gk_edges: hierarchy.num_gk_edges(),
        label_entries: labels.num_entries(),
        label_bytes: labels.memory_bytes(),
        avg_label_len: labels.avg_label_len(),
        max_label_len: labels.max_label_len(),
        hierarchy_time: Duration::ZERO, // not recorded in the artifact
        labeling_time: Duration::ZERO,
        build_time: Duration::ZERO,
    };
    let mut index = IsLabelIndex::from_parts(graph, hierarchy, labels, config, stats);
    index.set_artifact_epoch(s.epoch);

    // Replay the sealed op log through the normal mutation path, exactly
    // like the v2 loader: every record is validated against the overlay
    // state it applies to.
    let mut bytes = s.ops;
    for i in 0..s.op_count {
        if bytes.len() < 4 {
            return Err(bad(&format!("sealed op {i} truncated")));
        }
        let (len4, rest) = bytes.split_at(4);
        let len = u32::from_le_bytes([len4[0], len4[1], len4[2], len4[3]]) as usize;
        if len > wal::MAX_RECORD_LEN as usize || rest.len() < len {
            return Err(bad(&format!("sealed op {i} implausibly large")));
        }
        let (payload, rest) = rest.split_at(len);
        let op = wal::decode_op(payload).map_err(|e| bad(&format!("sealed op {i}: {e}")))?;
        index
            .replay_op(&op)
            .map_err(|e| bad(&format!("sealed op {i} inapplicable: {e}")))?;
        bytes = rest;
    }
    if !bytes.is_empty() {
        return Err(bad("trailing bytes after the sealed op log"));
    }
    Ok(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use islabel_graph::generators::{barabasi_albert, WeightModel};
    use std::io::Cursor;

    fn v3_roundtrip(config: BuildConfig) -> (IsLabelIndex, IsLabelIndex) {
        let g = barabasi_albert(200, 3, WeightModel::UniformRange(1, 5), 13);
        let index = IsLabelIndex::build(&g, config);
        let buf = write_index(&index, Cursor::new(Vec::new()))
            .unwrap()
            .into_inner();
        let reader = StoreReader::from_bytes(buf).unwrap();
        let loaded = read_index(&reader).unwrap();
        (index, loaded)
    }

    #[test]
    fn v3_roundtrip_preserves_everything_queryable() {
        let (index, loaded) = v3_roundtrip(BuildConfig::default());
        assert_eq!(loaded.labels(), index.labels());
        assert_eq!(loaded.hierarchy().gk(), index.hierarchy().gk());
        assert_eq!(loaded.hierarchy().levels(), index.hierarchy().levels());
        assert_eq!(loaded.dense_gk().fwd(), index.dense_gk().fwd());
        assert_eq!(loaded.dense_gk().ids(), index.dense_gk().ids());
        assert_eq!(loaded.artifact_epoch(), index.artifact_epoch());
        assert_eq!(loaded.config().k_selection, index.config().k_selection);
        for i in 0..60u32 {
            let (s, t) = ((i * 7) % 200, (i * 11 + 3) % 200);
            assert_eq!(loaded.distance(s, t), index.distance(s, t), "({s}, {t})");
            assert_eq!(
                loaded.shortest_path(s, t),
                index.shortest_path(s, t),
                "path ({s}, {t})"
            );
        }
    }

    #[test]
    fn v3_roundtrip_without_path_info_and_full() {
        let config = BuildConfig {
            keep_path_info: false,
            ..BuildConfig::default()
        };
        let (index, loaded) = v3_roundtrip(config);
        assert_eq!(loaded.labels(), index.labels());
        assert!(!loaded.labels().has_path_info());

        let (index, loaded) = v3_roundtrip(BuildConfig::full());
        assert_eq!(loaded.stats().gk_vertices, 0);
        for i in 0..30u32 {
            let (s, t) = ((i * 13) % 200, (i * 29 + 1) % 200);
            assert_eq!(loaded.distance(s, t), index.distance(s, t));
        }
    }

    #[test]
    fn v3_seals_and_replays_dynamic_updates() {
        let g = barabasi_albert(150, 3, WeightModel::Unit, 1);
        let mut index = IsLabelIndex::build(&g, BuildConfig::default());
        index.insert_edge(0, 30, 1);
        let u = index.insert_vertex(&[(0, 2), (30, 1)]);
        let victim = index.hierarchy().gk_members()[0];
        index.delete_vertex(victim);

        let buf = write_index(&index, Cursor::new(Vec::new()))
            .unwrap()
            .into_inner();
        let reader = StoreReader::from_bytes(buf).unwrap();
        assert_eq!(reader.header().op_count, 3);
        let loaded = read_index(&reader).unwrap();
        assert!(loaded.has_updates());
        assert_eq!(loaded.num_vertices(), index.num_vertices());
        assert_eq!(loaded.artifact_epoch(), index.artifact_epoch());
        for i in 0..40u32 {
            let (s, t) = ((i * 7) % 151, (i * 11 + 3) % 151);
            assert_eq!(loaded.try_distance(s, t), index.try_distance(s, t));
        }
        assert_eq!(loaded.try_distance(u, 30), index.try_distance(u, 30));
    }

    #[test]
    fn v3_semantic_validation_rejects_tampering() {
        let g = barabasi_albert(60, 2, WeightModel::Unit, 5);
        let index = IsLabelIndex::build(&g, BuildConfig::default());
        let good = write_index(&index, Cursor::new(Vec::new()))
            .unwrap()
            .into_inner();

        // Re-checksum a section after tampering so only semantic (not
        // structural) validation can catch it: swap the first two label
        // ancestors of some vertex with at least 2 entries.
        let reader = StoreReader::from_bytes(good.clone()).unwrap();
        let s = Sections::resolve(&reader).unwrap();
        let target = s
            .label_offsets
            .windows(2)
            .position(|w| w[1] - w[0] >= 2)
            .expect("some label has 2+ entries");
        let lo = s.label_offsets[target] as usize;
        let sec = *reader.header().section(SECTION_LABEL_ANCESTORS).unwrap();
        drop(reader);

        let mut bad_bytes = good;
        let base = sec.offset as usize + lo * 4;
        bad_bytes.copy_within(base..base + 4, base + 4); // duplicate entry => not strictly sorted
                                                         // Patch the section checksum and the header crc so structure
                                                         // validates and only semantic validation can object.
        let body = &bad_bytes[sec.offset as usize..(sec.offset + sec.len) as usize];
        let new_sum = islabel_store::format::checksum64(body);
        assert_ne!(new_sum, sec.checksum); // tampering changed the body
                                           // Rewrite the table entry checksum in place.
        let table_at = (0..islabel_store::format::MAX_SECTIONS)
            .map(|i| {
                islabel_store::format::HEADER_BYTES + i * islabel_store::format::TABLE_ENTRY_BYTES
            })
            .find(|&at| {
                u32::from_le_bytes(bad_bytes[at..at + 4].try_into().unwrap())
                    == SECTION_LABEL_ANCESTORS
            })
            .unwrap();
        bad_bytes[table_at + 24..table_at + 32].copy_from_slice(&new_sum.to_le_bytes());
        // Recompute the header crc.
        let mut head: Vec<u8> = bad_bytes[..islabel_store::format::DATA_START].to_vec();
        head[64..68].fill(0);
        let hcrc = islabel_store::format::crc32(&head);
        bad_bytes[64..68].copy_from_slice(&hcrc.to_le_bytes());

        let reader = StoreReader::from_bytes(bad_bytes).unwrap(); // structure OK
        let err = read_index(&reader).unwrap_err();
        assert!(err.to_string().contains("not sorted"), "{err}");
    }
}
