//! # Zero-copy serving straight off a mapped v3 artifact
//!
//! [`MmapIndex`] implements [`DistanceOracle`] over the raw bytes of a v3
//! `.islx` file — no deserialization: labels, the dense `G_k` CSR, and
//! the id maps are the mapped sections themselves, cast to typed slices
//! at open (`islabel-store` validates structure — header CRC, section
//! bounds and alignment; `Sections::validate` adds
//! the semantic scans that make querying the raw bytes sound; section
//! content checksums are verified by writers before a swap, not on every
//! open — see [`MmapIndex::open`]). Opening is therefore O(index bytes
//! scanned once) with no allocation proportional to the label set, and
//! the mapping is prefaulted (`MAP_POPULATE`) so that one scan runs at
//! memory speed.
//!
//! Two deliberate scope limits keep this engine simple and bit-identical
//! to the heap path:
//!
//! * only **pristine** artifacts are served (`op_count == 0`): sealed
//!   dynamic updates require overlay state that is inherently heap-built.
//!   [`MmapIndex::open`] refuses non-pristine files and the oracle loader
//!   in [`super::persist`] falls back to the heap engine.
//! * queries answer **distances** (the serving hot path); path expansion
//!   still goes through the heap index.
//!
//! The query algorithm is exactly the session fast path of
//! [`crate::index::IsLabelSession`]: [`seeded_search`] — Equation 1 via
//! the dispatched kernel [`crate::kernel::intersect_min_auto`], seeds
//! filtered through the mapped `dense_of` array, then the dense search
//! on a [`DenseView`] over the mapped CSR sections. The `store_mmap`
//! integration suite pins bit-identical results against the heap engine.

use crate::dense::{seeded_search, DenseScratch, DenseView, NO_DENSE};
use crate::oracle::{check_vertex, DistanceOracle, Error, QueryError, QuerySession};
use crate::persist::v3::Sections;
use islabel_graph::{Dist, VertexId, Weight, INF};
use islabel_store::StoreReader;
use std::path::Path;

/// A distance oracle serving directly from a memory-mapped v3 artifact.
/// See the [module docs](self) for scope and guarantees.
#[derive(Debug)]
pub struct MmapIndex {
    reader: StoreReader,
}

/// The dense `G_k` CSR as typed views of the mapped sections — the
/// [`DenseView`] the kernel runs on. `G_k` is undirected, so the same
/// view serves as both search directions.
#[derive(Debug, Clone, Copy)]
struct MappedDense<'a> {
    offsets: &'a [u32],
    targets: &'a [u32],
    weights: &'a [u32],
}

impl DenseView for MappedDense<'_> {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    #[inline]
    fn edges_of(&self, d: u32) -> impl Iterator<Item = (u32, Weight)> + '_ {
        let lo = self.offsets[d as usize] as usize;
        let hi = self.offsets[d as usize + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .zip(&self.weights[lo..hi])
            .map(|(&t, &w)| (t, w))
    }

    #[inline]
    fn prefetch_row(&self, d: u32) {
        // The mapped sections keep the on-disk split layout, so a row
        // spans two streams: hint both.
        if let Some(&lo) = self.offsets.get(d as usize) {
            crate::kernel::prefetch_index(self.targets, lo as usize);
            crate::kernel::prefetch_index(self.weights, lo as usize);
        }
    }
}

impl MmapIndex {
    /// Maps and validates `path`. Fails with a typed error on any
    /// structural or semantic defect, and on artifacts with sealed
    /// dynamic updates (those need the heap engine).
    ///
    /// Validation here is structural (header CRC, section table bounds)
    /// plus the full semantic scan — every stored value range-checked,
    /// every cross-array invariant verified — which is what makes
    /// querying the raw bytes sound. Section *content checksums* are
    /// deliberately not recomputed on this path: that second O(file)
    /// pass exists to attribute corruption, not to contain it, and it
    /// belongs to the writers ([`open_verified`](Self::open_verified)
    /// before a hot swap, `StoreReader::open` in recovery and tooling),
    /// not to every serving open.
    pub fn open(path: &Path) -> Result<Self, Error> {
        Self::from_reader(StoreReader::open_unverified(path)?)
    }

    /// [`open`](Self::open) plus content-checksum verification of every
    /// section. The rebuild coordinator uses this before publishing a
    /// freshly written artifact, so a corrupt file can never be swapped
    /// into serving.
    pub fn open_verified(path: &Path) -> Result<Self, Error> {
        let this = Self::open(path)?;
        this.reader.verify()?;
        Ok(this)
    }

    /// Same as [`open_verified`](Self::open_verified) over an in-memory
    /// image (testing).
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, Error> {
        Self::from_reader(StoreReader::from_bytes(bytes)?)
    }

    fn from_reader(reader: StoreReader) -> Result<Self, Error> {
        let s = Sections::resolve(&reader)?;
        s.validate()?;
        if s.op_count != 0 {
            return Err(Error::Persist(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "artifact has sealed dynamic updates; the mmap engine serves only pristine indexes",
            )));
        }
        Ok(Self { reader })
    }

    /// The underlying store (header facts, section table, residency).
    pub fn reader(&self) -> &StoreReader {
        &self.reader
    }

    /// Artifact epoch, for swap-coherence checks against the WAL.
    pub fn artifact_epoch(&self) -> u64 {
        self.reader.epoch()
    }

    /// Whether the bytes are an actual `mmap` (as opposed to the heap
    /// fallback used for in-memory images and exotic platforms).
    pub fn is_mapped(&self) -> bool {
        self.reader.is_mapped()
    }

    /// Re-resolves the section views. Infallible after `from_reader`
    /// validated the image (the mapping is immutable), so failures are
    /// reported as the (unreachable) zero-universe index rather than a
    /// panic.
    fn sections(&self) -> Sections<'_> {
        match Sections::resolve(&self.reader) {
            Ok(s) => s,
            // Unreachable: validated at open and immutable since.
            Err(_) => Sections::empty(),
        }
    }
}

impl DistanceOracle for MmapIndex {
    fn engine_name(&self) -> &'static str {
        "islabel-mmap"
    }

    fn num_vertices(&self) -> usize {
        self.reader.header().n as usize
    }

    fn index_bytes(&self) -> usize {
        self.reader.len()
    }

    fn try_distance(&self, s: VertexId, t: VertexId) -> Result<Option<Dist>, QueryError> {
        MmapSession::new(self).distance(s, t)
    }

    fn session(&self) -> Box<dyn QuerySession + '_> {
        Box::new(MmapSession::new(self))
    }
}

/// Per-thread query state over a mapped artifact: the resolved section
/// views plus reusable seed buffers and dense-search scratch.
#[derive(Debug)]
pub struct MmapSession<'a> {
    sections: Sections<'a>,
    fseeds: Vec<(u32, Dist)>,
    rseeds: Vec<(u32, Dist)>,
    scratch: DenseScratch,
    trace: crate::trace::QueryTrace,
}

impl<'a> MmapSession<'a> {
    fn new(index: &'a MmapIndex) -> Self {
        // Resolve the kernel dispatch tier before queries run (tier
        // resolution reads the environment and so may allocate; steady-
        // state queries must not — see tests/alloc_free.rs).
        let _ = crate::kernel::active_tier();
        let sections = index.sections();
        let scratch = DenseScratch::new(sections.m);
        Self {
            sections,
            fseeds: Vec::new(),
            rseeds: Vec::new(),
            scratch,
            trace: crate::trace::QueryTrace::new(),
        }
    }

    fn run(&mut self, s: VertexId, t: VertexId) -> Result<Option<Dist>, QueryError> {
        let sec = &self.sections;
        check_vertex(s, sec.n)?;
        check_vertex(t, sec.n)?;
        if s == t {
            return Ok(Some(0));
        }
        let dense = MappedDense {
            offsets: sec.gk_offsets,
            targets: sec.gk_targets,
            weights: sec.gk_weights,
        };
        let out = seeded_search(
            sec.label_view(s),
            sec.label_view(t),
            |a| {
                let da = sec.dense_of[a as usize];
                (da != NO_DENSE).then_some(da)
            },
            &dense,
            &dense,
            &mut self.fseeds,
            &mut self.rseeds,
            &mut self.scratch,
            &mut self.trace,
        );
        Ok((out.dist < INF).then_some(out.dist))
    }
}

impl QuerySession for MmapSession<'_> {
    fn engine_name(&self) -> &'static str {
        "islabel-mmap"
    }

    fn distance(&mut self, s: VertexId, t: VertexId) -> Result<Option<Dist>, QueryError> {
        self.run(s, t)
    }

    fn trace(&self) -> Option<&crate::trace::QueryTrace> {
        Some(&self.trace)
    }

    fn trace_mut(&mut self) -> Option<&mut crate::trace::QueryTrace> {
        Some(&mut self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BuildConfig;
    use crate::index::IsLabelIndex;
    use crate::persist::v3;
    use islabel_graph::generators::{barabasi_albert, WeightModel};
    use std::io::Cursor;

    fn mmap_of(index: &IsLabelIndex) -> MmapIndex {
        let buf = v3::write_index(index, Cursor::new(Vec::new()))
            .unwrap()
            .into_inner();
        MmapIndex::from_bytes(buf).unwrap()
    }

    #[test]
    fn mmap_matches_heap_engine() {
        let g = barabasi_albert(300, 3, WeightModel::UniformRange(1, 9), 21);
        let index = IsLabelIndex::build(&g, BuildConfig::default());
        let mapped = mmap_of(&index);
        assert_eq!(mapped.num_vertices(), 300);
        let mut session = mapped.session();
        let mut heap_session = index.session();
        for i in 0..200u32 {
            let (s, t) = ((i * 7) % 300, (i * 13 + 5) % 300);
            assert_eq!(
                session.distance(s, t),
                heap_session.distance(s, t),
                "({s}, {t})"
            );
        }
        // Out-of-range vertices are typed errors, and s == t is free.
        assert!(session.distance(300, 0).is_err());
        assert_eq!(session.distance(17, 17), Ok(Some(0)));
    }

    #[test]
    fn mmap_refuses_sealed_updates() {
        let g = barabasi_albert(80, 2, WeightModel::Unit, 3);
        let mut index = IsLabelIndex::build(&g, BuildConfig::default());
        index.insert_edge(0, 40, 1);
        let buf = v3::write_index(&index, Cursor::new(Vec::new()))
            .unwrap()
            .into_inner();
        assert!(MmapIndex::from_bytes(buf).is_err());
    }
}
