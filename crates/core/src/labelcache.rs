//! An LRU cache in front of the disk-resident label store.
//!
//! The paper's two serving modes are the extremes of a spectrum: labels
//! fully on disk (one seek per fetch — IS-LABEL) or fully in memory
//! (IM-ISL, "in which case we will save the factor of Time (a)",
//! Section 7.2). A bounded cache interpolates: hot labels are served from
//! memory, cold ones pay the seek. Because real query workloads are
//! skewed, even a small cache removes most of Time (a).
//!
//! The implementation is a classic hash-map + intrusive doubly-linked LRU
//! list with O(1) fetch/insert/evict, bounded by total cached *bytes*
//! (labels vary wildly in size, so an entry-count bound would be
//! meaningless).

use crate::disklabel::{DiskLabelStore, FetchedLabel};
use islabel_extmem::storage::Storage;
use islabel_graph::{FxHashMap, VertexId};
use std::io;

const NIL: usize = usize::MAX;

struct Node {
    vertex: VertexId,
    label: FetchedLabel,
    bytes: usize,
    prev: usize,
    next: usize,
}

/// Byte-bounded LRU cache over a [`DiskLabelStore`].
pub struct LabelCache {
    store: DiskLabelStore,
    map: FxHashMap<VertexId, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity_bytes: usize,
    used_bytes: usize,
    hits: u64,
    misses: u64,
}

impl LabelCache {
    /// Wraps `store` with a cache of at most `capacity_bytes` of label data.
    pub fn new(store: DiskLabelStore, capacity_bytes: usize) -> Self {
        Self {
            store,
            map: FxHashMap::default(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity_bytes,
            used_bytes: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Fetches `v`'s label, from cache if resident (no I/O) or from the
    /// store (one seek) otherwise.
    pub fn fetch(&mut self, storage: &dyn Storage, v: VertexId) -> io::Result<FetchedLabel> {
        if let Some(&slot) = self.map.get(&v) {
            self.hits += 1;
            self.touch(slot);
            return Ok(self.nodes[slot].label.clone());
        }
        self.misses += 1;
        let label = self.store.fetch(storage, v)?;
        let bytes = label.ancestors.len() * 12 + 64;
        if bytes <= self.capacity_bytes {
            while self.used_bytes + bytes > self.capacity_bytes {
                self.evict_lru();
            }
            self.insert_front(v, label.clone(), bytes);
        }
        Ok(label)
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Number of cached labels.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The wrapped store.
    pub fn store(&self) -> &DiskLabelStore {
        &self.store
    }

    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.nodes[slot].prev, self.nodes[slot].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn attach_front(&mut self, slot: usize) {
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn touch(&mut self, slot: usize) {
        if self.head != slot {
            self.detach(slot);
            self.attach_front(slot);
        }
    }

    fn insert_front(&mut self, vertex: VertexId, label: FetchedLabel, bytes: usize) {
        let node = Node {
            vertex,
            label,
            bytes,
            prev: NIL,
            next: NIL,
        };
        let slot = match self.free.pop() {
            Some(s) => {
                self.nodes[s] = node;
                s
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        self.attach_front(slot);
        self.map.insert(vertex, slot);
        self.used_bytes += bytes;
    }

    fn evict_lru(&mut self) {
        let slot = self.tail;
        debug_assert_ne!(slot, NIL, "evicting from an empty cache");
        self.detach(slot);
        let victim = self.nodes[slot].vertex;
        self.used_bytes -= self.nodes[slot].bytes;
        self.map.remove(&victim);
        self.free.push(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BuildConfig;
    use crate::index::IsLabelIndex;
    use islabel_extmem::storage::MemStorage;
    use islabel_graph::generators::{barabasi_albert, WeightModel};

    fn setup(capacity: usize) -> (IsLabelIndex, MemStorage, LabelCache) {
        let g = barabasi_albert(150, 3, WeightModel::UniformRange(1, 4), 3);
        let index = IsLabelIndex::build(&g, BuildConfig::default());
        let storage = MemStorage::new();
        let store = DiskLabelStore::write(&storage, "labels", index.labels()).unwrap();
        (index, storage, LabelCache::new(store, capacity))
    }

    #[test]
    fn cached_fetches_skip_io() {
        let (_, storage, mut cache) = setup(1 << 20);
        let io = storage.stats();
        io.reset();
        let a = cache.fetch(&storage, 7).unwrap();
        assert_eq!(io.snapshot().seeks, 1);
        let b = cache.fetch(&storage, 7).unwrap();
        assert_eq!(io.snapshot().seeks, 1, "second fetch must be cache-served");
        assert_eq!(a, b);
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn cache_results_match_store() {
        let (index, storage, mut cache) = setup(4 << 10);
        for round in 0..3 {
            for v in (0..150u32).step_by(7) {
                let cached = cache.fetch(&storage, v).unwrap();
                let direct: Vec<(u32, u64)> = index.labels().label(v).iter().collect();
                let got: Vec<(u32, u64)> = cached.view().iter().collect();
                assert_eq!(got, direct, "round {round}, label({v})");
            }
        }
    }

    #[test]
    fn eviction_respects_byte_budget() {
        let (_, storage, mut cache) = setup(600);
        for v in 0..150u32 {
            cache.fetch(&storage, v).unwrap();
            assert!(
                cache.used_bytes() <= 600,
                "budget exceeded: {}",
                cache.used_bytes()
            );
        }
        assert!(cache.len() < 150, "everything fit; budget not exercised");
        // LRU: the most recent fetch should be resident.
        let io = storage.stats();
        io.reset();
        cache.fetch(&storage, 149).unwrap();
        assert_eq!(io.snapshot().seeks, 0);
    }

    #[test]
    fn lru_order_evicts_coldest() {
        let (_, storage, mut cache) = setup(100_000);
        // Prime 0..10, touch 0 again, then force evictions with big churn.
        for v in 0..10u32 {
            cache.fetch(&storage, v).unwrap();
        }
        cache.fetch(&storage, 0).unwrap(); // 0 becomes MRU; 1 is now LRU
        let before = cache.len();
        assert!(before >= 10);
        // Churn new entries until at least one eviction happens.
        let mut next = 11u32;
        while cache.len() >= before && next < 150 {
            cache.fetch(&storage, next).unwrap();
            next += 1;
        }
        // Not a strict assertion of which vertex left (byte sizes vary), but
        // vertex 0 — recently touched — must still be resident.
        let io = storage.stats();
        io.reset();
        cache.fetch(&storage, 0).unwrap();
        assert_eq!(io.snapshot().seeks, 0, "recently-used entry was evicted");
    }

    #[test]
    fn oversized_labels_bypass_cache() {
        let (_, storage, mut cache) = setup(8); // smaller than any label
        cache.fetch(&storage, 3).unwrap();
        assert_eq!(cache.len(), 0);
        cache.fetch(&storage, 3).unwrap();
        assert_eq!(cache.stats(), (0, 2));
    }
}
