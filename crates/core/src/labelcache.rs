//! A sharded LRU cache in front of the disk-resident label store.
//!
//! The paper's two serving modes are the extremes of a spectrum: labels
//! fully on disk (one seek per fetch — IS-LABEL) or fully in memory
//! (IM-ISL, "in which case we will save the factor of Time (a)",
//! Section 7.2). A bounded cache interpolates: hot labels are served from
//! memory, cold ones pay the seek. Because real query workloads are
//! skewed, even a small cache removes most of Time (a).
//!
//! Each shard is a classic hash-map + intrusive doubly-linked LRU list
//! with O(1) fetch/insert/evict, bounded by cached *bytes* (labels vary
//! wildly in size, so an entry-count bound would be meaningless). The
//! cache as a whole is `&self` + [`Sync`]: vertices hash to shards, each
//! shard sits behind its own [`parking_lot::Mutex`], and hit/miss counters
//! are atomics — so one cache serves every thread of a query server, and
//! contention is limited to threads colliding on the same shard. Disk
//! reads on a miss happen *outside* the shard lock; a concurrent fetch of
//! the same vertex may duplicate the read (both get correct data, the
//! insert is idempotent), which is the standard cache trade-off in favor
//! of not blocking a whole shard on I/O.

use crate::disklabel::{DiskLabelStore, FetchedLabel};
use islabel_extmem::storage::Storage;
use islabel_graph::{FxHashMap, VertexId};
use parking_lot::Mutex;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};

const NIL: usize = usize::MAX;

/// Shards stay coarse until there is enough byte budget for each shard to
/// hold a useful working set of labels on its own.
const BYTES_PER_SHARD: usize = 32 << 10;
const MAX_SHARDS: usize = 16;

struct Node {
    vertex: VertexId,
    label: FetchedLabel,
    bytes: usize,
    prev: usize,
    next: usize,
}

/// One independently locked LRU cache over a slice of the vertex space.
struct Shard {
    map: FxHashMap<VertexId, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity_bytes: usize,
    used_bytes: usize,
}

/// Byte-bounded sharded LRU cache over a [`DiskLabelStore`].
///
/// Shared read path: [`fetch`](LabelCache::fetch) takes `&self`, so one
/// cache instance can sit behind an `Arc` and serve every worker thread of
/// a query service concurrently.
pub struct LabelCache {
    store: DiskLabelStore,
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for LabelCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LabelCache")
            .field("store", &self.store)
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

impl LabelCache {
    /// Wraps `store` with a cache of at most `capacity_bytes` of label data
    /// in total, split evenly across the shards.
    pub fn new(store: DiskLabelStore, capacity_bytes: usize) -> Self {
        let num_shards = (capacity_bytes / BYTES_PER_SHARD).clamp(1, MAX_SHARDS);
        let per_shard = capacity_bytes / num_shards;
        let shards = (0..num_shards)
            .map(|_| {
                Mutex::new(Shard {
                    map: FxHashMap::default(),
                    nodes: Vec::new(),
                    free: Vec::new(),
                    head: NIL,
                    tail: NIL,
                    capacity_bytes: per_shard,
                    used_bytes: 0,
                })
            })
            .collect();
        Self {
            store,
            shards,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, v: VertexId) -> &Mutex<Shard> {
        &self.shards[v as usize % self.shards.len()]
    }

    /// Fetches `v`'s label, from cache if resident (no I/O) or from the
    /// store (one seek) otherwise. `&self`: safe to call from any number
    /// of threads concurrently.
    pub fn fetch(&self, storage: &dyn Storage, v: VertexId) -> io::Result<FetchedLabel> {
        {
            let mut shard = self.shard(v).lock();
            if let Some(&slot) = shard.map.get(&v) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                shard.touch(slot);
                return Ok(shard.nodes[slot].label.clone());
            }
        }
        // Miss: read from the store without holding the shard lock.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let label = self.store.fetch(storage, v)?;
        let bytes = label.ancestors.len() * 12 + 64;
        let mut shard = self.shard(v).lock();
        if bytes <= shard.capacity_bytes && !shard.map.contains_key(&v) {
            while shard.used_bytes + bytes > shard.capacity_bytes {
                shard.evict_lru();
            }
            shard.insert_front(v, label.clone(), bytes);
        }
        Ok(label)
    }

    /// `(hits, misses)` so far, totalled across all shards.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Bytes currently cached (all shards).
    pub fn used_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().used_bytes).sum()
    }

    /// Number of cached labels (all shards).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of independently locked shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The wrapped store.
    pub fn store(&self) -> &DiskLabelStore {
        &self.store
    }
}

impl Shard {
    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.nodes[slot].prev, self.nodes[slot].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn attach_front(&mut self, slot: usize) {
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn touch(&mut self, slot: usize) {
        if self.head != slot {
            self.detach(slot);
            self.attach_front(slot);
        }
    }

    fn insert_front(&mut self, vertex: VertexId, label: FetchedLabel, bytes: usize) {
        let node = Node {
            vertex,
            label,
            bytes,
            prev: NIL,
            next: NIL,
        };
        let slot = match self.free.pop() {
            Some(s) => {
                self.nodes[s] = node;
                s
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        self.attach_front(slot);
        self.map.insert(vertex, slot);
        self.used_bytes += bytes;
    }

    fn evict_lru(&mut self) {
        let slot = self.tail;
        debug_assert_ne!(slot, NIL, "evicting from an empty cache");
        self.detach(slot);
        let victim = self.nodes[slot].vertex;
        self.used_bytes -= self.nodes[slot].bytes;
        self.map.remove(&victim);
        self.free.push(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BuildConfig;
    use crate::index::IsLabelIndex;
    use islabel_extmem::storage::MemStorage;
    use islabel_graph::generators::{barabasi_albert, WeightModel};

    fn setup(capacity: usize) -> (IsLabelIndex, MemStorage, LabelCache) {
        let g = barabasi_albert(150, 3, WeightModel::UniformRange(1, 4), 3);
        let index = IsLabelIndex::build(&g, BuildConfig::default());
        let storage = MemStorage::new();
        let store = DiskLabelStore::write(&storage, "labels", index.labels()).unwrap();
        (index, storage, LabelCache::new(store, capacity))
    }

    #[test]
    fn cached_fetches_skip_io() {
        let (_, storage, cache) = setup(1 << 20);
        let io = storage.stats();
        io.reset();
        let a = cache.fetch(&storage, 7).unwrap();
        assert_eq!(io.snapshot().seeks, 1);
        let b = cache.fetch(&storage, 7).unwrap();
        assert_eq!(io.snapshot().seeks, 1, "second fetch must be cache-served");
        assert_eq!(a, b);
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn cache_results_match_store() {
        let (index, storage, cache) = setup(4 << 10);
        for round in 0..3 {
            for v in (0..150u32).step_by(7) {
                let cached = cache.fetch(&storage, v).unwrap();
                let direct: Vec<(u32, u64)> = index.labels().label(v).iter().collect();
                let got: Vec<(u32, u64)> = cached.view().iter().collect();
                assert_eq!(got, direct, "round {round}, label({v})");
            }
        }
    }

    #[test]
    fn eviction_respects_byte_budget() {
        let (_, storage, cache) = setup(600);
        assert_eq!(cache.num_shards(), 1, "small budgets must stay unsharded");
        for v in 0..150u32 {
            cache.fetch(&storage, v).unwrap();
            assert!(
                cache.used_bytes() <= 600,
                "budget exceeded: {}",
                cache.used_bytes()
            );
        }
        assert!(cache.len() < 150, "everything fit; budget not exercised");
        // LRU: the most recent fetch should be resident.
        let io = storage.stats();
        io.reset();
        cache.fetch(&storage, 149).unwrap();
        assert_eq!(io.snapshot().seeks, 0);
    }

    #[test]
    fn lru_order_evicts_coldest() {
        let (_, storage, cache) = setup(100_000);
        // Prime 0..10, touch 0 again, then force evictions with big churn.
        for v in 0..10u32 {
            cache.fetch(&storage, v).unwrap();
        }
        cache.fetch(&storage, 0).unwrap(); // 0 becomes MRU of its shard
        let before = cache.len();
        assert!(before >= 10);
        // Churn new entries until at least one eviction happens (or the
        // whole label set fits, in which case nothing may be evicted and
        // the residency check below is trivially satisfied).
        let mut next = 11u32;
        while cache.len() >= before && next < 150 {
            cache.fetch(&storage, next).unwrap();
            next += 1;
        }
        // Not a strict assertion of which vertex left (byte sizes vary), but
        // vertex 0 — recently touched — must still be resident.
        let io = storage.stats();
        io.reset();
        cache.fetch(&storage, 0).unwrap();
        assert_eq!(io.snapshot().seeks, 0, "recently-used entry was evicted");
    }

    #[test]
    fn oversized_labels_bypass_cache() {
        let (_, storage, cache) = setup(8); // smaller than any label
        cache.fetch(&storage, 3).unwrap();
        assert_eq!(cache.len(), 0);
        cache.fetch(&storage, 3).unwrap();
        assert_eq!(cache.stats(), (0, 2));
    }

    #[test]
    fn big_budgets_shard_the_cache() {
        let (_, _, cache) = setup(1 << 20);
        assert!(cache.num_shards() > 1);
        assert!(cache.num_shards() <= MAX_SHARDS);
    }

    #[test]
    fn concurrent_fetches_are_coherent() {
        // The &self read path under contention: every thread must see the
        // exact stored label, and the counters must account every fetch.
        let (index, storage, cache) = setup(64 << 10);
        let threads = 8;
        let rounds = 40;
        std::thread::scope(|scope| {
            for tid in 0..threads {
                let cache = &cache;
                let storage = &storage;
                let index = &index;
                scope.spawn(move || {
                    for i in 0..rounds {
                        let v = ((tid * 37 + i * 13) % 150) as u32;
                        let got = cache.fetch(storage, v).unwrap();
                        let direct: Vec<(u32, u64)> = index.labels().label(v).iter().collect();
                        let have: Vec<(u32, u64)> = got.view().iter().collect();
                        assert_eq!(have, direct, "thread {tid}, label({v})");
                    }
                });
            }
        });
        let (hits, misses) = cache.stats();
        assert_eq!(hits + misses, (threads * rounds) as u64);
        assert!(hits > 0, "a hot working set must produce hits");
    }
}
