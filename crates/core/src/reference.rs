//! Slow reference implementations used to validate the fast paths.
//!
//! These functions implement the paper's *definitions* as literally as
//! possible — the Definition 3 marking procedure, the exact `LABEL(·)` of
//! Definition 2, and textbook Dijkstra — so the optimized hierarchy/label/
//! query code can be checked against them in tests and property tests. They
//! are exported (not `cfg(test)`) because the integration and property
//! suites in `tests/` rely on them; do not use them in production paths.

use crate::hierarchy::VertexHierarchy;
use islabel_graph::{CsrGraph, Dist, FxHashMap, FxHashSet, VertexId, INF};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The Definition 3 marking procedure, verbatim:
///
/// > For each `v`, first include `(v, 0)` and mark `v`. Take a marked vertex
/// > `u` with the smallest level, unmark it; for each `w ∈ adj_{G_j}(u)`
/// > (`j = ℓ(u)`) with `ℓ(w) > j`, add or min-update
/// > `(w, d(v, u) + ω_{G_j}(u, w))` and mark `w`.
///
/// Returns entries sorted by ancestor id.
pub fn definition3_label(h: &VertexHierarchy, v: VertexId) -> Vec<(VertexId, Dist)> {
    let mut d: FxHashMap<VertexId, Dist> = FxHashMap::default();
    d.insert(v, 0);
    // Marked vertices processed in ascending level order. Vertices at equal
    // level cannot relax one another (relax targets are strictly higher), so
    // tie order is irrelevant; each vertex needs processing exactly once
    // because improvements only ever come from strictly lower levels.
    let mut queue: BinaryHeap<Reverse<(u32, VertexId)>> = BinaryHeap::new();
    queue.push(Reverse((h.level_of(v), v)));
    let mut queued: FxHashSet<VertexId> = FxHashSet::default();
    queued.insert(v);

    while let Some(Reverse((_, u))) = queue.pop() {
        let du = d[&u];
        // adj_{G_{ℓ(u)}}(u) is the archived peel adjacency; G_k vertices
        // have no strictly-higher-level neighbors.
        for e in h.peel_adj(u) {
            let w = e.to;
            debug_assert!(h.level_of(w) > h.level_of(u));
            let cand = du + e.weight as Dist;
            let entry = d.entry(w).or_insert(Dist::MAX);
            if cand < *entry {
                *entry = cand;
            }
            if queued.insert(w) {
                queue.push(Reverse((h.level_of(w), w)));
            }
        }
    }

    let mut out: Vec<(VertexId, Dist)> = d.into_iter().collect();
    out.sort_unstable_by_key(|&(a, _)| a);
    out
}

/// The exact label `LABEL(v)` of Definition 2: every ancestor of `v` paired
/// with its *true* distance `dist_G(v, ·)`. Quadratic-ish; test use only.
pub fn exact_label(g: &CsrGraph, h: &VertexHierarchy, v: VertexId) -> Vec<(VertexId, Dist)> {
    // Ancestor closure over peel adjacency (every peel edge ascends levels).
    let mut ancestors: FxHashSet<VertexId> = FxHashSet::default();
    let mut stack = vec![v];
    ancestors.insert(v);
    while let Some(u) = stack.pop() {
        for e in h.peel_adj(u) {
            if ancestors.insert(e.to) {
                stack.push(e.to);
            }
        }
    }
    let dist = dijkstra_all(g, v);
    let mut out: Vec<(VertexId, Dist)> = ancestors
        .into_iter()
        .map(|a| (a, dist[a as usize]))
        .collect();
    out.sort_unstable_by_key(|&(a, _)| a);
    out
}

/// Textbook single-source Dijkstra over a CSR graph; `INF` marks
/// unreachable vertices. The ground truth for every correctness test.
pub fn dijkstra_all(g: &CsrGraph, source: VertexId) -> Vec<Dist> {
    let mut dist = vec![INF; g.num_vertices()];
    let mut heap: BinaryHeap<Reverse<(Dist, VertexId)>> = BinaryHeap::new();
    dist[source as usize] = 0;
    heap.push(Reverse((0, source)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue; // stale entry
        }
        for (u, w) in g.edges(v) {
            let nd = d + w as Dist;
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                heap.push(Reverse((nd, u)));
            }
        }
    }
    dist
}

/// Point-to-point Dijkstra distance (early exit when `t` settles).
pub fn dijkstra_p2p(g: &CsrGraph, s: VertexId, t: VertexId) -> Option<Dist> {
    if s == t {
        return Some(0);
    }
    let mut dist = vec![INF; g.num_vertices()];
    let mut heap: BinaryHeap<Reverse<(Dist, VertexId)>> = BinaryHeap::new();
    dist[s as usize] = 0;
    heap.push(Reverse((0, s)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if v == t {
            return Some(d);
        }
        if d > dist[v as usize] {
            continue;
        }
        for (u, w) in g.edges(v) {
            let nd = d + w as Dist;
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                heap.push(Reverse((nd, u)));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use islabel_graph::GraphBuilder;

    fn line(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for v in 0..(n - 1) as VertexId {
            b.add_edge(v, v + 1, v + 1);
        }
        b.build()
    }

    #[test]
    fn dijkstra_on_weighted_line() {
        let g = line(5);
        let d = dijkstra_all(&g, 0);
        assert_eq!(d, vec![0, 1, 3, 6, 10]);
        assert_eq!(dijkstra_p2p(&g, 0, 4), Some(10));
        assert_eq!(dijkstra_p2p(&g, 4, 0), Some(10));
        assert_eq!(dijkstra_p2p(&g, 2, 2), Some(0));
    }

    #[test]
    fn dijkstra_reports_unreachable() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1);
        let g = b.build();
        assert_eq!(dijkstra_all(&g, 0)[3], INF);
        assert_eq!(dijkstra_p2p(&g, 0, 3), None);
    }

    #[test]
    fn dijkstra_prefers_cheaper_multihop() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 2, 10);
        b.add_edge(0, 1, 2);
        b.add_edge(1, 2, 3);
        let g = b.build();
        assert_eq!(dijkstra_p2p(&g, 0, 2), Some(5));
    }
}
