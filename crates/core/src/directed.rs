//! IS-LABEL for directed graphs (paper Section 8.2).
//!
//! The directed extension changes three things relative to the undirected
//! index:
//!
//! * **Hierarchy**: independent sets are selected "by simply ignoring the
//!   direction of the edges"; but distance repair is directional — peeling
//!   `v` creates an augmenting arc `(u, w)` only when `(u, v)` and `(v, w)`
//!   both exist as arcs, with weight `ω(u,v) + ω(v,w)`.
//! * **Labels**: each vertex keeps an *out-label* (out-ancestors reached by
//!   level-increasing chains of forward arcs) and an *in-label*
//!   (in-ancestors via backward arcs).
//! * **Query**: `dist(s → t)` evaluates Equation 1 over
//!   `X = LABEL_out(s) ∩ LABEL_in(t)`, then runs the bidirectional search
//!   with the forward frontier on `G_k`'s arcs and the reverse frontier on
//!   the transposed arcs.
//!
//! Because a `dist(s → t) ≠ ∞` answer is exactly a reachability witness,
//! this index "simultaneously solves the fundamental problem of
//! reachability" (paper Section 9); see [`DiIsLabelIndex::reachable`].
//!
//! Shortest-path reconstruction and dynamic updates are implemented for the
//! undirected index only (the paper describes them in the undirected
//! setting); directed queries return distances.

use crate::config::{BuildConfig, IsStrategy, KSelection};
use crate::dense::{seeded_search, DenseCsr, DenseGk, DenseScratch, GkIdMap};
use crate::label::LabelSet;
use crate::oracle::{check_vertex, DistanceOracle, Error, QueryError, QuerySession};
use crate::query::{intersect_min, label_bi_dijkstra_directed, GkGraph, SearchParams};
use crate::stats::IndexStats;
use islabel_graph::{CsrDigraph, Dist, FxHashMap, VertexId, Weight, INF};
use std::time::Instant;

/// A sorted list of `(endpoint, weight)` arcs.
type ArcList = Vec<(VertexId, Weight)>;

/// Mutable directed adjacency used during peeling (the directed analogue of
/// `AdjacencyGraph`).
#[derive(Debug, Clone)]
struct DiAdjacency {
    out: Vec<FxHashMap<VertexId, Weight>>,
    inn: Vec<FxHashMap<VertexId, Weight>>,
    present: Vec<bool>,
    num_present: usize,
    num_arcs: usize,
}

impl DiAdjacency {
    fn from_digraph(g: &CsrDigraph) -> Self {
        let n = g.num_vertices();
        let mut out: Vec<FxHashMap<VertexId, Weight>> = vec![FxHashMap::default(); n];
        let mut inn: Vec<FxHashMap<VertexId, Weight>> = vec![FxHashMap::default(); n];
        for v in g.vertices() {
            for (u, w) in g.out_edges(v) {
                out[v as usize].insert(u, w);
                inn[u as usize].insert(v, w);
            }
        }
        Self {
            out,
            inn,
            present: vec![true; n],
            num_present: n,
            num_arcs: g.num_arcs(),
        }
    }

    fn size(&self) -> usize {
        self.num_present + self.num_arcs
    }

    /// Undirected degree used by the greedy IS selection (out + in; an
    /// antiparallel pair counts twice, a deterministic and cheap proxy).
    fn degree(&self, v: VertexId) -> usize {
        self.out[v as usize].len() + self.inn[v as usize].len()
    }

    /// All vertices adjacent to `v` in either direction.
    fn undirected_neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.out[v as usize]
            .keys()
            .copied()
            .chain(self.inn[v as usize].keys().copied())
    }

    fn upsert_arc_min(&mut self, u: VertexId, w: VertexId, weight: Weight) {
        debug_assert!(u != w);
        match self.out[u as usize].entry(w) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(weight);
                self.inn[w as usize].insert(u, weight);
                self.num_arcs += 1;
            }
            std::collections::hash_map::Entry::Occupied(mut slot) => {
                if weight < *slot.get() {
                    *slot.get_mut() = weight;
                    self.inn[w as usize].insert(u, weight);
                }
            }
        }
    }

    /// Removes `v`, returning its (sorted) out- and in-adjacency.
    fn remove_vertex(&mut self, v: VertexId) -> (ArcList, ArcList) {
        assert!(self.present[v as usize]);
        let out_map = std::mem::take(&mut self.out[v as usize]);
        let in_map = std::mem::take(&mut self.inn[v as usize]);
        let mut out_adj: ArcList = out_map.into_iter().collect();
        let mut in_adj: ArcList = in_map.into_iter().collect();
        out_adj.sort_unstable_by_key(|&(u, _)| u);
        in_adj.sort_unstable_by_key(|&(u, _)| u);
        for &(u, _) in &out_adj {
            self.inn[u as usize].remove(&v);
        }
        for &(u, _) in &in_adj {
            self.out[u as usize].remove(&v);
        }
        self.num_arcs -= out_adj.len() + in_adj.len();
        self.present[v as usize] = false;
        self.num_present -= 1;
        (out_adj, in_adj)
    }
}

/// The directed IS-LABEL index.
///
/// # Examples
///
/// ```
/// use islabel_core::{BuildConfig, DiIsLabelIndex};
/// use islabel_graph::DigraphBuilder;
///
/// let mut b = DigraphBuilder::new(3);
/// b.add_arc(0, 1, 4);
/// b.add_arc(1, 2, 1);
/// b.add_arc(2, 0, 1);
/// let g = b.build();
/// let index = DiIsLabelIndex::build(&g, BuildConfig::default());
/// assert_eq!(index.distance(0, 2), Some(5));
/// assert_eq!(index.distance(2, 1), Some(5)); // 2 → 0 → 1
/// ```
#[derive(Debug)]
pub struct DiIsLabelIndex {
    level_of: Vec<u32>,
    k: u32,
    levels: Vec<Vec<VertexId>>,
    /// Peel-time outgoing arcs `v → to` (targets at strictly higher levels).
    peel_out: Vec<Box<[(VertexId, Weight)]>>,
    /// Peel-time incoming arcs `from → v`.
    peel_in: Vec<Box<[(VertexId, Weight)]>>,
    gk: CsrDigraph,
    gk_members: Vec<VertexId>,
    /// Compact-id forward/transposed residual adjacency (see
    /// [`crate::dense`]); the session hot path searches this.
    dense: DenseGk,
    out_labels: LabelSet,
    in_labels: LabelSet,
    stats: IndexStats,
}

impl DiIsLabelIndex {
    /// Builds the directed index, panicking on an invalid configuration
    /// (convenience over [`DiIsLabelIndex::try_build`]).
    pub fn build(g: &CsrDigraph, config: BuildConfig) -> Self {
        Self::try_build(g, config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the directed index; returns
    /// [`Error::InvalidConfig`] instead of panicking on nonsense `config`.
    pub fn try_build(g: &CsrDigraph, config: BuildConfig) -> Result<Self, Error> {
        config.try_validate()?;
        let t0 = Instant::now();
        let n = g.num_vertices();
        let mut work = DiAdjacency::from_digraph(g);
        let mut level_of = vec![0u32; n];
        let mut levels: Vec<Vec<VertexId>> = Vec::new();
        let mut peel_out: Vec<Box<[(VertexId, Weight)]>> = vec![Box::default(); n];
        let mut peel_in: Vec<Box<[(VertexId, Weight)]>> = vec![Box::default(); n];

        let mut i: u32 = 1;
        let k = loop {
            if work.num_present == 0 {
                break i;
            }
            match config.k_selection {
                KSelection::FixedK(kf) if i == kf => break i,
                _ if i == config.max_levels => break i,
                _ => {}
            }
            let size_before = work.size();
            let li = select_is(&work, config.is_strategy);
            debug_assert!(!li.is_empty());
            for &v in &li {
                let (out_adj, in_adj) = work.remove_vertex(v);
                level_of[v as usize] = i;
                // Directed repair: one arc per (in-neighbor, out-neighbor)
                // pair — "we create an augmenting edge (u, w) at G_i only if
                // ∃v ∈ L_{i−1} such that (u, v), (v, w) ∈ E_{G_{i−1}}".
                for &(u, wu) in &in_adj {
                    for &(w, ww) in &out_adj {
                        if u != w {
                            let weight = wu.checked_add(ww).expect(
                                "augmenting arc weight overflows u32: input weights are too \
                                 large (shortest-path lengths must fit in u32 during \
                                 construction)",
                            );
                            work.upsert_arc_min(u, w, weight);
                        }
                    }
                }
                peel_out[v as usize] = out_adj.into_boxed_slice();
                peel_in[v as usize] = in_adj.into_boxed_slice();
            }
            levels.push(li);
            let size_after = work.size();
            if let KSelection::SigmaThreshold(sigma) = config.k_selection {
                if size_after as f64 > sigma * size_before as f64 {
                    break i + 1;
                }
            }
            i += 1;
        };

        let gk_members: Vec<VertexId> = (0..n as VertexId)
            .filter(|&v| work.present[v as usize])
            .collect();
        for &v in &gk_members {
            level_of[v as usize] = k;
        }
        let mut gb = islabel_graph::DigraphBuilder::new(n);
        for &v in &gk_members {
            for (&u, &w) in &work.out[v as usize] {
                gb.add_arc(v, u, w);
            }
        }
        let gk = gb.build();
        let ids = GkIdMap::build(n, &gk_members);
        let fwd = DenseCsr::build(ids.len(), |d| {
            gk.out_edges(ids.global(d))
                .map(|(u, w)| (ids.dense(u).expect("G_k arc endpoint outside G_k"), w))
        });
        let rev = DenseCsr::build(ids.len(), |d| {
            gk.in_edges(ids.global(d))
                .map(|(u, w)| (ids.dense(u).expect("G_k arc endpoint outside G_k"), w))
        });
        let dense = DenseGk::directed(ids, fwd, rev);
        let t1 = Instant::now();

        // Top-down labeling in both directions (Algorithm 4 applied to the
        // out- and in-peel adjacency respectively).
        let out_labels = build_directional_labels(&level_of, k, &levels, &gk_members, &peel_out);
        let in_labels = build_directional_labels(&level_of, k, &levels, &gk_members, &peel_in);
        let t2 = Instant::now();

        let label_entries = out_labels.num_entries() + in_labels.num_entries();
        let label_bytes = out_labels.memory_bytes() + in_labels.memory_bytes();
        let stats = IndexStats {
            num_vertices: n,
            num_edges: g.num_arcs(),
            k,
            gk_vertices: gk_members.len(),
            gk_edges: gk.num_arcs(),
            label_entries,
            label_bytes,
            avg_label_len: if n == 0 {
                0.0
            } else {
                label_entries as f64 / (2.0 * n as f64)
            },
            max_label_len: out_labels.max_label_len().max(in_labels.max_label_len()),
            hierarchy_time: t1 - t0,
            labeling_time: t2 - t1,
            build_time: t2 - t0,
        };

        Ok(Self {
            level_of,
            k,
            levels,
            peel_out,
            peel_in,
            gk,
            gk_members,
            dense,
            out_labels,
            in_labels,
            stats,
        })
    }

    /// Number of vertices indexed.
    pub fn num_vertices(&self) -> usize {
        self.level_of.len()
    }

    /// The number of levels `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The peeled level sets.
    pub fn levels(&self) -> &[Vec<VertexId>] {
        &self.levels
    }

    /// Vertices of the residual graph, ascending.
    pub fn gk_members(&self) -> &[VertexId] {
        &self.gk_members
    }

    /// The residual digraph `G_k` over the full id universe (peeled
    /// vertices are isolated in it). The reference/sparse search path runs
    /// over this; the hot path uses [`DiIsLabelIndex::dense_gk`].
    pub fn gk(&self) -> &CsrDigraph {
        &self.gk
    }

    /// The dense search substrate: compact `G_k` ids plus remapped forward
    /// and transposed adjacency (see [`crate::dense`]).
    pub fn dense_gk(&self) -> &DenseGk {
        &self.dense
    }

    /// Peel-time outgoing arcs of `v` (empty for residual vertices).
    pub fn peel_out(&self, v: VertexId) -> &[(VertexId, Weight)] {
        &self.peel_out[v as usize]
    }

    /// Peel-time incoming arcs of `v` (empty for residual vertices).
    pub fn peel_in(&self, v: VertexId) -> &[(VertexId, Weight)] {
        &self.peel_in[v as usize]
    }

    /// Whether `v` survived into the residual graph.
    pub fn is_in_gk(&self, v: VertexId) -> bool {
        self.level_of[v as usize] == self.k
    }

    /// Construction statistics (label fields cover both directions).
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }

    /// The out-label of `v` (`(out-ancestor, d(v → ·))` pairs).
    pub fn out_label(&self, v: VertexId) -> crate::label::LabelView<'_> {
        self.out_labels.label(v)
    }

    /// The in-label of `v` (`(in-ancestor, d(· → v))` pairs).
    pub fn in_label(&self, v: VertexId) -> crate::label::LabelView<'_> {
        self.in_labels.label(v)
    }

    /// Directed distance `dist(s → t)`; `None` when `t` is unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `t` is out of range; use
    /// [`DiIsLabelIndex::try_distance`] for the fallible form.
    pub fn distance(&self, s: VertexId, t: VertexId) -> Option<Dist> {
        self.try_distance(s, t).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Directed distance with typed errors: `Ok(None)` means unreachable,
    /// `Err(VertexOutOfRange)` flags a malformed query.
    pub fn try_distance(&self, s: VertexId, t: VertexId) -> Result<Option<Dist>, QueryError> {
        check_vertex(s, self.num_vertices())?;
        check_vertex(t, self.num_vertices())?;
        if s == t {
            return Ok(Some(0));
        }
        // Stage 1: Equation 1 over X = LABEL_out(s) ∩ LABEL_in(t).
        let ls = self.out_labels.label(s);
        let lt = self.in_labels.label(t);
        let (mu0, witness) = intersect_min(ls, lt);

        // Stage 2: forward search on arcs, reverse search on transposed arcs.
        let fseeds: Vec<(VertexId, Dist)> = ls.iter().filter(|&(a, _)| self.is_in_gk(a)).collect();
        let rseeds: Vec<(VertexId, Dist)> = lt.iter().filter(|&(a, _)| self.is_in_gk(a)).collect();
        let result = label_bi_dijkstra_directed(
            &Forward(&self.gk),
            &Backward(&self.gk),
            SearchParams {
                fseeds: &fseeds,
                rseeds: &rseeds,
                mu0,
                mu0_witness: witness,
                track_paths: false,
            },
        );
        Ok((result.dist < INF).then_some(result.dist))
    }

    /// Directed reachability: whether any path `s → t` exists. The paper
    /// points out the directed index answers this "fundamental problem"
    /// for free (Section 9).
    pub fn reachable(&self, s: VertexId, t: VertexId) -> bool {
        self.distance(s, t).is_some()
    }

    /// Opens a per-thread [`DiIsLabelSession`] with reusable dense-kernel
    /// scratch; the typed twin of [`DistanceOracle::session`]. Scratch and
    /// seed buffers are fully pre-sized, so steady-state queries are
    /// allocation-free.
    pub fn session(&self) -> DiIsLabelSession<'_> {
        // Resolve the kernel dispatch tier before queries run (tier
        // resolution reads the environment and so may allocate; steady-
        // state queries must not — see tests/alloc_free.rs).
        let _ = crate::kernel::active_tier();
        let seed_cap = self
            .out_labels
            .max_label_len()
            .max(self.in_labels.max_label_len());
        DiIsLabelSession {
            index: self,
            scratch: DenseScratch::new(self.dense.ids().len()),
            fseeds: Vec::with_capacity(seed_cap),
            rseeds: Vec::with_capacity(seed_cap),
            trace: crate::trace::QueryTrace::new(),
        }
    }
}

/// Reusable query state for one [`DiIsLabelIndex`]: dense search scratch
/// plus compact-id seed buffers (see [`QuerySession`]). Obtained from
/// [`DiIsLabelIndex::session`].
#[derive(Debug)]
pub struct DiIsLabelSession<'a> {
    index: &'a DiIsLabelIndex,
    scratch: DenseScratch,
    fseeds: Vec<(u32, Dist)>,
    rseeds: Vec<(u32, Dist)>,
    trace: crate::trace::QueryTrace,
}

impl DiIsLabelSession<'_> {
    /// Directed distance `dist(s → t)` through the reused dense scratch;
    /// same contract as [`DiIsLabelIndex::try_distance`].
    pub fn distance(&mut self, s: VertexId, t: VertexId) -> Result<Option<Dist>, QueryError> {
        let index = self.index;
        check_vertex(s, index.num_vertices())?;
        check_vertex(t, index.num_vertices())?;
        if s == t {
            return Ok(Some(0));
        }
        let outcome = seeded_search(
            index.out_labels.label(s),
            index.in_labels.label(t),
            |a| index.dense.ids().dense(a),
            index.dense.fwd(),
            index.dense.rev(),
            &mut self.fseeds,
            &mut self.rseeds,
            &mut self.scratch,
            &mut self.trace,
        );
        Ok((outcome.dist < INF).then_some(outcome.dist))
    }
}

impl QuerySession for DiIsLabelSession<'_> {
    fn engine_name(&self) -> &'static str {
        "di-islabel"
    }

    fn distance(&mut self, s: VertexId, t: VertexId) -> Result<Option<Dist>, QueryError> {
        DiIsLabelSession::distance(self, s, t)
    }

    fn trace(&self) -> Option<&crate::trace::QueryTrace> {
        Some(&self.trace)
    }

    fn trace_mut(&mut self) -> Option<&mut crate::trace::QueryTrace> {
        Some(&mut self.trace)
    }
}

/// The directed index serves the shared oracle contract in the forward
/// (out) direction: `try_distance(s, t)` is `dist(s → t)`.
impl DistanceOracle for DiIsLabelIndex {
    fn engine_name(&self) -> &'static str {
        "di-islabel"
    }

    fn num_vertices(&self) -> usize {
        DiIsLabelIndex::num_vertices(self)
    }

    /// Both label directions plus the dense `G_k` search substrate the
    /// session hot path reads.
    fn index_bytes(&self) -> usize {
        self.out_labels.memory_bytes() + self.in_labels.memory_bytes() + self.dense.memory_bytes()
    }

    fn try_distance(&self, s: VertexId, t: VertexId) -> Result<Option<Dist>, QueryError> {
        DiIsLabelIndex::try_distance(self, s, t)
    }

    fn session(&self) -> Box<dyn QuerySession + '_> {
        Box::new(DiIsLabelIndex::session(self))
    }
}

/// Greedy IS over the undirected skeleton of the remaining digraph.
fn select_is(work: &DiAdjacency, strategy: IsStrategy) -> Vec<VertexId> {
    let mut order: Vec<VertexId> = (0..work.present.len() as VertexId)
        .filter(|&v| work.present[v as usize])
        .collect();
    match strategy {
        IsStrategy::MinDegreeGreedy => order.sort_by_key(|&v| (work.degree(v), v)),
        IsStrategy::MaxDegreeGreedy => {
            order.sort_by_key(|&v| (std::cmp::Reverse(work.degree(v)), v))
        }
        IsStrategy::Random(seed) => {
            let mut state = seed ^ 0xD1B5_4A32_D192_ED03;
            let mut next = move || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            for j in (1..order.len()).rev() {
                let r = (next() % (j as u64 + 1)) as usize;
                order.swap(j, r);
            }
        }
    }
    let mut excluded = vec![false; work.present.len()];
    let mut li = Vec::new();
    for &u in &order {
        if excluded[u as usize] {
            continue;
        }
        li.push(u);
        for v in work.undirected_neighbors(u) {
            excluded[v as usize] = true;
        }
    }
    li.sort_unstable();
    li
}

/// One direction's peel-arc lists as a [`crate::label::PeelSource`], so the
/// directed index shares the level-parallel sorted-merge labeling loop with
/// the undirected one.
struct DirectionalPeel<'a>(&'a [Box<[(VertexId, Weight)]>]);

impl crate::label::PeelSource for DirectionalPeel<'_> {
    fn peel_neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.0[v as usize].iter().copied()
    }
}

/// Top-down labeling along one direction's peel adjacency (the shared
/// Algorithm 4 loop; first hops are discarded — directed queries return
/// distances only).
fn build_directional_labels(
    level_of: &[u32],
    k: u32,
    levels: &[Vec<VertexId>],
    gk_members: &[VertexId],
    peel: &[Box<[(VertexId, Weight)]>],
) -> LabelSet {
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    crate::label::build_from_peel(
        level_of.len(),
        k,
        levels,
        gk_members,
        &DirectionalPeel(peel),
        false,
        threads,
    )
}

/// Forward arc view of the residual digraph.
struct Forward<'a>(&'a CsrDigraph);

impl GkGraph for Forward<'_> {
    fn edges_of(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.0.out_edges(v)
    }
}

/// Transposed arc view for the reverse frontier.
struct Backward<'a>(&'a CsrDigraph);

impl GkGraph for Backward<'_> {
    fn edges_of(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.0.in_edges(v)
    }
}

/// Reference directed Dijkstra (ground truth for tests and baselines).
pub fn di_dijkstra_p2p(g: &CsrDigraph, s: VertexId, t: VertexId) -> Option<Dist> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    if s == t {
        return Some(0);
    }
    let mut dist = vec![INF; g.num_vertices()];
    let mut heap: BinaryHeap<Reverse<(Dist, VertexId)>> = BinaryHeap::new();
    dist[s as usize] = 0;
    heap.push(Reverse((0, s)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if v == t {
            return Some(d);
        }
        if d > dist[v as usize] {
            continue;
        }
        for (u, w) in g.out_edges(v) {
            let nd = d + w as Dist;
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                heap.push(Reverse((nd, u)));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use islabel_graph::DigraphBuilder;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_digraph(n: usize, m: usize, max_w: Weight, seed: u64) -> CsrDigraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = DigraphBuilder::new(n);
        for _ in 0..m {
            let u = rng.gen_range(0..n as VertexId);
            let v = rng.gen_range(0..n as VertexId);
            if u != v {
                b.add_arc(u, v, rng.gen_range(1..=max_w));
            }
        }
        b.build()
    }

    #[test]
    fn matches_directed_dijkstra_exhaustively_small() {
        for seed in 0..4u64 {
            let g = random_digraph(30, 90, 5, seed);
            let index = DiIsLabelIndex::build(&g, BuildConfig::default());
            for s in g.vertices() {
                for t in g.vertices() {
                    assert_eq!(
                        index.distance(s, t),
                        di_dijkstra_p2p(&g, s, t),
                        "seed {seed} query ({s}, {t})"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_directed_dijkstra_across_configs() {
        let g = random_digraph(150, 600, 9, 42);
        for config in [
            BuildConfig::default(),
            BuildConfig::full(),
            BuildConfig::fixed_k(3),
        ] {
            let index = DiIsLabelIndex::build(&g, config);
            for i in 0..80u32 {
                let (s, t) = ((i * 7) % 150, (i * 13 + 2) % 150);
                assert_eq!(
                    index.distance(s, t),
                    di_dijkstra_p2p(&g, s, t),
                    "{:?} ({s}, {t})",
                    config.k_selection
                );
            }
        }
    }

    #[test]
    fn asymmetry_is_respected() {
        // 0 → 1 → 2 with no way back.
        let mut b = DigraphBuilder::new(3);
        b.add_arc(0, 1, 2);
        b.add_arc(1, 2, 3);
        let g = b.build();
        let index = DiIsLabelIndex::build(&g, BuildConfig::default());
        assert_eq!(index.distance(0, 2), Some(5));
        assert_eq!(index.distance(2, 0), None);
        assert!(index.reachable(0, 2));
        assert!(!index.reachable(2, 0));
    }

    #[test]
    fn antiparallel_arcs_with_different_weights() {
        let mut b = DigraphBuilder::new(2);
        b.add_arc(0, 1, 3);
        b.add_arc(1, 0, 8);
        let g = b.build();
        let index = DiIsLabelIndex::build(&g, BuildConfig::default());
        assert_eq!(index.distance(0, 1), Some(3));
        assert_eq!(index.distance(1, 0), Some(8));
    }

    #[test]
    fn dag_reachability() {
        // A layered DAG: level i reaches level j > i only.
        let mut b = DigraphBuilder::new(9);
        for layer in 0..2u32 {
            for i in 0..3u32 {
                for j in 0..3u32 {
                    b.add_arc(layer * 3 + i, (layer + 1) * 3 + j, 1);
                }
            }
        }
        let g = b.build();
        let index = DiIsLabelIndex::build(&g, BuildConfig::default());
        assert!(index.reachable(0, 8));
        assert_eq!(index.distance(0, 8), Some(2));
        assert!(!index.reachable(8, 0));
        assert!(!index.reachable(3, 1));
    }

    #[test]
    fn in_out_labels_upper_bound_true_distances() {
        let g = random_digraph(80, 240, 4, 7);
        let index = DiIsLabelIndex::build(&g, BuildConfig::default());
        for v in (0..80u32).step_by(9) {
            for (anc, d) in index.out_label(v).iter() {
                let truth = di_dijkstra_p2p(&g, v, anc).expect("out-ancestors must be reachable");
                assert!(d >= truth, "d_out({v}, {anc}) = {d} < {truth}");
            }
            for (anc, d) in index.in_label(v).iter() {
                let truth = di_dijkstra_p2p(&g, anc, v).expect("in-ancestors must reach v");
                assert!(d >= truth, "d_in({anc}, {v}) = {d} < {truth}");
            }
        }
    }

    #[test]
    fn strongly_connected_cycle() {
        let n = 12u32;
        let mut b = DigraphBuilder::new(n as usize);
        for v in 0..n {
            b.add_arc(v, (v + 1) % n, 1);
        }
        let g = b.build();
        let index = DiIsLabelIndex::build(&g, BuildConfig::default());
        // Around the ring: dist(u, v) = (v - u) mod n.
        for u in 0..n {
            for v in 0..n {
                let expect = ((v + n - u) % n) as Dist;
                assert_eq!(index.distance(u, v), Some(expect), "({u}, {v})");
            }
        }
    }

    #[test]
    fn stats_count_both_directions() {
        let g = random_digraph(60, 200, 3, 3);
        let index = DiIsLabelIndex::build(&g, BuildConfig::default());
        let s = index.stats();
        // Each vertex carries a self entry in both label sets.
        assert!(s.label_entries >= 2 * 60);
        assert_eq!(s.num_vertices, 60);
        assert!(s.k >= 2);
    }

    #[test]
    fn isolated_vertices_and_self_queries() {
        let g = DigraphBuilder::new(5).build();
        let index = DiIsLabelIndex::build(&g, BuildConfig::default());
        assert_eq!(index.distance(0, 0), Some(0));
        assert_eq!(index.distance(0, 4), None);
    }

    #[test]
    fn session_matches_try_distance_directed() {
        let g = random_digraph(120, 420, 7, 5);
        let index = DiIsLabelIndex::build(&g, BuildConfig::default());
        let mut session = index.session();
        for round in 0..2 {
            for i in 0..70u32 {
                let (s, t) = ((i * 11) % 120, (i * 17 + 3) % 120);
                assert_eq!(
                    session.distance(s, t),
                    index.try_distance(s, t),
                    "round {round} ({s}, {t})"
                );
            }
        }
        assert!(session.distance(0, 500).is_err());
    }

    #[test]
    fn oracle_impl_answers_out_direction() {
        let mut b = DigraphBuilder::new(3);
        b.add_arc(0, 1, 2);
        b.add_arc(1, 2, 3);
        let g = b.build();
        let index = DiIsLabelIndex::build(&g, BuildConfig::default());
        let oracle: &dyn crate::DistanceOracle = &index;
        assert_eq!(oracle.engine_name(), "di-islabel");
        assert_eq!(oracle.num_vertices(), 3);
        assert!(oracle.index_bytes() > 0);
        assert_eq!(oracle.try_distance(0, 2), Ok(Some(5)));
        assert_eq!(oracle.try_distance(2, 0), Ok(None));
        assert_eq!(
            oracle.try_distance(0, 3),
            Err(crate::QueryError::VertexOutOfRange {
                vertex: 3,
                universe: 3
            })
        );
        let bad = BuildConfig {
            k_selection: KSelection::FixedK(1),
            ..BuildConfig::default()
        };
        assert!(matches!(
            DiIsLabelIndex::try_build(&g, bad),
            Err(crate::Error::InvalidConfig(_))
        ));
    }
}
