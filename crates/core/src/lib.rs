// `deny`, not `forbid`: the one SAFETY-documented SIMD module
// (`kernel::simd`) opts back in with a module-level allow; everything
// else in the crate stays unsafe-free, and `islabel-lint`'s confinement
// rule (`lint.toml [unsafe] allowed_files`) pins that boundary.
#![deny(unsafe_code)]
#![deny(missing_debug_implementations)]

//! # islabel-core
//!
//! The IS-LABEL index of Fu, Wu, Cheng, Chu and Wong (VLDB 2013): an
//! independent-set based labeling scheme for point-to-point distance and
//! shortest-path querying on large graphs.
//!
//! ## How it works
//!
//! 1. **Vertex hierarchy** ([`hierarchy`]): repeatedly peel an independent
//!    set `L_i` (greedy minimum-degree) off the graph `G_i`, patching the
//!    remainder with *augmenting edges* so `G_{i+1}` preserves all pairwise
//!    distances among surviving vertices (paper Definition 1, Algorithms 2
//!    and 3). Stop at level `k` when the graph stops shrinking (Definition 4)
//!    and keep the residual graph `G_k`.
//! 2. **Labels** ([`label`]): every peeled vertex stores `(ancestor, d)`
//!    pairs for all its ancestors — vertices reachable by strictly
//!    level-increasing chains (Definition 3, computed top-down as in
//!    Algorithm 4). `d` upper-bounds the true distance but is *exact* at the
//!    max-level vertex of any shortest path (Lemma 5), which is what makes
//!    querying correct.
//! 3. **Queries** ([`query`]): intersect the two sorted labels (Equation 1)
//!    to seed `µ`, then run a label-seeded bidirectional Dijkstra over `G_k`
//!    (Algorithm 1) that prunes with `min(FQ) + min(RQ) ≥ µ`.
//!
//! ## Entry points
//!
//! * [`DistanceOracle`] — the unified query trait every engine in the
//!   workspace implements, with typed fallible `try_*` forms ([`Error`],
//!   [`QueryError`]) next to the panicking conveniences, and per-thread
//!   [`QuerySession`]s that reuse search scratch on the hot path.
//! * [`Snapshot`] / [`OracleHandle`] ([`snapshot`]) — immutable Arc-backed
//!   index views with atomic hot-swap, the serving substrate consumed by
//!   the `islabel-serve` worker pool.
//! * [`dense`] — the dense search kernel the session hot path runs on:
//!   compact `G_k` ids ([`GkIdMap`]), generation-stamped flat arrays
//!   ([`StampedSlab`]) and an indexed 4-ary heap with decrease-key
//!   ([`IndexedHeap`]); updated indexes stay on it through a
//!   [`DensePatch`]ed view, and the hashmap kernel in [`query`] remains
//!   the reference path.
//! * [`kernel`] — runtime-dispatched SIMD label intersection
//!   (AVX2/SSE2/NEON with the scalar adaptive kernel as the mandatory,
//!   bit-identical fallback) plus the software-prefetch hints the dense
//!   search uses; every session hot path routes Equation 1 through
//!   [`kernel::intersect_min_auto`].
//! * [`persist`] — versioned artifact serialization plus the write-ahead
//!   log ([`persist::wal`]) that makes dynamic updates crash-durable:
//!   [`persist::load_index_with_wal`] reconstructs the exact overlay after
//!   a crash at any byte boundary, [`persist::compact_index_with_wal`]
//!   folds the log into a rebuilt artifact.
//! * [`IsLabelIndex`] — build/query interface for undirected graphs,
//!   including shortest-path reconstruction (Section 8.1) and lazy dynamic
//!   updates (Section 8.3).
//! * [`DiIsLabelIndex`] — the directed variant with in/out labels
//!   (Section 8.2).
//! * [`disklabel::DiskLabelStore`] — disk-resident labels with counted I/O,
//!   reproducing the paper's Time (a) accounting.
//! * [`embuild`] — the I/O-efficient external-memory construction pipeline
//!   (Section 6), equivalent to the in-memory builder.
//!
//! ```
//! use islabel_core::{BuildConfig, IsLabelIndex};
//! use islabel_graph::GraphBuilder;
//!
//! // The 9-vertex example graph of the paper's Figure 1.
//! let mut b = GraphBuilder::new(9);
//! for (u, v, w) in [
//!     (0, 1, 1), (1, 2, 1), (1, 4, 1), (3, 4, 1), (4, 5, 3),
//!     (4, 8, 1), (5, 7, 1), (6, 7, 1), (3, 6, 1), (0, 3, 1),
//! ] {
//!     b.add_edge(u, v, w);
//! }
//! let g = b.build();
//! let index = IsLabelIndex::build(&g, BuildConfig::default());
//! assert_eq!(index.distance(7, 4), Some(3)); // dist(h, e) in the paper
//! ```

pub mod config;
pub mod dense;
pub mod directed;
pub mod disklabel;
pub mod embuild;
pub mod hierarchy;
pub mod index;
pub mod kernel;
pub mod label;
pub mod labelcache;
pub mod mmapindex;
pub mod oracle;
pub mod path;
pub mod persist;
pub mod query;
pub mod reference;
pub mod snapshot;
pub mod stats;
pub mod trace;
pub mod updates;

pub use config::{BuildConfig, IsStrategy, KSelection};
pub use dense::{
    DenseCsr, DenseGk, DensePatch, DenseScratch, DenseView, GkIdMap, IndexedHeap, PatchedDense,
    StampedSlab,
};
pub use directed::{DiIsLabelIndex, DiIsLabelSession};
pub use index::{IsLabelIndex, IsLabelSession, DEFAULT_WAL_SYNC_EVERY};
pub use kernel::KernelTier;
pub use mmapindex::MmapIndex;
pub use oracle::{BatchOptions, DistanceOracle, Error, QueryError, QuerySession};
pub use path::Path;
pub use persist::wal::{WalRecovery, WalScan, WalWriter};
pub use persist::{compact_index_with_wal, load_index_with_wal, CompactInfo};
pub use query::QueryType;
pub use snapshot::{OracleHandle, SharedOracle, Snapshot};
pub use stats::IndexStats;
pub use trace::{PhaseSample, QueryTrace};
pub use updates::UpdateOp;
