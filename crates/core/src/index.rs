//! The public IS-LABEL index for undirected graphs.

use crate::config::BuildConfig;
use crate::dense::{
    globalize_outcome, seeded_search, DenseGk, DensePatch, DenseScratch, PatchedDense,
};
use crate::hierarchy::VertexHierarchy;
use crate::label::LabelSet;
use crate::oracle::{check_vertex, BatchOptions, DistanceOracle, Error, QueryError, QuerySession};
use crate::persist::wal::{scan_wal, WalRecovery, WalWriter, WAL_HEADER_LEN};
use crate::query::{
    intersect_min, label_bi_dijkstra, Meeting, QueryType, SearchParams, SearchResult,
};
use crate::stats::IndexStats;
use crate::updates::{Overlay, UpdateOp};
use islabel_graph::{CsrGraph, Dist, VertexId, Weight, INF};
use std::path::Path;
use std::time::Instant;

/// Default `fsync` batching for an attached write-ahead log: sync every
/// this many appended records (see [`IsLabelIndex::attach_wal_with`]).
pub const DEFAULT_WAL_SYNC_EVERY: u32 = 32;

/// Mints an artifact-lineage epoch: unique per build within a process
/// (atomic sequence) and essentially unique across processes (wall-clock
/// nanoseconds mixed in). Stored in the `.islx` header and the WAL header
/// so recovery can tell whether a log belongs to the artifact next to it.
fn mint_epoch() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(1);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    nanos
        ^ SEQ
            .fetch_add(1, Ordering::Relaxed)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Outcome of a detailed query (see [`IsLabelIndex::query`]).
#[derive(Debug)]
pub struct QueryOutcome {
    /// `dist_G(s, t)`; `None` encodes the paper's `∞` (unreachable).
    pub distance: Option<Dist>,
    /// Table 5 classification of the query.
    pub query_type: QueryType,
    /// The Equation 1 estimate `µ` before the search ran (`None` when the
    /// labels do not intersect).
    pub eq1_estimate: Option<Dist>,
    /// Vertices settled by the bidirectional search (0 when labels alone
    /// answered the query).
    pub settled: usize,
    /// Whether the final answer improved on (or was found without) the
    /// label-only estimate via the `G_k` search.
    pub answered_by_search: bool,
}

/// The IS-LABEL index (paper Sections 4–6).
///
/// Build once with [`IsLabelIndex::build`], then answer point-to-point
/// distance queries with [`distance`](IsLabelIndex::distance) and
/// shortest-path queries with
/// [`shortest_path`](IsLabelIndex::shortest_path). The index also supports
/// the lazy dynamic updates of Section 8.3 (see the `updates` methods and
/// their caveats).
///
/// # Examples
///
/// ```
/// use islabel_core::{BuildConfig, IsLabelIndex};
/// use islabel_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(5);
/// for v in 0..4 {
///     b.add_edge(v, v + 1, (v + 1));
/// }
/// let g = b.build();
/// let index = IsLabelIndex::build(&g, BuildConfig::default());
/// assert_eq!(index.distance(0, 4), Some(1 + 2 + 3 + 4));
/// assert_eq!(index.distance(4, 0), Some(10)); // undirected symmetry
/// ```
#[derive(Debug)]
pub struct IsLabelIndex {
    pub(crate) graph: CsrGraph,
    pub(crate) hierarchy: VertexHierarchy,
    pub(crate) labels: LabelSet,
    /// Compact-id search substrate (see [`crate::dense`]), built once per
    /// index; the session hot path runs on it.
    dense: DenseGk,
    config: BuildConfig,
    stats: IndexStats,
    pub(crate) overlay: Overlay,
    /// Identifies this index's build lineage; a WAL with a different epoch
    /// belongs to a different base state and is never replayed here.
    artifact_epoch: u64,
    /// Attached write-ahead log, if any: every mutation is appended here
    /// *before* it is applied (see [`IsLabelIndex::attach_wal`]).
    wal: Option<WalWriter>,
}

impl IsLabelIndex {
    /// Builds the index, panicking on an invalid configuration
    /// (convenience over [`IsLabelIndex::try_build`]).
    pub fn build(g: &CsrGraph, config: BuildConfig) -> Self {
        Self::try_build(g, config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the index: vertex hierarchy (Algorithms 2 + 3), then top-down
    /// labels (Algorithm 4). Returns
    /// [`Error::InvalidConfig`] instead of panicking when `config` makes no
    /// sense (bad σ, `k < 2`, ...).
    pub fn try_build(g: &CsrGraph, config: BuildConfig) -> Result<Self, Error> {
        config.try_validate()?;
        let t0 = Instant::now();
        let hierarchy = VertexHierarchy::build(g, &config);
        let t1 = Instant::now();
        let labels = LabelSet::build(&hierarchy, config.keep_path_info);
        let t2 = Instant::now();

        let stats = IndexStats {
            num_vertices: g.num_vertices(),
            num_edges: g.num_edges(),
            k: hierarchy.k(),
            gk_vertices: hierarchy.num_gk_vertices(),
            gk_edges: hierarchy.num_gk_edges(),
            label_entries: labels.num_entries(),
            label_bytes: labels.memory_bytes(),
            avg_label_len: labels.avg_label_len(),
            max_label_len: labels.max_label_len(),
            hierarchy_time: t1 - t0,
            labeling_time: t2 - t1,
            build_time: t2 - t0,
        };
        let overlay = Overlay::new(g.num_vertices());
        let dense =
            DenseGk::undirected(hierarchy.universe(), hierarchy.gk_members(), hierarchy.gk());
        Ok(Self {
            graph: g.clone(),
            hierarchy,
            labels,
            dense,
            config,
            stats,
            overlay,
            artifact_epoch: mint_epoch(),
            wal: None,
        })
    }

    /// Builds from pre-computed parts (used by the external-memory pipeline,
    /// which produces the identical hierarchy and labels through disk-based
    /// algorithms).
    pub(crate) fn from_parts(
        graph: CsrGraph,
        hierarchy: VertexHierarchy,
        labels: LabelSet,
        config: BuildConfig,
        stats: IndexStats,
    ) -> Self {
        let overlay = Overlay::new(graph.num_vertices());
        let dense =
            DenseGk::undirected(hierarchy.universe(), hierarchy.gk_members(), hierarchy.gk());
        Self {
            graph,
            hierarchy,
            labels,
            dense,
            config,
            stats,
            overlay,
            artifact_epoch: mint_epoch(),
            wal: None,
        }
    }

    /// Number of vertices the index currently answers for (including
    /// dynamically inserted ones).
    pub fn num_vertices(&self) -> usize {
        self.overlay.universe()
    }

    /// The base graph the index was built over (without dynamic updates).
    pub fn base_graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The vertex hierarchy.
    pub fn hierarchy(&self) -> &VertexHierarchy {
        &self.hierarchy
    }

    /// The label set.
    pub fn labels(&self) -> &LabelSet {
        &self.labels
    }

    /// The dense search substrate: compact `G_k` ids plus the remapped
    /// residual adjacency (see [`crate::dense`]). Sessions run the
    /// bidirectional search on this; benches and the conformance suite use
    /// it to drive the dense kernel directly.
    pub fn dense_gk(&self) -> &DenseGk {
        &self.dense
    }

    /// Build configuration used.
    pub fn config(&self) -> &BuildConfig {
        &self.config
    }

    /// Construction statistics (Tables 3/6/7 columns).
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }

    /// Whether `v` is (effectively) a vertex of the residual graph `G_k`;
    /// dynamically inserted vertices live in `G_k` by construction
    /// (Section 8.3).
    pub fn is_in_gk(&self, v: VertexId) -> bool {
        self.overlay.effective_in_gk(&self.hierarchy, v)
    }

    /// Table 5 classification of a query.
    pub fn query_type(&self, s: VertexId, t: VertexId) -> QueryType {
        match (self.is_in_gk(s), self.is_in_gk(t)) {
            (true, true) => QueryType::BothInGk,
            (false, false) => QueryType::NeitherInGk,
            _ => QueryType::OneInGk,
        }
    }

    /// Point-to-point distance; `None` means unreachable (the paper's `∞`).
    ///
    /// # Panics
    ///
    /// Panics if `s` or `t` is not a vertex of the index; use
    /// [`IsLabelIndex::try_distance`] for the fallible form.
    pub fn distance(&self, s: VertexId, t: VertexId) -> Option<Dist> {
        self.try_distance(s, t).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Point-to-point distance with typed errors: `Ok(None)` means
    /// unreachable, `Err(VertexOutOfRange)` flags a malformed query.
    pub fn try_distance(&self, s: VertexId, t: VertexId) -> Result<Option<Dist>, QueryError> {
        self.check_vertex(s)?;
        self.check_vertex(t)?;
        Ok(self.query_internal(s, t, false).0.distance)
    }

    /// Detailed query with diagnostics.
    pub fn query(&self, s: VertexId, t: VertexId) -> QueryOutcome {
        let (outcome, _) = self.query_internal(s, t, false);
        outcome
    }

    /// Answers a distance query from externally supplied labels (e.g.
    /// fetched from a [`crate::disklabel::DiskLabelStore`]): Equation 1 plus
    /// the `G_k` search, without touching the in-memory label arrays. Only
    /// valid while the index has no dynamic updates.
    ///
    /// # Panics
    ///
    /// Panics if the index has dynamic updates; use
    /// [`IsLabelIndex::try_distance_from_labels`] for the fallible form.
    pub fn distance_from_labels(
        &self,
        ls: crate::label::LabelView<'_>,
        lt: crate::label::LabelView<'_>,
    ) -> Option<Dist> {
        self.try_distance_from_labels(ls, lt)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of
    /// [`distance_from_labels`](IsLabelIndex::distance_from_labels):
    /// returns [`QueryError::StaleIndex`] when the index has pending
    /// dynamic updates (whose patched labels the supplied views cannot
    /// reflect) instead of asserting.
    pub fn try_distance_from_labels(
        &self,
        ls: crate::label::LabelView<'_>,
        lt: crate::label::LabelView<'_>,
    ) -> Result<Option<Dist>, QueryError> {
        if !self.overlay.is_pristine() {
            return Err(QueryError::StaleIndex);
        }
        let (mu0, witness) = intersect_min(ls, lt);
        let fseeds: Vec<(VertexId, Dist)> = ls
            .iter()
            .filter(|&(a, _)| self.hierarchy.is_in_gk(a))
            .collect();
        let rseeds: Vec<(VertexId, Dist)> = lt
            .iter()
            .filter(|&(a, _)| self.hierarchy.is_in_gk(a))
            .collect();
        let result = label_bi_dijkstra(
            self.hierarchy.gk(),
            SearchParams {
                fseeds: &fseeds,
                rseeds: &rseeds,
                mu0,
                mu0_witness: witness,
                track_paths: false,
            },
        );
        Ok((result.dist < INF).then_some(result.dist))
    }

    /// Shortest path between `s` and `t` (Section 8.1). Returns `None` when
    /// unreachable, and also when the index cannot answer path queries at
    /// all (see [`IsLabelIndex::try_shortest_path`], which distinguishes
    /// the two with [`QueryError::NoPathInfo`]).
    ///
    /// # Panics
    ///
    /// Panics if `s` or `t` is not a vertex of the index.
    pub fn shortest_path(&self, s: VertexId, t: VertexId) -> Option<crate::path::Path> {
        match self.try_shortest_path(s, t) {
            Ok(p) => p,
            Err(QueryError::NoPathInfo) => None,
            Err(e) => panic!("{e}"),
        }
    }

    /// Shortest path with typed errors: `Ok(None)` means unreachable,
    /// [`QueryError::NoPathInfo`] means the index cannot reconstruct paths
    /// — built with `keep_path_info: false`, or carrying dynamic updates
    /// whose patched label entries have no path metadata. The silent
    /// `None`-for-both conflation of the panicking form is gone here.
    pub fn try_shortest_path(
        &self,
        s: VertexId,
        t: VertexId,
    ) -> Result<Option<crate::path::Path>, QueryError> {
        self.check_vertex(s)?;
        self.check_vertex(t)?;
        if !self.labels.has_path_info() || !self.overlay.is_pristine() {
            return Err(QueryError::NoPathInfo);
        }
        if s == t {
            // A pristine overlay has no deletions, so `s` answers for
            // itself.
            return Ok(Some(crate::path::Path {
                vertices: vec![s],
                length: 0,
            }));
        }
        let (outcome, result) = self.query_internal(s, t, true);
        let Some(dist) = outcome.distance else {
            return Ok(None);
        };
        Ok(crate::path::reconstruct(self, s, t, dist, &result))
    }

    fn check_vertex(&self, v: VertexId) -> Result<(), QueryError> {
        check_vertex(v, self.overlay.universe())
    }

    fn assert_vertex(&self, v: VertexId) {
        if let Err(e) = self.check_vertex(v) {
            panic!("{e}");
        }
    }

    fn query_internal(
        &self,
        s: VertexId,
        t: VertexId,
        track_paths: bool,
    ) -> (QueryOutcome, SearchResult) {
        self.assert_vertex(s);
        self.assert_vertex(t);
        let query_type = self.query_type(s, t);

        if self.overlay.is_deleted(s) || self.overlay.is_deleted(t) {
            let result = empty_result();
            return (
                QueryOutcome {
                    distance: None,
                    query_type,
                    eq1_estimate: None,
                    settled: 0,
                    answered_by_search: false,
                },
                result,
            );
        }
        if s == t {
            let result = empty_result();
            return (
                QueryOutcome {
                    distance: Some(0),
                    query_type,
                    eq1_estimate: Some(0),
                    settled: 0,
                    answered_by_search: false,
                },
                result,
            );
        }

        // Stage 1: Equation 1 over the (effective) labels.
        let ls = self.overlay.effective_label(&self.labels, s);
        let lt = self.overlay.effective_label(&self.labels, t);
        let (mu0, witness) = intersect_min(ls.view(), lt.view());

        // Stage 2: label-seeded bidirectional search over G_k.
        let fseeds = self.overlay.gk_seeds(&self.hierarchy, ls.view());
        let rseeds = self.overlay.gk_seeds(&self.hierarchy, lt.view());
        let params = SearchParams {
            fseeds: &fseeds,
            rseeds: &rseeds,
            mu0,
            mu0_witness: witness,
            track_paths,
        };
        let result = if self.overlay.is_pristine() {
            label_bi_dijkstra(self.hierarchy.gk(), params)
        } else {
            label_bi_dijkstra(&self.overlay.gk_view(self.hierarchy.gk()), params)
        };

        let outcome = QueryOutcome {
            distance: (result.dist < INF).then_some(result.dist),
            query_type,
            eq1_estimate: (mu0 < INF).then_some(mu0),
            settled: result.settled,
            answered_by_search: matches!(result.meeting, Meeting::Search(_)),
        };
        (outcome, result)
    }

    /// Opens a per-thread [`IsLabelSession`] with reusable search scratch;
    /// the typed twin of [`DistanceOracle::session`]. Create one per
    /// serving thread and answer queries through it allocation-free: the
    /// dense scratch is fully pre-sized against `|G_k|` and the seed
    /// buffers against the longest label, so steady-state queries perform
    /// zero heap allocations (asserted by the `alloc_free` test).
    ///
    /// Indexes carrying dynamic updates stay on the dense kernel too: the
    /// session snapshots the overlay into a [`DensePatch`] (inserted-vertex
    /// tail plus tombstones) at open time, sizes every buffer for the
    /// patched universe, and queries run against the patched view — still
    /// allocation-free in steady state. The session is a point-in-time
    /// view; reopen it after further mutations.
    pub fn session(&self) -> IsLabelSession<'_> {
        // Resolve the kernel dispatch tier now: resolution reads the
        // environment (allocates), and queries must stay allocation-free
        // after construction (tests/alloc_free.rs arms its counter here).
        let _ = crate::kernel::active_tier();
        let overlay = (!self.overlay.is_pristine()).then(|| {
            let patch = self.overlay.dense_patch(self.dense.ids());
            let label_cap = self.labels.max_label_len() + self.overlay.max_patch_len();
            OverlayDense {
                patch,
                anc_s: Vec::with_capacity(label_cap),
                dist_s: Vec::with_capacity(label_cap),
                anc_t: Vec::with_capacity(label_cap),
                dist_t: Vec::with_capacity(label_cap),
            }
        });
        let seed_cap = self.labels.max_label_len() + self.overlay.max_patch_len();
        let scratch_len = overlay
            .as_ref()
            .map_or(self.dense.ids().len(), |od| od.patch.num_vertices());
        IsLabelSession {
            index: self,
            scratch: DenseScratch::new(scratch_len),
            fseeds: Vec::with_capacity(seed_cap),
            rseeds: Vec::with_capacity(seed_cap),
            overlay,
            trace: crate::trace::QueryTrace::new(),
        }
    }

    /// Answers a batch of queries on `threads` worker threads. Queries are
    /// read-only, so the index is shared freely (`&self` + `Sync`); this is
    /// the natural serving mode for the paper's workload of independent
    /// point-to-point queries.
    ///
    /// Results are returned in input order. `threads == 0` no longer
    /// panics: it selects `available_parallelism()`, the
    /// [`BatchOptions`] default.
    ///
    /// # Panics
    ///
    /// Panics if any vertex is out of range; use
    /// [`DistanceOracle::distance_batch`] for the fallible form.
    pub fn distance_batch_parallel(
        &self,
        pairs: &[(VertexId, VertexId)],
        threads: usize,
    ) -> Vec<Option<Dist>> {
        self.distance_batch(pairs, BatchOptions::with_threads(threads))
            .unwrap_or_else(|e| panic!("{e}"))
    }

    // ---------------------------------------------------------------------
    // Dynamic updates (Section 8.3) — lazy, upper-bound semantics; see the
    // `updates` module docs for the exact guarantees — and their
    // durability (write-ahead logging; see `persist::wal`).
    // ---------------------------------------------------------------------

    /// Inserts a new vertex with the given adjacency, returning its id. The
    /// new vertex joins `G_k`; labels of affected descendants are patched
    /// (paper Section 8.3).
    ///
    /// # Panics
    ///
    /// Panics on invalid input (out-of-range or deleted neighbor,
    /// non-positive weight) or if an attached WAL fails to append; use
    /// [`IsLabelIndex::try_insert_vertex`] for typed I/O errors.
    pub fn insert_vertex(&mut self, edges: &[(VertexId, Weight)]) -> VertexId {
        self.try_insert_vertex(edges)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`insert_vertex`](IsLabelIndex::insert_vertex) with typed WAL I/O
    /// errors ([`Error::Persist`]): the op is appended to the attached log
    /// (if any) *before* it is applied, so a crash directly after `Ok`
    /// cannot lose it. Invalid input still panics — it is a programmer
    /// error, not an I/O condition — and an op that fails the append is
    /// *not* applied, keeping log and overlay in lockstep.
    pub fn try_insert_vertex(&mut self, edges: &[(VertexId, Weight)]) -> Result<VertexId, Error> {
        let op = UpdateOp::InsertVertex {
            edges: edges.to_vec(),
        };
        // Validate before logging: an op that would panic on application
        // must never reach the log (replay could not apply it).
        if let Err(msg) = op.validate(&self.overlay) {
            panic!("{msg}");
        }
        self.wal_append(&op)?;
        Ok(Overlay::insert_vertex(self, edges))
    }

    /// Inserts an edge between two existing vertices.
    ///
    /// # Panics
    ///
    /// Panics on invalid input or a WAL append failure; see
    /// [`IsLabelIndex::try_insert_edge`].
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId, w: Weight) {
        self.try_insert_edge(u, v, w)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// [`insert_edge`](IsLabelIndex::insert_edge) with typed WAL I/O errors
    /// (log-before-apply; same contract as
    /// [`IsLabelIndex::try_insert_vertex`]).
    pub fn try_insert_edge(&mut self, u: VertexId, v: VertexId, w: Weight) -> Result<(), Error> {
        let op = UpdateOp::InsertEdge { a: u, b: v, w };
        if let Err(msg) = op.validate(&self.overlay) {
            panic!("{msg}");
        }
        self.wal_append(&op)?;
        Overlay::insert_edge(self, u, v, w);
        Ok(())
    }

    /// Deletes a vertex. Queries touching it return `None` afterwards.
    /// Deleting a vertex that was peeled into the hierarchy marks the index
    /// *stale* (see [`IsLabelIndex::is_stale`]).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or on a WAL append failure; see
    /// [`IsLabelIndex::try_delete_vertex`].
    pub fn delete_vertex(&mut self, v: VertexId) {
        self.try_delete_vertex(v).unwrap_or_else(|e| panic!("{e}"));
    }

    /// [`delete_vertex`](IsLabelIndex::delete_vertex) with typed WAL I/O
    /// errors. Idempotent: re-deleting a deleted vertex is `Ok` and is not
    /// logged (a consistent log never contains a delete of an
    /// already-deleted vertex, which lets replay flag such records as
    /// corruption).
    pub fn try_delete_vertex(&mut self, v: VertexId) -> Result<(), Error> {
        assert!(
            (v as usize) < self.overlay.universe(),
            "vertex {v} out of range"
        );
        if self.overlay.is_deleted(v) {
            return Ok(());
        }
        self.wal_append(&UpdateOp::DeleteVertex { v })?;
        Overlay::delete_vertex(self, v);
        Ok(())
    }

    fn wal_append(&mut self, op: &UpdateOp) -> Result<(), Error> {
        if let Some(wal) = self.wal.as_mut() {
            wal.append(op).map_err(Error::Persist)?;
        }
        Ok(())
    }

    /// Applies one recovered op (sealed section or WAL replay) through the
    /// normal mutation path, first validating it against the current
    /// overlay so corrupt records fail cleanly instead of panicking. Never
    /// touches the attached WAL.
    pub(crate) fn replay_op(&mut self, op: &UpdateOp) -> Result<(), String> {
        op.validate(&self.overlay)?;
        match op {
            UpdateOp::InsertVertex { edges } => {
                Overlay::insert_vertex(self, edges);
            }
            UpdateOp::InsertEdge { a, b, w } => Overlay::insert_edge(self, *a, *b, *w),
            UpdateOp::DeleteVertex { v } => Overlay::delete_vertex(self, *v),
        }
        Ok(())
    }

    /// The artifact-lineage epoch: minted at build time, preserved by
    /// save/load, shared with the paired write-ahead log (see
    /// [`crate::persist::wal`]).
    pub fn artifact_epoch(&self) -> u64 {
        self.artifact_epoch
    }

    pub(crate) fn set_artifact_epoch(&mut self, epoch: u64) {
        self.artifact_epoch = epoch;
    }

    /// Number of pending dynamic updates (the overlay op log length).
    pub fn pending_ops(&self) -> usize {
        self.overlay.ops().len()
    }

    /// Attaches the write-ahead log at `path` with the default `fsync`
    /// batching ([`DEFAULT_WAL_SYNC_EVERY`]); see
    /// [`IsLabelIndex::attach_wal_with`].
    pub fn attach_wal(&mut self, path: impl AsRef<Path>) -> Result<WalRecovery, Error> {
        self.attach_wal_with(path, DEFAULT_WAL_SYNC_EVERY)
    }

    /// Attaches (creating or recovering) the write-ahead log at `path`:
    /// afterwards every mutation is appended to the log *before* it is
    /// applied, with an `fsync` every `sync_every` records.
    ///
    /// The log is reconciled with this index's state first:
    ///
    /// * missing / shorter-than-header (a crash during creation) → a fresh
    ///   log is written, seeded with the overlay's current op history so
    ///   the pair is self-sufficient;
    /// * epoch mismatch (the crash window between a compaction's artifact
    ///   rename and its WAL reset) → the stale log is discarded and
    ///   recreated — its ops are already folded into this artifact;
    /// * a log inconsistent with the artifact's sealed op history → rewritten
    ///   from the current overlay;
    /// * otherwise the suffix beyond the sealed history is replayed through
    ///   the mutation path, stopping at the first torn, corrupt, or
    ///   inapplicable record, and the file is truncated to the last record
    ///   that survived — recovery restores the exact overlay of some
    ///   applied prefix, never a wrong one.
    pub fn attach_wal_with(
        &mut self,
        path: impl AsRef<Path>,
        sync_every: u32,
    ) -> Result<WalRecovery, Error> {
        let recovery = self.attach_wal_inner(path.as_ref(), sync_every)?;
        crate::persist::wal::record_recovery_metrics(&recovery);
        Ok(recovery)
    }

    fn attach_wal_inner(&mut self, path: &Path, sync_every: u32) -> Result<WalRecovery, Error> {
        if !path.exists() {
            self.recreate_wal(path, sync_every)?;
            return Ok(WalRecovery {
                created: true,
                ..Default::default()
            });
        }
        let Some(scan) = scan_wal(path).map_err(Error::Persist)? else {
            // Shorter than the header: a crash during creation, before any
            // op could have been logged. Start over.
            self.recreate_wal(path, sync_every)?;
            return Ok(WalRecovery {
                created: true,
                ..Default::default()
            });
        };
        if scan.epoch != self.artifact_epoch {
            self.recreate_wal(path, sync_every)?;
            return Ok(WalRecovery {
                created: true,
                discarded_stale: true,
                ..Default::default()
            });
        }
        let sealed = self.overlay.ops().len();
        if scan.ops.len() < sealed || scan.ops[..sealed] != *self.overlay.ops() {
            // Same lineage but the log diverges from the artifact's sealed
            // history (e.g. the artifact was re-saved after more ops while
            // the log was lost): rewrite it from the trusted artifact state.
            self.recreate_wal(path, sync_every)?;
            return Ok(WalRecovery {
                created: true,
                ..Default::default()
            });
        }
        // Replay the suffix beyond the sealed prefix (those ops are already
        // in the overlay — replaying them again would double-apply).
        let mut replayed = 0usize;
        let mut truncated = scan.truncated_tail;
        for op in &scan.ops[sealed..] {
            if self.replay_op(op).is_err() {
                truncated = true;
                break;
            }
            replayed += 1;
        }
        let applied = sealed + replayed;
        let valid_len = if applied == 0 {
            WAL_HEADER_LEN
        } else {
            scan.offsets[applied - 1]
        };
        let writer = WalWriter::resume(path, self.artifact_epoch, sync_every, valid_len)
            .map_err(Error::Persist)?;
        self.wal = Some(writer);
        Ok(WalRecovery {
            replayed,
            created: false,
            discarded_stale: false,
            truncated,
        })
    }

    /// Writes a fresh log at `path` seeded with the overlay's op history.
    fn recreate_wal(&mut self, path: &Path, sync_every: u32) -> Result<(), Error> {
        let write = || -> std::io::Result<WalWriter> {
            let mut w = WalWriter::create(path, self.artifact_epoch, sync_every)?;
            for op in self.overlay.ops() {
                w.append(op)?;
            }
            w.sync()?;
            Ok(w)
        };
        self.wal = Some(write().map_err(Error::Persist)?);
        Ok(())
    }

    /// Whether lazy deletions may have invalidated some distances (answers
    /// can then under- or over-estimate until [`IsLabelIndex::rebuild`]).
    pub fn is_stale(&self) -> bool {
        self.overlay.stale()
    }

    /// Whether any dynamic update has been applied since the last build.
    pub fn has_updates(&self) -> bool {
        !self.overlay.is_pristine()
    }

    /// Whether `v` has been removed by a dynamic [`delete_vertex`]
    /// (`v` beyond the universe counts as not deleted).
    ///
    /// [`delete_vertex`]: IsLabelIndex::delete_vertex
    pub fn is_vertex_deleted(&self, v: VertexId) -> bool {
        (v as usize) < self.overlay.universe() && self.overlay.is_deleted(v)
    }

    /// Materializes the current graph (base plus all dynamic updates);
    /// deleted vertices become isolated.
    pub fn current_graph(&self) -> CsrGraph {
        self.overlay.materialize(&self.graph)
    }

    /// Rebuilds the index from the current graph, restoring exactness and
    /// clearing all overlay state.
    ///
    /// The rebuilt index starts a fresh artifact lineage (new epoch) and
    /// any attached WAL is *dropped, not rotated* — the old log still pairs
    /// with the pre-rebuild artifact on disk. For the crash-safe
    /// rebuild-then-truncate rotation use
    /// [`crate::persist::compact_index_with_wal`] (offline) or the
    /// `RebuildCoordinator` in `islabel-serve` (live).
    pub fn rebuild(&mut self) {
        let g = self.current_graph();
        *self = Self::build(&g, self.config);
    }
}

impl DistanceOracle for IsLabelIndex {
    fn engine_name(&self) -> &'static str {
        "islabel"
    }

    fn num_vertices(&self) -> usize {
        self.overlay.universe()
    }

    /// Labels plus the dense `G_k` search substrate — everything the
    /// session hot path reads. (The full-universe residual graph is also
    /// resident for path reconstruction and the overlay fallback, but it is
    /// not on the query path.)
    fn index_bytes(&self) -> usize {
        self.labels.memory_bytes() + self.dense.memory_bytes()
    }

    fn try_distance(&self, s: VertexId, t: VertexId) -> Result<Option<Dist>, QueryError> {
        IsLabelIndex::try_distance(self, s, t)
    }

    fn session(&self) -> Box<dyn QuerySession + '_> {
        Box::new(IsLabelIndex::session(self))
    }
}

/// Reusable query state for one [`IsLabelIndex`]: the dense-kernel search
/// workspace plus the two compact-id seed buffers (see
/// [`QuerySession`]). Obtained from [`IsLabelIndex::session`].
#[derive(Debug)]
pub struct IsLabelSession<'a> {
    index: &'a IsLabelIndex,
    scratch: DenseScratch,
    fseeds: Vec<(u32, Dist)>,
    rseeds: Vec<(u32, Dist)>,
    /// Present iff the index carries dynamic updates: the overlay folded
    /// into dense-kernel form at session-open time.
    overlay: Option<OverlayDense>,
    /// Phase timings/settle counts, recorded by the seeded search (plain
    /// fields — the zero-allocation contract includes tracing).
    trace: crate::trace::QueryTrace,
}

/// Session-local snapshot of the update overlay in dense-kernel terms: the
/// structural patch (inserted tail + tombstones) plus label merge buffers
/// for the two endpoints, pre-sized so queries stay allocation-free.
#[derive(Debug)]
struct OverlayDense {
    patch: DensePatch,
    anc_s: Vec<VertexId>,
    dist_s: Vec<Dist>,
    anc_t: Vec<VertexId>,
    dist_t: Vec<Dist>,
}

impl IsLabelSession<'_> {
    /// The index this session queries.
    pub fn index(&self) -> &IsLabelIndex {
        self.index
    }

    /// Exact distance `dist(s, t)` through the reused dense scratch; same
    /// contract as [`IsLabelIndex::try_distance`]. Both pristine and
    /// updated indexes run on the dense kernel (the latter through the
    /// session's [`DensePatch`] view), allocation-free in steady state.
    pub fn distance(&mut self, s: VertexId, t: VertexId) -> Result<Option<Dist>, QueryError> {
        let index = self.index;
        index.check_vertex(s)?;
        index.check_vertex(t)?;
        if index.overlay.is_deleted(s) || index.overlay.is_deleted(t) {
            return Ok(None);
        }
        if s == t {
            return Ok(Some(0));
        }
        let outcome = if self.overlay.is_some() {
            self.run_dense_patched(s, t)
        } else {
            self.run_dense(s, t)
        };
        Ok((outcome.dist < INF).then_some(outcome.dist))
    }

    /// The full dense-kernel outcome (distance, meeting mechanism, settled
    /// count) for one query — the session-side counterpart of
    /// [`IsLabelIndex::query`], used by the conformance suite and benches.
    pub fn search_outcome(
        &mut self,
        s: VertexId,
        t: VertexId,
    ) -> Result<crate::query::SearchOutcome, QueryError> {
        let index = self.index;
        index.check_vertex(s)?;
        index.check_vertex(t)?;
        if index.overlay.is_deleted(s) || index.overlay.is_deleted(t) {
            return Ok(crate::query::SearchOutcome {
                dist: INF,
                meeting: Meeting::None,
                settled: 0,
            });
        }
        if s == t {
            return Ok(crate::query::SearchOutcome {
                dist: 0,
                meeting: Meeting::Labels(s),
                settled: 0,
            });
        }
        if self.overlay.is_some() {
            let outcome = self.run_dense_patched(s, t);
            return Ok(self.globalize_patched(outcome));
        }
        let outcome = self.run_dense(s, t);
        Ok(globalize_outcome(outcome, self.index.dense.ids()))
    }

    /// The pristine fast path (`s != t`, bounds checked): seed translation
    /// plus the dense kernel, meeting still compact.
    fn run_dense(&mut self, s: VertexId, t: VertexId) -> crate::query::SearchOutcome {
        let index = self.index;
        seeded_search(
            index.labels.label(s),
            index.labels.label(t),
            |a| index.dense.ids().dense(a),
            index.dense.fwd(),
            index.dense.rev(),
            &mut self.fseeds,
            &mut self.rseeds,
            &mut self.scratch,
            &mut self.trace,
        )
    }

    /// The updated-index fast path: effective (patch-merged) labels seed
    /// the dense kernel running over the [`PatchedDense`] view — base CSR
    /// plus inserted tail, tombstoned vertices skipped. Dense ids extend
    /// the base mapping monotonically (tail ids after all base ids), so
    /// tie-breaking, settle order, and settled counts match the reference
    /// overlay path exactly (pinned by the `dense_kernel` suite).
    fn run_dense_patched(&mut self, s: VertexId, t: VertexId) -> crate::query::SearchOutcome {
        let index = self.index;
        let od = self
            .overlay
            .as_mut()
            .expect("patched path requires overlay");
        let ls =
            index
                .overlay
                .effective_label_into(&index.labels, s, &mut od.anc_s, &mut od.dist_s);
        let lt =
            index
                .overlay
                .effective_label_into(&index.labels, t, &mut od.anc_t, &mut od.dist_t);
        let ids = index.dense.ids();
        let m = ids.len();
        let base_n = index.graph.num_vertices();
        let view = PatchedDense {
            base: index.dense.fwd(),
            patch: &od.patch,
        };
        // Inserted vertices (global id >= base_n) live on the dense tail;
        // deleted ancestors were already dropped by the label merge.
        seeded_search(
            ls,
            lt,
            |a| {
                if (a as usize) < base_n {
                    ids.dense(a)
                } else {
                    Some((m + (a as usize - base_n)) as u32)
                }
            },
            &view,
            &view,
            &mut self.fseeds,
            &mut self.rseeds,
            &mut self.scratch,
            &mut self.trace,
        )
    }

    /// Maps a patched-view outcome's meeting vertex back to global ids:
    /// tail ids (`>= |G_k|`) are inserted vertices numbered from the base
    /// universe size.
    fn globalize_patched(
        &self,
        outcome: crate::query::SearchOutcome,
    ) -> crate::query::SearchOutcome {
        let ids = self.index.dense.ids();
        let m = ids.len();
        let base_n = self.index.graph.num_vertices();
        crate::query::SearchOutcome {
            meeting: match outcome.meeting {
                Meeting::Search(d) if (d as usize) >= m => {
                    Meeting::Search((base_n + (d as usize - m)) as VertexId)
                }
                Meeting::Search(d) => Meeting::Search(ids.global(d)),
                other => other,
            },
            ..outcome
        }
    }
}

impl QuerySession for IsLabelSession<'_> {
    fn engine_name(&self) -> &'static str {
        "islabel"
    }

    fn distance(&mut self, s: VertexId, t: VertexId) -> Result<Option<Dist>, QueryError> {
        IsLabelSession::distance(self, s, t)
    }

    fn trace(&self) -> Option<&crate::trace::QueryTrace> {
        Some(&self.trace)
    }

    fn trace_mut(&mut self) -> Option<&mut crate::trace::QueryTrace> {
        Some(&mut self.trace)
    }
}

fn empty_result() -> SearchResult {
    SearchResult {
        dist: INF,
        meeting: Meeting::None,
        settled: 0,
        parents_f: Default::default(),
        parents_r: Default::default(),
        dist_f: Default::default(),
        dist_r: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KSelection;
    use crate::reference::{dijkstra_all, dijkstra_p2p};
    use islabel_graph::generators::{barabasi_albert, erdos_renyi_gnm, WeightModel};
    use islabel_graph::GraphBuilder;

    fn paper_index() -> IsLabelIndex {
        let g = crate::hierarchy::tests::paper_graph();
        IsLabelIndex::build(&g, BuildConfig::default())
    }

    #[test]
    fn paper_example_queries() {
        // Example 4: dist(h, e) = 3 even though d(h, e) = 4 in label(h);
        // dist(a, g) = 3.
        let index = paper_index();
        assert_eq!(index.distance(7, 4), Some(3));
        assert_eq!(index.distance(0, 6), Some(3));
        // Example 6 (k = 2 hierarchy there, but distances are distances):
        // dist(c, i) = 3.
        assert_eq!(index.distance(2, 8), Some(3));
    }

    #[test]
    fn matches_dijkstra_exhaustively_on_small_graphs() {
        for seed in 0..6u64 {
            let g = erdos_renyi_gnm(40, 70, WeightModel::UniformRange(1, 7), seed);
            let index = IsLabelIndex::build(&g, BuildConfig::default());
            for s in g.vertices() {
                let truth = dijkstra_all(&g, s);
                for t in g.vertices() {
                    let expect = (truth[t as usize] < INF).then_some(truth[t as usize]);
                    assert_eq!(index.distance(s, t), expect, "seed {seed} query ({s}, {t})");
                }
            }
        }
    }

    #[test]
    fn matches_dijkstra_across_k_selections() {
        let g = barabasi_albert(200, 3, WeightModel::UniformRange(1, 4), 17);
        let configs = [
            BuildConfig::default(),
            BuildConfig::sigma(0.5),
            BuildConfig::fixed_k(2),
            BuildConfig::fixed_k(3),
            BuildConfig::fixed_k(8),
            BuildConfig::full(),
        ];
        let queries: Vec<(VertexId, VertexId)> = (0..60)
            .map(|i| ((i * 7) % 200, (i * 13 + 5) % 200))
            .collect();
        for config in configs {
            let index = IsLabelIndex::build(&g, config);
            for &(s, t) in &queries {
                let expect = dijkstra_p2p(&g, s, t);
                assert_eq!(
                    index.distance(s, t),
                    expect,
                    "k_selection {:?} query ({s}, {t})",
                    config.k_selection
                );
            }
        }
    }

    #[test]
    fn disconnected_pairs_are_none() {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(3, 4, 1);
        let g = b.build();
        let index = IsLabelIndex::build(&g, BuildConfig::default());
        assert_eq!(index.distance(0, 2), Some(2));
        assert_eq!(index.distance(3, 4), Some(1));
        assert_eq!(index.distance(0, 3), None);
        assert_eq!(index.distance(2, 5), None);
        assert_eq!(index.distance(5, 5), Some(0));
    }

    #[test]
    fn full_hierarchy_answers_by_labels_alone() {
        let g = erdos_renyi_gnm(80, 160, WeightModel::UniformRange(1, 3), 2);
        let index = IsLabelIndex::build(&g, BuildConfig::full());
        assert_eq!(index.stats().gk_vertices, 0);
        for (s, t) in [(0u32, 79u32), (1, 50), (10, 60)] {
            let out = index.query(s, t);
            assert_eq!(out.settled, 0, "no search may run with empty G_k");
            assert!(!out.answered_by_search);
            assert_eq!(out.distance, dijkstra_p2p(&g, s, t));
        }
    }

    #[test]
    fn query_outcome_diagnostics() {
        let g = barabasi_albert(300, 4, WeightModel::Unit, 3);
        let index = IsLabelIndex::build(&g, BuildConfig::default());
        assert!(index.stats().gk_vertices > 0);
        // Pick one vertex in G_k and one outside for each class.
        let in_gk = index.hierarchy().gk_members()[0];
        let in_gk2 = index.hierarchy().gk_members()[1];
        let out_gk = g.vertices().find(|&v| !index.is_in_gk(v)).unwrap();
        let out_gk2 = g
            .vertices()
            .rev()
            .find(|&v| !index.is_in_gk(v) && v != out_gk)
            .unwrap();

        assert_eq!(index.query_type(in_gk, in_gk2), QueryType::BothInGk);
        assert_eq!(index.query_type(in_gk, out_gk), QueryType::OneInGk);
        assert_eq!(index.query_type(out_gk, in_gk), QueryType::OneInGk);
        assert_eq!(index.query_type(out_gk, out_gk2), QueryType::NeitherInGk);

        let out = index.query(in_gk, in_gk2);
        assert_eq!(out.distance, dijkstra_p2p(&g, in_gk, in_gk2));
    }

    #[test]
    fn sigma_thresholds_trade_label_size_for_gk_size() {
        // Table 7's trend: a smaller σ stops earlier => larger G_k, smaller
        // labels.
        let g = barabasi_albert(500, 4, WeightModel::Unit, 21);
        let strict = IsLabelIndex::build(&g, BuildConfig::sigma(0.95));
        let loose = IsLabelIndex::build(&g, BuildConfig::sigma(0.60));
        assert!(loose.stats().k <= strict.stats().k);
        assert!(loose.stats().gk_vertices >= strict.stats().gk_vertices);
        assert!(loose.stats().label_bytes <= strict.stats().label_bytes);
    }

    #[test]
    fn stats_are_coherent() {
        let g = erdos_renyi_gnm(120, 360, WeightModel::Unit, 4);
        let index = IsLabelIndex::build(&g, BuildConfig::default());
        let s = index.stats();
        assert_eq!(s.num_vertices, 120);
        assert_eq!(s.num_edges, 360);
        assert_eq!(s.k, index.hierarchy().k());
        assert!(s.label_entries >= 120); // at least the self entries
        assert!(s.build_time >= s.hierarchy_time);
        assert!((s.avg_label_len - s.label_entries as f64 / 120.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_query_panics() {
        paper_index().distance(0, 100);
    }

    #[test]
    fn try_distance_types_out_of_range() {
        let index = paper_index();
        assert_eq!(
            index.try_distance(0, 100),
            Err(crate::QueryError::VertexOutOfRange {
                vertex: 100,
                universe: 9
            })
        );
        assert_eq!(
            index.try_distance(100, 0),
            Err(crate::QueryError::VertexOutOfRange {
                vertex: 100,
                universe: 9
            })
        );
        assert_eq!(index.try_distance(7, 4), Ok(Some(3)));
    }

    #[test]
    fn try_build_rejects_bad_config() {
        let g = crate::hierarchy::tests::paper_graph();
        let bad = BuildConfig {
            k_selection: KSelection::FixedK(1),
            ..BuildConfig::default()
        };
        assert!(matches!(
            IsLabelIndex::try_build(&g, bad),
            Err(crate::Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn try_shortest_path_distinguishes_unreachable_from_unsupported() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 2);
        let g = b.build();

        // With path info: unreachable is Ok(None), not an error.
        let with = IsLabelIndex::build(&g, BuildConfig::default());
        assert!(with.try_shortest_path(0, 1).unwrap().is_some());
        assert_eq!(with.try_shortest_path(0, 3), Ok(None));

        // Without path info: a typed NoPathInfo, where shortest_path would
        // silently return None.
        let without = IsLabelIndex::build(
            &g,
            BuildConfig {
                keep_path_info: false,
                ..BuildConfig::default()
            },
        );
        assert_eq!(
            without.try_shortest_path(0, 1),
            Err(crate::QueryError::NoPathInfo)
        );
        assert_eq!(without.shortest_path(0, 1), None);

        // Dynamic updates also drop path metadata.
        let mut updated = IsLabelIndex::build(&g, BuildConfig::default());
        updated.insert_edge(2, 3, 1);
        assert_eq!(
            updated.try_shortest_path(0, 1),
            Err(crate::QueryError::NoPathInfo)
        );
    }

    #[test]
    fn try_distance_from_labels_reports_stale_index() {
        let g = crate::hierarchy::tests::paper_graph();
        let mut index = IsLabelIndex::build(&g, BuildConfig::default());
        let own = |index: &IsLabelIndex, v: VertexId| {
            let l = index.labels().label(v);
            (l.ancestors.to_vec(), l.dists.to_vec())
        };
        let (sa, sd) = own(&index, 7);
        let (ta, td) = own(&index, 4);
        fn view<'a>(a: &'a [VertexId], d: &'a [Dist]) -> crate::label::LabelView<'a> {
            crate::label::LabelView {
                ancestors: a,
                dists: d,
                first_hops: &[],
            }
        }
        assert_eq!(
            index.try_distance_from_labels(view(&sa, &sd), view(&ta, &td)),
            Ok(Some(3))
        );
        index.insert_edge(0, 8, 1);
        assert_eq!(
            index.try_distance_from_labels(view(&sa, &sd), view(&ta, &td)),
            Err(crate::QueryError::StaleIndex)
        );
    }

    #[test]
    fn oracle_trait_surface() {
        let index = paper_index();
        let oracle: &dyn crate::DistanceOracle = &index;
        assert_eq!(oracle.engine_name(), "islabel");
        assert_eq!(oracle.num_vertices(), 9);
        assert!(oracle.index_bytes() > 0);
        assert_eq!(oracle.try_distance(7, 4), Ok(Some(3)));
        let batch = oracle
            .distance_batch(&[(7, 4), (0, 6), (3, 3)], BatchOptions::default())
            .unwrap();
        assert_eq!(batch, vec![Some(3), Some(3), Some(0)]);
        assert!(oracle
            .distance_batch(&[(0, 99)], BatchOptions::sequential())
            .is_err());
    }

    #[test]
    fn batch_zero_threads_uses_default_parallelism() {
        let g = erdos_renyi_gnm(60, 140, WeightModel::Unit, 12);
        let index = IsLabelIndex::build(&g, BuildConfig::default());
        let pairs: Vec<(VertexId, VertexId)> =
            (0..40).map(|i| (i % 60, (i * 7 + 3) % 60)).collect();
        let sequential: Vec<Option<Dist>> =
            pairs.iter().map(|&(s, t)| index.distance(s, t)).collect();
        // The old assert!(threads > 0) is gone: 0 selects the default.
        assert_eq!(index.distance_batch_parallel(&pairs, 0), sequential);
    }

    #[test]
    fn session_matches_try_distance_across_reuse() {
        let g = barabasi_albert(200, 3, WeightModel::UniformRange(1, 4), 17);
        let index = IsLabelIndex::build(&g, BuildConfig::default());
        let mut session = index.session();
        assert_eq!(QuerySession::engine_name(&session), "islabel");
        for round in 0..3 {
            for i in 0..60u32 {
                let (s, t) = ((i * 7) % 200, (i * 13 + 5) % 200);
                assert_eq!(
                    session.distance(s, t),
                    index.try_distance(s, t),
                    "round {round} ({s}, {t})"
                );
            }
        }
        assert_eq!(session.distance(3, 3), Ok(Some(0)));
        assert!(matches!(
            session.distance(0, 999),
            Err(QueryError::VertexOutOfRange { .. })
        ));
    }

    #[test]
    fn session_serves_updated_index_on_patched_dense_kernel() {
        let g = erdos_renyi_gnm(60, 140, WeightModel::UniformRange(1, 5), 23);
        let mut index = IsLabelIndex::build(&g, BuildConfig::default());
        let v = index.insert_vertex(&[(0, 2), (10, 1)]);
        let mut session = DistanceOracle::session(&index);
        for t in [0u32, 10, 30, v] {
            assert_eq!(
                session.distance(v, t),
                index.try_distance(v, t),
                "({v}, {t})"
            );
        }
    }

    #[test]
    fn self_distance_is_zero_for_all_vertices() {
        let index = paper_index();
        for v in 0..9 {
            assert_eq!(index.distance(v, v), Some(0));
            assert_eq!(index.query(v, v).eq1_estimate, Some(0));
        }
    }

    #[test]
    fn symmetric_queries_agree() {
        let g = erdos_renyi_gnm(100, 220, WeightModel::UniformRange(1, 9), 31);
        let index = IsLabelIndex::build(&g, BuildConfig::default());
        for (s, t) in (0..50u32).map(|i| (i, 99 - i)) {
            assert_eq!(index.distance(s, t), index.distance(t, s), "({s}, {t})");
        }
    }

    #[test]
    fn parallel_batch_matches_sequential() {
        let g = barabasi_albert(300, 3, WeightModel::UniformRange(1, 4), 8);
        let index = IsLabelIndex::build(&g, BuildConfig::default());
        let pairs: Vec<(VertexId, VertexId)> = (0..200)
            .map(|i| ((i * 7) % 300, (i * 13 + 5) % 300))
            .collect();
        let sequential: Vec<Option<Dist>> =
            pairs.iter().map(|&(s, t)| index.distance(s, t)).collect();
        for threads in [1, 2, 4, 7] {
            assert_eq!(
                index.distance_batch_parallel(&pairs, threads),
                sequential,
                "{threads}"
            );
        }
        assert!(index.distance_batch_parallel(&[], 4).is_empty());
    }

    #[test]
    fn fixed_k_two_means_single_peel() {
        let g = erdos_renyi_gnm(100, 220, WeightModel::Unit, 31);
        let index = IsLabelIndex::build(&g, BuildConfig::fixed_k(2));
        assert_eq!(index.stats().k, 2);
        assert_eq!(index.hierarchy().levels().len(), 1);
        match index.config().k_selection {
            KSelection::FixedK(2) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
