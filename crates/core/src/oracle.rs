//! The unified query surface: [`DistanceOracle`] and the typed error
//! hierarchy ([`Error`], [`QueryError`]).
//!
//! The workspace builds several exact distance engines — the IS-LABEL index
//! itself, its directed variant, and the evaluation baselines (PLL,
//! VC-Index, bidirectional Dijkstra). They answer the same question, so
//! they share one contract: `&self` + [`Sync`] queries with *typed*
//! failures instead of panics. Serving layers, benches and the CLI program
//! against `dyn DistanceOracle` and pick the engine at runtime.
//!
//! Conventions:
//!
//! * `Ok(None)` means **unreachable** — the paper's `∞`. It is never an
//!   error: disconnected pairs are a normal answer.
//! * `Err(QueryError::...)` means the query itself was malformed or the
//!   index cannot answer it exactly (out-of-range vertex, stale index).
//! * Every engine keeps its original infallible methods (e.g.
//!   [`crate::IsLabelIndex::distance`]) as thin panicking conveniences
//!   delegating to the `try_*` forms.

use islabel_graph::{Dist, VertexId};
use std::num::NonZeroUsize;

/// A typed failure of a single distance query.
///
/// `Ok(None)` (unreachable) is *not* an error; these variants are reserved
/// for queries the engine cannot answer at all.
///
/// The enum is `#[non_exhaustive]`: downstream matches need a wildcard arm
/// so future engines can introduce new failure modes without a breaking
/// release.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum QueryError {
    /// A queried vertex id is not a vertex of the index.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
        /// Number of vertices the index answers for.
        universe: usize,
    },
    /// The index has pending lazy updates (or deletions) that invalidate
    /// the requested operation; rebuild first.
    StaleIndex,
    /// The operation needs path metadata the index was built without
    /// (`keep_path_info: false`), or that dynamic patching discarded.
    NoPathInfo,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::VertexOutOfRange { vertex, universe } => {
                write!(f, "vertex {vertex} out of range (universe {universe})")
            }
            QueryError::StaleIndex => {
                write!(f, "index has pending dynamic updates; rebuild() first")
            }
            QueryError::NoPathInfo => {
                write!(f, "index carries no path info for this query")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Any fallible islabel-core operation: building, querying, persisting.
///
/// `#[non_exhaustive]` like [`QueryError`]: match with a wildcard arm.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A query-time failure.
    Query(QueryError),
    /// A build configuration that makes no sense (bad σ, k < 2, ...).
    InvalidConfig(String),
    /// An I/O failure while saving or loading an index.
    Persist(std::io::Error),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Query(e) => write!(f, "{e}"),
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::Persist(e) => write!(f, "persistence error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Query(e) => Some(e),
            Error::InvalidConfig(_) => None,
            Error::Persist(e) => Some(e),
        }
    }
}

impl From<QueryError> for Error {
    fn from(e: QueryError) -> Self {
        Error::Query(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Persist(e)
    }
}

/// Options for [`DistanceOracle::distance_batch`].
///
/// The default (`threads: None`) sizes the worker pool from
/// [`std::thread::available_parallelism`] — the old `threads == 0` assert
/// is gone; zero is simply unrepresentable.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchOptions {
    /// Worker threads; `None` selects `available_parallelism()`.
    pub threads: Option<NonZeroUsize>,
}

impl BatchOptions {
    /// Runs the batch on `threads` workers; `0` falls back to the default
    /// (`available_parallelism()`), it no longer panics.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: NonZeroUsize::new(threads),
        }
    }

    /// Forces a single-threaded batch.
    pub fn sequential() -> Self {
        Self::with_threads(1)
    }

    /// The worker count actually used for a batch of `jobs` queries.
    pub fn effective_threads(&self, jobs: usize) -> usize {
        let chosen = self
            .threads
            .or_else(|| std::thread::available_parallelism().ok())
            .map_or(1, NonZeroUsize::get);
        chosen.min(jobs).max(1)
    }
}

/// A per-thread query handle holding an engine's reusable scratch state.
///
/// Every engine answers queries through temporary working memory —
/// bidirectional-Dijkstra heaps and visited maps, label-merge seed buffers,
/// distance arrays. Allocating that per query is pure hot-path overhead; a
/// session owns it once and reuses it, so a serving thread creates one
/// session and answers queries allocation-free (after warm-up).
///
/// Sessions borrow the engine (`&self` queries stay the source of truth)
/// and are deliberately `&mut self`: one session belongs to one thread.
/// Concurrency comes from creating one session per thread via
/// [`DistanceOracle::session`], never from sharing a session.
///
/// The answer contract is identical to
/// [`try_distance`](DistanceOracle::try_distance): `Ok(None)` is
/// unreachable, errors are typed, and the distances are exact.
pub trait QuerySession {
    /// The engine identifier of the oracle this session queries (equals
    /// [`DistanceOracle::engine_name`] of the creating oracle).
    fn engine_name(&self) -> &'static str;

    /// Exact distance `dist(s, t)` using this session's scratch buffers;
    /// `Ok(None)` when `t` is unreachable.
    fn distance(&mut self, s: VertexId, t: VertexId) -> Result<Option<Dist>, QueryError>;

    /// The session's query-phase trace, for engines that record one (the
    /// IS-LABEL family — heap, patched, directed, mmap). Baseline engines
    /// without a phased search return `None` (the default).
    fn trace(&self) -> Option<&crate::trace::QueryTrace> {
        None
    }

    /// Mutable access to the trace, e.g. to flip
    /// [`QueryTrace::enabled`](crate::trace::QueryTrace::enabled) off.
    fn trace_mut(&mut self) -> Option<&mut crate::trace::QueryTrace> {
        None
    }
}

/// A point-to-point exact distance engine.
///
/// Queries are read-only (`&self`) and the engine is shareable across
/// threads ([`Sync`]), so one index serves arbitrarily many concurrent
/// queries — the serving mode the paper's workload of independent
/// point-to-point queries implies. Hot loops should prefer a per-thread
/// [`QuerySession`] from [`session`](DistanceOracle::session), which
/// reuses search state instead of allocating per query.
///
/// `Ok(None)` encodes *unreachable*; errors are reserved for malformed or
/// unanswerable queries (see [`QueryError`]).
///
/// # Examples
///
/// ```
/// use islabel_core::oracle::{BatchOptions, DistanceOracle, QueryError};
/// use islabel_core::{BuildConfig, IsLabelIndex};
/// use islabel_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1, 2);
/// let g = b.build();
/// let oracle: Box<dyn DistanceOracle> =
///     Box::new(IsLabelIndex::try_build(&g, BuildConfig::default()).unwrap());
/// assert_eq!(oracle.try_distance(0, 1), Ok(Some(2)));
/// assert_eq!(oracle.try_distance(0, 2), Ok(None)); // unreachable, not an error
/// assert_eq!(
///     oracle.try_distance(0, 9),
///     Err(QueryError::VertexOutOfRange { vertex: 9, universe: 3 })
/// );
/// let batch = oracle
///     .distance_batch(&[(0, 1), (1, 1)], BatchOptions::default())
///     .unwrap();
/// assert_eq!(batch, vec![Some(2), Some(0)]);
/// ```
pub trait DistanceOracle: Send + Sync {
    /// Short engine identifier (`"islabel"`, `"pll"`, ...), stable across
    /// runs — what the CLI's `--engine` flag parses to.
    fn engine_name(&self) -> &'static str;

    /// Number of vertices the engine answers for; any id `< num_vertices()`
    /// is a valid query endpoint.
    fn num_vertices(&self) -> usize;

    /// Resident size of the data structure queries read (labels, reduced
    /// graphs, or the graph itself for search baselines).
    fn index_bytes(&self) -> usize;

    /// Exact distance `dist(s, t)`; `Ok(None)` when `t` is unreachable.
    fn try_distance(&self, s: VertexId, t: VertexId) -> Result<Option<Dist>, QueryError>;

    /// Opens a per-thread [`QuerySession`] with this engine's reusable
    /// scratch state. The session borrows the oracle; create one per
    /// serving thread.
    fn session(&self) -> Box<dyn QuerySession + '_>;

    /// Answers a batch of independent queries, in input order, on a worker
    /// pool sized by `options`. The default implementation bounds-checks
    /// every pair up front — a malformed batch fails fast with the first
    /// offending pair in input order, before any query runs — then chunks
    /// the batch over scoped threads, each answering through its own
    /// [`session`](DistanceOracle::session); a residual engine error from a
    /// worker also fails the whole batch.
    fn distance_batch(
        &self,
        pairs: &[(VertexId, VertexId)],
        options: BatchOptions,
    ) -> Result<Vec<Option<Dist>>, QueryError> {
        if pairs.is_empty() {
            return Ok(Vec::new());
        }
        let universe = self.num_vertices();
        for &(s, t) in pairs {
            check_vertex(s, universe)?;
            check_vertex(t, universe)?;
        }
        let threads = options.effective_threads(pairs.len());
        let mut out = vec![None; pairs.len()];
        if threads == 1 {
            let mut session = self.session();
            for (o, &(s, t)) in out.iter_mut().zip(pairs) {
                *o = session.distance(s, t)?;
            }
            return Ok(out);
        }
        let chunk = pairs.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let workers: Vec<_> = out
                .chunks_mut(chunk)
                .zip(pairs.chunks(chunk))
                .map(|(slot, work)| {
                    scope.spawn(move || -> Result<(), QueryError> {
                        let mut session = self.session();
                        for (o, &(s, t)) in slot.iter_mut().zip(work) {
                            *o = session.distance(s, t)?;
                        }
                        Ok(())
                    })
                })
                .collect();
            let mut first_err = None;
            for w in workers {
                if let Err(e) = w.join().expect("batch worker panicked") {
                    first_err.get_or_insert(e);
                }
            }
            match first_err {
                Some(e) => Err(e),
                None => Ok(()),
            }
        })?;
        Ok(out)
    }
}

/// Bounds-check helper for [`DistanceOracle`] implementors: `Ok(())` when
/// `v` is a valid id in a `universe`-vertex index, the matching
/// [`QueryError::VertexOutOfRange`] otherwise.
#[inline]
pub fn check_vertex(v: VertexId, universe: usize) -> Result<(), QueryError> {
    if (v as usize) < universe {
        Ok(())
    } else {
        Err(QueryError::VertexOutOfRange {
            vertex: v,
            universe,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_actionable() {
        let e = QueryError::VertexOutOfRange {
            vertex: 7,
            universe: 5,
        };
        assert!(e.to_string().contains("out of range"));
        assert!(QueryError::StaleIndex.to_string().contains("rebuild"));
        assert!(QueryError::NoPathInfo.to_string().contains("path info"));
        assert!(Error::InvalidConfig("σ must be in (0, 1]".into())
            .to_string()
            .contains("invalid configuration"));
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        assert!(Error::from(io).to_string().contains("persistence"));
    }

    #[test]
    fn every_variant_displays_nonempty_and_distinct() {
        // One sample per variant of both (non_exhaustive) enums: a silent
        // or duplicated message would make typed errors indistinguishable
        // at the CLI / log boundary.
        let query_variants = [
            QueryError::VertexOutOfRange {
                vertex: 3,
                universe: 2,
            },
            QueryError::StaleIndex,
            QueryError::NoPathInfo,
        ];
        let error_variants = [
            Error::Query(QueryError::StaleIndex),
            Error::InvalidConfig("k < 2".into()),
            Error::Persist(std::io::Error::new(std::io::ErrorKind::NotFound, "gone")),
        ];
        let mut messages: Vec<String> = query_variants
            .iter()
            .map(|e| e.to_string())
            .chain(error_variants.iter().map(|e| e.to_string()))
            .collect();
        // `Error::Query` forwards its inner Display — that one duplicate is
        // by design; drop it before the pairwise check.
        messages.remove(3);
        for m in &messages {
            assert!(!m.is_empty(), "empty Display message");
        }
        for i in 0..messages.len() {
            for j in (i + 1)..messages.len() {
                assert_ne!(messages[i], messages[j], "duplicate Display message");
            }
        }
    }

    #[test]
    fn error_conversions_and_sources() {
        use std::error::Error as _;
        let e: Error = QueryError::StaleIndex.into();
        assert!(matches!(e, Error::Query(QueryError::StaleIndex)));
        assert!(e.source().is_some());
        assert!(Error::InvalidConfig("x".into()).source().is_none());
    }

    #[test]
    fn batch_options_thread_selection() {
        // Explicit counts are respected, capped by the job count.
        assert_eq!(BatchOptions::with_threads(4).effective_threads(100), 4);
        assert_eq!(BatchOptions::with_threads(4).effective_threads(2), 2);
        assert_eq!(BatchOptions::sequential().effective_threads(100), 1);
        // Zero is the default, not a panic.
        let auto = BatchOptions::with_threads(0);
        assert!(auto.threads.is_none());
        assert!(auto.effective_threads(1000) >= 1);
        assert_eq!(BatchOptions::default().effective_threads(1), 1);
    }

    #[test]
    fn check_vertex_bounds() {
        assert_eq!(check_vertex(0, 1), Ok(()));
        assert_eq!(
            check_vertex(1, 1),
            Err(QueryError::VertexOutOfRange {
                vertex: 1,
                universe: 1
            })
        );
    }
}
