//! Query processing: Equation 1 label intersection and the label-based
//! bidirectional Dijkstra of Algorithm 1.
//!
//! A query `(s, t)` proceeds in two stages (paper Section 5.2):
//!
//! 1. **Label intersection** (Equation 1): merge-join the two sorted labels
//!    and take `µ = min_{w ∈ X} d(s, w) + d(w, t)`. With a full hierarchy
//!    (`G_k = ∅`) this alone is the exact answer (Theorem 2); with a k-level
//!    hierarchy it is an upper bound that seeds the pruning.
//! 2. **Bidirectional Dijkstra on `G_k`** (Algorithm 1): the forward queue
//!    starts from the `G_k` vertices in `label(s)` at their label distances
//!    (which are exact by the Theorem 3/4 argument), the reverse queue
//!    likewise from `label(t)`; the search stops when
//!    `min(FQ) + min(RQ) ≥ µ`.
//!
//! If a query's labels contribute no `G_k` seeds at all, the search loop
//! never runs and the Equation 1 value is returned — exactly the paper's
//! "Type 1" correctness case (Theorem 3).
//!
//! Two kernels implement the search stage:
//!
//! * the **sparse (hashmap) kernel** in this module — global vertex ids,
//!   hash-map state, lazy-deletion binary heaps. It accepts any
//!   [`GkGraph`], which is what the dynamic-update overlay's patched
//!   residual view needs, and doubles as the reference implementation the
//!   conformance suite checks the fast path against;
//! * the **dense kernel** in [`crate::dense`] — compact `0..|G_k|` ids,
//!   generation-stamped flat arrays and an indexed 4-ary heap with
//!   decrease-key. Pristine indexes route distance queries through it; it
//!   returns bit-identical `(dist, meeting, settled)` outcomes.
//!
//! The merge-join intersections here are an **alloc-free zone** enforced
//! by `islabel-lint` (see `lint.toml` at the repo root).

use crate::label::LabelView;
use islabel_graph::{CsrGraph, Dist, FxHashMap, VertexId, Weight, INF};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Experimental query classification of Table 5 (which is keyed by how many
/// endpoints lie in `G_k`, *not* by the correctness cases of Section 5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryType {
    /// Both `s` and `t` are in `G_k`: no label lookup needed at all.
    BothInGk,
    /// Exactly one endpoint is in `G_k`: one label lookup.
    OneInGk,
    /// Neither endpoint is in `G_k`: two label lookups.
    NeitherInGk,
}

impl QueryType {
    /// The paper's 1-based type number in Table 5.
    pub fn number(&self) -> u8 {
        match self {
            QueryType::BothInGk => 1,
            QueryType::OneInGk => 2,
            QueryType::NeitherInGk => 3,
        }
    }

    /// How many label fetches this query type performs.
    pub fn label_fetches(&self) -> u8 {
        match self {
            QueryType::BothInGk => 0,
            QueryType::OneInGk => 1,
            QueryType::NeitherInGk => 2,
        }
    }
}

/// Equation 1: `min_{w ∈ X} d(s, w) + d(w, t)` over the label intersection
/// `X`, as a linear merge-join over the two ancestor-sorted labels. Returns
/// `(INF, None)` when `X = ∅` (the paper's `∞` case).
pub fn intersect_min(a: LabelView<'_>, b: LabelView<'_>) -> (Dist, Option<VertexId>) {
    let mut best = INF;
    let mut witness = None;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.ancestors.len() && j < b.ancestors.len() {
        let (av, bv) = (a.ancestors[i], b.ancestors[j]);
        match av.cmp(&bv) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let sum = a.dists[i].saturating_add(b.dists[j]);
                if sum < best {
                    best = sum;
                    witness = Some(av);
                }
                i += 1;
                j += 1;
            }
        }
    }
    (best, witness)
}

/// Length ratio beyond which [`intersect_min_adaptive`] switches from the
/// linear merge to galloping: with `|long| / |short| ≥ 8`, the
/// `O(|short| · log |long|)` skip-search beats scanning the long label.
pub const GALLOP_CROSSOVER: usize = 8;

/// Equation 1 with an adaptive strategy: the linear merge-join of
/// [`intersect_min`] for similarly sized labels, and a **galloping**
/// intersection when one label is at least [`GALLOP_CROSSOVER`]× longer
/// than the other — each entry of the short label gallops (doubling probe
/// stride, then binary search) forward into the unscanned tail of the long
/// one, so heavily skewed intersections (a leaf label against a hub label)
/// cost `O(|short| · log |long|)` instead of `O(|short| + |long|)`.
///
/// Returns exactly what [`intersect_min`] returns on every input; the
/// query hot paths call this form.
pub fn intersect_min_adaptive(a: LabelView<'_>, b: LabelView<'_>) -> (Dist, Option<VertexId>) {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.len().saturating_mul(GALLOP_CROSSOVER) > long.len() {
        return intersect_min(a, b);
    }
    let mut best = INF;
    let mut witness = None;
    let mut lo = 0usize;
    for (i, &anc) in short.ancestors.iter().enumerate() {
        let tail = &long.ancestors[lo..];
        if tail.is_empty() {
            break;
        }
        // Gallop: double the probe stride until the bracket contains `anc`,
        // then binary-search the bracket. The cursor only moves forward, so
        // a run of short-label entries mapping into one long-label region
        // stays cheap.
        let mut hi = 1usize;
        while hi < tail.len() && tail[hi] < anc {
            hi *= 2;
        }
        // `tail[hi] >= anc` (or `hi` ran off the end), so the bracket must
        // include index `hi` itself for an exact hit there to be found.
        let window = &tail[..(hi + 1).min(tail.len())];
        match window.binary_search(&anc) {
            Ok(p) => {
                let j = lo + p;
                let sum = short.dists[i].saturating_add(long.dists[j]);
                if sum < best {
                    best = sum;
                    witness = Some(anc);
                }
                lo = j + 1;
            }
            Err(p) => {
                lo += p;
            }
        }
    }
    (best, witness)
}

/// Adjacency provider for the search stage. `CsrGraph` is the normal case;
/// the update overlay provides a patched view after dynamic insertions.
pub trait GkGraph {
    /// Iterates `(neighbor, weight)` of `v` in the residual graph.
    fn edges_of(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_;
}

impl GkGraph for CsrGraph {
    #[inline]
    fn edges_of(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.edges(v)
    }
}

/// How the best distance was discovered — drives path reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Meeting {
    /// No path exists.
    None,
    /// Equation 1 won: the optimum goes through common label ancestor `w`
    /// without improving inside `G_k`.
    Labels(VertexId),
    /// The bidirectional search won: the optimum passes through `G_k`
    /// vertex `m`, with `dist = dist_f(m) + dist_r(m)`.
    Search(VertexId),
}

/// Inputs of one bidirectional search.
#[derive(Debug, Clone, Copy)]
pub struct SearchParams<'a> {
    /// Forward seeds: `(v, d(s, v))` for each `G_k` vertex in `label(s)`.
    pub fseeds: &'a [(VertexId, Dist)],
    /// Reverse seeds from `label(t)`.
    pub rseeds: &'a [(VertexId, Dist)],
    /// Initial `µ` from Equation 1 (`INF` if the labels do not intersect).
    pub mu0: Dist,
    /// The ancestor realizing `mu0`.
    pub mu0_witness: Option<VertexId>,
    /// Record parent pointers for path reconstruction.
    pub track_paths: bool,
}

/// Output of one bidirectional search.
#[derive(Debug)]
pub struct SearchResult {
    /// `dist_G(s, t)`, or `INF` if unreachable.
    pub dist: Dist,
    /// Which mechanism found it.
    pub meeting: Meeting,
    /// Vertices settled across both directions (the paper's `S`);
    /// diagnostic for Time (b) analysis.
    pub settled: usize,
    /// Forward parent pointers (`SEED_PARENT` marks a label seed); empty
    /// unless `track_paths`.
    pub parents_f: FxHashMap<VertexId, VertexId>,
    /// Reverse parent pointers; empty unless `track_paths`.
    pub parents_r: FxHashMap<VertexId, VertexId>,
    /// Final forward tentative distances; empty unless `track_paths`.
    pub dist_f: FxHashMap<VertexId, Dist>,
    /// Final reverse tentative distances; empty unless `track_paths`.
    pub dist_r: FxHashMap<VertexId, Dist>,
}

/// Parent marker for vertices seeded directly from a label entry.
pub const SEED_PARENT: VertexId = VertexId::MAX;

/// Reusable workspace of one bidirectional search: heaps, tentative
/// distances, settled sets and parent pointers.
///
/// Allocating these per query dominated the hot path; a [`SearchScratch`]
/// owned by a long-lived session (see
/// [`QuerySession`](crate::oracle::QuerySession)) amortizes the allocations
/// across queries. Maps and heaps keep their capacity between searches;
/// [`label_bi_dijkstra_directed_in`] resets contents on entry.
#[derive(Debug, Default)]
pub struct SearchScratch {
    dist_f: FxHashMap<VertexId, Dist>,
    dist_r: FxHashMap<VertexId, Dist>,
    parents_f: FxHashMap<VertexId, VertexId>,
    parents_r: FxHashMap<VertexId, VertexId>,
    settled_f: FxHashMap<VertexId, Dist>,
    settled_r: FxHashMap<VertexId, Dist>,
    fq: BinaryHeap<Reverse<(Dist, VertexId)>>,
    rq: BinaryHeap<Reverse<(Dist, VertexId)>>,
}

impl SearchScratch {
    /// An empty workspace; buffers grow on first use and are kept after.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self) {
        self.dist_f.clear();
        self.dist_r.clear();
        self.parents_f.clear();
        self.parents_r.clear();
        self.settled_f.clear();
        self.settled_r.clear();
        self.fq.clear();
        self.rq.clear();
    }
}

/// Result of a scratch-based search: the answer without the per-search
/// maps, which stay inside the [`SearchScratch`] for reuse.
#[derive(Debug, Clone, Copy)]
pub struct SearchOutcome {
    /// `dist_G(s, t)`, or `INF` if unreachable.
    pub dist: Dist,
    /// Which mechanism found it.
    pub meeting: Meeting,
    /// Vertices settled across both directions.
    pub settled: usize,
}

/// Algorithm 1 over a single (undirected) residual graph.
pub fn label_bi_dijkstra<G: GkGraph>(gk: &G, params: SearchParams<'_>) -> SearchResult {
    label_bi_dijkstra_directed(gk, gk, params)
}

/// Algorithm 1 over a single (undirected) residual graph, reusing a
/// caller-owned [`SearchScratch`] — the allocation-free hot path sessions
/// run on.
pub fn label_bi_dijkstra_in<G: GkGraph>(
    gk: &G,
    params: SearchParams<'_>,
    scratch: &mut SearchScratch,
) -> SearchOutcome {
    label_bi_dijkstra_directed_in(gk, gk, params, scratch)
}

/// Algorithm 1 with lazy-deletion binary heaps, generalized to distinct
/// forward/reverse adjacency so the directed index (Section 8.2) can run the
/// reverse search over transposed arcs.
///
/// Allocates a fresh workspace and hands the per-search maps back inside
/// [`SearchResult`]; the repeated-query hot path should prefer
/// [`label_bi_dijkstra_directed_in`] with a reused [`SearchScratch`].
pub fn label_bi_dijkstra_directed<GF: GkGraph, GR: GkGraph>(
    fwd: &GF,
    rev: &GR,
    params: SearchParams<'_>,
) -> SearchResult {
    let mut scratch = SearchScratch::new();
    let outcome = label_bi_dijkstra_directed_in(fwd, rev, params, &mut scratch);
    let (parents_f, parents_r, dist_f, dist_r) = if params.track_paths {
        (
            std::mem::take(&mut scratch.parents_f),
            std::mem::take(&mut scratch.parents_r),
            std::mem::take(&mut scratch.dist_f),
            std::mem::take(&mut scratch.dist_r),
        )
    } else {
        Default::default()
    };
    SearchResult {
        dist: outcome.dist,
        meeting: outcome.meeting,
        settled: outcome.settled,
        parents_f,
        parents_r,
        dist_f,
        dist_r,
    }
}

/// The directed search core, operating entirely inside `scratch`.
///
/// Differences from the paper's pseudocode, both conservative:
/// * vertices enter the queues on demand instead of all starting at `∞`
///   (identical behavior, far cheaper);
/// * `µ` is additionally tightened when a vertex settles on one side and
///   already carries a (tentative or settled) distance on the other — every
///   such value is the length of a real path, so `µ` remains an upper bound
///   and the `min(FQ) + min(RQ) ≥ µ` cutoff stays sound.
pub fn label_bi_dijkstra_directed_in<GF: GkGraph, GR: GkGraph>(
    fwd: &GF,
    rev: &GR,
    params: SearchParams<'_>,
    scratch: &mut SearchScratch,
) -> SearchOutcome {
    scratch.reset();
    let mut mu = params.mu0;
    let mut meeting = match params.mu0_witness {
        Some(w) if mu < INF => Meeting::Labels(w),
        _ => Meeting::None,
    };

    let SearchScratch {
        dist_f,
        dist_r,
        parents_f,
        parents_r,
        settled_f,
        settled_r,
        fq,
        rq,
    } = scratch;

    for &(v, d) in params.fseeds {
        let e = dist_f.entry(v).or_insert(INF);
        if d < *e {
            *e = d;
            fq.push(Reverse((d, v)));
            if params.track_paths {
                parents_f.insert(v, SEED_PARENT);
            }
        }
    }
    for &(v, d) in params.rseeds {
        let e = dist_r.entry(v).or_insert(INF);
        if d < *e {
            *e = d;
            rq.push(Reverse((d, v)));
            if params.track_paths {
                parents_r.insert(v, SEED_PARENT);
            }
        }
    }

    // Drops stale heap entries; returns the current true minimum key.
    fn clean_top(
        q: &mut BinaryHeap<Reverse<(Dist, VertexId)>>,
        dist: &FxHashMap<VertexId, Dist>,
        settled: &FxHashMap<VertexId, Dist>,
    ) -> Dist {
        while let Some(&Reverse((d, v))) = q.peek() {
            if settled.contains_key(&v) || dist.get(&v).is_none_or(|&cur| d > cur) {
                q.pop();
            } else {
                return d;
            }
        }
        INF
    }

    /// Settles the minimum of one side and relaxes its residual edges.
    #[allow(clippy::too_many_arguments)]
    fn step_side<G: GkGraph>(
        g: &G,
        q: &mut BinaryHeap<Reverse<(Dist, VertexId)>>,
        dist_x: &mut FxHashMap<VertexId, Dist>,
        settled_x: &mut FxHashMap<VertexId, Dist>,
        settled_y: &FxHashMap<VertexId, Dist>,
        dist_y: &FxHashMap<VertexId, Dist>,
        parents_x: &mut FxHashMap<VertexId, VertexId>,
        mu: &mut Dist,
        meeting: &mut Meeting,
        track_paths: bool,
    ) {
        let Reverse((d, v)) = q.pop().expect("clean_top guaranteed a live entry");
        settled_x.insert(v, d);
        // Settle-time meeting check (see function docs).
        if let Some(&dy) = dist_y.get(&v) {
            let cand = d.saturating_add(dy);
            if cand < *mu {
                *mu = cand;
                *meeting = Meeting::Search(v);
            }
        }

        for (u, w) in g.edges_of(v) {
            let nd = d + w as Dist;
            let cur = dist_x.entry(u).or_insert(INF);
            if nd < *cur {
                *cur = nd;
                q.push(Reverse((nd, u)));
                if track_paths {
                    parents_x.insert(u, v);
                }
                // Lines 17–18: u already reached from the other direction.
                if let Some(&dy) = settled_y.get(&u) {
                    let cand = nd.saturating_add(dy);
                    if cand < *mu {
                        *mu = cand;
                        *meeting = Meeting::Search(u);
                    }
                }
            }
        }
    }

    loop {
        let min_f = clean_top(fq, dist_f, settled_f);
        let min_r = clean_top(rq, dist_r, settled_r);
        // Line 8: stop when either frontier is exhausted or no via-G_k path
        // can beat µ.
        if min_f == INF || min_r == INF {
            break;
        }
        if min_f.saturating_add(min_r) >= mu {
            break;
        }

        if min_f <= min_r {
            step_side(
                fwd,
                fq,
                dist_f,
                settled_f,
                settled_r,
                dist_r,
                parents_f,
                &mut mu,
                &mut meeting,
                params.track_paths,
            );
        } else {
            step_side(
                rev,
                rq,
                dist_r,
                settled_r,
                settled_f,
                dist_f,
                parents_r,
                &mut mu,
                &mut meeting,
                params.track_paths,
            );
        }
    }

    SearchOutcome {
        dist: mu,
        meeting: if mu == INF { Meeting::None } else { meeting },
        settled: settled_f.len() + settled_r.len(),
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::label::LabelSet;

    fn view<'a>(ancestors: &'a [VertexId], dists: &'a [Dist]) -> LabelView<'a> {
        LabelView {
            ancestors,
            dists,
            first_hops: &[],
        }
    }

    #[test]
    fn intersect_min_merge_join() {
        // label(s): a->1, c->5, e->2; label(t): b->1, c->1, e->9
        let (d, w) = intersect_min(view(&[0, 2, 4], &[1, 5, 2]), view(&[1, 2, 4], &[1, 1, 9]));
        // c: 5+1=6, e: 2+9=11 -> best 6 via c=2.
        assert_eq!(d, 6);
        assert_eq!(w, Some(2));
    }

    #[test]
    fn intersect_min_disjoint_is_inf() {
        let (d, w) = intersect_min(view(&[0, 1], &[1, 1]), view(&[2, 3], &[1, 1]));
        assert_eq!(d, INF);
        assert_eq!(w, None);
    }

    #[test]
    fn intersect_min_handles_inf_entries() {
        // Saturating addition keeps INF absorbing.
        let (d, _) = intersect_min(view(&[5], &[INF]), view(&[5], &[3]));
        assert_eq!(d, INF);
    }

    #[test]
    fn adaptive_intersect_matches_linear_merge() {
        // Deterministic pseudo-random label pairs across the crossover
        // boundary: tiny-vs-huge (gallops), balanced (linear), empty, and
        // exact-boundary shapes must all agree with the reference merge.
        let mut state = 0x0DDB_1A5E_5BAD_5EEDu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut make = |len: usize, stride: u64| -> (Vec<VertexId>, Vec<Dist>) {
            let mut ancs = Vec::with_capacity(len);
            let mut cur = 0u64;
            for _ in 0..len {
                cur += 1 + next() % stride;
                ancs.push(cur as VertexId);
            }
            let dists = ancs.iter().map(|_| next() % 50).collect();
            (ancs, dists)
        };
        for (la, lb) in [(0, 40), (3, 200), (5, 41), (8, 64), (40, 45), (200, 3)] {
            for trial in 0..5 {
                let (aa, ad) = make(la, 3);
                let (ba, bd) = make(lb, 3);
                let a = view(&aa, &ad);
                let b = view(&ba, &bd);
                assert_eq!(
                    intersect_min_adaptive(a, b),
                    intersect_min(a, b),
                    "lens ({la}, {lb}) trial {trial}"
                );
            }
        }
    }

    #[test]
    fn adaptive_intersect_finds_boundary_hits() {
        // Regression shape: the short entry equals exactly the galloped
        // probe position of the long label (tail[hi] == anc).
        let long_anc: Vec<VertexId> = (0..100).map(|i| i * 2).collect();
        let long_d: Vec<Dist> = (0..100).map(|i| i as Dist).collect();
        for probe in [2u32, 4, 8, 16, 32, 64, 128, 198] {
            let short_anc = [probe];
            let short_d = [7u64];
            let a = view(&short_anc, &short_d);
            let b = view(&long_anc, &long_d);
            let got = intersect_min_adaptive(a, b);
            assert_eq!(got, intersect_min(a, b), "probe {probe}");
            assert_eq!(got.1, Some(probe));
        }
    }

    #[test]
    fn query_type_numbers() {
        assert_eq!(QueryType::BothInGk.number(), 1);
        assert_eq!(QueryType::OneInGk.number(), 2);
        assert_eq!(QueryType::NeitherInGk.number(), 3);
        assert_eq!(QueryType::BothInGk.label_fetches(), 0);
        assert_eq!(QueryType::NeitherInGk.label_fetches(), 2);
    }

    #[test]
    fn bi_dijkstra_plain_point_to_point() {
        // Seeding each side with a single vertex at distance 0 reduces
        // Algorithm 1 to ordinary bidirectional Dijkstra.
        let g = islabel_graph::generators::erdos_renyi_gnm(
            60,
            150,
            islabel_graph::generators::WeightModel::UniformRange(1, 5),
            3,
        );
        for (s, t) in [(0u32, 59u32), (5, 40), (13, 13), (2, 30)] {
            let res = label_bi_dijkstra(
                &g,
                SearchParams {
                    fseeds: &[(s, 0)],
                    rseeds: &[(t, 0)],
                    mu0: INF,
                    mu0_witness: None,
                    track_paths: false,
                },
            );
            let expect = crate::reference::dijkstra_p2p(&g, s, t).unwrap_or(INF);
            assert_eq!(res.dist, expect, "({s}, {t})");
        }
    }

    #[test]
    fn bi_dijkstra_respects_mu0_shortcut() {
        // A long chain in G_k, but labels already know a distance-1 shortcut:
        // the search must return the shortcut and prune immediately.
        let mut b = islabel_graph::GraphBuilder::new(5);
        for v in 0..4u32 {
            b.add_edge(v, v + 1, 10);
        }
        let g = b.build();
        let res = label_bi_dijkstra(
            &g,
            SearchParams {
                fseeds: &[(0, 0)],
                rseeds: &[(4, 0)],
                mu0: 1,
                mu0_witness: Some(99),
                track_paths: false,
            },
        );
        assert_eq!(res.dist, 1);
        assert_eq!(res.meeting, Meeting::Labels(99));
        // Pruning: 0 or at most a couple of settles before min_f+min_r >= 1.
        assert!(res.settled <= 2, "settled {}", res.settled);
    }

    #[test]
    fn bi_dijkstra_empty_seeds_returns_mu0() {
        let g = CsrGraph::empty(3);
        let res = label_bi_dijkstra(
            &g,
            SearchParams {
                fseeds: &[],
                rseeds: &[(1, 0)],
                mu0: 7,
                mu0_witness: Some(2),
                track_paths: false,
            },
        );
        assert_eq!(res.dist, 7);
        assert_eq!(res.meeting, Meeting::Labels(2));

        let res = label_bi_dijkstra(
            &g,
            SearchParams {
                fseeds: &[],
                rseeds: &[],
                mu0: INF,
                mu0_witness: None,
                track_paths: false,
            },
        );
        assert_eq!(res.dist, INF);
        assert_eq!(res.meeting, Meeting::None);
    }

    #[test]
    fn bi_dijkstra_multi_seed_uses_best_combination() {
        // Path 0-1-2-3-4 (unit weights). Forward seeds {1: 5, 2: 1},
        // reverse seed {4: 0}: best is 2->3->4 = 1+2 = 3.
        let mut b = islabel_graph::GraphBuilder::new(5);
        for v in 0..4u32 {
            b.add_edge(v, v + 1, 1);
        }
        let g = b.build();
        let res = label_bi_dijkstra(
            &g,
            SearchParams {
                fseeds: &[(1, 5), (2, 1)],
                rseeds: &[(4, 0)],
                mu0: INF,
                mu0_witness: None,
                track_paths: true,
            },
        );
        assert_eq!(res.dist, 3);
        assert!(matches!(res.meeting, Meeting::Search(_)));
        // Parent chain from the meeting vertex walks back to a seed.
        if let Meeting::Search(m) = res.meeting {
            let mut cur = m;
            let mut hops = 0;
            while res.parents_f[&cur] != SEED_PARENT {
                cur = res.parents_f[&cur];
                hops += 1;
                assert!(hops < 10);
            }
            assert_eq!(cur, 2, "forward chain must start at the cheaper seed");
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_search() {
        // The same scratch answers a mixed query sequence identically to
        // per-query allocation, including after INF and pruned searches.
        let g = islabel_graph::generators::erdos_renyi_gnm(
            80,
            160,
            islabel_graph::generators::WeightModel::UniformRange(1, 6),
            11,
        );
        let mut scratch = SearchScratch::new();
        for round in 0..3 {
            for (s, t) in [(0u32, 79u32), (5, 40), (13, 13), (2, 30), (70, 3)] {
                let params = SearchParams {
                    fseeds: &[(s, 0)],
                    rseeds: &[(t, 0)],
                    mu0: INF,
                    mu0_witness: None,
                    track_paths: false,
                };
                let fresh = label_bi_dijkstra(&g, params);
                let reused = label_bi_dijkstra_in(&g, params, &mut scratch);
                assert_eq!(reused.dist, fresh.dist, "round {round} ({s}, {t})");
                assert_eq!(reused.meeting, fresh.meeting, "round {round} ({s}, {t})");
                assert_eq!(reused.settled, fresh.settled, "round {round} ({s}, {t})");
            }
        }
    }

    #[test]
    fn bi_dijkstra_finds_meet_in_middle_on_random_graphs() {
        use crate::config::BuildConfig;
        use crate::hierarchy::VertexHierarchy;
        // End-to-end sanity at the query layer: build hierarchy + labels,
        // seed from labels, compare against plain Dijkstra.
        let g = islabel_graph::generators::barabasi_albert(
            150,
            2,
            islabel_graph::generators::WeightModel::UniformRange(1, 3),
            9,
        );
        // fixed k guarantees a non-empty G_k regardless of how fast the
        // sparse BA graph peels.
        let h = VertexHierarchy::build(&g, &BuildConfig::fixed_k(3));
        assert!(h.num_gk_vertices() > 0);
        let ls = LabelSet::build(&h, false);

        let seeds = |v: VertexId| -> Vec<(VertexId, Dist)> {
            ls.label(v).iter().filter(|&(a, _)| h.is_in_gk(a)).collect()
        };
        for (s, t) in [(0u32, 149u32), (3, 77), (10, 11), (140, 141), (60, 61)] {
            let (mu0, w0) = intersect_min(ls.label(s), ls.label(t));
            let res = label_bi_dijkstra(
                h.gk(),
                SearchParams {
                    fseeds: &seeds(s),
                    rseeds: &seeds(t),
                    mu0,
                    mu0_witness: w0,
                    track_paths: false,
                },
            );
            let expect = crate::reference::dijkstra_p2p(&g, s, t).unwrap_or(INF);
            assert_eq!(res.dist, expect, "({s}, {t})");
        }
    }
}
