//! Vertex-hierarchy construction (paper Section 4.1, 5.1; Algorithms 2, 3).
//!
//! The hierarchy `(L, G)` peels an independent set `L_i` off each `G_i`
//! (greedy minimum-degree, Algorithm 2) and patches `G_{i+1}` with
//! *augmenting edges* so distances among surviving vertices are preserved
//! (Algorithm 3): for a peeled vertex `v` and any two neighbors `u, w`, the
//! 2-hop path `⟨u, v, w⟩` is replaced by an edge `(u, w)` of weight
//! `ω(u,v) + ω(v,w)` (keeping the minimum if `(u, w)` exists). Independence
//! is what confines the repair to a self-join on each peeled vertex's
//! neighborhood — the property the whole I/O-efficient design leans on.
//!
//! Construction stops at level `k` (Definition 4): with the σ rule, at the
//! first level whose graph shrank by less than `1 − σ`; the residual `G_k`
//! is kept for query-time search.

use crate::config::{BuildConfig, IsStrategy, KSelection};
use islabel_graph::adjacency::AdjacencyGraph;
use islabel_graph::{CsrGraph, FxHashMap, VertexId, Weight};

/// One archived adjacency entry of a peeled vertex: the edge `(v, to)` as it
/// existed in `G_{ℓ(v)}` at peel time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeelEdge {
    /// The neighbor (always at a strictly higher level than the peeled
    /// vertex, by independence).
    pub to: VertexId,
    /// Edge weight in `G_{ℓ(v)}`.
    pub weight: Weight,
    /// Intermediate vertex if the edge was an augmenting edge
    /// ([`islabel_graph::adjacency::NO_VIA`] otherwise); needed only for
    /// path reconstruction (Section 8.1).
    pub via: VertexId,
}

/// The k-level vertex hierarchy `(H_{<k}, G_k)` of Definition 4.
#[derive(Debug, Clone)]
pub struct VertexHierarchy {
    /// `ℓ(v)` for every vertex (1-based; vertices of `G_k` have level `k`).
    level_of: Vec<u32>,
    /// Number of levels `k` (so `k − 1` independent sets were peeled).
    k: u32,
    /// `levels[i]` is `L_{i+1}`, ascending by vertex id.
    levels: Vec<Vec<VertexId>>,
    /// For each peeled vertex, its adjacency in `G_{ℓ(v)}` at peel time
    /// (`ADJ(L_i)` of Algorithm 2), sorted by neighbor id. Empty for `G_k`
    /// vertices.
    peel_adj: Vec<Box<[PeelEdge]>>,
    /// The residual graph `G_k` over the full id universe (peeled vertices
    /// are isolated in it).
    gk: CsrGraph,
    /// Via vertices of `G_k`'s augmenting edges, keyed by `(min, max)`
    /// endpoint pair. Empty when path info is disabled.
    gk_vias: FxHashMap<(VertexId, VertexId), VertexId>,
    /// Vertices of `G_k`, ascending.
    gk_members: Vec<VertexId>,
}

impl VertexHierarchy {
    /// Builds the hierarchy for `g` under `config`.
    pub fn build(g: &CsrGraph, config: &BuildConfig) -> Self {
        config.validate();
        let mut work = AdjacencyGraph::from_csr(g);
        let n = g.num_vertices();
        let mut level_of = vec![0u32; n];
        let mut peel_adj: Vec<Box<[PeelEdge]>> = vec![Box::default(); n];
        let mut levels: Vec<Vec<VertexId>> = Vec::new();

        let mut i: u32 = 1;
        let k = loop {
            if work.num_present() == 0 {
                break i; // G_i is empty: full hierarchy, k = h + 1.
            }
            match config.k_selection {
                KSelection::FixedK(kf) if i == kf => break i,
                _ if i == config.max_levels => break i,
                _ => {}
            }

            let size_before = work.size();
            let li = select_independent_set(&work, config.is_strategy, i);
            debug_assert!(
                !li.is_empty(),
                "greedy IS cannot be empty on a non-empty graph"
            );
            peel_level(&mut work, &li, i, &mut level_of, &mut peel_adj);
            levels.push(li);
            let size_after = work.size();

            if let KSelection::SigmaThreshold(sigma) = config.k_selection {
                // Definition 4: k is the first i with |G_i| / |G_{i−1}| > σ.
                // We just built G_{i+1} from G_i, so compare and stop with
                // k = i + 1 if the shrink was too small.
                if size_after as f64 > sigma * size_before as f64 {
                    break i + 1;
                }
            }
            i += 1;
        };

        Self::finish(work, k, level_of, peel_adj, levels, config.keep_path_info)
    }

    /// Builds a hierarchy from caller-supplied level sets (each must be an
    /// independent set of the graph remaining at its level). Vertices not
    /// covered by any level form `G_k`. Used by tests to replay the paper's
    /// worked example, whose level sets differ from what greedy selects.
    pub fn build_with_forced_levels(g: &CsrGraph, forced: &[Vec<VertexId>]) -> Self {
        let mut work = AdjacencyGraph::from_csr(g);
        let n = g.num_vertices();
        let mut level_of = vec![0u32; n];
        let mut peel_adj: Vec<Box<[PeelEdge]>> = vec![Box::default(); n];
        let mut levels: Vec<Vec<VertexId>> = Vec::new();
        for (idx, li) in forced.iter().enumerate() {
            let i = idx as u32 + 1;
            let mut li = li.clone();
            li.sort_unstable();
            for pair in li.windows(2) {
                assert!(
                    pair[0] != pair[1],
                    "duplicate vertex {} in level {i}",
                    pair[0]
                );
            }
            for &v in &li {
                assert!(
                    work.is_present(v),
                    "vertex {v} already peeled before level {i}"
                );
            }
            for &v in &li {
                for (u, _) in work.neighbors(v) {
                    assert!(
                        li.binary_search(&u).is_err(),
                        "level {i} is not an independent set: edge ({v}, {u})"
                    );
                }
            }
            peel_level(&mut work, &li, i, &mut level_of, &mut peel_adj);
            levels.push(li);
        }
        let k = forced.len() as u32 + 1;
        Self::finish(work, k, level_of, peel_adj, levels, true)
    }

    /// Assembles a hierarchy from externally constructed parts (used by the
    /// I/O-efficient pipeline in [`crate::embuild`], which must produce the
    /// exact same structure as the in-memory builder).
    pub(crate) fn from_parts(
        level_of: Vec<u32>,
        k: u32,
        levels: Vec<Vec<VertexId>>,
        peel_adj: Vec<Box<[PeelEdge]>>,
        gk: CsrGraph,
        gk_vias: FxHashMap<(VertexId, VertexId), VertexId>,
        gk_members: Vec<VertexId>,
    ) -> Self {
        Self {
            level_of,
            k,
            levels,
            peel_adj,
            gk,
            gk_vias,
            gk_members,
        }
    }

    fn finish(
        work: AdjacencyGraph,
        k: u32,
        mut level_of: Vec<u32>,
        peel_adj: Vec<Box<[PeelEdge]>>,
        levels: Vec<Vec<VertexId>>,
        keep_path_info: bool,
    ) -> Self {
        let gk_members: Vec<VertexId> = work.present_vertices().collect();
        for &v in &gk_members {
            level_of[v as usize] = k;
        }
        let (gk, via_list) = work.to_csr_with_vias();
        let mut gk_vias = FxHashMap::default();
        if keep_path_info {
            gk_vias.reserve(via_list.len());
            for (u, v, via) in via_list {
                gk_vias.insert((u, v), via);
            }
        }
        Self {
            level_of,
            k,
            levels,
            peel_adj,
            gk,
            gk_vias,
            gk_members,
        }
    }

    /// Vertex-id universe size.
    pub fn universe(&self) -> usize {
        self.level_of.len()
    }

    /// The number of levels `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Level `ℓ(v)` (1-based; `k` for `G_k` vertices).
    #[inline]
    pub fn level_of(&self, v: VertexId) -> u32 {
        self.level_of[v as usize]
    }

    /// Whether `v` survived into the residual graph `G_k`.
    #[inline]
    pub fn is_in_gk(&self, v: VertexId) -> bool {
        self.level_of[v as usize] == self.k
    }

    /// The peeled level sets `L_1 .. L_{k−1}` (each ascending).
    pub fn levels(&self) -> &[Vec<VertexId>] {
        &self.levels
    }

    /// `v`'s archived adjacency in `G_{ℓ(v)}` (empty for `G_k` vertices).
    /// Entries are sorted by neighbor id, and every neighbor is at a
    /// strictly higher level — these are exactly the candidate first hops of
    /// `v`'s ancestor chains.
    #[inline]
    pub fn peel_adj(&self, v: VertexId) -> &[PeelEdge] {
        &self.peel_adj[v as usize]
    }

    /// The residual graph `G_k` (over the full universe; peeled vertices are
    /// isolated in it).
    pub fn gk(&self) -> &CsrGraph {
        &self.gk
    }

    /// Vertices of `G_k`, ascending.
    pub fn gk_members(&self) -> &[VertexId] {
        &self.gk_members
    }

    /// Number of vertices in `G_k`.
    pub fn num_gk_vertices(&self) -> usize {
        self.gk_members.len()
    }

    /// Number of edges in `G_k`.
    pub fn num_gk_edges(&self) -> usize {
        self.gk.num_edges()
    }

    /// Via vertex of the `G_k` edge `(u, v)` if it is an augmenting edge.
    pub fn gk_via(&self, u: VertexId, v: VertexId) -> Option<VertexId> {
        let key = if u < v { (u, v) } else { (v, u) };
        self.gk_vias.get(&key).copied()
    }

    /// Approximate resident bytes of the hierarchy (used in stats).
    pub fn memory_bytes(&self) -> usize {
        let peel: usize = self
            .peel_adj
            .iter()
            .map(|a| a.len() * std::mem::size_of::<PeelEdge>())
            .sum();
        peel + self.level_of.len() * 4
            + self.gk.memory_bytes()
            + self.gk_vias.len() * 12
            + self.gk_members.len() * 4
    }
}

/// Selects one level's independent set from the present vertices of `work`.
///
/// This is the in-memory counterpart of Algorithm 2: visit vertices in the
/// strategy's order (for the paper's greedy: ascending snapshot degree, ties
/// by id) and take every vertex not yet excluded by a chosen neighbor.
fn select_independent_set(
    work: &AdjacencyGraph,
    strategy: IsStrategy,
    level: u32,
) -> Vec<VertexId> {
    let mut order: Vec<VertexId> = work.present_vertices().collect();
    match strategy {
        IsStrategy::MinDegreeGreedy => {
            order.sort_by_key(|&v| (work.degree(v), v));
        }
        IsStrategy::MaxDegreeGreedy => {
            order.sort_by_key(|&v| (std::cmp::Reverse(work.degree(v)), v));
        }
        IsStrategy::Random(seed) => {
            // Deterministic per (seed, level) Fisher–Yates driven by a
            // splitmix-style generator; rand is not needed for this.
            let mut state = seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(level as u64 + 1));
            let mut next = move || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            for j in (1..order.len()).rev() {
                let r = (next() % (j as u64 + 1)) as usize;
                order.swap(j, r);
            }
        }
    }

    let mut excluded = vec![false; work.universe()];
    let mut li = Vec::new();
    for &u in &order {
        if excluded[u as usize] {
            continue;
        }
        li.push(u);
        for (v, _) in work.neighbors(u) {
            excluded[v as usize] = true;
        }
    }
    li.sort_unstable();
    li
}

/// Removes one level and inserts its augmenting edges (Algorithm 3).
///
/// Vertices are processed in ascending id order; on equal augmented weight
/// the earlier edge (or the pre-existing edge) wins, which makes via
/// annotations deterministic and lets the external-memory pipeline
/// reproduce them exactly.
fn peel_level(
    work: &mut AdjacencyGraph,
    li: &[VertexId],
    level: u32,
    level_of: &mut [u32],
    peel_adj: &mut [Box<[PeelEdge]>],
) {
    for &v in li {
        let adj = work.remove_vertex(v);
        level_of[v as usize] = level;
        // Self-join on the neighborhood: each pair (a, b) of v's neighbors
        // gets the 2-hop repair edge through v. Augmenting weights are real
        // path lengths and must stay within the `Weight` type; graphs whose
        // shortest paths exceed u32::MAX are out of contract (see the
        // `BuildConfig` docs) and fail loudly here rather than wrapping.
        for (x, &(a, ea)) in adj.iter().enumerate() {
            for &(b, eb) in &adj[x + 1..] {
                let w = ea.weight.checked_add(eb.weight).expect(
                    "augmenting edge weight overflows u32: input weights are too large \
                     (shortest-path lengths must fit in u32 during construction)",
                );
                work.upsert_edge_min(a, b, w, v);
            }
        }
        peel_adj[v as usize] = adj
            .into_iter()
            .map(|(to, e)| PeelEdge {
                to,
                weight: e.weight,
                via: e.via,
            })
            .collect();
    }
}

/// Test/diagnostic helper: checks the vertex-independence property of
/// Definition 1 directly against the original graph for level 1, and
/// against the archived peel adjacency for all levels (no `L_i` member may
/// list another `L_i` member among its peel-time neighbors).
pub fn check_independence(h: &VertexHierarchy) -> Result<(), String> {
    for (idx, li) in h.levels().iter().enumerate() {
        for &v in li {
            for e in h.peel_adj(v) {
                if h.level_of(e.to) == idx as u32 + 1 {
                    return Err(format!(
                        "independence violated at level {}: edge ({v}, {})",
                        idx + 1,
                        e.to
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use islabel_graph::adjacency::NO_VIA;
    use islabel_graph::generators::{erdos_renyi_gnm, WeightModel};
    use islabel_graph::GraphBuilder;

    /// The 9-vertex graph of the paper's Figure 1 (a=0 .. i=8); every edge
    /// has weight 1 except (e, f) with weight 3.
    pub(crate) fn paper_graph() -> CsrGraph {
        let mut b = GraphBuilder::new(9);
        for (u, v, w) in [
            (0, 1, 1), // a-b
            (1, 2, 1), // b-c
            (1, 4, 1), // b-e
            (0, 4, 1), // a-e
            (3, 4, 1), // d-e
            (4, 5, 3), // e-f
            (4, 8, 1), // e-i
            (5, 7, 1), // f-h
            (6, 7, 1), // g-h
            (3, 6, 1), // d-g
        ] {
            b.add_edge(u, v, w);
        }
        b.build()
    }

    /// The paper's level assignment: L1={c,f,i}, L2={b,d,h}, L3={e}, L4={a},
    /// L5={g}.
    pub(crate) fn paper_hierarchy() -> VertexHierarchy {
        VertexHierarchy::build_with_forced_levels(
            &paper_graph(),
            &[vec![2, 5, 8], vec![1, 3, 7], vec![4], vec![0], vec![6]],
        )
    }

    #[test]
    fn paper_example_levels_and_augmenting_edges() {
        let h = paper_hierarchy();
        assert_eq!(h.k(), 6);
        // ℓ: c,f,i = 1; b,d,h = 2; e = 3; a = 4; g = 5.
        assert_eq!(h.level_of(2), 1);
        assert_eq!(h.level_of(5), 1);
        assert_eq!(h.level_of(8), 1);
        assert_eq!(h.level_of(1), 2);
        assert_eq!(h.level_of(3), 2);
        assert_eq!(h.level_of(7), 2);
        assert_eq!(h.level_of(4), 3);
        assert_eq!(h.level_of(0), 4);
        assert_eq!(h.level_of(6), 5);
        assert_eq!(h.num_gk_vertices(), 0); // full hierarchy: G_6 is empty

        // ADJ(L1): f's peel adjacency is e (w=3, original) and h (w=1).
        let f = h.peel_adj(5);
        assert_eq!(f.len(), 2);
        assert_eq!(
            f[0],
            PeelEdge {
                to: 4,
                weight: 3,
                via: NO_VIA
            }
        );
        assert_eq!(
            f[1],
            PeelEdge {
                to: 7,
                weight: 1,
                via: NO_VIA
            }
        );

        // In G2, h's adjacency must contain the augmenting edge (h, e) of
        // weight 4 created by peeling f (paper: "Edge (e, h) is also added").
        let hh = h.peel_adj(7);
        assert_eq!(hh.len(), 2);
        assert_eq!(
            hh[0],
            PeelEdge {
                to: 4,
                weight: 4,
                via: 5
            }
        ); // e via f
        assert_eq!(
            hh[1],
            PeelEdge {
                to: 6,
                weight: 1,
                via: NO_VIA
            }
        ); // g

        // In G3, e's adjacency is a (w=1, the original edge survives because
        // 1 < the 2-hop repair of weight 2) and g (w=2, augmenting via d).
        let e = h.peel_adj(4);
        assert_eq!(e.len(), 2);
        assert_eq!(
            e[0],
            PeelEdge {
                to: 0,
                weight: 1,
                via: NO_VIA
            }
        );
        assert_eq!(
            e[1],
            PeelEdge {
                to: 6,
                weight: 2,
                via: 3
            }
        );

        // G4 is the single edge (a, g) of weight 3 via e.
        let a = h.peel_adj(0);
        assert_eq!(a.len(), 1);
        assert_eq!(
            a[0],
            PeelEdge {
                to: 6,
                weight: 3,
                via: 4
            }
        );

        // G5 = {g} with no edges.
        assert!(h.peel_adj(6).is_empty());

        check_independence(&h).unwrap();
    }

    #[test]
    fn greedy_build_on_paper_graph() {
        // Greedy picks different level sets than the worked example but must
        // still satisfy every hierarchy invariant.
        let h = VertexHierarchy::build(&paper_graph(), &BuildConfig::full());
        check_independence(&h).unwrap();
        assert_eq!(h.num_gk_vertices(), 0);
        // Every vertex has a level, and level sets partition the vertices.
        let total: usize = h.levels().iter().map(|l| l.len()).sum();
        assert_eq!(total, 9);
    }

    #[test]
    fn sigma_threshold_keeps_residual_graph() {
        // Peeling a large clique removes one vertex per level while the
        // rest stays complete, so the size ratio (n−1+C(n−1,2))/(n+C(n,2))
        // exceeds 0.95 for n ≥ 41 and σ = 0.95 stops immediately with a
        // non-trivial G_k.
        let n = 50u32;
        let mut b = GraphBuilder::new(n as usize);
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(u, v, 1);
            }
        }
        let g = b.build();
        let h = VertexHierarchy::build(&g, &BuildConfig::sigma(0.95));
        assert_eq!(h.k(), 2);
        assert_eq!(h.num_gk_vertices(), n as usize - 1);
        // G_k stays a clique among survivors.
        let m = h.num_gk_vertices();
        assert_eq!(h.num_gk_edges(), m * (m - 1) / 2);
    }

    #[test]
    fn fixed_k_peels_exactly_k_minus_1_levels() {
        let g = erdos_renyi_gnm(200, 400, WeightModel::Unit, 3);
        let h = VertexHierarchy::build(&g, &BuildConfig::fixed_k(4));
        assert_eq!(h.k(), 4);
        assert_eq!(h.levels().len(), 3);
        check_independence(&h).unwrap();
        // Levels + G_k partition the vertex set.
        let peeled: usize = h.levels().iter().map(|l| l.len()).sum();
        assert_eq!(peeled + h.num_gk_vertices(), 200);
    }

    #[test]
    fn fixed_k_clamps_when_graph_empties() {
        // A tiny path graph empties before k = 50.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        let h = VertexHierarchy::build(&b.build(), &BuildConfig::fixed_k(50));
        assert!(h.k() < 50);
        assert_eq!(h.num_gk_vertices(), 0);
    }

    #[test]
    fn full_hierarchy_empties_graph() {
        let g = erdos_renyi_gnm(300, 900, WeightModel::UniformRange(1, 5), 7);
        let h = VertexHierarchy::build(&g, &BuildConfig::full());
        assert_eq!(h.num_gk_vertices(), 0);
        assert_eq!(h.num_gk_edges(), 0);
        check_independence(&h).unwrap();
    }

    #[test]
    fn peel_adj_neighbors_are_strictly_higher_level() {
        let g = erdos_renyi_gnm(400, 1200, WeightModel::Unit, 11);
        let h = VertexHierarchy::build(&g, &BuildConfig::sigma(0.95));
        for v in g.vertices() {
            for e in h.peel_adj(v) {
                assert!(
                    h.level_of(e.to) > h.level_of(v),
                    "peel edge ({v}, {}) does not ascend levels",
                    e.to
                );
            }
        }
    }

    #[test]
    fn distance_preservation_level_by_level() {
        // Lemma 2: reconstruct each G_i and check sampled pairwise distances
        // against the original graph with plain Dijkstra.
        let g = erdos_renyi_gnm(60, 150, WeightModel::UniformRange(1, 4), 5);
        let h = VertexHierarchy::build(&g, &BuildConfig::full());

        // Rebuild each level graph by replaying the peel.
        let mut work = AdjacencyGraph::from_csr(&g);
        for li in h.levels() {
            // Check: distances among present vertices equal those in G.
            let snapshot = work.to_csr();
            let present: Vec<VertexId> = work.present_vertices().collect();
            for (idx, &s) in present.iter().enumerate().step_by(7) {
                let dist_g = crate::reference::dijkstra_all(&g, s);
                let dist_i = crate::reference::dijkstra_all(&snapshot, s);
                for &t in present.iter().skip(idx).step_by(5) {
                    assert_eq!(
                        dist_i[t as usize], dist_g[t as usize],
                        "distance ({s}, {t}) not preserved"
                    );
                }
            }
            for &v in li {
                let adj = work.remove_vertex(v);
                for (x, &(a, ea)) in adj.iter().enumerate() {
                    for &(b, eb) in &adj[x + 1..] {
                        work.upsert_edge_min(a, b, ea.weight + eb.weight, v);
                    }
                }
            }
        }
    }

    #[test]
    fn strategies_produce_valid_hierarchies() {
        let g = erdos_renyi_gnm(150, 400, WeightModel::Unit, 9);
        for strategy in [
            IsStrategy::MinDegreeGreedy,
            IsStrategy::MaxDegreeGreedy,
            IsStrategy::Random(42),
        ] {
            let cfg = BuildConfig {
                is_strategy: strategy,
                ..BuildConfig::full()
            };
            let h = VertexHierarchy::build(&g, &cfg);
            check_independence(&h).unwrap();
            let peeled: usize = h.levels().iter().map(|l| l.len()).sum();
            assert_eq!(peeled, 150, "{strategy:?}");
        }
    }

    #[test]
    fn random_strategy_is_seed_deterministic() {
        let g = erdos_renyi_gnm(100, 250, WeightModel::Unit, 2);
        let cfg = BuildConfig {
            is_strategy: IsStrategy::Random(7),
            ..BuildConfig::full()
        };
        let a = VertexHierarchy::build(&g, &cfg);
        let b = VertexHierarchy::build(&g, &cfg);
        assert_eq!(a.levels(), b.levels());
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let h = VertexHierarchy::build(&CsrGraph::empty(0), &BuildConfig::default());
        assert_eq!(h.universe(), 0);

        let h = VertexHierarchy::build(&CsrGraph::empty(1), &BuildConfig::default());
        assert_eq!(h.level_of(0), 1);
        assert_eq!(h.num_gk_vertices(), 0);
    }

    #[test]
    fn min_degree_greedy_prefers_low_degree() {
        // Star graph: the center has degree n-1; greedy must peel all leaves
        // at level 1 and leave the center.
        let mut b = GraphBuilder::new(6);
        for v in 1..6u32 {
            b.add_edge(0, v, 1);
        }
        let h = VertexHierarchy::build(&b.build(), &BuildConfig::full());
        assert_eq!(h.levels()[0], vec![1, 2, 3, 4, 5]);
        assert_eq!(h.level_of(0), 2);
    }

    #[test]
    #[should_panic(expected = "not an independent set")]
    fn forced_levels_reject_dependent_sets() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        VertexHierarchy::build_with_forced_levels(&b.build(), &[vec![0, 1]]);
    }
}
