//! The dense search kernel: compact `G_k` ids, generation-stamped flat
//! arrays, and an indexed 4-ary min-heap with decrease-key.
//!
//! The paper's query cost is dominated by "Time (b)" — the label-seeded
//! bidirectional Dijkstra over the residual graph `G_k` (Section 5.2,
//! Algorithm 1). The original kernel in [`crate::query`] runs that search
//! over hash maps keyed by global vertex ids and lazy-deletion binary
//! heaps; correct, but every relaxation pays a hash and every pop may wade
//! through stale entries. Hub-labeling systems (PLL and its successors) get
//! their speed from flat, cache-friendly state instead, and this module
//! brings the `G_k` search to that standard:
//!
//! * [`GkIdMap`] remaps the (typically sparse) `G_k` vertex set to compact
//!   ids `0..|G_k|`, built **once per index**. Label seeds translate with
//!   one array read, and every per-vertex search array shrinks from
//!   universe-sized to `|G_k|`-sized.
//! * [`DenseCsr`] stores `G_k`'s adjacency over compact ids in flat CSR
//!   arrays, so the relax loop is a pure sequential scan.
//! * [`StampedSlab`] gives O(1) *whole-array reset*: each slot carries a
//!   generation stamp, and "clearing" is one epoch increment — no per-query
//!   `memset`, no hashing, no allocation.
//! * [`IndexedHeap`] is a 4-ary min-heap with a stamped position index and
//!   true decrease-key: at most one live entry per vertex, so the
//!   `clean_top` stale-entry filtering of the lazy-deletion kernel
//!   disappears entirely, and heap capacity is bounded by `|G_k|`.
//! * [`DenseScratch`] bundles the per-search state; a session allocates it
//!   once and every later query runs **allocation-free** (asserted by the
//!   `alloc_free` integration test).
//!
//! [`dense_bi_dijkstra`] is a drop-in replacement for the hashmap kernel:
//! it settles the same vertices in the same order (ties broken by vertex
//! id, exactly like `BinaryHeap<Reverse<(Dist, VertexId)>>`) and returns
//! bit-identical `(dist, meeting, settled)` outcomes — the
//! `dense_kernel` conformance suite holds the two kernels equal across
//! graphs, engines, and dynamic updates.
//!
//! The kernel functions here are an **alloc-free zone**: `islabel-lint`
//! (see `lint.toml` at the repo root) rejects any allocating construct
//! inside them, so all scratch must come from the reusable state below.

use crate::query::{Meeting, SearchOutcome};
use islabel_graph::{CsrGraph, Dist, VertexId, Weight, INF};

/// Sentinel for "vertex is not in `G_k`" in [`GkIdMap`]'s forward array.
pub const NO_DENSE: u32 = u32::MAX;

/// Read access to a dense adjacency over compact ids — what the kernel
/// actually requires of its graph. Implemented by the pristine [`DenseCsr`]
/// and by [`PatchedDense`] (base CSR plus a dynamic-update
/// [`DensePatch`]), so the same allocation-free search serves both.
pub trait DenseView {
    /// Number of compact vertices (the dense id range).
    fn num_vertices(&self) -> usize;

    /// Iterates `(dense_neighbor, weight)` pairs of compact vertex `d`.
    fn edges_of(&self, d: u32) -> impl Iterator<Item = (u32, Weight)> + '_;

    /// Best-effort hint that `d`'s adjacency is about to be iterated:
    /// implementations issue a software prefetch for the row's first
    /// cache line so the miss overlaps with the work before the
    /// iteration. Never affects results; the default is a no-op.
    #[inline]
    fn prefetch_row(&self, _d: u32) {}
}

/// A bidirectional mapping between global vertex ids and compact `G_k` ids
/// `0..|G_k|`, built once per index.
///
/// Because `G_k` members are enumerated in ascending global order, dense
/// ids preserve the relative order of global ids — which is what lets the
/// dense kernel reproduce the hashmap kernel's id-based tie-breaking
/// exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GkIdMap {
    /// `dense_of[global]` is the compact id, or [`NO_DENSE`].
    dense_of: Vec<u32>,
    /// `global_of[dense]` is the original vertex id.
    global_of: Vec<VertexId>,
}

impl GkIdMap {
    /// Builds the map for a `universe`-vertex index whose `G_k` members are
    /// `members` (ascending global ids).
    pub fn build(universe: usize, members: &[VertexId]) -> Self {
        debug_assert!(members.windows(2).all(|w| w[0] < w[1]));
        let mut dense_of = vec![NO_DENSE; universe];
        for (d, &v) in members.iter().enumerate() {
            dense_of[v as usize] = d as u32;
        }
        Self {
            dense_of,
            global_of: members.to_vec(),
        }
    }

    /// Compact id of `v`, or `None` when `v` is not a `G_k` vertex. This is
    /// simultaneously the `G_k` membership test the seed filter uses.
    #[inline]
    pub fn dense(&self, v: VertexId) -> Option<u32> {
        let d = self.dense_of[v as usize];
        (d != NO_DENSE).then_some(d)
    }

    /// Global id of compact id `d`.
    #[inline]
    pub fn global(&self, d: u32) -> VertexId {
        self.global_of[d as usize]
    }

    /// Number of `G_k` vertices (the compact id range).
    #[inline]
    pub fn len(&self) -> usize {
        self.global_of.len()
    }

    /// Whether `G_k` is empty.
    pub fn is_empty(&self) -> bool {
        self.global_of.is_empty()
    }

    /// Resident bytes of both direction arrays.
    pub fn memory_bytes(&self) -> usize {
        self.dense_of.len() * std::mem::size_of::<u32>()
            + self.global_of.len() * std::mem::size_of::<VertexId>()
    }

    /// The raw forward array (`dense_of[global]`, [`NO_DENSE`] sentinel),
    /// serialized verbatim as the v3 artifact's `GK_DENSE_OF` section.
    pub(crate) fn dense_of_raw(&self) -> &[u32] {
        &self.dense_of
    }

    /// The raw reverse array (`global_of[dense]`), serialized verbatim as
    /// the v3 artifact's `GK_GLOBAL_OF` section.
    pub(crate) fn global_of_raw(&self) -> &[VertexId] {
        &self.global_of
    }
}

/// `G_k` adjacency over compact ids in flat CSR arrays.
///
/// The base residual graph spans the full id universe with peeled vertices
/// isolated; remapping to `0..|G_k|` packs the arrays the relax loop
/// actually touches into contiguous, cache-dense memory.
///
/// Edges are stored **interleaved** as `(neighbor, weight)` pairs rather
/// than split target/weight arrays: the relax loop always consumes both
/// halves of an entry together, and interleaving them means a short row
/// (grid graphs average degree 4 = one 32-byte span) costs one cache
/// line instead of two. `query_hotpath`'s `layout_comparison` section
/// measures this layout against the split one per PR; the on-disk v3
/// format keeps split sections (a compatibility surface), and the writer
/// de-interleaves on save.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseCsr {
    offsets: Vec<u32>,
    entries: Vec<(u32, Weight)>,
}

impl DenseCsr {
    /// Builds from an edge source: for each of the `m` compact vertices,
    /// `edges(dense_id)` yields `(dense_neighbor, weight)` pairs.
    pub fn build<I: Iterator<Item = (u32, Weight)>>(
        m: usize,
        mut edges: impl FnMut(u32) -> I,
    ) -> Self {
        let mut offsets = Vec::with_capacity(m + 1);
        let mut entries = Vec::new();
        offsets.push(0);
        for d in 0..m as u32 {
            entries.extend(edges(d));
            assert!(
                entries.len() <= u32::MAX as usize,
                "G_k adjacency exceeds u32 offsets; widen DenseCsr::offsets"
            );
            offsets.push(entries.len() as u32);
        }
        Self { offsets, entries }
    }

    /// Compacts the undirected residual graph `gk` (over the full universe)
    /// through `ids`.
    pub fn from_gk(gk: &CsrGraph, ids: &GkIdMap) -> Self {
        Self::build(ids.len(), |d| {
            gk.edges(ids.global(d)).map(|(u, w)| {
                let du = ids.dense(u).expect("G_k edge endpoint outside G_k");
                (du, w)
            })
        })
    }

    /// Number of compact vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored (directed) adjacency entries.
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// Iterates `(dense_neighbor, weight)` pairs of compact vertex `d`.
    #[inline]
    pub fn edges_of(&self, d: u32) -> impl Iterator<Item = (u32, Weight)> + '_ {
        let lo = self.offsets[d as usize] as usize;
        let hi = self.offsets[d as usize + 1] as usize;
        self.entries[lo..hi].iter().copied()
    }

    /// Resident bytes of the CSR arrays.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u32>()
            + self.entries.len() * std::mem::size_of::<(u32, Weight)>()
    }

    /// The raw offsets array, serialized verbatim as the v3 artifact's
    /// `GK_OFFSETS` section.
    pub(crate) fn offsets_raw(&self) -> &[u32] {
        &self.offsets
    }

    /// The raw interleaved `(neighbor, weight)` entries; the v3 writer
    /// de-interleaves these into the split `GK_TARGETS` / `GK_WEIGHTS`
    /// sections (the on-disk layout is a compatibility surface and stays
    /// split regardless of the in-memory choice).
    pub(crate) fn entries_raw(&self) -> &[(u32, Weight)] {
        &self.entries
    }
}

impl DenseView for DenseCsr {
    fn num_vertices(&self) -> usize {
        DenseCsr::num_vertices(self)
    }

    fn edges_of(&self, d: u32) -> impl Iterator<Item = (u32, Weight)> + '_ {
        DenseCsr::edges_of(self, d)
    }

    #[inline]
    fn prefetch_row(&self, d: u32) {
        if let Some(&lo) = self.offsets.get(d as usize) {
            crate::kernel::prefetch_index(&self.entries, lo as usize);
        }
    }
}

/// Dynamic-update deltas remapped into compact-id space: an append-only
/// *tail* of dense ids for inserted vertices, a tombstone bitmap for
/// deletions, and per-vertex extra adjacency — what lets a moderately
/// updated index stay on the zero-alloc dense kernel instead of falling
/// back to the hashmap kernel.
///
/// Tail ids extend the base mapping order-preservingly: inserted global id
/// `base_n + j` becomes dense id `base_len + j`, so the combined dense id
/// order is still the global id order and the heap tie-breaking of
/// [`dense_bi_dijkstra`] stays identical to the hashmap kernel's.
#[derive(Debug, Clone, Default)]
pub struct DensePatch {
    /// Number of base compact ids; tail ids start here.
    base_len: u32,
    /// Number of appended (inserted-vertex) ids.
    tail: u32,
    /// Tombstone bitmap over `base_len + tail` dense ids.
    dead: Vec<u64>,
    /// Extra adjacency per dense id, push order preserved.
    extra: Vec<Vec<(u32, Weight)>>,
}

impl DensePatch {
    /// An empty patch over `base_len` base ids plus `tail` appended ids.
    pub fn new(base_len: usize, tail: usize) -> Self {
        let m = base_len + tail;
        Self {
            base_len: base_len as u32,
            tail: tail as u32,
            dead: vec![0u64; m.div_ceil(64)],
            extra: vec![Vec::new(); m],
        }
    }

    /// Total dense id range (base plus tail).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        (self.base_len + self.tail) as usize
    }

    /// Number of appended (inserted-vertex) dense ids.
    pub fn tail(&self) -> u32 {
        self.tail
    }

    /// Tombstones dense id `d`.
    pub fn mark_dead(&mut self, d: u32) {
        self.dead[(d / 64) as usize] |= 1u64 << (d % 64);
    }

    /// Whether dense id `d` is tombstoned.
    #[inline]
    pub fn is_dead(&self, d: u32) -> bool {
        (self.dead[(d / 64) as usize] >> (d % 64)) & 1 == 1
    }

    /// Appends an extra (directed) adjacency entry to `from`'s list.
    pub fn push_edge(&mut self, from: u32, to: u32, w: Weight) {
        self.extra[from as usize].push((to, w));
    }

    /// Longest extra adjacency list (used to pre-size seed buffers).
    pub fn max_extra_len(&self) -> usize {
        self.extra.iter().map(Vec::len).max().unwrap_or(0)
    }

    #[inline]
    fn extra_of(&self, d: u32) -> &[(u32, Weight)] {
        &self.extra[d as usize]
    }
}

/// A [`DenseView`] of the base compact CSR with a [`DensePatch`] applied:
/// a vertex's base adjacency first, then the patch's extra adjacency in
/// push order, with tombstoned endpoints filtered — the dense mirror,
/// edge for edge and in the same iteration order, of the sparse overlay
/// residual view the hashmap fallback searches.
#[derive(Debug, Clone, Copy)]
pub struct PatchedDense<'a> {
    /// The pristine base adjacency (dense ids `0..base_len`).
    pub base: &'a DenseCsr,
    /// The dynamic-update deltas.
    pub patch: &'a DensePatch,
}

impl DenseView for PatchedDense<'_> {
    fn num_vertices(&self) -> usize {
        self.patch.num_vertices()
    }

    fn edges_of(&self, d: u32) -> impl Iterator<Item = (u32, Weight)> + '_ {
        let alive = !self.patch.is_dead(d);
        let base = (alive && d < self.patch.base_len)
            .then(|| self.base.edges_of(d))
            .into_iter()
            .flatten();
        let extra = alive
            .then(|| self.patch.extra_of(d).iter().copied())
            .into_iter()
            .flatten();
        base.chain(extra).filter(|&(u, _)| !self.patch.is_dead(u))
    }

    #[inline]
    fn prefetch_row(&self, d: u32) {
        if d < self.patch.base_len {
            self.base.prefetch_row(d);
        }
    }
}

/// The dense search substrate of one index: the compact id map plus the
/// remapped residual adjacency (and, for directed indexes, its transpose).
#[derive(Debug, Clone)]
pub struct DenseGk {
    ids: GkIdMap,
    fwd: DenseCsr,
    /// Transposed arcs for the reverse frontier; `None` for undirected
    /// graphs (the forward CSR is symmetric).
    rev: Option<DenseCsr>,
}

impl DenseGk {
    /// Builds the undirected substrate from a full-universe residual graph.
    pub fn undirected(universe: usize, members: &[VertexId], gk: &CsrGraph) -> Self {
        let ids = GkIdMap::build(universe, members);
        let fwd = DenseCsr::from_gk(gk, &ids);
        Self {
            ids,
            fwd,
            rev: None,
        }
    }

    /// Builds a directed substrate from pre-remapped forward/reverse CSRs.
    pub fn directed(ids: GkIdMap, fwd: DenseCsr, rev: DenseCsr) -> Self {
        Self {
            ids,
            fwd,
            rev: Some(rev),
        }
    }

    /// The compact id map.
    #[inline]
    pub fn ids(&self) -> &GkIdMap {
        &self.ids
    }

    /// Forward adjacency over compact ids.
    #[inline]
    pub fn fwd(&self) -> &DenseCsr {
        &self.fwd
    }

    /// Reverse adjacency (the forward CSR itself when undirected).
    #[inline]
    pub fn rev(&self) -> &DenseCsr {
        self.rev.as_ref().unwrap_or(&self.fwd)
    }

    /// Resident bytes of ids and adjacency.
    pub fn memory_bytes(&self) -> usize {
        self.ids.memory_bytes()
            + self.fwd.memory_bytes()
            + self.rev.as_ref().map_or(0, DenseCsr::memory_bytes)
    }
}

/// A flat array with O(1) whole-array reset via generation stamps.
///
/// Each slot pairs a value with the epoch it was written in; a slot "holds"
/// a value only when its stamp equals the current epoch, so
/// [`reset`](StampedSlab::reset) is a single counter increment — no
/// per-query clearing, hashing, or allocation. On the (rare) epoch-counter
/// wrap the stamps are zeroed once, keeping correctness unconditional.
#[derive(Debug, Clone)]
pub struct StampedSlab<T> {
    vals: Vec<T>,
    stamps: Vec<u32>,
    epoch: u32,
}

impl<T: Copy + Default> StampedSlab<T> {
    /// A slab of `n` unset slots.
    pub fn new(n: usize) -> Self {
        Self {
            vals: vec![T::default(); n],
            stamps: vec![0; n],
            epoch: 1,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// Whether the slab has no slots.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Unsets every slot in O(1) by bumping the epoch.
    #[inline]
    pub fn reset(&mut self) {
        if self.epoch == u32::MAX {
            self.stamps.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// The value of slot `i`, if written since the last reset.
    #[inline]
    pub fn get(&self, i: u32) -> Option<T> {
        (self.stamps[i as usize] == self.epoch).then(|| self.vals[i as usize])
    }

    /// Whether slot `i` was written since the last reset.
    #[inline]
    pub fn contains(&self, i: u32) -> bool {
        self.stamps[i as usize] == self.epoch
    }

    /// Writes slot `i`.
    #[inline]
    pub fn set(&mut self, i: u32, v: T) {
        self.vals[i as usize] = v;
        self.stamps[i as usize] = self.epoch;
    }

    /// Best-effort prefetch of slot `i`'s stamp and value lines, so a
    /// `get`/`set` a few dozen cycles later finds them resident. The
    /// arrays stay split (stamp-only probes of dead slots pack 16 stamps
    /// per line), so both lines are hinted.
    #[inline]
    pub fn prefetch(&self, i: u32) {
        crate::kernel::prefetch_index(&self.stamps, i as usize);
        crate::kernel::prefetch_index(&self.vals, i as usize);
    }
}

/// An indexed 4-ary min-heap with decrease-key over compact vertex ids.
///
/// Entries are `(key, vertex)` ordered by `(key, vertex)` — the same total
/// order `BinaryHeap<Reverse<(Dist, VertexId)>>` pops in, which keeps the
/// dense kernel's settle order (and therefore its `settled` counts and
/// meeting vertices) bit-identical to the lazy-deletion kernel's. Unlike
/// lazy deletion there is **at most one live entry per vertex**: a
/// relaxation either inserts or sifts the existing entry up, so the heap
/// never exceeds `|G_k|` slots and `pop` never revisits stale state.
///
/// 4-ary layout: children of slot `i` are `4i + 1 ..= 4i + 4`. A wider node
/// trades deeper sift-downs for fewer cache-missing levels, the standard
/// choice for Dijkstra workloads.
///
/// Deliberately not `Clone`: `Vec::clone` copies length, not capacity, so
/// a cloned heap would silently lose the pre-reservation this type's
/// allocation-free contract rests on. Build a fresh one with
/// [`IndexedHeap::new`] instead.
#[derive(Debug)]
pub struct IndexedHeap {
    /// Heap-ordered `(key, vertex)` pairs.
    slots: Vec<(Dist, u32)>,
    /// `pos.get(v)` is `v`'s slot index while `v` is queued this epoch.
    pos: StampedSlab<u32>,
}

impl IndexedHeap {
    /// An empty heap addressing vertices `0..n`, with slot storage
    /// pre-reserved so pushes never reallocate (at most one live entry per
    /// vertex bounds the heap by `n`).
    pub fn new(n: usize) -> Self {
        Self {
            slots: Vec::with_capacity(n),
            pos: StampedSlab::new(n),
        }
    }

    /// Number of queued vertices.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no vertex is queued.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Empties the heap in O(1) (epoch bump + length reset).
    #[inline]
    pub fn clear(&mut self) {
        self.slots.clear();
        self.pos.reset();
    }

    /// The minimum key, or [`INF`] when empty — the `min(FQ)` / `min(RQ)`
    /// read of Algorithm 1's cutoff, with no stale-entry cleanup needed.
    #[inline]
    pub fn peek_key(&self) -> Dist {
        self.slots.first().map_or(INF, |&(k, _)| k)
    }

    /// The minimum `(key, vertex)` without popping — what the search
    /// uses to prefetch the likely-next settle's adjacency row while the
    /// current row is relaxed.
    #[inline]
    pub fn peek(&self) -> Option<(Dist, u32)> {
        self.slots.first().copied()
    }

    /// Best-effort prefetch of `v`'s position-slab lines ahead of a
    /// `push_or_decrease`.
    #[inline]
    pub fn prefetch_pos(&self, v: u32) {
        self.pos.prefetch(v);
    }

    /// Pops the minimum `(key, vertex)`.
    pub fn pop(&mut self) -> Option<(Dist, u32)> {
        let top = *self.slots.first()?;
        let last = self.slots.pop().expect("non-empty");
        if !self.slots.is_empty() {
            self.slots[0] = last;
            self.pos.set(last.1, 0);
            self.sift_down(0);
        }
        // Leave `top`'s position stamped-but-dangling: `contains` is only
        // meaningful for queued vertices, and the search never re-pushes a
        // settled vertex (its tentative distance is already final).
        Some(top)
    }

    /// Inserts `v` with `key`, or lowers `v`'s existing key if `key`
    /// improves it; returns whether the heap changed. A `key` at or above
    /// the queued one is ignored (the caller's relaxation test should make
    /// that unreachable for Dijkstra, but the heap stays safe regardless).
    pub fn push_or_decrease(&mut self, v: u32, key: Dist) -> bool {
        match self.pos.get(v) {
            Some(slot)
                if (slot as usize) < self.slots.len() && self.slots[slot as usize].1 == v =>
            {
                if key < self.slots[slot as usize].0 {
                    self.slots[slot as usize].0 = key;
                    self.sift_up(slot as usize);
                    true
                } else {
                    false
                }
            }
            _ => {
                let slot = self.slots.len();
                self.slots.push((key, v));
                self.pos.set(v, slot as u32);
                self.sift_up(slot);
                true
            }
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        let entry = self.slots[i];
        while i > 0 {
            let parent = (i - 1) / 4;
            if self.slots[parent] <= entry {
                break;
            }
            self.slots[i] = self.slots[parent];
            self.pos.set(self.slots[i].1, i as u32);
            i = parent;
        }
        self.slots[i] = entry;
        self.pos.set(entry.1, i as u32);
    }

    fn sift_down(&mut self, mut i: usize) {
        let entry = self.slots[i];
        let n = self.slots.len();
        loop {
            let first = 4 * i + 1;
            if first >= n {
                break;
            }
            let mut best = first;
            let last = (first + 4).min(n);
            for c in (first + 1)..last {
                if self.slots[c] < self.slots[best] {
                    best = c;
                }
            }
            if entry <= self.slots[best] {
                break;
            }
            self.slots[i] = self.slots[best];
            self.pos.set(self.slots[i].1, i as u32);
            i = best;
        }
        self.slots[i] = entry;
        self.pos.set(entry.1, i as u32);
    }
}

/// Reusable workspace of one dense bidirectional search: stamped tentative
/// distances, settled markers, and the two indexed frontiers.
///
/// A session sizes this once against `|G_k|` and every later search resets
/// it in O(1); [`dense_bi_dijkstra`] performs no heap allocation. Not
/// `Clone` (see [`IndexedHeap`]) — each thread builds its own with
/// [`DenseScratch::new`].
#[derive(Debug)]
pub struct DenseScratch {
    dist_f: StampedSlab<Dist>,
    dist_r: StampedSlab<Dist>,
    settled_f: StampedSlab<Dist>,
    settled_r: StampedSlab<Dist>,
    fq: IndexedHeap,
    rq: IndexedHeap,
}

impl DenseScratch {
    /// A workspace for searches over `m = |G_k|` compact vertices; all
    /// arrays and both heaps are fully pre-sized.
    pub fn new(m: usize) -> Self {
        Self {
            dist_f: StampedSlab::new(m),
            dist_r: StampedSlab::new(m),
            settled_f: StampedSlab::new(m),
            settled_r: StampedSlab::new(m),
            fq: IndexedHeap::new(m),
            rq: IndexedHeap::new(m),
        }
    }

    /// Number of compact vertices this scratch is sized for.
    pub fn capacity(&self) -> usize {
        self.dist_f.len()
    }

    fn reset(&mut self) {
        self.dist_f.reset();
        self.dist_r.reset();
        self.settled_f.reset();
        self.settled_r.reset();
        self.fq.clear();
        self.rq.clear();
    }
}

/// Algorithm 1 on the dense substrate: label-seeded bidirectional Dijkstra
/// over compact ids, allocation-free inside `scratch`.
///
/// `fseeds` / `rseeds` carry **compact** ids (map label ancestors through
/// [`GkIdMap::dense`]); the returned [`Meeting::Search`] vertex is likewise
/// compact — callers map it back with [`GkIdMap::global`]. Semantics match
/// [`crate::query::label_bi_dijkstra_directed_in`] exactly, including the
/// settle-time µ tightening and the `min(FQ) + min(RQ) ≥ µ` cutoff; the
/// conformance suite asserts bit-identical `(dist, meeting, settled)`
/// against the hashmap kernel. Generic over [`DenseView`], so the same
/// code path serves the pristine [`DenseCsr`] and the dynamic-update
/// [`PatchedDense`].
pub fn dense_bi_dijkstra<G: DenseView>(
    fwd: &G,
    rev: &G,
    fseeds: &[(u32, Dist)],
    rseeds: &[(u32, Dist)],
    mu0: Dist,
    mu0_witness: Option<VertexId>,
    scratch: &mut DenseScratch,
) -> SearchOutcome {
    debug_assert!(scratch.capacity() >= fwd.num_vertices());
    scratch.reset();
    let mut mu = mu0;
    // The witness is a *global* id (a label ancestor that may not be in
    // G_k); it is returned verbatim when Equation 1 wins.
    let mut meeting = match mu0_witness {
        Some(w) if mu < INF => Meeting::Labels(w),
        _ => Meeting::None,
    };

    let DenseScratch {
        dist_f,
        dist_r,
        settled_f,
        settled_r,
        fq,
        rq,
    } = scratch;

    for &(v, d) in fseeds {
        if dist_f.get(v).is_none_or(|cur| d < cur) {
            dist_f.set(v, d);
            fq.push_or_decrease(v, d);
        }
    }
    for &(v, d) in rseeds {
        if dist_r.get(v).is_none_or(|cur| d < cur) {
            dist_r.set(v, d);
            rq.push_or_decrease(v, d);
        }
    }

    let mut settled = 0usize;
    loop {
        let min_f = fq.peek_key();
        let min_r = rq.peek_key();
        if min_f == INF || min_r == INF {
            break;
        }
        if min_f.saturating_add(min_r) >= mu {
            break;
        }

        // Settle the cheaper frontier (ties to forward, like the sparse
        // kernel's `min_f <= min_r`).
        let forward = min_f <= min_r;
        let (g, q, dist_x, settled_x, settled_y, dist_y) = if forward {
            (
                fwd,
                &mut *fq,
                &mut *dist_f,
                &mut *settled_f,
                &*settled_r,
                &*dist_r,
            )
        } else {
            (
                rev,
                &mut *rq,
                &mut *dist_r,
                &mut *settled_r,
                &*settled_f,
                &*dist_f,
            )
        };
        let (d, v) = q.pop().expect("peek_key returned a finite minimum");
        // While v's row is decoded and relaxed, pull the likely-next
        // settle's adjacency row toward L1 (best-effort: a decrease-key
        // may still reorder the queue before the next pop).
        if let Some((_, next)) = q.peek() {
            g.prefetch_row(next);
        }
        settled_x.set(v, d);
        settled += 1;
        // Settle-time meeting check: any distance on the other side
        // (tentative or settled) closes a real path.
        if let Some(dy) = dist_y.get(v) {
            let cand = d.saturating_add(dy);
            if cand < mu {
                mu = cand;
                meeting = Meeting::Search(v);
            }
        }
        // First pass over the row: hint the per-neighbor slab lines
        // (tentative distance + heap position) so the relax pass's
        // random accesses are already in flight when it reads them.
        for (u, _) in g.edges_of(v) {
            dist_x.prefetch(u);
            q.prefetch_pos(u);
        }
        for (u, w) in g.edges_of(v) {
            let nd = d + w as Dist;
            if dist_x.get(u).is_none_or(|cur| nd < cur) {
                dist_x.set(u, nd);
                q.push_or_decrease(u, nd);
                // Lines 17–18: u already settled from the other direction.
                if let Some(dy) = settled_y.get(u) {
                    let cand = nd.saturating_add(dy);
                    if cand < mu {
                        mu = cand;
                        meeting = Meeting::Search(u);
                    }
                }
            }
        }
    }

    SearchOutcome {
        dist: mu,
        meeting: if mu == INF { Meeting::None } else { meeting },
        settled,
    }
}

/// The full session fast path for one query: Equation 1 via the
/// dispatched kernel ([`crate::kernel::intersect_min_auto`] — the single
/// entry point every engine shares, so no caller can silently stay on
/// the scalar path), label seeds translated to compact ids through
/// `to_dense` (the lookup doubling as the `G_k` membership filter), then
/// [`dense_bi_dijkstra`]. The returned meeting vertex is still compact —
/// callers wanting global ids apply [`globalize_outcome`].
///
/// Shared by the undirected, directed, patched-overlay, and mmap
/// sessions (pass the out-label of `s` and the in-label of `t` for a
/// directed query) so neither the seed handling nor the kernel dispatch
/// can drift between them: pristine heap sessions pass
/// [`GkIdMap::dense`], the mmap session a closure over its mapped
/// `dense_of` section, and the patched session its tail-aware extension
/// of the base map.
///
/// When `trace.enabled`, the phase boundaries (intersect → seed fetch →
/// dense search) are timestamped — four `Instant::now()` reads per
/// query, none inside a loop — and accumulated into `trace` as plain
/// field adds, preserving this function's zero-allocation contract.
#[allow(clippy::too_many_arguments)]
pub fn seeded_search<G: DenseView>(
    ls: crate::label::LabelView<'_>,
    lt: crate::label::LabelView<'_>,
    to_dense: impl Fn(VertexId) -> Option<u32>,
    fwd: &G,
    rev: &G,
    fseeds: &mut Vec<(u32, Dist)>,
    rseeds: &mut Vec<(u32, Dist)>,
    scratch: &mut DenseScratch,
    trace: &mut crate::trace::QueryTrace,
) -> SearchOutcome {
    let t0 = trace.enabled.then(std::time::Instant::now);
    let (mu0, witness) = crate::kernel::intersect_min_auto(ls, lt);
    let t1 = trace.enabled.then(std::time::Instant::now);
    fseeds.clear();
    for (a, d) in ls.iter() {
        if let Some(da) = to_dense(a) {
            fseeds.push((da, d));
        }
    }
    rseeds.clear();
    for (a, d) in lt.iter() {
        if let Some(da) = to_dense(a) {
            rseeds.push((da, d));
        }
    }
    let t2 = trace.enabled.then(std::time::Instant::now);
    let out = dense_bi_dijkstra(fwd, rev, fseeds, rseeds, mu0, witness, scratch);
    if let (Some(t0), Some(t1), Some(t2)) = (t0, t1, t2) {
        let t3 = std::time::Instant::now();
        trace.record_query(
            t1.duration_since(t0).as_nanos() as u64,
            t2.duration_since(t1).as_nanos() as u64,
            t3.duration_since(t2).as_nanos() as u64,
            out.settled as u64,
        );
    }
    out
}

/// Maps a dense search outcome's meeting vertex back to global ids.
pub fn globalize_outcome(outcome: SearchOutcome, ids: &GkIdMap) -> SearchOutcome {
    SearchOutcome {
        meeting: match outcome.meeting {
            Meeting::Search(d) => Meeting::Search(ids.global(d)),
            other => other,
        },
        ..outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[test]
    fn gk_id_map_roundtrip() {
        let map = GkIdMap::build(10, &[1, 4, 7, 9]);
        assert_eq!(map.len(), 4);
        assert_eq!(map.dense(4), Some(1));
        assert_eq!(map.dense(0), None);
        for d in 0..4u32 {
            assert_eq!(map.dense(map.global(d)), Some(d));
        }
        assert!(map.memory_bytes() >= 10 * 4 + 4 * 4);
        assert!(!map.is_empty());
        assert!(GkIdMap::build(3, &[]).is_empty());
    }

    #[test]
    fn stamped_slab_reset_is_logical_clear() {
        let mut s: StampedSlab<u64> = StampedSlab::new(4);
        assert_eq!(s.get(2), None);
        s.set(2, 7);
        assert_eq!(s.get(2), Some(7));
        assert!(s.contains(2));
        s.reset();
        assert_eq!(s.get(2), None);
        assert!(!s.contains(2));
        s.set(2, 9);
        assert_eq!(s.get(2), Some(9));
    }

    #[test]
    fn stamped_slab_epoch_wrap_stays_correct() {
        let mut s: StampedSlab<u32> = StampedSlab::new(2);
        s.set(0, 1);
        // Force the wrap path.
        s.epoch = u32::MAX - 1;
        s.set(1, 5);
        assert_eq!(s.get(1), Some(5));
        s.reset(); // epoch becomes MAX
        s.set(0, 6);
        s.reset(); // wrap: stamps zeroed, epoch back to 1
        assert_eq!(s.get(0), None);
        assert_eq!(s.get(1), None);
        s.set(1, 8);
        assert_eq!(s.get(1), Some(8));
    }

    #[test]
    fn indexed_heap_matches_binary_heap_model() {
        // Deterministic pseudo-random operation stream checked against a
        // lazy-deletion BinaryHeap reference.
        let n = 64u32;
        let mut heap = IndexedHeap::new(n as usize);
        let mut model: BinaryHeap<Reverse<(Dist, u32)>> = BinaryHeap::new();
        let mut best = vec![INF; n as usize];
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..4 {
            heap.clear();
            model.clear();
            best.fill(INF);
            for _ in 0..400 {
                let v = (next() % n as u64) as u32;
                let key = (next() % 1000) as Dist;
                heap.push_or_decrease(v, key);
                if key < best[v as usize] {
                    best[v as usize] = key;
                    model.push(Reverse((key, v)));
                }
            }
            // Drain both; the model needs lazy-deletion cleanup.
            let mut drained = Vec::new();
            while let Some((k, v)) = heap.pop() {
                drained.push((k, v));
            }
            let mut expect = Vec::new();
            let mut settled = vec![false; n as usize];
            while let Some(Reverse((k, v))) = model.pop() {
                if !settled[v as usize] && k == best[v as usize] {
                    settled[v as usize] = true;
                    expect.push((k, v));
                }
            }
            assert_eq!(drained, expect, "round {round}");
            assert!(heap.is_empty());
            assert_eq!(heap.peek_key(), INF);
        }
    }

    #[test]
    fn indexed_heap_decrease_key_reorders() {
        let mut h = IndexedHeap::new(8);
        for (v, k) in [(0u32, 50u64), (1, 40), (2, 30), (3, 20)] {
            assert!(h.push_or_decrease(v, k));
        }
        // Raising a key is a no-op.
        assert!(!h.push_or_decrease(3, 25));
        assert_eq!(h.peek_key(), 20);
        // Decrease 0 below everything.
        assert!(h.push_or_decrease(0, 1));
        assert_eq!(h.pop(), Some((1, 0)));
        assert_eq!(h.pop(), Some((20, 3)));
        assert_eq!(h.pop(), Some((30, 2)));
        assert_eq!(h.pop(), Some((40, 1)));
        assert_eq!(h.pop(), None);
        assert_eq!(h.len(), 0);
    }

    #[test]
    fn indexed_heap_ties_pop_by_vertex_id() {
        let mut h = IndexedHeap::new(8);
        for v in [5u32, 2, 7, 0, 3] {
            h.push_or_decrease(v, 10);
        }
        let order: Vec<u32> = std::iter::from_fn(|| h.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec![0, 2, 3, 5, 7]);
    }

    #[test]
    fn dense_csr_compacts_gk() {
        // Global graph over 6 vertices; members {1, 3, 5} form a path
        // 1 - 3 - 5.
        let mut b = islabel_graph::GraphBuilder::new(6);
        b.add_edge(1, 3, 2);
        b.add_edge(3, 5, 4);
        let gk = b.build();
        let ids = GkIdMap::build(6, &[1, 3, 5]);
        let csr = DenseCsr::from_gk(&gk, &ids);
        assert_eq!(csr.num_vertices(), 3);
        assert_eq!(csr.num_entries(), 4);
        let adj: Vec<(u32, Weight)> = csr.edges_of(1).collect();
        assert_eq!(adj, vec![(0, 2), (2, 4)]);
        assert!(csr.memory_bytes() > 0);
    }

    #[test]
    fn dense_search_plain_point_to_point() {
        let g = islabel_graph::generators::erdos_renyi_gnm(
            60,
            150,
            islabel_graph::generators::WeightModel::UniformRange(1, 5),
            3,
        );
        let members: Vec<VertexId> = g.vertices().collect();
        let dense = DenseGk::undirected(60, &members, &g);
        let mut scratch = DenseScratch::new(dense.ids().len());
        for (s, t) in [(0u32, 59u32), (5, 40), (2, 30)] {
            let out = dense_bi_dijkstra(
                dense.fwd(),
                dense.rev(),
                &[(dense.ids().dense(s).unwrap(), 0)],
                &[(dense.ids().dense(t).unwrap(), 0)],
                INF,
                None,
                &mut scratch,
            );
            let expect = crate::reference::dijkstra_p2p(&g, s, t).unwrap_or(INF);
            assert_eq!(out.dist, expect, "({s}, {t})");
        }
    }

    #[test]
    fn dense_search_empty_seeds_returns_mu0() {
        let dense = DenseGk::undirected(3, &[0, 1, 2], &CsrGraph::empty(3));
        let mut scratch = DenseScratch::new(3);
        let out = dense_bi_dijkstra(
            dense.fwd(),
            dense.rev(),
            &[],
            &[(1, 0)],
            7,
            Some(2),
            &mut scratch,
        );
        assert_eq!(out.dist, 7);
        assert_eq!(out.meeting, Meeting::Labels(2));
        let out = dense_bi_dijkstra(dense.fwd(), dense.rev(), &[], &[], INF, None, &mut scratch);
        assert_eq!(out.dist, INF);
        assert_eq!(out.meeting, Meeting::None);
    }
}
