//! Allocation-free per-session query-phase tracing.
//!
//! Every engine session (heap, patched-overlay, directed, mmap) routes
//! its queries through [`crate::dense::seeded_search`], which records the
//! per-phase split the paper's experiments report — Equation-1 label
//! intersection, seed fetch/translation, dense `G_k` search — into a
//! [`QueryTrace`] owned by the session.
//!
//! Two invariants keep tracing free on the hot path (see the
//! `islabel-obs` crate docs for the full counter-placement argument):
//!
//! * **Plain pre-sized fields.** The trace is a handful of `u64`s on the
//!   session struct — no atomics, no allocation, so the counting-
//!   allocator audit (`tests/alloc_free.rs`) and the `lint.toml` alloc
//!   zones hold with tracing active (the default).
//! * **`Instant` reads only at phase boundaries.** At most four
//!   `Instant::now()` calls per query, none inside a loop; with
//!   [`QueryTrace::enabled`] false, zero.
//!
//! The serving layers drain [`QueryTrace::last`] once per query into the
//! process-wide registry and the slow-query log; the cumulative fields
//! let offline tools (the `query_hotpath` bench) report phase shares
//! without touching a registry at all.

/// The phase split of a single traced query, in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseSample {
    /// Equation-1 label intersection (the dispatched kernel).
    pub intersect_ns: u64,
    /// Seed fetch: label entries translated to dense ids.
    pub seed_ns: u64,
    /// Dense `G_k` bidirectional search.
    pub search_ns: u64,
    /// Vertices settled by the dense search.
    pub settled: u64,
}

impl PhaseSample {
    /// Sum of the traced phases (excludes per-query bookkeeping outside
    /// the search itself).
    pub fn total_ns(&self) -> u64 {
        self.intersect_ns + self.seed_ns + self.search_ns
    }
}

/// Per-session trace state: cumulative phase totals plus the most recent
/// query's sample. Enabled by default; flipping [`enabled`] off removes
/// even the boundary `Instant` reads (the bench's metrics-off mode).
///
/// [`enabled`]: QueryTrace::enabled
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryTrace {
    /// Whether phase boundaries are timed. Default `true`.
    pub enabled: bool,
    /// Queries traced through the seeded search.
    pub queries: u64,
    /// Cumulative Equation-1 intersect time.
    pub intersect_ns: u64,
    /// Cumulative seed-fetch time.
    pub seed_ns: u64,
    /// Cumulative dense-search time.
    pub search_ns: u64,
    /// Cumulative settled vertices.
    pub settled: u64,
    /// The most recent query's sample.
    pub last: PhaseSample,
}

impl Default for QueryTrace {
    fn default() -> Self {
        Self {
            enabled: true,
            queries: 0,
            intersect_ns: 0,
            seed_ns: 0,
            search_ns: 0,
            settled: 0,
            last: PhaseSample::default(),
        }
    }
}

impl QueryTrace {
    /// An enabled, empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// A trace that records nothing (and reads no clocks).
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }

    /// Accumulates one query's phase sample. Called by the seeded search
    /// at the final phase boundary; plain field adds, no allocation.
    #[inline]
    pub fn record_query(&mut self, intersect_ns: u64, seed_ns: u64, search_ns: u64, settled: u64) {
        self.queries += 1;
        self.intersect_ns += intersect_ns;
        self.seed_ns += seed_ns;
        self.search_ns += search_ns;
        self.settled += settled;
        self.last = PhaseSample {
            intersect_ns,
            seed_ns,
            search_ns,
            settled,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_and_keeps_last() {
        let mut tr = QueryTrace::new();
        assert!(tr.enabled);
        tr.record_query(10, 20, 30, 4);
        tr.record_query(1, 2, 3, 5);
        assert_eq!(tr.queries, 2);
        assert_eq!(tr.intersect_ns, 11);
        assert_eq!(tr.seed_ns, 22);
        assert_eq!(tr.search_ns, 33);
        assert_eq!(tr.settled, 9);
        assert_eq!(tr.last.total_ns(), 6);
        assert!(!QueryTrace::disabled().enabled);
    }
}
