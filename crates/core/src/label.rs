//! Vertex labels (paper Definitions 2/3) and the top-down labeling
//! algorithm (Algorithm 4).
//!
//! The relaxed label `label(v)` holds one entry per *ancestor* of `v` — a
//! vertex reachable from `v` by a strictly level-increasing chain whose step
//! `(w_i, w_{i+1})` is an edge of `G_{ℓ(w_i)}`. The recorded value
//! `d(v, u)` is the minimum length over such chains: an upper bound on
//! `dist_G(v, u)` that Lemma 5 proves exact at the max-level vertex of any
//! shortest path, which is all Equation 1 needs.
//!
//! Algorithm 4 computes labels top-down using Corollary 1:
//! `label(v) = {(v, 0)} ∪ min-merge over peel-neighbors u of
//! (ω(v, u) + label(u))`, processing levels `k−1 .. 1` so every neighbor's
//! label (all neighbors sit at strictly higher levels) is already final.
//!
//! Storage is struct-of-arrays, each vertex's entries sorted by ancestor id,
//! which makes Equation 1 a linear merge-join — the "simple sequential
//! scanning" the paper relies on (Section 6.2).

use crate::hierarchy::VertexHierarchy;
use islabel_graph::{Dist, FxHashMap, VertexId};

/// Sentinel first hop for labels built without path info.
pub const NO_HOP: VertexId = VertexId::MAX;

/// All vertex labels, flattened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelSet {
    offsets: Vec<usize>,
    ancestors: Vec<VertexId>,
    dists: Vec<Dist>,
    /// Parallel to `ancestors` when path info is kept, empty otherwise. The
    /// first hop of entry `(w, d)` in `label(v)` is the peel-neighbor `u`
    /// of `v` starting the optimal chain (`u = v` for the self entry).
    first_hops: Vec<VertexId>,
}

/// Borrowed view of one vertex's label.
#[derive(Debug, Clone, Copy)]
pub struct LabelView<'a> {
    /// Ancestor ids, ascending.
    pub ancestors: &'a [VertexId],
    /// Chain-length upper bounds, parallel to `ancestors`.
    pub dists: &'a [Dist],
    /// First hops, parallel to `ancestors` (empty without path info).
    pub first_hops: &'a [VertexId],
}

impl<'a> LabelView<'a> {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.ancestors.len()
    }

    /// Whether the label is empty (only possible for an out-of-universe id).
    pub fn is_empty(&self) -> bool {
        self.ancestors.is_empty()
    }

    /// Iterates `(ancestor, d)` pairs in ascending ancestor order.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, Dist)> + 'a {
        self.ancestors
            .iter()
            .copied()
            .zip(self.dists.iter().copied())
    }

    /// Looks up the entry for `ancestor` (binary search).
    pub fn get(&self, ancestor: VertexId) -> Option<Dist> {
        self.ancestors
            .binary_search(&ancestor)
            .ok()
            .map(|i| self.dists[i])
    }

    /// Looks up `(d, first_hop)` for `ancestor`; first hop is [`NO_HOP`]
    /// when path info was disabled.
    pub fn get_with_hop(&self, ancestor: VertexId) -> Option<(Dist, VertexId)> {
        self.ancestors.binary_search(&ancestor).ok().map(|i| {
            let hop = if self.first_hops.is_empty() {
                NO_HOP
            } else {
                self.first_hops[i]
            };
            (self.dists[i], hop)
        })
    }
}

impl LabelSet {
    /// Runs top-down labeling (Algorithm 4) over a hierarchy.
    pub fn build(h: &VertexHierarchy, keep_path_info: bool) -> Self {
        let n = h.universe();
        let k = h.k();
        // Transient per-vertex labels; flattened at the end. Entries are
        // (ancestor, dist, first_hop) sorted by ancestor.
        let mut labels: Vec<Vec<(VertexId, Dist, VertexId)>> = vec![Vec::new(); n];

        // Initialization: G_k vertices have only the self entry.
        for &v in h.gk_members() {
            labels[v as usize].push((v, 0, v));
        }

        // Top-down: level k−1 down to 1. Every peel neighbor of a level-i
        // vertex is at a level > i, so its label is already final.
        let mut merge: FxHashMap<VertexId, (Dist, VertexId)> = FxHashMap::default();
        for i in (1..k).rev() {
            let li = &h.levels()[(i - 1) as usize];
            for &v in li {
                merge.clear();
                merge.insert(v, (0, v));
                for e in h.peel_adj(v) {
                    let u = e.to;
                    debug_assert!(h.level_of(u) > i);
                    let w = e.weight as Dist;
                    for &(anc, d, _) in &labels[u as usize] {
                        let cand = w + d;
                        match merge.entry(anc) {
                            std::collections::hash_map::Entry::Vacant(slot) => {
                                slot.insert((cand, u));
                            }
                            std::collections::hash_map::Entry::Occupied(mut slot) => {
                                // Strict improvement only: on ties the
                                // earlier (smaller-id) first hop wins, which
                                // keeps labels deterministic.
                                if cand < slot.get().0 {
                                    *slot.get_mut() = (cand, u);
                                }
                            }
                        }
                    }
                }
                let mut entries: Vec<(VertexId, Dist, VertexId)> = merge
                    .iter()
                    .map(|(&anc, &(d, hop))| (anc, d, hop))
                    .collect();
                entries.sort_unstable_by_key(|&(anc, _, _)| anc);
                labels[v as usize] = entries;
            }
        }

        Self::from_per_vertex(labels, keep_path_info)
    }

    /// Flattens per-vertex sorted entry lists into the SoA layout.
    pub(crate) fn from_per_vertex(
        labels: Vec<Vec<(VertexId, Dist, VertexId)>>,
        keep_path_info: bool,
    ) -> Self {
        let total: usize = labels.iter().map(|l| l.len()).sum();
        let mut offsets = Vec::with_capacity(labels.len() + 1);
        let mut ancestors = Vec::with_capacity(total);
        let mut dists = Vec::with_capacity(total);
        let mut first_hops = if keep_path_info {
            Vec::with_capacity(total)
        } else {
            Vec::new()
        };
        offsets.push(0);
        for l in &labels {
            debug_assert!(l.windows(2).all(|w| w[0].0 < w[1].0), "label not sorted");
            for &(anc, d, hop) in l {
                ancestors.push(anc);
                dists.push(d);
                if keep_path_info {
                    first_hops.push(hop);
                }
            }
            offsets.push(ancestors.len());
        }
        Self {
            offsets,
            ancestors,
            dists,
            first_hops,
        }
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The label of `v`.
    #[inline]
    pub fn label(&self, v: VertexId) -> LabelView<'_> {
        let lo = self.offsets[v as usize];
        let hi = self.offsets[v as usize + 1];
        LabelView {
            ancestors: &self.ancestors[lo..hi],
            dists: &self.dists[lo..hi],
            first_hops: if self.first_hops.is_empty() {
                &[]
            } else {
                &self.first_hops[lo..hi]
            },
        }
    }

    /// Whether first hops were recorded.
    pub fn has_path_info(&self) -> bool {
        !self.first_hops.is_empty()
    }

    /// Total number of label entries across all vertices.
    pub fn num_entries(&self) -> usize {
        self.ancestors.len()
    }

    /// Resident bytes of the label arrays — the paper's "label size" column
    /// (Tables 3, 6, 7).
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.ancestors.len() * 4
            + self.dists.len() * 8
            + self.first_hops.len() * 4
    }

    /// Largest single label (diagnostics; drives worst-case Time (a)).
    pub fn max_label_len(&self) -> usize {
        (0..self.num_vertices() as VertexId)
            .map(|v| self.label(v).len())
            .max()
            .unwrap_or(0)
    }

    /// Mean entries per vertex.
    pub fn avg_label_len(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_entries() as f64 / self.num_vertices() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BuildConfig;
    use crate::hierarchy::tests::{paper_graph, paper_hierarchy};
    use crate::reference;

    fn label_pairs(ls: &LabelSet, v: VertexId) -> Vec<(VertexId, Dist)> {
        ls.label(v).iter().collect()
    }

    #[test]
    fn paper_example_labels_match_figure_2() {
        // a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7 i=8.
        let h = paper_hierarchy();
        let ls = LabelSet::build(&h, true);

        assert_eq!(
            label_pairs(&ls, 2),
            vec![(0, 2), (1, 1), (2, 0), (4, 2), (6, 4)]
        ); // c
        assert_eq!(label_pairs(&ls, 8), vec![(0, 2), (4, 1), (6, 3), (8, 0)]); // i
        assert_eq!(label_pairs(&ls, 1), vec![(0, 1), (1, 0), (4, 1), (6, 3)]); // b
        assert_eq!(label_pairs(&ls, 3), vec![(0, 2), (3, 0), (4, 1), (6, 1)]); // d
        assert_eq!(label_pairs(&ls, 7), vec![(0, 5), (4, 4), (6, 1), (7, 0)]); // h
        assert_eq!(label_pairs(&ls, 4), vec![(0, 1), (4, 0), (6, 2)]); // e
        assert_eq!(label_pairs(&ls, 0), vec![(0, 0), (6, 3)]); // a
        assert_eq!(label_pairs(&ls, 6), vec![(6, 0)]); // g

        // label(f): the paper's Figure 2(b) prints (g, 5), but Definition 3
        // yields d(f, g) = 2 through the valid level-increasing chain
        // f → h → g (ℓ(f)=1 < ℓ(h)=2 < ℓ(g)=5, edges in G1 and G2 of weights
        // 1 and 1); the figure's value appears to be a typo. Both values are
        // upper bounds of dist_G(f, g) = 2, so query answers are unaffected.
        assert_eq!(
            label_pairs(&ls, 5),
            vec![(0, 4), (4, 3), (5, 0), (6, 2), (7, 1)]
        ); // f

        // The paper highlights d(h, e) = 4 > dist_G(h, e) = 3.
        assert_eq!(ls.label(7).get(4), Some(4));
    }

    #[test]
    fn algorithm4_matches_definition3_procedure() {
        // The top-down join must compute exactly the labels of the
        // Definition 3 marking procedure (our reference implementation).
        for seed in 0..5u64 {
            let g = islabel_graph::generators::erdos_renyi_gnm(
                80,
                200,
                islabel_graph::generators::WeightModel::UniformRange(1, 6),
                seed,
            );
            let h = VertexHierarchy::build(&g, &BuildConfig::sigma(0.95));
            let ls = LabelSet::build(&h, false);
            for v in g.vertices() {
                let expected = reference::definition3_label(&h, v);
                assert_eq!(
                    label_pairs(&ls, v),
                    expected,
                    "label({v}) diverges from Definition 3 (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn ancestor_sets_match_exact_labels() {
        // Lemma 4: V[label(v)] = V[LABEL(v)].
        let g = paper_graph();
        let h = paper_hierarchy();
        let ls = LabelSet::build(&h, false);
        for v in g.vertices() {
            let relaxed: Vec<VertexId> = ls.label(v).ancestors.to_vec();
            let exact: Vec<VertexId> = reference::exact_label(&g, &h, v)
                .into_iter()
                .map(|(a, _)| a)
                .collect();
            assert_eq!(relaxed, exact, "ancestor set of {v}");
        }
    }

    #[test]
    fn label_distances_upper_bound_true_distances() {
        // Each d(v, u) is the length of a real path, so it can never be
        // below dist_G(v, u).
        let g = islabel_graph::generators::barabasi_albert(
            120,
            3,
            islabel_graph::generators::WeightModel::UniformRange(1, 4),
            5,
        );
        let h = VertexHierarchy::build(&g, &BuildConfig::sigma(0.95));
        let ls = LabelSet::build(&h, false);
        for v in g.vertices().step_by(10) {
            let exact = crate::reference::dijkstra_all(&g, v);
            for (anc, d) in ls.label(v).iter() {
                assert!(
                    d >= exact[anc as usize],
                    "d({v}, {anc}) = {d} below true {}",
                    exact[anc as usize]
                );
            }
        }
    }

    #[test]
    fn gk_vertices_have_singleton_labels() {
        let g = islabel_graph::generators::erdos_renyi_gnm(
            100,
            400,
            islabel_graph::generators::WeightModel::Unit,
            1,
        );
        let h = VertexHierarchy::build(&g, &BuildConfig::sigma(0.95));
        let ls = LabelSet::build(&h, true);
        assert!(h.num_gk_vertices() > 0, "test needs a non-empty G_k");
        for &v in h.gk_members() {
            assert_eq!(label_pairs(&ls, v), vec![(v, 0)]);
        }
    }

    #[test]
    fn first_hops_are_valid_peel_neighbors() {
        let g = paper_graph();
        let h = paper_hierarchy();
        let ls = LabelSet::build(&h, true);
        for v in g.vertices() {
            let lv = ls.label(v);
            for (i, (&anc, &hop)) in lv.ancestors.iter().zip(lv.first_hops.iter()).enumerate() {
                if anc == v {
                    assert_eq!(hop, v, "self entry of {v}");
                } else {
                    assert!(
                        h.peel_adj(v).iter().any(|e| e.to == hop),
                        "first hop {hop} of entry {i} of label({v}) is not a peel neighbor"
                    );
                }
            }
        }
    }

    #[test]
    fn memory_accounting_is_consistent() {
        let h = paper_hierarchy();
        let with_hops = LabelSet::build(&h, true);
        let without = LabelSet::build(&h, false);
        assert_eq!(with_hops.num_entries(), without.num_entries());
        assert!(with_hops.memory_bytes() > without.memory_bytes());
        assert_eq!(without.num_vertices(), 9);
        assert!(without.max_label_len() >= 5);
        assert!(without.avg_label_len() > 1.0);
    }
}
