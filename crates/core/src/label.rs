//! Vertex labels (paper Definitions 2/3) and the top-down labeling
//! algorithm (Algorithm 4).
//!
//! The relaxed label `label(v)` holds one entry per *ancestor* of `v` — a
//! vertex reachable from `v` by a strictly level-increasing chain whose step
//! `(w_i, w_{i+1})` is an edge of `G_{ℓ(w_i)}`. The recorded value
//! `d(v, u)` is the minimum length over such chains: an upper bound on
//! `dist_G(v, u)` that Lemma 5 proves exact at the max-level vertex of any
//! shortest path, which is all Equation 1 needs.
//!
//! Algorithm 4 computes labels top-down using Corollary 1:
//! `label(v) = {(v, 0)} ∪ min-merge over peel-neighbors u of
//! (ω(v, u) + label(u))`, processing levels `k−1 .. 1` so every neighbor's
//! label (all neighbors sit at strictly higher levels) is already final.
//!
//! Two observations make that loop fast here:
//!
//! * Within one level the vertices are **independent**: every peel neighbor
//!   sits at a strictly higher level, so level `i` labels read only
//!   already-final data. [`LabelSet::build`] therefore fans each level out
//!   over scoped worker threads that claim small vertex chunks off an
//!   atomic counter (label sizes vary wildly, so static halves would
//!   leave workers idle), producing bit-identical labels at any thread
//!   count. Transient labels live in flat arenas — per-vertex `Vec`s would
//!   put the allocator on the contended path.
//! * The per-vertex min-merge is a **deterministic sorted k-way merge**
//!   over the (ancestor-sorted) neighbor labels instead of a hash map:
//!   cursors advance through the sorted inputs via a small heap ordered by
//!   `(ancestor, neighbor)`, so equal ancestors resolve in ascending
//!   neighbor order and the "earliest smallest-id first hop wins" tie rule
//!   of the old hash merge is preserved exactly — with no hashing and no
//!   output sort. Worker-local merge buffers are reused across the chunk.
//!
//! Storage is struct-of-arrays, each vertex's entries sorted by ancestor id,
//! which makes Equation 1 a linear merge-join — the "simple sequential
//! scanning" the paper relies on (Section 6.2).

use crate::hierarchy::VertexHierarchy;
use islabel_graph::{Dist, VertexId, Weight};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Sentinel first hop for labels built without path info.
pub const NO_HOP: VertexId = VertexId::MAX;

/// All vertex labels, flattened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelSet {
    offsets: Vec<usize>,
    ancestors: Vec<VertexId>,
    dists: Vec<Dist>,
    /// Parallel to `ancestors` when path info is kept, empty otherwise. The
    /// first hop of entry `(w, d)` in `label(v)` is the peel-neighbor `u`
    /// of `v` starting the optimal chain (`u = v` for the self entry).
    first_hops: Vec<VertexId>,
}

/// Borrowed view of one vertex's label.
#[derive(Debug, Clone, Copy)]
pub struct LabelView<'a> {
    /// Ancestor ids, ascending.
    pub ancestors: &'a [VertexId],
    /// Chain-length upper bounds, parallel to `ancestors`.
    pub dists: &'a [Dist],
    /// First hops, parallel to `ancestors` (empty without path info).
    pub first_hops: &'a [VertexId],
}

impl<'a> LabelView<'a> {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.ancestors.len()
    }

    /// Whether the label is empty (only possible for an out-of-universe id).
    pub fn is_empty(&self) -> bool {
        self.ancestors.is_empty()
    }

    /// Iterates `(ancestor, d)` pairs in ascending ancestor order.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, Dist)> + 'a {
        self.ancestors
            .iter()
            .copied()
            .zip(self.dists.iter().copied())
    }

    /// Looks up the entry for `ancestor` (binary search).
    pub fn get(&self, ancestor: VertexId) -> Option<Dist> {
        self.ancestors
            .binary_search(&ancestor)
            .ok()
            .map(|i| self.dists[i])
    }

    /// Looks up `(d, first_hop)` for `ancestor`; first hop is [`NO_HOP`]
    /// when path info was disabled.
    pub fn get_with_hop(&self, ancestor: VertexId) -> Option<(Dist, VertexId)> {
        self.ancestors.binary_search(&ancestor).ok().map(|i| {
            let hop = if self.first_hops.is_empty() {
                NO_HOP
            } else {
                self.first_hops[i]
            };
            (self.dists[i], hop)
        })
    }
}

/// One transient label entry during construction: `(ancestor, dist, hop)`.
type Entry = (VertexId, Dist, VertexId);

/// One chunk's output of a labeling worker: `(chunk index, per-vertex
/// lengths, flat entries)` — committed to the arena by the main thread.
type ChunkOut = (usize, Vec<u32>, Vec<Entry>);

/// A peel-adjacency view of one hierarchy direction, consumed by the
/// shared top-down labeling loop. The undirected index implements it over
/// [`VertexHierarchy::peel_adj`]; the directed index implements it twice,
/// over its out- and in-arc peel lists.
pub(crate) trait PeelSource: Sync {
    /// Iterates `(higher-level neighbor, edge weight)` of `v` as archived at
    /// peel time.
    fn peel_neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_;
}

struct HierarchyPeel<'a>(&'a VertexHierarchy);

impl PeelSource for HierarchyPeel<'_> {
    fn peel_neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.0.peel_adj(v).iter().map(|e| (e.to, e.weight))
    }
}

/// Transient label storage during construction: per-vertex **spans into
/// flat arena chunks** instead of one `Vec` per vertex.
///
/// Construction produces tens of thousands of short-lived label lists; a
/// `Vec<Vec<Entry>>` allocates each of them individually, and when worker
/// threads do that concurrently the allocator becomes the bottleneck
/// (measured 3–6× *slowdowns* at 2 threads). Here every worker appends its
/// chunk's labels to one flat buffer, the finished buffer is frozen as an
/// arena, and each vertex stores `(arena, start, len)` — a handful of
/// allocations per level instead of one per vertex, on both the sequential
/// and the parallel path.
#[derive(Debug)]
struct ArenaLabels {
    /// All committed entries, level after level. Only grows between level
    /// scopes, so worker borrows never observe a reallocation.
    arena: Vec<Entry>,
    /// `(start, len)` per vertex into `arena`; len 0 = no label yet.
    span: Vec<(u64, u32)>,
}

impl ArenaLabels {
    fn new(n: usize) -> Self {
        Self {
            arena: Vec::new(),
            span: vec![(0, 0); n],
        }
    }

    #[inline]
    fn get(&self, v: VertexId) -> &[Entry] {
        let (s, l) = self.span[v as usize];
        &self.arena[s as usize..s as usize + l as usize]
    }

    /// Appends one worker's flat output to the arena and records the spans
    /// of the vertices it covered (`lens` parallel to `part`).
    fn commit(&mut self, part: &[VertexId], lens: &[u32], flat: &[Entry]) {
        debug_assert_eq!(part.len(), lens.len());
        debug_assert_eq!(lens.iter().map(|&l| l as usize).sum::<usize>(), flat.len());
        let mut start = self.arena.len() as u64;
        self.arena.extend_from_slice(flat);
        for (&v, &len) in part.iter().zip(lens) {
            self.span[v as usize] = (start, len);
            start += len as u64;
        }
    }

    fn total_entries(&self) -> usize {
        self.arena.len()
    }
}

/// A cursor of the k-way merge: walks `label(u)` shifted by the peel-edge
/// weight. The self entry `(v, 0, v)` rides as a synthetic cursor with
/// `u == v` (no neighbor label can contain `v`: ancestors of a strictly
/// higher-level neighbor all sit above `v`'s level).
#[derive(Debug, Clone, Copy)]
struct Cursor {
    u: VertexId,
    shift: Dist,
    pos: u32,
}

/// Reusable per-worker state of the sorted k-way merge.
#[derive(Debug, Default)]
struct MergeBufs {
    cursors: Vec<Cursor>,
    /// Min-heap of `(current ancestor, neighbor id, cursor index)`; the
    /// `(ancestor, neighbor)` order makes equal-ancestor resolution scan
    /// neighbors ascending — the deterministic first-hop tie rule.
    heap: BinaryHeap<Reverse<(VertexId, VertexId, u32)>>,
    out: Vec<Entry>,
}

impl MergeBufs {
    /// Computes `label(v)` by k-way merging the (final) labels of `v`'s
    /// peel neighbors plus the self entry, leaving the sorted result in
    /// `self.out`.
    fn merge_vertex<P: PeelSource>(&mut self, v: VertexId, peel: &P, labels: &ArenaLabels) {
        self.cursors.clear();
        self.heap.clear();
        self.out.clear();
        // Synthetic self cursor first so `entry_at` can special-case it.
        self.cursors.push(Cursor {
            u: v,
            shift: 0,
            pos: 0,
        });
        self.heap.push(Reverse((v, v, 0)));
        for (u, w) in peel.peel_neighbors(v) {
            let list = labels.get(u);
            if list.is_empty() {
                continue;
            }
            let ci = self.cursors.len() as u32;
            self.cursors.push(Cursor {
                u,
                shift: w as Dist,
                pos: 0,
            });
            self.heap.push(Reverse((list[0].0, u, ci)));
        }

        // `(anc, dist, hop)` under cursor `ci`; self cursor yields (v, 0, v).
        let entry_at = |c: Cursor, v: VertexId| -> (VertexId, Dist, VertexId) {
            if c.u == v {
                (v, 0, v)
            } else {
                let (anc, d, _) = labels.get(c.u)[c.pos as usize];
                (anc, c.shift + d, c.u)
            }
        };

        while let Some(Reverse((anc, _, ci))) = self.heap.pop() {
            let (_, mut best_d, mut best_hop) = entry_at(self.cursors[ci as usize], v);
            self.advance(ci, v, labels);
            // Drain every cursor sitting on the same ancestor, ascending by
            // neighbor id: strict improvement only, so the earliest
            // (smallest-id) neighbor achieving the minimum keeps the hop.
            while let Some(&Reverse((a2, _, cj))) = self.heap.peek() {
                if a2 != anc {
                    break;
                }
                self.heap.pop();
                let (_, d2, hop2) = entry_at(self.cursors[cj as usize], v);
                if d2 < best_d {
                    best_d = d2;
                    best_hop = hop2;
                }
                self.advance(cj, v, labels);
            }
            self.out.push((anc, best_d, best_hop));
        }
    }

    /// Steps cursor `ci` and re-queues it if its input has entries left.
    fn advance(&mut self, ci: u32, v: VertexId, labels: &ArenaLabels) {
        let c = &mut self.cursors[ci as usize];
        if c.u == v {
            return; // the self cursor has exactly one entry
        }
        c.pos += 1;
        let list = labels.get(c.u);
        if (c.pos as usize) < list.len() {
            self.heap.push(Reverse((list[c.pos as usize].0, c.u, ci)));
        }
    }
}

/// Smallest level size worth fanning out over worker threads: below this
/// the per-level spawn cost dominates the merge work.
const PARALLEL_LEVEL_CUTOFF: usize = 128;

/// Shared top-down labeling loop (Algorithm 4) over any [`PeelSource`],
/// level-parallel and deterministic at every thread count.
pub(crate) fn build_from_peel<P: PeelSource>(
    n: usize,
    k: u32,
    levels: &[Vec<VertexId>],
    gk_members: &[VertexId],
    peel: &P,
    keep_path_info: bool,
    threads: usize,
) -> LabelSet {
    // Transient labels live in flat arenas (see [`ArenaLabels`]): entries
    // are (ancestor, dist, first_hop), each vertex's slice sorted by
    // ancestor.
    let mut labels = ArenaLabels::new(n);

    // Initialization: G_k vertices have only the self entry.
    let self_entries: Vec<Entry> = gk_members.iter().map(|&v| (v, 0, v)).collect();
    labels.commit(gk_members, &vec![1u32; gk_members.len()], &self_entries);
    drop(self_entries);

    // Top-down: level k−1 down to 1. Every peel neighbor of a level-i
    // vertex is at a level > i, so its label is already final — which also
    // means the vertices of one level are mutually independent and can be
    // labeled in parallel.
    for i in (1..k).rev() {
        let li = &levels[(i - 1) as usize];
        let workers = threads.min(li.len().div_ceil(PARALLEL_LEVEL_CUTOFF)).max(1);
        if workers <= 1 {
            let mut bufs = MergeBufs::default();
            let mut flat: Vec<Entry> = Vec::new();
            let mut lens: Vec<u32> = Vec::with_capacity(li.len());
            for &v in li {
                bufs.merge_vertex(v, peel, &labels);
                flat.extend_from_slice(&bufs.out);
                lens.push(bufs.out.len() as u32);
            }
            labels.commit(li, &lens, &flat);
        } else {
            // Dynamic chunk assignment: label sizes vary wildly within a
            // level, so fixed contiguous halves leave workers idle. Chunks
            // several times smaller than a worker's fair share are claimed
            // off an atomic counter instead — cheap work stealing.
            let chunk = li
                .len()
                .div_ceil(workers * 8)
                .max(PARALLEL_LEVEL_CUTOFF / 2);
            let parts: Vec<&[VertexId]> = li.chunks(chunk).collect();
            let next = std::sync::atomic::AtomicUsize::new(0);
            let shared = &labels;
            let produced: Vec<Vec<ChunkOut>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let parts = &parts;
                        let next = &next;
                        scope.spawn(move || {
                            let mut bufs = MergeBufs::default();
                            let mut outs = Vec::new();
                            loop {
                                let pi = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                let Some(part) = parts.get(pi) else { break };
                                let mut flat: Vec<Entry> = Vec::new();
                                let mut lens: Vec<u32> = Vec::with_capacity(part.len());
                                for &v in *part {
                                    bufs.merge_vertex(v, peel, shared);
                                    flat.extend_from_slice(&bufs.out);
                                    lens.push(bufs.out.len() as u32);
                                }
                                outs.push((pi, lens, flat));
                            }
                            outs
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("labeling worker panicked"))
                    .collect()
            });
            for outs in produced {
                for (pi, lens, flat) in outs {
                    labels.commit(parts[pi], &lens, &flat);
                }
            }
        }
    }

    LabelSet::from_arena(&labels, n, keep_path_info)
}

impl LabelSet {
    /// Runs top-down labeling (Algorithm 4) over a hierarchy, parallelized
    /// level-by-level over [`std::thread::available_parallelism`] workers.
    /// Labels are deterministic — identical at any worker count (see
    /// [`LabelSet::build_with_threads`]).
    pub fn build(h: &VertexHierarchy, keep_path_info: bool) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Self::build_with_threads(h, keep_path_info, threads)
    }

    /// [`LabelSet::build`] with an explicit worker count (`0` and `1` both
    /// run single-threaded). Every vertex's label is computed independently
    /// by a deterministic sorted k-way merge, so the output is bit-identical
    /// across `threads` values.
    pub fn build_with_threads(h: &VertexHierarchy, keep_path_info: bool, threads: usize) -> Self {
        build_from_peel(
            h.universe(),
            h.k(),
            h.levels(),
            h.gk_members(),
            &HierarchyPeel(h),
            keep_path_info,
            threads.max(1),
        )
    }

    /// Flattens arena-backed construction labels into the SoA layout.
    fn from_arena(labels: &ArenaLabels, n: usize, keep_path_info: bool) -> Self {
        let total = labels.total_entries();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut ancestors = Vec::with_capacity(total);
        let mut dists = Vec::with_capacity(total);
        let mut first_hops = if keep_path_info {
            Vec::with_capacity(total)
        } else {
            Vec::new()
        };
        offsets.push(0);
        for v in 0..n as VertexId {
            let l = labels.get(v);
            debug_assert!(l.windows(2).all(|w| w[0].0 < w[1].0), "label not sorted");
            for &(anc, d, hop) in l {
                ancestors.push(anc);
                dists.push(d);
                if keep_path_info {
                    first_hops.push(hop);
                }
            }
            offsets.push(ancestors.len());
        }
        Self {
            offsets,
            ancestors,
            dists,
            first_hops,
        }
    }

    /// Flattens per-vertex sorted entry lists into the SoA layout.
    pub(crate) fn from_per_vertex(
        labels: Vec<Vec<(VertexId, Dist, VertexId)>>,
        keep_path_info: bool,
    ) -> Self {
        let total: usize = labels.iter().map(|l| l.len()).sum();
        let mut offsets = Vec::with_capacity(labels.len() + 1);
        let mut ancestors = Vec::with_capacity(total);
        let mut dists = Vec::with_capacity(total);
        let mut first_hops = if keep_path_info {
            Vec::with_capacity(total)
        } else {
            Vec::new()
        };
        offsets.push(0);
        for l in &labels {
            debug_assert!(l.windows(2).all(|w| w[0].0 < w[1].0), "label not sorted");
            for &(anc, d, hop) in l {
                ancestors.push(anc);
                dists.push(d);
                if keep_path_info {
                    first_hops.push(hop);
                }
            }
            offsets.push(ancestors.len());
        }
        Self {
            offsets,
            ancestors,
            dists,
            first_hops,
        }
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The label of `v`.
    #[inline]
    pub fn label(&self, v: VertexId) -> LabelView<'_> {
        let lo = self.offsets[v as usize];
        let hi = self.offsets[v as usize + 1];
        LabelView {
            ancestors: &self.ancestors[lo..hi],
            dists: &self.dists[lo..hi],
            first_hops: if self.first_hops.is_empty() {
                &[]
            } else {
                &self.first_hops[lo..hi]
            },
        }
    }

    /// Whether first hops were recorded.
    pub fn has_path_info(&self) -> bool {
        !self.first_hops.is_empty()
    }

    /// Total number of label entries across all vertices.
    pub fn num_entries(&self) -> usize {
        self.ancestors.len()
    }

    /// Resident bytes of the label arrays — the paper's "label size" column
    /// (Tables 3, 6, 7).
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.ancestors.len() * std::mem::size_of::<VertexId>()
            + self.dists.len() * std::mem::size_of::<Dist>()
            + self.first_hops.len() * std::mem::size_of::<VertexId>()
    }

    /// Largest single label (diagnostics; drives worst-case Time (a)).
    pub fn max_label_len(&self) -> usize {
        (0..self.num_vertices() as VertexId)
            .map(|v| self.label(v).len())
            .max()
            .unwrap_or(0)
    }

    /// Mean entries per vertex.
    pub fn avg_label_len(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_entries() as f64 / self.num_vertices() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BuildConfig;
    use crate::hierarchy::tests::{paper_graph, paper_hierarchy};
    use crate::reference;

    fn label_pairs(ls: &LabelSet, v: VertexId) -> Vec<(VertexId, Dist)> {
        ls.label(v).iter().collect()
    }

    #[test]
    fn paper_example_labels_match_figure_2() {
        // a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7 i=8.
        let h = paper_hierarchy();
        let ls = LabelSet::build(&h, true);

        assert_eq!(
            label_pairs(&ls, 2),
            vec![(0, 2), (1, 1), (2, 0), (4, 2), (6, 4)]
        ); // c
        assert_eq!(label_pairs(&ls, 8), vec![(0, 2), (4, 1), (6, 3), (8, 0)]); // i
        assert_eq!(label_pairs(&ls, 1), vec![(0, 1), (1, 0), (4, 1), (6, 3)]); // b
        assert_eq!(label_pairs(&ls, 3), vec![(0, 2), (3, 0), (4, 1), (6, 1)]); // d
        assert_eq!(label_pairs(&ls, 7), vec![(0, 5), (4, 4), (6, 1), (7, 0)]); // h
        assert_eq!(label_pairs(&ls, 4), vec![(0, 1), (4, 0), (6, 2)]); // e
        assert_eq!(label_pairs(&ls, 0), vec![(0, 0), (6, 3)]); // a
        assert_eq!(label_pairs(&ls, 6), vec![(6, 0)]); // g

        // label(f): the paper's Figure 2(b) prints (g, 5), but Definition 3
        // yields d(f, g) = 2 through the valid level-increasing chain
        // f → h → g (ℓ(f)=1 < ℓ(h)=2 < ℓ(g)=5, edges in G1 and G2 of weights
        // 1 and 1); the figure's value appears to be a typo. Both values are
        // upper bounds of dist_G(f, g) = 2, so query answers are unaffected.
        assert_eq!(
            label_pairs(&ls, 5),
            vec![(0, 4), (4, 3), (5, 0), (6, 2), (7, 1)]
        ); // f

        // The paper highlights d(h, e) = 4 > dist_G(h, e) = 3.
        assert_eq!(ls.label(7).get(4), Some(4));
    }

    #[test]
    fn algorithm4_matches_definition3_procedure() {
        // The top-down join must compute exactly the labels of the
        // Definition 3 marking procedure (our reference implementation).
        for seed in 0..5u64 {
            let g = islabel_graph::generators::erdos_renyi_gnm(
                80,
                200,
                islabel_graph::generators::WeightModel::UniformRange(1, 6),
                seed,
            );
            let h = VertexHierarchy::build(&g, &BuildConfig::sigma(0.95));
            let ls = LabelSet::build(&h, false);
            for v in g.vertices() {
                let expected = reference::definition3_label(&h, v);
                assert_eq!(
                    label_pairs(&ls, v),
                    expected,
                    "label({v}) diverges from Definition 3 (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn ancestor_sets_match_exact_labels() {
        // Lemma 4: V[label(v)] = V[LABEL(v)].
        let g = paper_graph();
        let h = paper_hierarchy();
        let ls = LabelSet::build(&h, false);
        for v in g.vertices() {
            let relaxed: Vec<VertexId> = ls.label(v).ancestors.to_vec();
            let exact: Vec<VertexId> = reference::exact_label(&g, &h, v)
                .into_iter()
                .map(|(a, _)| a)
                .collect();
            assert_eq!(relaxed, exact, "ancestor set of {v}");
        }
    }

    #[test]
    fn label_distances_upper_bound_true_distances() {
        // Each d(v, u) is the length of a real path, so it can never be
        // below dist_G(v, u).
        let g = islabel_graph::generators::barabasi_albert(
            120,
            3,
            islabel_graph::generators::WeightModel::UniformRange(1, 4),
            5,
        );
        let h = VertexHierarchy::build(&g, &BuildConfig::sigma(0.95));
        let ls = LabelSet::build(&h, false);
        for v in g.vertices().step_by(10) {
            let exact = crate::reference::dijkstra_all(&g, v);
            for (anc, d) in ls.label(v).iter() {
                assert!(
                    d >= exact[anc as usize],
                    "d({v}, {anc}) = {d} below true {}",
                    exact[anc as usize]
                );
            }
        }
    }

    #[test]
    fn gk_vertices_have_singleton_labels() {
        let g = islabel_graph::generators::erdos_renyi_gnm(
            100,
            400,
            islabel_graph::generators::WeightModel::Unit,
            1,
        );
        let h = VertexHierarchy::build(&g, &BuildConfig::sigma(0.95));
        let ls = LabelSet::build(&h, true);
        assert!(h.num_gk_vertices() > 0, "test needs a non-empty G_k");
        for &v in h.gk_members() {
            assert_eq!(label_pairs(&ls, v), vec![(v, 0)]);
        }
    }

    #[test]
    fn first_hops_are_valid_peel_neighbors() {
        let g = paper_graph();
        let h = paper_hierarchy();
        let ls = LabelSet::build(&h, true);
        for v in g.vertices() {
            let lv = ls.label(v);
            for (i, (&anc, &hop)) in lv.ancestors.iter().zip(lv.first_hops.iter()).enumerate() {
                if anc == v {
                    assert_eq!(hop, v, "self entry of {v}");
                } else {
                    assert!(
                        h.peel_adj(v).iter().any(|e| e.to == hop),
                        "first hop {hop} of entry {i} of label({v}) is not a peel neighbor"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_build_is_deterministic_across_thread_counts() {
        // The level-parallel sorted merge must produce bit-identical labels
        // (entries, distances, and first hops) at every worker count.
        for seed in [3u64, 19] {
            let g = islabel_graph::generators::barabasi_albert(
                600,
                3,
                islabel_graph::generators::WeightModel::UniformRange(1, 5),
                seed,
            );
            let h = VertexHierarchy::build(&g, &BuildConfig::sigma(0.95));
            let single = LabelSet::build_with_threads(&h, true, 1);
            for threads in [2, 3, 8] {
                let multi = LabelSet::build_with_threads(&h, true, threads);
                assert_eq!(single, multi, "threads {threads} seed {seed}");
            }
        }
    }

    #[test]
    fn memory_accounting_is_consistent() {
        let h = paper_hierarchy();
        let with_hops = LabelSet::build(&h, true);
        let without = LabelSet::build(&h, false);
        assert_eq!(with_hops.num_entries(), without.num_entries());
        assert!(with_hops.memory_bytes() > without.memory_bytes());
        assert_eq!(without.num_vertices(), 9);
        assert!(without.max_label_len() >= 5);
        assert!(without.avg_label_len() > 1.0);
    }
}
