//! Whole-index serialization.
//!
//! The paper's index is explicitly disk-based ("construct a disk-based
//! index", Section 2): build once, persist, then serve queries from the
//! stored artifact. This module stores everything a query needs — the
//! residual graph, level numbers, peel adjacency (for path expansion),
//! via annotations and the labels — in one stream, so an index can be
//! built offline (including by the external pipeline) and reloaded by a
//! query server or the CLI.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic   "ISLX"  version u32  epoch u64
//! config  (k-selection tag + value, keep_path_info)
//! graph   CSR binary block (islabel-graph format)
//! k       u32
//! level_of  n × u32
//! peel_adj  per vertex: count u32, then (to, weight, via) × count
//! gk      CSR binary block
//! gk_vias count u64, then (u, v, via) × count
//! labels  offsets (n+1) × u64, ancestors n_e × u32, dists n_e × u64,
//!         has_hops u8 [+ first_hops n_e × u32]
//! ops     count u64, then per op: len u32 + payload ([`wal`] record
//!         payload format, no per-record checksum)
//! ```
//!
//! Version 2 added the `epoch` and `ops` sections: a non-pristine index now
//! persists by *sealing* its overlay op log into the artifact, and the
//! loader replays those ops through the normal mutation path — patching is
//! deterministic, so the reloaded overlay is exact. The `epoch` pairs the
//! artifact with its write-ahead log (see [`wal`],
//! [`load_index_with_wal`], and [`compact_index_with_wal`]); version 1
//! artifacts still load (fresh epoch, no ops). Path-level saves write a
//! sibling temp file, `fsync`, and rename, so a crashed or failed save
//! never destroys the previous artifact.

use crate::config::{BuildConfig, KSelection};
use crate::hierarchy::{PeelEdge, VertexHierarchy};
use crate::index::IsLabelIndex;
use crate::label::LabelSet;
use crate::stats::IndexStats;
use bytes::{Buf, BufMut};
use islabel_graph::io::{read_csr_binary, write_csr_binary};
use islabel_graph::{FxHashMap, VertexId};
use std::io::{self, Read, Write};
use std::path::Path;
use std::time::Duration;

pub mod v3;
pub mod wal;

const MAGIC: &[u8; 4] = b"ISLX";
const VERSION: u32 = 2;
/// The flat, section-table version written by [`v3`] / `islabel-store`.
const VERSION_V3: u32 = 3;

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Serializes `index` to `writer`, including any pending dynamic updates
/// (the overlay op log is sealed into the artifact and replayed on load).
/// Historically this panicked on a non-pristine index; since the WAL path
/// landed it accepts any index, and the old "rebuild before saving" advice
/// only applies when you want a pristine (exact, dense-only) artifact.
pub fn save_index<W: Write>(index: &IsLabelIndex, writer: &mut W) -> io::Result<()> {
    save_index_body(index, writer)
}

/// Fully typed serialization of `index` to `writer`: I/O failures surface
/// as [`Error::Persist`](crate::Error::Persist). Pending dynamic updates no
/// longer refuse the save — they are sealed into the artifact's op section
/// and the loader reconstructs the exact overlay (see the module docs).
pub fn try_save_index<W: Write>(index: &IsLabelIndex, writer: &mut W) -> Result<(), crate::Error> {
    save_index_body(index, writer).map_err(crate::Error::Persist)
}

fn save_index_body<W: Write>(index: &IsLabelIndex, writer: &mut W) -> io::Result<()> {
    let mut head = Vec::new();
    head.put_slice(MAGIC);
    head.put_u32_le(VERSION);
    head.put_u64_le(index.artifact_epoch());
    // Config.
    let config = index.config();
    match config.k_selection {
        KSelection::SigmaThreshold(s) => {
            head.put_u8(0);
            head.put_f64_le(s);
        }
        KSelection::FixedK(k) => {
            head.put_u8(1);
            head.put_f64_le(k as f64);
        }
        KSelection::Full => {
            head.put_u8(2);
            head.put_f64_le(0.0);
        }
    }
    head.put_u8(config.keep_path_info as u8);
    writer.write_all(&head)?;

    // Base graph.
    write_csr_framed(index.base_graph(), writer)?;

    // Hierarchy.
    let h = index.hierarchy();
    let n = h.universe();
    let mut buf = Vec::new();
    buf.put_u32_le(h.k());
    buf.put_u64_le(n as u64);
    for v in 0..n as VertexId {
        buf.put_u32_le(h.level_of(v));
    }
    writer.write_all(&buf)?;
    buf.clear();
    for v in 0..n as VertexId {
        let adj = h.peel_adj(v);
        buf.put_u32_le(adj.len() as u32);
        for e in adj {
            buf.put_u32_le(e.to);
            buf.put_u32_le(e.weight);
            buf.put_u32_le(e.via);
        }
        if buf.len() > 1 << 20 {
            writer.write_all(&buf)?;
            buf.clear();
        }
    }
    writer.write_all(&buf)?;
    write_csr_framed(h.gk(), writer)?;
    let mut vias: Vec<(VertexId, VertexId, VertexId)> = Vec::new();
    for (u, v, _) in h.gk().edge_list() {
        if let Some(via) = h.gk_via(u, v) {
            vias.push((u, v, via));
        }
    }
    buf.clear();
    buf.put_u64_le(vias.len() as u64);
    for (u, v, via) in vias {
        buf.put_u32_le(u);
        buf.put_u32_le(v);
        buf.put_u32_le(via);
    }
    writer.write_all(&buf)?;

    // Labels.
    let labels = index.labels();
    buf.clear();
    let mut total = 0u64;
    buf.put_u64_le(labels.num_vertices() as u64);
    writer.write_all(&buf)?;
    buf.clear();
    buf.put_u64_le(0);
    for v in 0..labels.num_vertices() as VertexId {
        total += labels.label(v).len() as u64;
        buf.put_u64_le(total);
    }
    writer.write_all(&buf)?;
    buf.clear();
    for v in 0..labels.num_vertices() as VertexId {
        for &a in labels.label(v).ancestors {
            buf.put_u32_le(a);
        }
        flush_if_large(writer, &mut buf)?;
    }
    writer.write_all(&buf)?;
    buf.clear();
    for v in 0..labels.num_vertices() as VertexId {
        for &d in labels.label(v).dists {
            buf.put_u64_le(d);
        }
        flush_if_large(writer, &mut buf)?;
    }
    writer.write_all(&buf)?;
    buf.clear();
    buf.put_u8(labels.has_path_info() as u8);
    if labels.has_path_info() {
        for v in 0..labels.num_vertices() as VertexId {
            for &hop in labels.label(v).first_hops {
                buf.put_u32_le(hop);
            }
            flush_if_large(writer, &mut buf)?;
        }
    }
    writer.write_all(&buf)?;

    // Sealed dynamic updates: the overlay op log, in the WAL payload
    // format. The loader replays these through the mutation path, which
    // reconstructs the exact overlay (patching is deterministic).
    let ops = index.overlay.ops();
    buf.clear();
    buf.put_u64_le(ops.len() as u64);
    let mut rec = Vec::new();
    for op in ops {
        rec.clear();
        wal::encode_op(op, &mut rec);
        buf.put_u32_le(rec.len() as u32);
        buf.put_slice(&rec);
        flush_if_large(writer, &mut buf)?;
    }
    writer.write_all(&buf)?;
    writer.flush()
}

fn flush_if_large<W: Write>(writer: &mut W, buf: &mut Vec<u8>) -> io::Result<()> {
    if buf.len() > 1 << 20 {
        writer.write_all(buf)?;
        buf.clear();
    }
    Ok(())
}

/// Loads an index previously written by [`save_index`]. Accepts the
/// current version 2 format (artifact epoch + sealed dynamic updates) and
/// the pristine version 1 format (a fresh epoch is minted).
pub fn load_index<R: Read>(reader: &mut R) -> io::Result<IsLabelIndex> {
    // Magic + version, then the version-dependent epoch, then config.
    let mut head = [0u8; 8];
    reader.read_exact(&mut head)?;
    let mut hb = &head[..];
    let mut magic = [0u8; 4];
    hb.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(bad("bad magic (not an ISLX index)"));
    }
    let version = hb.get_u32_le();
    if version != 1 && version != VERSION {
        return Err(bad(&format!("unsupported index version {version}")));
    }
    let epoch = if version >= 2 {
        let mut e = [0u8; 8];
        reader.read_exact(&mut e)?;
        Some(u64::from_le_bytes(e))
    } else {
        None
    };
    let mut config_head = [0u8; 1 + 8 + 1];
    reader.read_exact(&mut config_head)?;
    let mut hb = &config_head[..];
    let ksel_tag = hb.get_u8();
    let ksel_val = hb.get_f64_le();
    let keep_path_info = hb.get_u8() != 0;
    let k_selection = match ksel_tag {
        0 => KSelection::SigmaThreshold(ksel_val),
        1 => KSelection::FixedK(ksel_val as u32),
        2 => KSelection::Full,
        t => return Err(bad(&format!("unknown k-selection tag {t}"))),
    };
    let config = BuildConfig {
        k_selection,
        keep_path_info,
        ..BuildConfig::default()
    };

    // Base graph. `read_csr_binary` consumes to stream end, so the graph
    // blocks are length-prefixed here by re-framing: read the CSR block via
    // a counted sub-reader. The binary CSR format is self-describing, so we
    // read it directly.
    let graph = read_csr_framed(reader)?;

    let mut small = [0u8; 12];
    reader.read_exact(&mut small)?;
    let mut sb = &small[..];
    let k = sb.get_u32_le();
    let n = sb.get_u64_le() as usize;
    if n != graph.num_vertices() {
        return Err(bad("level table size mismatch"));
    }
    let mut level_of = vec![0u32; n];
    read_u32s(reader, &mut level_of)?;
    if level_of.iter().any(|&l| l == 0 || l > k) {
        return Err(bad("level number out of range"));
    }

    let mut peel_adj: Vec<Box<[PeelEdge]>> = Vec::with_capacity(n);
    for _ in 0..n {
        let mut cnt = [0u8; 4];
        reader.read_exact(&mut cnt)?;
        let count = u32::from_le_bytes(cnt) as usize;
        if count > n {
            return Err(bad("peel adjacency count out of range"));
        }
        let mut body = vec![0u8; count * 12];
        reader.read_exact(&mut body)?;
        let mut bb = &body[..];
        let mut adj = Vec::with_capacity(count);
        for _ in 0..count {
            let e = PeelEdge {
                to: bb.get_u32_le(),
                weight: bb.get_u32_le(),
                via: bb.get_u32_le(),
            };
            if e.to as usize >= n
                || (e.via != islabel_graph::adjacency::NO_VIA && e.via as usize >= n)
                || e.weight == 0
            {
                return Err(bad("peel edge out of range"));
            }
            adj.push(e);
        }
        peel_adj.push(adj.into_boxed_slice());
    }

    let gk = read_csr_framed(reader)?;
    if gk.num_vertices() != n {
        return Err(bad("residual graph universe mismatch"));
    }
    let mut cnt8 = [0u8; 8];
    reader.read_exact(&mut cnt8)?;
    let via_count = u64::from_le_bytes(cnt8) as usize;
    if via_count > gk.num_edges() {
        return Err(bad("more via annotations than residual edges"));
    }
    let mut via_body = vec![0u8; via_count * 12];
    reader.read_exact(&mut via_body)?;
    let mut vb = &via_body[..];
    let mut gk_vias = FxHashMap::default();
    for _ in 0..via_count {
        let u = vb.get_u32_le();
        let v = vb.get_u32_le();
        let via = vb.get_u32_le();
        gk_vias.insert((u, v), via);
    }

    // Levels and members reconstructed from level_of.
    let mut levels: Vec<Vec<VertexId>> = vec![Vec::new(); k.saturating_sub(1) as usize];
    let mut gk_members = Vec::new();
    for v in 0..n as VertexId {
        let l = level_of[v as usize];
        if l == k {
            gk_members.push(v);
        } else {
            levels[(l - 1) as usize].push(v);
        }
    }

    // Labels.
    reader.read_exact(&mut cnt8)?;
    let ln = u64::from_le_bytes(cnt8) as usize;
    if ln != n {
        return Err(bad("label table size mismatch"));
    }
    let mut offsets = vec![0u64; n + 1];
    read_u64s(reader, &mut offsets)?;
    if offsets[0] != 0 || !offsets.windows(2).all(|w| w[0] <= w[1]) {
        return Err(bad("label offsets corrupt"));
    }
    // Bound allocations before trusting the totals: a label has at most one
    // entry per vertex, so more than n entries for any vertex (or n² overall)
    // is corruption, not data.
    if offsets.windows(2).any(|w| w[1] - w[0] > n as u64) {
        return Err(bad("label larger than the vertex universe"));
    }
    let total = *offsets.last().unwrap() as usize;
    let mut ancestors = vec![0u32; total];
    read_u32s(reader, &mut ancestors)?;
    let mut dists = vec![0u64; total];
    read_u64s(reader, &mut dists)?;
    let mut flag = [0u8; 1];
    reader.read_exact(&mut flag)?;
    let has_hops = flag[0] != 0;
    let mut hops = vec![0u32; if has_hops { total } else { 0 }];
    if has_hops {
        read_u32s(reader, &mut hops)?;
    }
    let mut per_vertex: Vec<Vec<(VertexId, u64, VertexId)>> = Vec::with_capacity(n);
    for v in 0..n {
        let lo = offsets[v] as usize;
        let hi = offsets[v + 1] as usize;
        let mut entries = Vec::with_capacity(hi - lo);
        for e in lo..hi {
            let hop = if has_hops {
                hops[e]
            } else {
                crate::label::NO_HOP
            };
            entries.push((ancestors[e], dists[e], hop));
        }
        if !entries.windows(2).all(|w| w[0].0 < w[1].0) {
            return Err(bad("label entries not sorted"));
        }
        per_vertex.push(entries);
    }
    let labels = LabelSet::from_per_vertex(per_vertex, has_hops);

    let hierarchy =
        VertexHierarchy::from_parts(level_of, k, levels, peel_adj, gk, gk_vias, gk_members);
    let stats = IndexStats {
        num_vertices: n,
        num_edges: graph.num_edges(),
        k,
        gk_vertices: hierarchy.num_gk_vertices(),
        gk_edges: hierarchy.num_gk_edges(),
        label_entries: labels.num_entries(),
        label_bytes: labels.memory_bytes(),
        avg_label_len: labels.avg_label_len(),
        max_label_len: labels.max_label_len(),
        hierarchy_time: Duration::ZERO, // not recorded in the artifact
        labeling_time: Duration::ZERO,
        build_time: Duration::ZERO,
    };
    let mut index = IsLabelIndex::from_parts(graph, hierarchy, labels, config, stats);

    // Version 2: restore the artifact epoch, then replay the sealed op log
    // through the normal mutation path. Every record is validated against
    // the overlay state it applies to, so a corrupt op section fails
    // cleanly instead of panicking (or silently building a wrong overlay).
    if let Some(epoch) = epoch {
        index.set_artifact_epoch(epoch);
        reader.read_exact(&mut cnt8)?;
        let op_count = u64::from_le_bytes(cnt8);
        let mut rec = Vec::new();
        for i in 0..op_count {
            let mut len4 = [0u8; 4];
            reader.read_exact(&mut len4)?;
            let len = u32::from_le_bytes(len4);
            if len > wal::MAX_RECORD_LEN {
                return Err(bad(&format!("sealed op {i} implausibly large")));
            }
            rec.resize(len as usize, 0);
            reader.read_exact(&mut rec)?;
            let op = wal::decode_op(&rec).map_err(|e| bad(&format!("sealed op {i}: {e}")))?;
            index
                .replay_op(&op)
                .map_err(|e| bad(&format!("sealed op {i} inapplicable: {e}")))?;
        }
    }
    Ok(index)
}

/// Saves to a file path, atomically: the artifact is written to a sibling
/// temp file, `fsync`ed, and renamed into place, so a crash or I/O failure
/// mid-save never destroys an existing artifact at `path`.
///
/// Path-level saves write the **v3 flat format** (the mmap-servable
/// section container of [`v3`] / `islabel-store`); the stream-level
/// [`save_index`] still writes the v2 stream, and [`save_index_v2_to_path`]
/// exists for explicit down-conversion. Loading auto-detects either.
pub fn save_index_to_path(
    index: &IsLabelIndex,
    path: impl AsRef<std::path::Path>,
) -> io::Result<()> {
    atomic_save(index, path.as_ref())
}

/// Saves the legacy v2 stream format to a file path (atomic like
/// [`save_index_to_path`]). For interoperability with pre-v3 readers and
/// the CLI's `convert --to v2`.
pub fn save_index_v2_to_path(
    index: &IsLabelIndex,
    path: impl AsRef<std::path::Path>,
) -> io::Result<()> {
    atomic_save_with(path.as_ref(), |mut w| {
        save_index_body(index, &mut w)?;
        w.into_inner().map_err(|e| e.into_error())
    })
}

/// Loads from a file path, auto-detecting the artifact version from the
/// shared `"ISLX" + version` prefix: v3 goes through the flat-section
/// reader (fully validated, then materialized on the heap), v1/v2 through
/// the stream loader.
pub fn load_index_from_path(path: impl AsRef<std::path::Path>) -> io::Result<IsLabelIndex> {
    let path = path.as_ref();
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    let mut head = [0u8; 8];
    let is_v3 = match f.read_exact(&mut head) {
        Ok(()) => {
            &head[..4] == MAGIC
                && u32::from_le_bytes([head[4], head[5], head[6], head[7]]) == VERSION_V3
        }
        // Too short for any version; let the stream loader report it.
        Err(_) => false,
    };
    if is_v3 {
        drop(f);
        let reader = islabel_store::StoreReader::open(path)?;
        return v3::read_index(&reader);
    }
    io::Seek::seek(&mut f, io::SeekFrom::Start(0))?;
    load_index(&mut f)
}

/// Loads the artifact at `path` as a serving oracle, preferring the
/// zero-copy engine: a pristine v3 artifact is memory-mapped and served
/// in place ([`crate::MmapIndex`]); anything else — a v2 artifact, a v3
/// artifact with sealed dynamic updates, or a platform where mapping
/// fails — falls back to the fully materialized heap engine. Both engines
/// are bit-identical on queries, so callers only observe the difference
/// in [`DistanceOracle::engine_name`](crate::DistanceOracle::engine_name)
/// and load time.
pub fn try_load_oracle_from_path(
    path: impl AsRef<std::path::Path>,
) -> Result<crate::SharedOracle, crate::Error> {
    let path = path.as_ref();
    if let Ok(mapped) = crate::MmapIndex::open(path) {
        return Ok(std::sync::Arc::new(mapped));
    }
    Ok(std::sync::Arc::new(try_load_index_from_path(path)?))
}

/// Fully typed save to a file path: I/O failures surface as
/// [`Error::Persist`](crate::Error::Persist). Like [`save_index_to_path`]
/// the write is atomic (temp file + rename), and pending dynamic updates
/// are sealed into the artifact rather than refused (see
/// [`try_save_index`]).
pub fn try_save_index_to_path(
    index: &IsLabelIndex,
    path: impl AsRef<std::path::Path>,
) -> Result<(), crate::Error> {
    atomic_save(index, path.as_ref()).map_err(crate::Error::Persist)
}

fn atomic_save(index: &IsLabelIndex, path: &Path) -> io::Result<()> {
    atomic_save_with(path, |w| {
        let w = v3::write_index(index, w)?;
        w.into_inner().map_err(|e| e.into_error())
    })
}

/// The temp-file-fsync-rename-fsync-dir dance, generalized over the body
/// writer so the v2 stream and the v3 flat format share one durability
/// path. `write` receives the buffered temp file and must hand back the
/// inner [`File`](std::fs::File) for the pre-rename `sync_all`.
fn atomic_save_with(
    path: &Path,
    write: impl FnOnce(io::BufWriter<std::fs::File>) -> io::Result<std::fs::File>,
) -> io::Result<()> {
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "index".into());
    tmp_name.push(format!(".tmp-{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    let written = (|| {
        let w = io::BufWriter::new(std::fs::File::create(&tmp)?);
        let f = write(w)?;
        f.sync_all()
    })();
    if let Err(e) = written {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    std::fs::rename(&tmp, path)?;
    // Make the rename itself durable where directory fsync is supported;
    // best-effort elsewhere (the artifact is valid either way).
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Fully typed load: I/O and format failures surface as
/// [`Error::Persist`](crate::Error::Persist).
pub fn try_load_index_from_path(
    path: impl AsRef<std::path::Path>,
) -> Result<IsLabelIndex, crate::Error> {
    load_index_from_path(path).map_err(crate::Error::Persist)
}

/// Loads the artifact at `index_path` and attaches (recovering if needed)
/// the write-ahead log at `wal_path` — the one call a serving process makes
/// at startup to come back crash-consistent: sealed ops are already in the
/// artifact, the WAL's epoch-matched suffix is replayed on top, a torn tail
/// is truncated, and the returned index appends subsequent mutations to the
/// log. See [`IsLabelIndex::attach_wal`] for the exact recovery cases.
pub fn load_index_with_wal(
    index_path: impl AsRef<Path>,
    wal_path: impl AsRef<Path>,
) -> Result<(IsLabelIndex, wal::WalRecovery), crate::Error> {
    let mut index = try_load_index_from_path(index_path)?;
    let recovery = index.attach_wal(wal_path)?;
    Ok((index, recovery))
}

/// Outcome of [`compact_index_with_wal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactInfo {
    /// Dynamic updates folded into the rebuilt base index (sealed ops plus
    /// WAL-replayed ops).
    pub folded_ops: usize,
    /// Of those, how many came from WAL replay (vs. the artifact's sealed
    /// section).
    pub replayed_ops: usize,
    /// Vertices of the rebuilt index.
    pub num_vertices: usize,
    /// Edges of the rebuilt index.
    pub num_edges: usize,
    /// The fresh artifact-lineage epoch shared by the new artifact and the
    /// reset WAL.
    pub epoch: u64,
}

/// Folds all pending updates into a fresh pristine index on disk: load +
/// WAL recovery, rebuild from the materialized graph, **durably** save the
/// new artifact (temp file + rename + fsync), then reset the WAL to the new
/// epoch. The ordering makes every crash window safe: before the rename the
/// old artifact/WAL pair is intact; between the rename and the WAL reset
/// the leftover log's epoch no longer matches, so
/// [`load_index_with_wal`] discards it instead of replaying already-folded
/// ops twice.
///
/// This is the offline/CLI form; a serving process uses
/// `RebuildCoordinator` in `islabel-serve`, which additionally swaps the
/// live oracle between the save and the WAL reset.
pub fn compact_index_with_wal(
    index_path: impl AsRef<Path>,
    wal_path: impl AsRef<Path>,
) -> Result<CompactInfo, crate::Error> {
    let (index, recovery) = load_index_with_wal(index_path.as_ref(), wal_path.as_ref())?;
    let folded_ops = index.pending_ops();
    let graph = index.current_graph();
    let rebuilt = IsLabelIndex::try_build(&graph, *index.config())?;
    let epoch = rebuilt.artifact_epoch();
    drop(index); // release the old WAL writer before resetting the file
    try_save_index_to_path(&rebuilt, index_path)?;
    let mut w =
        wal::WalWriter::create(wal_path.as_ref(), epoch, 1).map_err(crate::Error::Persist)?;
    w.sync().map_err(crate::Error::Persist)?;
    Ok(CompactInfo {
        folded_ops,
        replayed_ops: recovery.replayed,
        num_vertices: rebuilt.stats().num_vertices,
        num_edges: rebuilt.stats().num_edges,
        epoch,
    })
}

// The CSR binary format reads to end-of-stream; frame it with a length.
fn read_csr_framed<R: Read>(reader: &mut R) -> io::Result<islabel_graph::CsrGraph> {
    let mut len = [0u8; 8];
    reader.read_exact(&mut len)?;
    let n = u64::from_le_bytes(len) as usize;
    let mut body = vec![0u8; n];
    reader.read_exact(&mut body)?;
    read_csr_binary(&mut &body[..])
}

fn write_csr_framed<W: Write>(g: &islabel_graph::CsrGraph, writer: &mut W) -> io::Result<()> {
    let mut body = Vec::new();
    write_csr_binary(g, &mut body)?;
    writer.write_all(&(body.len() as u64).to_le_bytes())?;
    writer.write_all(&body)
}

fn read_u32s<R: Read>(reader: &mut R, out: &mut [u32]) -> io::Result<()> {
    let mut body = vec![0u8; out.len() * 4];
    reader.read_exact(&mut body)?;
    for (i, chunk) in body.chunks_exact(4).enumerate() {
        out[i] = u32::from_le_bytes(chunk.try_into().unwrap());
    }
    Ok(())
}

fn read_u64s<R: Read>(reader: &mut R, out: &mut [u64]) -> io::Result<()> {
    let mut body = vec![0u8; out.len() * 8];
    reader.read_exact(&mut body)?;
    for (i, chunk) in body.chunks_exact(8).enumerate() {
        out[i] = u64::from_le_bytes(chunk.try_into().unwrap());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use islabel_graph::generators::{barabasi_albert, WeightModel};

    fn roundtrip(config: BuildConfig) -> (IsLabelIndex, IsLabelIndex) {
        let g = barabasi_albert(200, 3, WeightModel::UniformRange(1, 5), 13);
        let index = IsLabelIndex::build(&g, config);
        let mut buf = Vec::new();
        save_index(&index, &mut buf).unwrap();
        let loaded = load_index(&mut &buf[..]).unwrap();
        (index, loaded)
    }

    #[test]
    fn roundtrip_preserves_everything_queryable() {
        let (index, loaded) = roundtrip(BuildConfig::default());
        assert_eq!(loaded.labels(), index.labels());
        assert_eq!(loaded.hierarchy().gk(), index.hierarchy().gk());
        assert_eq!(loaded.hierarchy().levels(), index.hierarchy().levels());
        assert_eq!(loaded.stats().k, index.stats().k);
        assert_eq!(loaded.config().k_selection, index.config().k_selection);
        for i in 0..60u32 {
            let (s, t) = ((i * 7) % 200, (i * 11 + 3) % 200);
            assert_eq!(loaded.distance(s, t), index.distance(s, t), "({s}, {t})");
            assert_eq!(
                loaded.shortest_path(s, t),
                index.shortest_path(s, t),
                "path ({s}, {t})"
            );
        }
    }

    #[test]
    fn roundtrip_without_path_info() {
        let config = BuildConfig {
            keep_path_info: false,
            ..BuildConfig::default()
        };
        let (index, loaded) = roundtrip(config);
        assert_eq!(loaded.labels(), index.labels());
        assert!(!loaded.labels().has_path_info());
        assert_eq!(loaded.shortest_path(0, 1), None);
        assert_eq!(loaded.distance(0, 1), index.distance(0, 1));
    }

    #[test]
    fn roundtrip_full_hierarchy() {
        let (index, loaded) = roundtrip(BuildConfig::full());
        assert_eq!(loaded.stats().gk_vertices, 0);
        for i in 0..30u32 {
            let (s, t) = ((i * 13) % 200, (i * 29 + 1) % 200);
            assert_eq!(loaded.distance(s, t), index.distance(s, t));
        }
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(load_index(&mut &b"NOPE"[..]).is_err());
        let g = barabasi_albert(50, 2, WeightModel::Unit, 1);
        let index = IsLabelIndex::build(&g, BuildConfig::default());
        let mut buf = Vec::new();
        save_index(&index, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load_index(&mut &buf[..]).is_err());
    }

    #[test]
    fn non_pristine_index_roundtrips_with_sealed_ops() {
        // The historical refusal to persist an updated index is gone: the
        // overlay op log is sealed into the artifact and replayed on load,
        // reconstructing the exact overlay.
        let g = barabasi_albert(150, 3, WeightModel::Unit, 1);
        let mut index = IsLabelIndex::build(&g, BuildConfig::default());
        index.insert_edge(0, 30, 1);
        let u = index.insert_vertex(&[(0, 2), (30, 1)]);
        let victim = index.hierarchy().gk_members()[0];
        index.delete_vertex(victim);
        assert!(index.has_updates());

        let mut buf = Vec::new();
        save_index(&index, &mut buf).unwrap();
        let loaded = load_index(&mut &buf[..]).unwrap();
        assert!(loaded.has_updates());
        assert_eq!(loaded.num_vertices(), index.num_vertices());
        assert_eq!(loaded.artifact_epoch(), index.artifact_epoch());
        assert_eq!(loaded.is_stale(), index.is_stale());
        for i in 0..40u32 {
            let (s, t) = ((i * 7) % 151, (i * 11 + 3) % 151);
            assert_eq!(loaded.try_distance(s, t), index.try_distance(s, t));
        }
        assert_eq!(loaded.try_distance(u, 30), index.try_distance(u, 30));
    }

    #[test]
    fn pristine_artifacts_mint_distinct_epochs() {
        let g = barabasi_albert(40, 2, WeightModel::Unit, 3);
        let a = IsLabelIndex::build(&g, BuildConfig::default());
        let b = IsLabelIndex::build(&g, BuildConfig::default());
        assert_ne!(a.artifact_epoch(), b.artifact_epoch());
        let mut buf = Vec::new();
        save_index(&a, &mut buf).unwrap();
        assert_eq!(
            load_index(&mut &buf[..]).unwrap().artifact_epoch(),
            a.artifact_epoch()
        );
    }

    #[test]
    fn path_save_is_atomic_and_types_io_errors() {
        let g = barabasi_albert(50, 2, WeightModel::Unit, 1);
        let mut index = IsLabelIndex::build(&g, BuildConfig::default());
        index.insert_edge(0, 30, 1);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("islabel-atomic-{}.islx", std::process::id()));

        // A non-pristine save now goes through and replaces the artifact
        // in place (temp file + rename).
        let pristine = IsLabelIndex::build(&g, BuildConfig::default());
        save_index_to_path(&pristine, &path).unwrap();
        try_save_index_to_path(&index, &path).unwrap();
        let loaded = load_index_from_path(&path).unwrap();
        assert!(loaded.has_updates());
        assert_eq!(loaded.try_distance(0, 30), index.try_distance(0, 30));

        // An unwritable destination is a typed error, leaves the existing
        // artifact untouched, and leaves no temp file behind.
        let bad_dest = dir.join("islabel-no-such-dir").join("x.islx");
        assert!(matches!(
            try_save_index_to_path(&index, &bad_dest),
            Err(crate::Error::Persist(_))
        ));
        assert!(load_index_from_path(&path).is_ok());
        let strays = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                e.file_name()
                    .to_string_lossy()
                    .starts_with(&format!("islabel-atomic-{}.islx.tmp", std::process::id()))
            })
            .count();
        assert_eq!(strays, 0, "temp file leaked");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn single_byte_corruption_never_panics() {
        // Flip one byte at a time across the artifact: loading must either
        // fail cleanly or succeed (a flip in label distance bytes can still
        // decode) — but never panic or allocate absurdly.
        let g = barabasi_albert(40, 2, WeightModel::UniformRange(1, 3), 2);
        let index = IsLabelIndex::build(&g, BuildConfig::default());
        let mut buf = Vec::new();
        save_index(&index, &mut buf).unwrap();
        let step = (buf.len() / 97).max(1);
        for pos in (0..buf.len()).step_by(step) {
            let mut corrupt = buf.clone();
            corrupt[pos] ^= 0xA5;
            let result = std::panic::catch_unwind(|| load_index(&mut &corrupt[..]));
            match result {
                Ok(_loaded_or_error) => {}
                Err(_) => panic!("panicked on corruption at byte {pos}"),
            }
        }
    }

    #[test]
    fn file_roundtrip() {
        let g = barabasi_albert(80, 2, WeightModel::Unit, 5);
        let index = IsLabelIndex::build(&g, BuildConfig::default());
        let path =
            std::env::temp_dir().join(format!("islabel-persist-{}.islx", std::process::id()));
        save_index_to_path(&index, &path).unwrap();
        let loaded = load_index_from_path(&path).unwrap();
        assert_eq!(loaded.labels(), index.labels());
        std::fs::remove_file(&path).ok();
    }
}
