//! The workspace's only SIMD `unsafe`: vector merge-join kernels and the
//! prefetch hint, confined here behind safe entry points.
//!
//! # Safety design
//!
//! Everything unsafe in this file is one of exactly three shapes, each
//! with a local `// SAFETY:` justification at the call site:
//!
//! 1. **Unaligned vector loads** (`_mm256_loadu_si256` / `_mm_loadu_si128`
//!    / `vld1q_u32`) from a slice. Every load is dominated by an explicit
//!    bounds check (`j + LANES <= slice.len()`), uses the unaligned form
//!    (no alignment obligation), and reads only plain-old-data (`u32` /
//!    `u64`) — no validity or aliasing conditions beyond the borrow the
//!    slice already holds.
//! 2. **Calling a `#[target_feature]` kernel.** The AVX2 kernel is only
//!    entered after `is_x86_feature_detected!("avx2")`; SSE2 and NEON are
//!    architectural baselines of x86_64 and aarch64 respectively, so on
//!    those targets the feature is unconditionally present.
//! 3. **The prefetch hint**, which performs no memory access at all: it
//!    is architecturally defined to be fault-free on any address.
//!
//! No pointer escapes this module, no mutable state is shared, and every
//! kernel's result is pinned bit-identical to the scalar
//! [`crate::query::intersect_min`] by the proptest equivalence suite
//! (`tests/kernel_simd.rs`) across all dispatch tiers.
//!
//! # Kernel shape
//!
//! All three ISA kernels run the same branchless-skip merge-join: the
//! probe `short[i]` is broadcast and compared against a LANES-wide window
//! of the longer label; a movemask (or horizontal reduction on NEON) of
//! the `< probe` lanes tells how far the window cursor may skip — the
//! lanes below a probe always form a prefix of the window because
//! ancestors are strictly ascending — and an equality mask extracts the
//! at-most-one match per probe. Matches are accumulated in ascending
//! ancestor order with the scalar kernel's strict `sum < best` rule, so
//! distance *and* witness come out identical. The AVX2 kernel adds a
//! dense-overlap fast path: when the next eight entries of both labels
//! are equal it folds all eight `d(s,w) + d(w,t)` candidates with 4×u64
//! vector saturating adds and a vector min-reduction.

#![allow(unsafe_code)]

#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
use super::merge_tail;
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
use crate::label::LabelView;
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
use islabel_graph::{Dist, VertexId, INF};

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;

/// Hints the cache hierarchy to pull `*p` toward L1. No memory access is
/// performed: prefetch instructions are architecturally fault-free on
/// any address, so this is safe to call with any pointer (the public
/// wrapper [`super::prefetch_index`] bounds-checks anyway so the hint is
/// never wasted on a line we cannot own).
#[inline(always)]
pub(crate) fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` performs no memory access and cannot fault
    // on any address — it is a pure cache hint (shape 3 in the module
    // safety design).
    unsafe {
        _mm_prefetch(p.cast::<i8>(), _MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// 8-lane AVX2 intersection; falls back to the scalar reference when the
/// CPU lacks AVX2 (so a forced tier can never fault).
#[cfg(target_arch = "x86_64")]
pub(super) fn intersect_min_avx2(
    short: LabelView<'_>,
    long: LabelView<'_>,
) -> (Dist, Option<VertexId>) {
    if !std::arch::is_x86_feature_detected!("avx2") {
        return crate::query::intersect_min(short, long);
    }
    // SAFETY: AVX2 presence was verified on this CPU immediately above
    // (shape 2 in the module safety design).
    unsafe { avx2_merge(short.ancestors, short.dists, long.ancestors, long.dists) }
}

/// 4-lane SSE2 intersection. SSE2 needs no detection: it is part of the
/// x86_64 baseline ISA.
#[cfg(target_arch = "x86_64")]
pub(super) fn intersect_min_sse2(
    short: LabelView<'_>,
    long: LabelView<'_>,
) -> (Dist, Option<VertexId>) {
    // SAFETY: SSE2 is an architectural baseline of x86_64 — every CPU
    // that can reach this instruction executes it (shape 2 in the module
    // safety design).
    unsafe { sse2_merge(short.ancestors, short.dists, long.ancestors, long.dists) }
}

/// 4-lane NEON intersection. NEON needs no detection: it is part of the
/// aarch64 baseline ISA.
#[cfg(target_arch = "aarch64")]
pub(super) fn intersect_min_neon(
    short: LabelView<'_>,
    long: LabelView<'_>,
) -> (Dist, Option<VertexId>) {
    // SAFETY: NEON is an architectural baseline of aarch64 — every CPU
    // that can reach this instruction executes it (shape 2 in the module
    // safety design).
    unsafe { neon_merge(short.ancestors, short.dists, long.ancestors, long.dists) }
}

/// The AVX2 merge-join: probe broadcast vs 8-lane windows, movemask skip
/// extraction, and the dense-overlap vector min-reduction fast path.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn avx2_merge(
    sa: &[VertexId],
    sd: &[Dist],
    la: &[VertexId],
    ld: &[Dist],
) -> (Dist, Option<VertexId>) {
    let mut best = INF;
    let mut witness = None;
    let (mut i, mut j) = (0usize, 0usize);
    // u32 compares via signed intrinsics: XOR the sign bit into both
    // operands, which maps unsigned order onto signed order.
    let sign32 = _mm256_set1_epi32(i32::MIN);
    while i < sa.len() && j + 8 <= la.len() {
        // SAFETY: `j + 8 <= la.len()` (loop guard) — unaligned 8×u32
        // load in bounds (shape 1 in the module safety design).
        let vwin = unsafe { _mm256_loadu_si256(la.as_ptr().add(j).cast()) };
        if i + 8 <= sa.len() {
            // SAFETY: `i + 8 <= sa.len()` checked immediately above —
            // unaligned 8×u32 load in bounds (shape 1).
            let va = unsafe { _mm256_loadu_si256(sa.as_ptr().add(i).cast()) };
            let eqm = _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(va, vwin)));
            if eqm == 0xFF {
                // Dense-overlap fast path: the next eight entries of
                // both labels are identical ancestors — fold all eight
                // distance sums with one vector min-reduction.
                avx2_fold_equal_run(
                    &sa[i..i + 8],
                    &sd[i..i + 8],
                    &ld[j..j + 8],
                    &mut best,
                    &mut witness,
                );
                i += 8;
                j += 8;
                continue;
            }
        }
        let probe = sa[i];
        let vp = _mm256_set1_epi32(probe as i32);
        let lt = _mm256_cmpgt_epi32(_mm256_xor_si256(vp, sign32), _mm256_xor_si256(vwin, sign32));
        let ltm = _mm256_movemask_ps(_mm256_castsi256_ps(lt)) as u32;
        if ltm == 0xFF {
            // The whole window is strictly below the probe: skip it
            // without consuming the probe.
            j += 8;
            continue;
        }
        let eqm = _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(vp, vwin))) as u32;
        if eqm != 0 {
            let p = j + eqm.trailing_zeros() as usize;
            let sum = sd[i].saturating_add(ld[p]);
            if sum < best {
                best = sum;
                witness = Some(probe);
            }
            j = p + 1;
        } else {
            // Strictly ascending ancestors make the `< probe` lanes a
            // prefix of the window; its popcount is the skip distance.
            j += ltm.count_ones() as usize;
        }
        i += 1;
    }
    merge_tail(sa, sd, la, ld, i, j, &mut best, &mut witness);
    (best, witness)
}

/// Folds an 8-entry equal-ancestor run: vector saturating `u64` adds of
/// the two distance columns, a vector min-reduction of the eight sums,
/// and — only when the run improves `best` — a scalar scan for the first
/// lane achieving the minimum (the witness the scalar strict-`<`
/// accumulation would keep).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn avx2_fold_equal_run(
    anc8: &[VertexId],
    sd8: &[Dist],
    ld8: &[Dist],
    best: &mut Dist,
    witness: &mut Option<VertexId>,
) {
    debug_assert!(anc8.len() == 8 && sd8.len() == 8 && ld8.len() == 8);
    let sign64 = _mm256_set1_epi64x(i64::MIN);
    // SAFETY: `sd8` and `ld8` hold exactly 8 u64s (asserted above), so
    // lanes 0–3 and 4–7 are both in-bounds unaligned loads (shape 1).
    let (s0, s1, l0, l1) = unsafe {
        (
            _mm256_loadu_si256(sd8.as_ptr().cast()),
            _mm256_loadu_si256(sd8.as_ptr().add(4).cast()),
            _mm256_loadu_si256(ld8.as_ptr().cast()),
            _mm256_loadu_si256(ld8.as_ptr().add(4).cast()),
        )
    };
    let sum0 = avx2_saturating_sum(s0, l0, sign64);
    let sum1 = avx2_saturating_sum(s1, l1, sign64);
    // Vector min-reduction: lanes 0–3 vs 4–7, then cross-half, then
    // within-half, leaving the minimum in every lane.
    let m = avx2_min_u64(sum0, sum1, sign64);
    let m = avx2_min_u64(m, _mm256_permute4x64_epi64::<0b01_00_11_10>(m), sign64);
    let m = avx2_min_u64(m, _mm256_shuffle_epi32::<0b01_00_11_10>(m), sign64);
    let run_min = _mm256_extract_epi64::<0>(m) as u64;
    if run_min < *best {
        *best = run_min;
        let mut sums = [0u64; 8];
        // SAFETY: `sums` is 8 u64s — room for both 4-lane stores
        // (shape 1).
        unsafe {
            _mm256_storeu_si256(sums.as_mut_ptr().cast(), sum0);
            _mm256_storeu_si256(sums.as_mut_ptr().add(4).cast(), sum1);
        }
        for k in 0..8 {
            if sums[k] == run_min {
                *witness = Some(anc8[k]);
                break;
            }
        }
    }
}

/// Lane-wise `u64::saturating_add`: 4×u64 add, detect unsigned overflow
/// (`sum < a` via sign-biased signed compare), OR overflowed lanes to
/// all-ones (= `u64::MAX`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
fn avx2_saturating_sum(a: __m256i, b: __m256i, sign64: __m256i) -> __m256i {
    let sum = _mm256_add_epi64(a, b);
    let overflow = _mm256_cmpgt_epi64(_mm256_xor_si256(a, sign64), _mm256_xor_si256(sum, sign64));
    _mm256_or_si256(sum, overflow)
}

/// Lane-wise unsigned `u64` minimum via sign-biased compare + blend.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
fn avx2_min_u64(a: __m256i, b: __m256i, sign64: __m256i) -> __m256i {
    let a_gt = _mm256_cmpgt_epi64(_mm256_xor_si256(a, sign64), _mm256_xor_si256(b, sign64));
    _mm256_blendv_epi8(a, b, a_gt)
}

/// The SSE2 merge-join: same skip structure as AVX2 at 4 lanes, without
/// the equal-run fast path (SSE2 lacks the 64-bit compare it needs).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
fn sse2_merge(
    sa: &[VertexId],
    sd: &[Dist],
    la: &[VertexId],
    ld: &[Dist],
) -> (Dist, Option<VertexId>) {
    let mut best = INF;
    let mut witness = None;
    let (mut i, mut j) = (0usize, 0usize);
    let sign32 = _mm_set1_epi32(i32::MIN);
    while i < sa.len() && j + 4 <= la.len() {
        // SAFETY: `j + 4 <= la.len()` (loop guard) — unaligned 4×u32
        // load in bounds (shape 1 in the module safety design).
        let vwin = unsafe { _mm_loadu_si128(la.as_ptr().add(j).cast()) };
        let probe = sa[i];
        let vp = _mm_set1_epi32(probe as i32);
        let lt = _mm_cmpgt_epi32(_mm_xor_si128(vp, sign32), _mm_xor_si128(vwin, sign32));
        let ltm = _mm_movemask_ps(_mm_castsi128_ps(lt)) as u32;
        if ltm == 0xF {
            j += 4;
            continue;
        }
        let eqm = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(vp, vwin))) as u32;
        if eqm != 0 {
            let p = j + eqm.trailing_zeros() as usize;
            let sum = sd[i].saturating_add(ld[p]);
            if sum < best {
                best = sum;
                witness = Some(probe);
            }
            j = p + 1;
        } else {
            j += ltm.count_ones() as usize;
        }
        i += 1;
    }
    merge_tail(sa, sd, la, ld, i, j, &mut best, &mut witness);
    (best, witness)
}

/// The NEON merge-join: 4 lanes with horizontal reductions standing in
/// for movemask (`vaddvq` of the shifted compare counts the `< probe`
/// prefix; `vmaxvq` of the equality compare detects the match, whose
/// lane is exactly that prefix length).
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
fn neon_merge(
    sa: &[VertexId],
    sd: &[Dist],
    la: &[VertexId],
    ld: &[Dist],
) -> (Dist, Option<VertexId>) {
    use core::arch::aarch64::*;
    let mut best = INF;
    let mut witness = None;
    let (mut i, mut j) = (0usize, 0usize);
    while i < sa.len() && j + 4 <= la.len() {
        let probe = sa[i];
        // SAFETY: `j + 4 <= la.len()` (loop guard) — unaligned 4×u32
        // load in bounds (shape 1 in the module safety design).
        let vwin = unsafe { vld1q_u32(la.as_ptr().add(j)) };
        let vp = vdupq_n_u32(probe);
        // All-ones lanes where window < probe; shift to 0/1 and sum to
        // count the prefix of lanes strictly below the probe.
        let below = vaddvq_u32(vshrq_n_u32::<31>(vcltq_u32(vwin, vp))) as usize;
        if below == 4 {
            j += 4;
            continue;
        }
        if vmaxvq_u32(vceqq_u32(vwin, vp)) != 0 {
            let p = j + below;
            let sum = sd[i].saturating_add(ld[p]);
            if sum < best {
                best = sum;
                witness = Some(probe);
            }
            j = p + 1;
        } else {
            j += below;
        }
        i += 1;
    }
    merge_tail(sa, sd, la, ld, i, j, &mut best, &mut witness);
    (best, witness)
}
