//! Runtime-dispatched query kernels: the SIMD label intersection and the
//! software-prefetch helpers behind the session hot path.
//!
//! The paper's query cost splits into Equation 1 (a merge-join over two
//! ancestor-sorted labels) and Algorithm 1 (the bounded bidirectional
//! Dijkstra over `G_k`). PR 4 made the search stage cache-dense
//! ([`crate::dense`]); this module vectorizes the intersection stage and
//! adds the memory-level parallelism hints the search stage can use:
//!
//! * [`intersect_min_auto`] — the **one** dispatching entry point every
//!   engine's hot path routes through (`seeded_search`, and therefore the
//!   IS-LABEL, di-IS-LABEL, patched-overlay, and mmap sessions). It picks
//!   a [`KernelTier`] once per process and runs the matching kernel.
//! * [`intersect_min_at`] — the same computation pinned to an explicit
//!   tier; the conformance suites and `query_hotpath --intersect` use it
//!   to hold every tier bit-identical to the scalar reference.
//! * [`prefetch_index`] — a safe, bounds-checked wrapper over the
//!   architecture's prefetch hint, used by [`crate::dense`] to pull the
//!   next CSR adjacency row and the neighbor slab lines toward L1 while
//!   the current row is being relaxed.
//!
//! ## Dispatch tiers
//!
//! | Tier     | Arch     | Detection                          | Kernel |
//! |----------|----------|------------------------------------|--------|
//! | `avx2`   | x86_64   | `is_x86_feature_detected!("avx2")` | 8-lane compare + movemask, 4×u64 vector min-reduction |
//! | `sse2`   | x86_64   | baseline (always present)          | 4-lane compare + movemask |
//! | `neon`   | aarch64  | baseline (always present)          | 4-lane compare + horizontal reductions |
//! | `scalar` | any      | mandatory fallback                 | [`crate::query::intersect_min_adaptive`] |
//!
//! The tier is resolved once and cached in a process-wide atomic:
//! `ISLABEL_KERNEL_TIER` (`scalar` / `sse2` / `avx2` / `neon` / `auto`)
//! overrides detection — CI runs the whole test suite under
//! `ISLABEL_KERNEL_TIER=scalar` so the fallback cannot rot on
//! SIMD-capable runners — and [`force_tier`] is the programmatic hook the
//! per-tier test and bench loops use. Requesting a tier the running CPU
//! cannot execute falls back to `scalar` (never a `SIGILL`).
//!
//! Every tier returns **bit-identical** `(distance, witness)` results:
//! the SIMD kernels accumulate matches in ascending-ancestor order with
//! the same strict `sum < best` rule as the scalar merge-join, and
//! heavily skewed label pairs (`|long| / |short| ≥`
//! [`GALLOP_CROSSOVER`]) delegate to the
//! scalar galloping path at every tier, where an `O(|short| · log
//! |long|)` skip-search beats any linear scan, vectorized or not.
//!
//! All intrinsics (and the workspace's only new `unsafe`) are confined to
//! the one SAFETY-documented `simd` submodule; this module and the rest
//! of `islabel-core` stay `deny(unsafe_code)`, and `islabel-lint`'s
//! confinement rule pins the boundary. The dispatch and kernel functions
//! are part of the steady-state **alloc-free zone** (`lint.toml`,
//! `tests/alloc_free.rs`): resolving the tier reads the environment and
//! therefore allocates, so sessions resolve it at construction time —
//! see [`active_tier`].

mod simd;

use crate::label::LabelView;
use crate::query::GALLOP_CROSSOVER;
use islabel_graph::{Dist, VertexId};
use std::sync::atomic::{AtomicU8, Ordering};

/// One implementation level of the intersection kernel, from the scalar
/// reference up to the widest vector unit the build can name. See the
/// [module docs](self) for the dispatch table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum KernelTier {
    /// The scalar adaptive/galloping merge-join — the mandatory fallback,
    /// available everywhere and the reference all other tiers must match.
    Scalar = 0,
    /// 4-lane SSE2 (x86_64 baseline, so "supported" means "x86_64").
    Sse2 = 1,
    /// 8-lane AVX2 with a 4×u64 vector min-reduction fast path
    /// (x86_64, runtime-detected).
    Avx2 = 2,
    /// 4-lane NEON (aarch64 baseline).
    Neon = 3,
}

impl KernelTier {
    /// Every tier, scalar first — the order per-tier test and bench loops
    /// iterate in.
    pub const ALL: [KernelTier; 4] = [
        KernelTier::Scalar,
        KernelTier::Sse2,
        KernelTier::Avx2,
        KernelTier::Neon,
    ];

    /// The tier's lowercase name, as accepted by `ISLABEL_KERNEL_TIER`
    /// and emitted in bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Sse2 => "sse2",
            KernelTier::Avx2 => "avx2",
            KernelTier::Neon => "neon",
        }
    }

    /// Parses a tier name (case-insensitive). `"auto"` is not a tier —
    /// callers map it to [`detected_tier`] themselves.
    pub fn parse(s: &str) -> Option<KernelTier> {
        KernelTier::ALL
            .into_iter()
            .find(|t| s.eq_ignore_ascii_case(t.name()))
    }

    /// Whether the running CPU can execute this tier. Scalar is always
    /// supported; SSE2 and NEON are baseline features of their
    /// architectures; AVX2 is runtime-detected.
    pub fn is_supported(self) -> bool {
        match self {
            KernelTier::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            KernelTier::Sse2 => true,
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "aarch64")]
            KernelTier::Neon => true,
            _ => false,
        }
    }

    fn from_u8(v: u8) -> KernelTier {
        match v {
            1 => KernelTier::Sse2,
            2 => KernelTier::Avx2,
            3 => KernelTier::Neon,
            _ => KernelTier::Scalar,
        }
    }
}

/// The best tier the running CPU supports (the `auto` resolution).
pub fn detected_tier() -> KernelTier {
    if KernelTier::Avx2.is_supported() {
        KernelTier::Avx2
    } else if KernelTier::Neon.is_supported() {
        KernelTier::Neon
    } else if KernelTier::Sse2.is_supported() {
        KernelTier::Sse2
    } else {
        KernelTier::Scalar
    }
}

/// Sentinel for "not resolved yet" in the process-wide tier cache.
const TIER_UNSET: u8 = u8::MAX;

/// Process-wide resolved tier. Written once by [`init_tier`] (or by
/// [`force_tier`]), read on every dispatched intersection.
static ACTIVE_TIER: AtomicU8 = AtomicU8::new(TIER_UNSET);

/// The tier [`intersect_min_auto`] dispatches to, resolving and caching
/// it on first use (environment override, then CPU detection).
///
/// Resolution reads `ISLABEL_KERNEL_TIER` and therefore allocates;
/// every session constructor calls this before its first query so the
/// steady-state path — which the counting-allocator audit arms *after*
/// construction — only ever performs the relaxed atomic load.
#[inline]
pub fn active_tier() -> KernelTier {
    // ordering: Relaxed — the cache is an idempotent latch: every thread
    // that races the first resolution computes the same value, and no
    // other memory depends on observing the store.
    match ACTIVE_TIER.load(Ordering::Relaxed) {
        TIER_UNSET => init_tier(),
        v => KernelTier::from_u8(v),
    }
}

#[cold]
fn init_tier() -> KernelTier {
    let t = resolve_tier();
    // ordering: Relaxed — idempotent latch, see `active_tier`.
    ACTIVE_TIER.store(t as u8, Ordering::Relaxed);
    t
}

/// Resolves the tier from the environment (`ISLABEL_KERNEL_TIER`) or CPU
/// detection. An explicitly named tier the CPU cannot execute clamps to
/// `scalar` — a misconfigured override must degrade, never `SIGILL`.
/// Unknown values (and `auto`) mean "detect".
fn resolve_tier() -> KernelTier {
    match std::env::var("ISLABEL_KERNEL_TIER") {
        Ok(name) => match KernelTier::parse(&name) {
            Some(t) if t.is_supported() => t,
            Some(_) => KernelTier::Scalar,
            None => detected_tier(),
        },
        Err(_) => detected_tier(),
    }
}

/// Installs `tier` as the process-wide dispatch tier (the forced-tier
/// hook the per-tier conformance tests, the allocation audit, and
/// `query_hotpath`'s per-tier loops use); `None` re-resolves from the
/// environment and CPU. Unsupported tiers clamp to scalar. Returns what
/// was installed.
///
/// Process-global: concurrent sessions all see the change. Since every
/// tier is bit-identical this can never change an answer, only a speed.
pub fn force_tier(tier: Option<KernelTier>) -> KernelTier {
    let t = match tier {
        Some(t) if t.is_supported() => t,
        Some(_) => KernelTier::Scalar,
        None => resolve_tier(),
    };
    // ordering: Relaxed — idempotent latch, see `active_tier`.
    ACTIVE_TIER.store(t as u8, Ordering::Relaxed);
    t
}

/// Equation 1 through the dispatched kernel: exactly
/// [`crate::query::intersect_min`]'s `(µ, witness)` on every input, at
/// the speed of the best tier the CPU supports. This is the single entry
/// point every session hot path routes through.
#[inline]
pub fn intersect_min_auto(a: LabelView<'_>, b: LabelView<'_>) -> (Dist, Option<VertexId>) {
    intersect_min_at(active_tier(), a, b)
}

/// [`intersect_min_auto`] pinned to an explicit tier. Unsupported tiers
/// fall back to the scalar reference (never `SIGILL`), which is also
/// what makes the per-tier test loops safe to run everywhere.
#[inline]
pub fn intersect_min_at(
    tier: KernelTier,
    a: LabelView<'_>,
    b: LabelView<'_>,
) -> (Dist, Option<VertexId>) {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    // Heavily skewed pairs gallop in scalar at every tier: the
    // O(|short| · log |long|) skip-search beats a linear scan even at 8
    // lanes per compare. Same crossover as the scalar adaptive kernel,
    // so the scalar tier is exactly `intersect_min_adaptive`.
    if short.len().saturating_mul(GALLOP_CROSSOVER) <= long.len() {
        return crate::query::intersect_min_adaptive(a, b);
    }
    match tier {
        KernelTier::Scalar => crate::query::intersect_min(a, b),
        #[cfg(target_arch = "x86_64")]
        KernelTier::Sse2 => simd::intersect_min_sse2(short, long),
        #[cfg(target_arch = "x86_64")]
        KernelTier::Avx2 => simd::intersect_min_avx2(short, long),
        #[cfg(target_arch = "aarch64")]
        KernelTier::Neon => simd::intersect_min_neon(short, long),
        _ => crate::query::intersect_min(a, b),
    }
}

/// Best-effort prefetch of `slice[i]` into the nearest cache level. Safe
/// and bounds-checked: out-of-range indexes are a no-op, as is the whole
/// call on architectures without a stable prefetch intrinsic. This is a
/// *hint* — it never reads memory, so it cannot fault, alias, or change
/// any result; it only overlaps a future miss with present work.
#[inline(always)]
pub fn prefetch_index<T>(slice: &[T], i: usize) {
    if i < slice.len() {
        simd::prefetch_read(slice.as_ptr().wrapping_add(i));
    }
}

/// The scalar continuation shared by every SIMD kernel: finishes the
/// merge-join from positions `(i, j)` with the same strict `sum < best`
/// accumulation as [`crate::query::intersect_min`], so vector main loop
/// plus this tail is bit-identical to the scalar reference.
///
/// The argument list is two SoA label views plus resume/accumulator
/// state; bundling them into structs would only add packing/unpacking at
/// every SIMD call site of this leaf helper.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn merge_tail(
    sa: &[VertexId],
    sd: &[Dist],
    la: &[VertexId],
    ld: &[Dist],
    mut i: usize,
    mut j: usize,
    best: &mut Dist,
    witness: &mut Option<VertexId>,
) {
    while i < sa.len() && j < la.len() {
        let (av, bv) = (sa[i], la[j]);
        if av < bv {
            i += 1;
        } else if bv < av {
            j += 1;
        } else {
            let sum = sd[i].saturating_add(ld[j]);
            if sum < *best {
                *best = sum;
                *witness = Some(av);
            }
            i += 1;
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view<'a>(anc: &'a [u32], dist: &'a [u64]) -> LabelView<'a> {
        LabelView {
            ancestors: anc,
            dists: dist,
            first_hops: anc,
        }
    }

    #[test]
    fn tier_names_roundtrip() {
        for t in KernelTier::ALL {
            assert_eq!(KernelTier::parse(t.name()), Some(t));
            assert_eq!(KernelTier::parse(&t.name().to_uppercase()), Some(t));
        }
        assert_eq!(KernelTier::parse("auto"), None);
        assert_eq!(KernelTier::parse(""), None);
    }

    #[test]
    fn detection_is_sane() {
        // Scalar is unconditionally supported and detection returns a
        // supported tier.
        assert!(KernelTier::Scalar.is_supported());
        assert!(detected_tier().is_supported());
        #[cfg(target_arch = "x86_64")]
        assert!(KernelTier::Sse2.is_supported());
    }

    #[test]
    fn forcing_installs_and_clamps() {
        let installed = force_tier(Some(KernelTier::Scalar));
        assert_eq!(installed, KernelTier::Scalar);
        assert_eq!(active_tier(), KernelTier::Scalar);
        // Unsupported requests clamp to scalar rather than faulting.
        for t in KernelTier::ALL {
            let got = force_tier(Some(t));
            assert!(got == t || got == KernelTier::Scalar);
            assert!(got.is_supported());
        }
        force_tier(None);
        assert!(active_tier().is_supported());
    }

    #[test]
    fn every_tier_matches_reference_on_smoke_shapes() {
        let a_anc: Vec<u32> = (0..97).map(|i| i * 3).collect();
        let a_dist: Vec<u64> = (0..97).map(|i| (i as u64 * 7) % 31).collect();
        let b_anc: Vec<u32> = (0..80).map(|i| i * 4 + 2).collect();
        let b_dist: Vec<u64> = (0..80).map(|i| (i as u64 * 5) % 17).collect();
        let (a, b) = (view(&a_anc, &a_dist), view(&b_anc, &b_dist));
        let reference = crate::query::intersect_min(a, b);
        for t in KernelTier::ALL {
            assert_eq!(intersect_min_at(t, a, b), reference, "tier {}", t.name());
            assert_eq!(intersect_min_at(t, b, a), reference, "tier {}", t.name());
        }
    }

    #[test]
    fn prefetch_is_a_safe_noop_observably() {
        let v: Vec<u64> = (0..100).collect();
        prefetch_index(&v, 0);
        prefetch_index(&v, 99);
        prefetch_index(&v, 100); // out of range: no-op
        prefetch_index::<u64>(&[], 0);
        assert_eq!(v[99], 99);
    }
}
