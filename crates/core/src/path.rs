//! Shortest-*path* reconstruction (paper Section 8.1).
//!
//! Distance queries only need label values; path queries additionally need
//! to unfold two kinds of compressed steps:
//!
//! * **Augmenting edges**: an edge `(u, w)` created while peeling `v`
//!   abbreviates the 2-hop path `⟨u, v, w⟩`; the builder recorded `v` as the
//!   edge's *via* vertex. Expansion recurses because `(u, v)` and `(v, w)`
//!   may themselves be augmenting edges of lower levels — both are archived
//!   in `v`'s peel adjacency, exactly as the paper prescribes ("(u, v) and
//!   (v, w) are edges in G_{i−1}, which in turn can be augmenting edges").
//! * **Label entries**: the entry `(w, d)` in `label(v)` stores the *first
//!   hop* `u` of the optimal level-increasing chain; the remainder of the
//!   chain is read from `label(u)`, recursively ("we recursively form
//!   queries until the intermediate vertex in a label entry is φ").
//!
//! The reconstructed path is a real path of `G`: every consecutive pair is
//! an original edge, and the weights sum to the reported distance (asserted
//! in debug builds and in the test suite).

use crate::hierarchy::VertexHierarchy;
use crate::index::IsLabelIndex;
use crate::query::{Meeting, SearchResult, SEED_PARENT};
use islabel_graph::adjacency::NO_VIA;
use islabel_graph::{CsrGraph, Dist, FxHashMap, VertexId};

/// A reconstructed shortest path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// The vertices in order, `s` first and `t` last (a single vertex when
    /// `s == t`).
    pub vertices: Vec<VertexId>,
    /// Total length (equals the corresponding distance query).
    pub length: Dist,
}

impl Path {
    /// Number of edges on the path.
    pub fn num_edges(&self) -> usize {
        self.vertices.len().saturating_sub(1)
    }

    /// Iterates consecutive vertex pairs.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices.windows(2).map(|w| (w[0], w[1]))
    }

    /// Checks the path against a graph: every step must be an edge and the
    /// weights must sum to `length`. Used pervasively by tests.
    pub fn validate_against(&self, g: &CsrGraph) -> Result<(), String> {
        let mut total: Dist = 0;
        for (u, v) in self.edges() {
            match g.edge_weight(u, v) {
                Some(w) => total += w as Dist,
                None => return Err(format!("({u}, {v}) is not an edge")),
            }
        }
        if total != self.length {
            return Err(format!(
                "edge weights sum to {total}, path claims {}",
                self.length
            ));
        }
        Ok(())
    }
}

/// Reconstructs the path realizing `dist`, using the meeting information of
/// a path-tracked search.
pub(crate) fn reconstruct(
    index: &IsLabelIndex,
    s: VertexId,
    t: VertexId,
    dist: Dist,
    result: &SearchResult,
) -> Option<Path> {
    let h = &index.hierarchy;
    let mut vertices = match result.meeting {
        Meeting::None => return None,
        Meeting::Labels(w) => {
            // Optimal path goes s → w → t entirely through label chains.
            let mut out = label_path(index, s, w)?;
            let back = label_path(index, t, w)?;
            append_reversed(&mut out, back);
            out
        }
        Meeting::Search(m) => {
            // s →(label)→ seed_f →(G_k)→ m →(G_k)→ seed_r →(label)→ t.
            let fchain = walk_to_seed(&result.parents_f, m)?;
            let rchain = walk_to_seed(&result.parents_r, m)?;
            let mut out = label_path(index, s, fchain[0])?;
            for w in fchain.windows(2) {
                expand_gk_edge(h, w[0], w[1], &mut out);
            }
            // rchain runs seed_r .. m; traverse it backwards from m.
            for w in rchain.windows(2).rev() {
                expand_gk_edge(h, w[1], w[0], &mut out);
            }
            let back = label_path(index, t, rchain[0])?;
            append_reversed(&mut out, back);
            out
        }
    };
    dedup_consecutive(&mut vertices);
    let path = Path {
        vertices,
        length: dist,
    };
    debug_assert_eq!(path.vertices.first(), Some(&s));
    debug_assert_eq!(path.vertices.last(), Some(&t));
    debug_assert!(path.validate_against(&index.graph).is_ok());
    Some(path)
}

/// Walks parent pointers from `m` back to the seed vertex; returns the chain
/// `seed .. m`.
fn walk_to_seed(parents: &FxHashMap<VertexId, VertexId>, m: VertexId) -> Option<Vec<VertexId>> {
    let mut chain = vec![m];
    let mut cur = m;
    loop {
        let &p = parents.get(&cur)?;
        if p == SEED_PARENT {
            break;
        }
        chain.push(p);
        cur = p;
        debug_assert!(chain.len() <= parents.len() + 1, "parent cycle");
    }
    chain.reverse();
    Some(chain)
}

/// Follows first hops from `v` to its ancestor `w`, expanding every step;
/// returns the full vertex sequence `v .. w`.
fn label_path(index: &IsLabelIndex, v: VertexId, w: VertexId) -> Option<Vec<VertexId>> {
    let h = &index.hierarchy;
    let mut out = vec![v];
    let mut cur = v;
    while cur != w {
        let (_, hop) = index.labels.label(cur).get_with_hop(w)?;
        if hop == crate::label::NO_HOP || hop == cur {
            return None; // no path metadata (shouldn't happen on pristine indexes)
        }
        let edge = h.peel_adj(cur).iter().find(|e| e.to == hop)?;
        expand_edge(h, cur, hop, edge.via, &mut out);
        cur = hop;
    }
    Some(out)
}

/// Appends the interior and far endpoint of the `G_k` edge `(a, b)` to
/// `out` (which must currently end with `a`).
fn expand_gk_edge(h: &VertexHierarchy, a: VertexId, b: VertexId, out: &mut Vec<VertexId>) {
    let via = h.gk_via(a, b).unwrap_or(NO_VIA);
    expand_edge(h, a, b, via, out);
}

/// Recursively expands the (possibly augmenting) edge `(a, b)`; `out` ends
/// with `a` on entry and with `b` on exit.
fn expand_edge(
    h: &VertexHierarchy,
    a: VertexId,
    b: VertexId,
    via: VertexId,
    out: &mut Vec<VertexId>,
) {
    if via == NO_VIA {
        out.push(b);
        return;
    }
    // (a, via) and (via, b) live in via's archived peel adjacency; they may
    // themselves be augmenting edges of strictly lower levels, so the
    // recursion terminates.
    let ea = h
        .peel_adj(via)
        .iter()
        .find(|e| e.to == a)
        .expect("via vertex must list both endpoints");
    let eb = h
        .peel_adj(via)
        .iter()
        .find(|e| e.to == b)
        .expect("via vertex must list both endpoints");
    expand_edge(h, a, via, ea.via, out);
    expand_edge(h, via, b, eb.via, out);
}

/// Appends `tail` (a path `x .. w`) to `out` (ending in `w`) in reverse,
/// skipping the shared junction vertex.
fn append_reversed(out: &mut Vec<VertexId>, tail: Vec<VertexId>) {
    debug_assert_eq!(out.last(), tail.last());
    out.extend(tail.into_iter().rev().skip(1));
}

/// Removes immediately repeated vertices (junctions can duplicate when a
/// seed coincides with the meeting vertex).
fn dedup_consecutive(v: &mut Vec<VertexId>) {
    v.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BuildConfig;
    use crate::reference::dijkstra_p2p;
    use islabel_graph::generators::{barabasi_albert, erdos_renyi_gnm, grid2d, WeightModel};

    fn assert_paths_match_dijkstra(
        g: &CsrGraph,
        config: BuildConfig,
        pairs: &[(VertexId, VertexId)],
    ) {
        let index = IsLabelIndex::build(g, config);
        for &(s, t) in pairs {
            let expect = dijkstra_p2p(g, s, t);
            let path = index.shortest_path(s, t);
            match (expect, path) {
                (None, None) => {}
                (Some(d), Some(p)) => {
                    assert_eq!(p.length, d, "({s}, {t}) length");
                    assert_eq!(p.vertices.first(), Some(&s));
                    assert_eq!(p.vertices.last(), Some(&t));
                    p.validate_against(g)
                        .unwrap_or_else(|e| panic!("({s}, {t}): {e}"));
                }
                (e, p) => panic!("({s}, {t}): expected {e:?}, got {p:?}"),
            }
        }
    }

    #[test]
    fn paper_example_paths() {
        let g = crate::hierarchy::tests::paper_graph();
        let index = IsLabelIndex::build(&g, BuildConfig::default());
        // dist(h, e) = 3 along h-g-d-e.
        let p = index.shortest_path(7, 4).unwrap();
        assert_eq!(p.length, 3);
        p.validate_against(&g).unwrap();
        // dist(a, g) = 3; two optimal routes exist (a-e-d-g and a-b-e-d-g has
        // length 4, so a-e-d-g or a-e-g? (e,g) is not an original edge...).
        let p = index.shortest_path(0, 6).unwrap();
        assert_eq!(p.length, 3);
        p.validate_against(&g).unwrap();
    }

    #[test]
    fn random_graph_paths_various_configs() {
        let g = erdos_renyi_gnm(80, 200, WeightModel::UniformRange(1, 6), 13);
        let pairs: Vec<(VertexId, VertexId)> =
            (0..40).map(|i| ((i * 3) % 80, (i * 17 + 1) % 80)).collect();
        for config in [
            BuildConfig::default(),
            BuildConfig::full(),
            BuildConfig::fixed_k(3),
        ] {
            assert_paths_match_dijkstra(&g, config, &pairs);
        }
    }

    #[test]
    fn heavy_tailed_graph_paths() {
        let g = barabasi_albert(250, 3, WeightModel::UniformRange(1, 4), 29);
        let pairs: Vec<(VertexId, VertexId)> = (0..50)
            .map(|i| ((i * 7) % 250, (i * 31 + 11) % 250))
            .collect();
        assert_paths_match_dijkstra(&g, BuildConfig::default(), &pairs);
    }

    #[test]
    fn grid_paths() {
        // Grids force long paths with many augmenting-edge expansions.
        let g = grid2d(12, 12, WeightModel::UniformRange(1, 3), 7);
        let pairs = [(0u32, 143u32), (0, 11), (132, 11), (5, 140)];
        assert_paths_match_dijkstra(&g, BuildConfig::default(), &pairs);
    }

    #[test]
    fn disconnected_pairs_have_no_path() {
        let mut b = islabel_graph::GraphBuilder::new(4);
        b.add_edge(0, 1, 3);
        b.add_edge(2, 3, 4);
        let g = b.build();
        let index = IsLabelIndex::build(&g, BuildConfig::default());
        assert_eq!(index.shortest_path(0, 2), None);
        assert_eq!(
            index.shortest_path(0, 1),
            Some(Path {
                vertices: vec![0, 1],
                length: 3
            })
        );
    }

    #[test]
    fn trivial_paths() {
        let g = erdos_renyi_gnm(20, 40, WeightModel::Unit, 3);
        let index = IsLabelIndex::build(&g, BuildConfig::default());
        let p = index.shortest_path(5, 5).unwrap();
        assert_eq!(p.vertices, vec![5]);
        assert_eq!(p.length, 0);
        assert_eq!(p.num_edges(), 0);
    }

    #[test]
    fn path_disabled_without_path_info() {
        let g = erdos_renyi_gnm(30, 60, WeightModel::Unit, 4);
        let config = BuildConfig {
            keep_path_info: false,
            ..BuildConfig::default()
        };
        let index = IsLabelIndex::build(&g, config);
        assert_eq!(index.shortest_path(0, 1), None);
        // Distances still work.
        assert_eq!(index.distance(0, 1), dijkstra_p2p(&g, 0, 1));
    }

    #[test]
    fn path_disabled_after_updates() {
        let g = erdos_renyi_gnm(30, 80, WeightModel::Unit, 5);
        let mut index = IsLabelIndex::build(&g, BuildConfig::default());
        assert!(index.shortest_path(0, 1).is_some());
        index.insert_vertex(&[(0, 1)]);
        assert_eq!(
            index.shortest_path(0, 1),
            None,
            "paths unsupported after updates"
        );
        index.rebuild();
        assert!(index.shortest_path(0, 1).is_some());
    }

    #[test]
    fn validate_against_catches_corruption() {
        let mut b = islabel_graph::GraphBuilder::new(3);
        b.add_edge(0, 1, 2);
        b.add_edge(1, 2, 2);
        let g = b.build();
        let good = Path {
            vertices: vec![0, 1, 2],
            length: 4,
        };
        assert!(good.validate_against(&g).is_ok());
        let bad_edge = Path {
            vertices: vec![0, 2],
            length: 4,
        };
        assert!(bad_edge
            .validate_against(&g)
            .unwrap_err()
            .contains("not an edge"));
        let bad_len = Path {
            vertices: vec![0, 1],
            length: 7,
        };
        assert!(bad_len.validate_against(&g).unwrap_err().contains("sum"));
    }
}
