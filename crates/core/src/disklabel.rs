//! Disk-resident vertex labels (paper Section 6.2).
//!
//! "For processing large datasets, the vertex labels may not fit in main
//! memory and are stored on disk. The entries in each label(v) are stored
//! sequentially on disk and are sorted by the vertex IDs ... retrieving a
//! vertex label from disk takes only one I/O."
//!
//! [`DiskLabelStore`] reproduces that storage layout: one data file with
//! every label's entries back to back (each vertex's entries ascending by
//! ancestor id), plus an offset table so a label fetch is a single
//! positioned read — counted as exactly one seek by the I/O statistics,
//! which is how the experiment harness reconstructs the paper's Time (a)
//! (~10 ms per label on their 7200 RPM disk).
//!
//! The at-rest entry layout (`ancestor u32 + distance u64`) is shared with
//! the label sections of the persistent v3 artifact —
//! [`islabel_store::format`] (`crates/store`) is the single source of
//! truth for these record sizes.

use crate::label::{LabelSet, LabelView};
use bytes::{Buf, BufMut};
use islabel_extmem::storage::Storage;
use islabel_graph::{Dist, VertexId};
use islabel_store::format::LABEL_ENTRY_BYTES;
use std::io::{self, Read, Write};

/// A label fetched from disk, owning its arrays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchedLabel {
    /// Ancestor ids, ascending.
    pub ancestors: Vec<VertexId>,
    /// Distances parallel to `ancestors`.
    pub dists: Vec<Dist>,
}

impl FetchedLabel {
    /// Borrows as the common label view (no path info on disk labels —
    /// distance querying only, as in the paper).
    pub fn view(&self) -> LabelView<'_> {
        LabelView {
            ancestors: &self.ancestors,
            dists: &self.dists,
            first_hops: &[],
        }
    }
}

/// Disk-resident labels with an in-memory offset table.
pub struct DiskLabelStore {
    name: String,
    /// `offsets[v] .. offsets[v + 1]` delimits `v`'s byte range.
    offsets: Vec<u64>,
}

impl std::fmt::Debug for DiskLabelStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskLabelStore")
            .field("name", &self.name)
            .field("num_vertices", &self.offsets.len().saturating_sub(1))
            .finish_non_exhaustive()
    }
}

impl DiskLabelStore {
    /// Serializes a label set to storage as `{name}` (data) and
    /// `{name}.idx` (offset table).
    pub fn write(storage: &dyn Storage, name: &str, labels: &LabelSet) -> io::Result<Self> {
        let n = labels.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut w = storage.create(name)?;
        let mut pos: u64 = 0;
        let mut buf = Vec::new();
        offsets.push(0);
        for v in 0..n as VertexId {
            let label = labels.label(v);
            buf.clear();
            for (anc, d) in label.iter() {
                buf.put_u32_le(anc);
                buf.put_u64_le(d);
            }
            w.write_all(&buf)?;
            pos += buf.len() as u64;
            offsets.push(pos);
        }
        w.flush()?;
        drop(w);

        let mut iw = storage.create(&format!("{name}.idx"))?;
        let mut ibuf =
            Vec::with_capacity(8 + offsets.len() * islabel_store::format::LABEL_OFFSET_BYTES);
        ibuf.put_u64_le(n as u64);
        for &o in &offsets {
            ibuf.put_u64_le(o);
        }
        iw.write_all(&ibuf)?;
        iw.flush()?;
        Ok(Self {
            name: name.to_string(),
            offsets,
        })
    }

    /// Opens a previously written store by loading the offset table.
    pub fn open(storage: &dyn Storage, name: &str) -> io::Result<Self> {
        let mut r = storage.open(&format!("{name}.idx"))?;
        let mut head = [0u8; 8];
        r.read_exact(&mut head)?;
        let n = u64::from_le_bytes(head) as usize;
        let mut body = vec![0u8; (n + 1) * 8];
        r.read_exact(&mut body)?;
        let mut b = &body[..];
        let mut offsets = Vec::with_capacity(n + 1);
        for _ in 0..=n {
            offsets.push(b.get_u64_le());
        }
        if !offsets.windows(2).all(|w| w[0] <= w[1]) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "offsets not monotone",
            ));
        }
        Ok(Self {
            name: name.to_string(),
            offsets,
        })
    }

    /// Number of vertices stored.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total bytes of the label data file.
    pub fn data_bytes(&self) -> u64 {
        *self.offsets.last().unwrap()
    }

    /// Fetches one label with a single positioned read (one counted seek —
    /// the paper's "retrieving a vertex label from disk takes only one
    /// I/O").
    pub fn fetch(&self, storage: &dyn Storage, v: VertexId) -> io::Result<FetchedLabel> {
        let lo = self.offsets[v as usize];
        let hi = self.offsets[v as usize + 1];
        let mut buf = vec![0u8; (hi - lo) as usize];
        storage.read_at(&self.name, lo, &mut buf)?;
        let count = buf.len() / LABEL_ENTRY_BYTES;
        let mut ancestors = Vec::with_capacity(count);
        let mut dists = Vec::with_capacity(count);
        let mut b = &buf[..];
        for _ in 0..count {
            ancestors.push(b.get_u32_le());
            dists.push(b.get_u64_le());
        }
        Ok(FetchedLabel { ancestors, dists })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BuildConfig;
    use crate::index::IsLabelIndex;
    use islabel_extmem::storage::MemStorage;
    use islabel_graph::generators::{barabasi_albert, WeightModel};

    fn setup() -> (IsLabelIndex, MemStorage, DiskLabelStore) {
        let g = barabasi_albert(200, 3, WeightModel::UniformRange(1, 4), 11);
        let index = IsLabelIndex::build(&g, BuildConfig::default());
        let storage = MemStorage::new();
        let store = DiskLabelStore::write(&storage, "labels", index.labels()).unwrap();
        (index, storage, store)
    }

    #[test]
    fn roundtrip_matches_in_memory_labels() {
        let (index, storage, store) = setup();
        assert_eq!(store.num_vertices(), 200);
        for v in 0..200u32 {
            let fetched = store.fetch(&storage, v).unwrap();
            let mem: Vec<(VertexId, Dist)> = index.labels().label(v).iter().collect();
            let disk: Vec<(VertexId, Dist)> = fetched.view().iter().collect();
            assert_eq!(disk, mem, "label({v})");
        }
    }

    #[test]
    fn each_fetch_is_one_seek() {
        let (_, storage, store) = setup();
        let stats = storage.stats();
        stats.reset();
        store.fetch(&storage, 7).unwrap();
        store.fetch(&storage, 123).unwrap();
        let snap = stats.snapshot();
        assert_eq!(snap.seeks, 2);
    }

    #[test]
    fn open_reloads_offsets() {
        let (_, storage, store) = setup();
        let reopened = DiskLabelStore::open(&storage, "labels").unwrap();
        assert_eq!(reopened.num_vertices(), store.num_vertices());
        assert_eq!(reopened.data_bytes(), store.data_bytes());
        let a = store.fetch(&storage, 55).unwrap();
        let b = reopened.fetch(&storage, 55).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn disk_labels_answer_queries_correctly() {
        let (index, storage, store) = setup();
        let g = index.base_graph().clone();
        for (s, t) in [(0u32, 199u32), (5, 100), (42, 43)] {
            let ls = store.fetch(&storage, s).unwrap();
            let lt = store.fetch(&storage, t).unwrap();
            let got = index.distance_from_labels(ls.view(), lt.view());
            assert_eq!(got, crate::reference::dijkstra_p2p(&g, s, t), "({s}, {t})");
        }
    }

    #[test]
    fn empty_labels_roundtrip() {
        let storage = MemStorage::new();
        let ls = LabelSet::from_per_vertex(vec![], false);
        let store = DiskLabelStore::write(&storage, "empty", &ls).unwrap();
        assert_eq!(store.num_vertices(), 0);
        assert_eq!(store.data_bytes(), 0);
    }
}
