//! I/O-efficient external-memory index construction (paper Section 6).
//!
//! The paper's core systems claim is that IS-LABEL can be *built* for graphs
//! that do not fit in memory, using only sequential scans and external
//! sorts:
//!
//! * **Algorithm 2** (select `L_i`): sort the adjacency-list file by vertex
//!   degree, stream it, keep every vertex not yet excluded, and archive its
//!   adjacency (`ADJ(L_i)`). The exclusion buffer `L'` is bounded; when it
//!   fills, the remaining stream is rewritten without the excluded vertices
//!   ("scan G'_i to delete all v ∈ L'") and the buffer clears — giving the
//!   paper's `O(|L'|/M) · scan(|G_i|)` bound.
//! * **Algorithm 3** (construct `G_{i+1}`): stream `ADJ(L_i)` to emit the
//!   augmenting-edge array `EA` (both directions per pair), external-sort
//!   `EA` by vertex ids, and merge-scan it with `G_i`, dropping the peeled
//!   vertices.
//! * **Algorithm 4** (top-down labeling): per level, a block nested-loop
//!   join between that level's labels (blocked by the memory budget) and
//!   the final labels of all higher levels.
//!
//! The pipeline is **semi-external** in the standard sense: per-vertex level
//! numbers (4 bytes/vertex) stay in memory, while everything edge- and
//! label-sized streams through [`islabel_extmem`] storage with counted I/O.
//! The output is identical — labels, hierarchy, via annotations — to the
//! in-memory builder's (asserted by the equivalence tests), because every
//! step uses the same total orders and tie-breaking rules:
//!
//! * IS selection visits vertices in `(degree, id)` order;
//! * augmenting-edge collisions keep the minimum weight, then the existing
//!   edge, then the smallest via vertex;
//! * label merges keep the minimum distance, then the smallest first hop.

use crate::config::{BuildConfig, KSelection};
use crate::hierarchy::{PeelEdge, VertexHierarchy};
use crate::index::IsLabelIndex;
use crate::label::LabelSet;
use crate::stats::IndexStats;
use islabel_extmem::diskgraph::{AdjByDegree, AdjRecord, DiskGraph};
use islabel_extmem::extsort::{external_sort, ExtRecord, RecordReader, RecordWriter, SortConfig};
use islabel_extmem::storage::Storage;
use islabel_graph::adjacency::NO_VIA;
use islabel_graph::{CsrGraph, Dist, FxHashMap, FxHashSet, VertexId, Weight};
use std::io;
use std::time::Instant;

/// Tuning for the external build.
#[derive(Debug, Clone, Copy)]
pub struct EmConfig {
    /// Memory budget in bytes for sort runs and label-join blocks (the
    /// paper's `M`).
    pub memory_budget: usize,
    /// Fan-in of external-sort merge passes.
    pub sort_fan_in: usize,
    /// Capacity of the exclusion buffer `L'` (entries) before a purge scan.
    pub exclusion_capacity: usize,
}

impl Default for EmConfig {
    fn default() -> Self {
        Self {
            memory_budget: 64 * 1024 * 1024,
            sort_fan_in: 16,
            exclusion_capacity: 1 << 22,
        }
    }
}

impl EmConfig {
    /// A deliberately tiny configuration that forces many sort runs, merge
    /// passes, exclusion purges and label blocks — used by tests to exercise
    /// every external code path on small graphs.
    pub fn tiny_for_tests() -> Self {
        Self {
            memory_budget: 4 * 1024,
            sort_fan_in: 2,
            exclusion_capacity: 16,
        }
    }
}

/// Streaming adapter: exposes a record file as an iterator for
/// [`external_sort`], stashing any I/O error for later propagation.
struct RecordStream<'a, T: ExtRecord> {
    reader: RecordReader<Box<dyn io::Read + Send + 'a>>,
    error: &'a mut Option<io::Error>,
    _marker: std::marker::PhantomData<T>,
}

impl<T: ExtRecord> Iterator for RecordStream<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        match self.reader.next() {
            Ok(item) => item,
            Err(e) => {
                *self.error = Some(e);
                None
            }
        }
    }
}

fn sort_file<T: ExtRecord>(
    storage: &dyn Storage,
    input_name: &str,
    output_name: &str,
    config: SortConfig,
) -> io::Result<()> {
    let mut error = None;
    let stream: RecordStream<'_, T> = RecordStream {
        reader: RecordReader::new(storage.open(input_name)?),
        error: &mut error,
        _marker: std::marker::PhantomData,
    };
    external_sort(storage, stream, output_name, config)?;
    if let Some(e) = error {
        return Err(e);
    }
    Ok(())
}

/// Builds an [`IsLabelIndex`] from a disk-resident graph through the
/// external-memory pipeline. `config` carries the paper-level parameters
/// (k-selection, path info); `em` the memory-model tuning.
///
/// Only the paper's greedy min-degree strategy is supported externally (the
/// ablation strategies are in-memory concerns).
pub fn build_external(
    storage: &dyn Storage,
    input: &DiskGraph,
    config: BuildConfig,
    em: EmConfig,
) -> io::Result<IsLabelIndex> {
    config.validate();
    assert!(
        matches!(
            config.is_strategy,
            crate::config::IsStrategy::MinDegreeGreedy
        ),
        "external construction implements the paper's min-degree greedy selection"
    );
    let t0 = Instant::now();
    let n = input.universe;
    let sort_config = SortConfig {
        memory_budget: em.memory_budget,
        fan_in: em.sort_fan_in,
    };

    // Semi-external bookkeeping: ℓ(v), 0 = still present.
    let mut level_of = vec![0u32; n];
    let mut present = n;
    let mut levels: Vec<Vec<VertexId>> = Vec::new();
    let mut current = input.clone();
    let mut owned_current = false; // whether `current` is ours to delete

    let mut i: u32 = 1;
    let k = loop {
        if present == 0 {
            break i;
        }
        match config.k_selection {
            KSelection::FixedK(kf) if i == kf => break i,
            _ if i == config.max_levels => break i,
            _ => {}
        }
        let size_before = present + current.num_edges;

        // ---- Algorithm 2: select L_i, archive ADJ(L_i). ----
        let li = select_level(storage, &current, i, &mut level_of, &em, sort_config)?;
        present -= li.len();

        // ---- Algorithm 3: build G_{i+1}. ----
        let next = build_next_graph(storage, &current, i, &level_of, sort_config)?;
        if owned_current {
            current.delete(storage)?;
        }
        current = next;
        owned_current = true;
        levels.push(li);

        let size_after = present + current.num_edges;
        if let KSelection::SigmaThreshold(sigma) = config.k_selection {
            if size_after as f64 > sigma * size_before as f64 {
                break i + 1;
            }
        }
        i += 1;
    };

    // Residual graph G_k.
    let gk_members: Vec<VertexId> = (0..n as VertexId)
        .filter(|&v| level_of[v as usize] == 0)
        .collect();
    for &v in &gk_members {
        level_of[v as usize] = k;
    }
    let (gk, gk_vias) = materialize_gk(storage, &current, n, config.keep_path_info)?;
    if owned_current {
        current.delete(storage)?;
    }
    let t1 = Instant::now();

    // ---- Algorithm 4: top-down block nested-loop labeling. ----
    label_top_down(storage, k, &level_of, &em)?;
    let t2 = Instant::now();

    // ---- Assembly: identical structures to the in-memory builder. ----
    let mut peel_adj: Vec<Box<[PeelEdge]>> = vec![Box::default(); n];
    for level in 1..k {
        let mut scan = RecordReader::new(storage.open(&adj_name(level))?);
        while let Some(rec) = scan.next::<AdjRecord>()? {
            peel_adj[rec.vertex as usize] = rec
                .edges
                .iter()
                .map(|&(to, weight, via)| PeelEdge {
                    to,
                    weight,
                    via: if config.keep_path_info { via } else { NO_VIA },
                })
                .collect();
        }
    }
    let mut per_vertex: Vec<Vec<(VertexId, Dist, VertexId)>> = vec![Vec::new(); n];
    for level in 1..k {
        let mut scan = RecordReader::new(storage.open(&label_name(level))?);
        while let Some(rec) = scan.next::<LabelRecord>()? {
            per_vertex[rec.vertex as usize] = rec.entries;
        }
    }
    // Self-only labels: G_k members and peeled-but-isolated vertices never
    // appear in the label files.
    for (v, label) in per_vertex.iter_mut().enumerate() {
        if label.is_empty() {
            label.push((v as VertexId, 0, v as VertexId));
        }
    }
    let labels = LabelSet::from_per_vertex(per_vertex, config.keep_path_info);

    // Temp cleanup.
    for level in 1..k {
        storage.delete(&adj_name(level))?;
        storage.delete(&label_name(level))?;
    }

    let hierarchy =
        VertexHierarchy::from_parts(level_of, k, levels, peel_adj, gk, gk_vias, gk_members);
    let graph = input.to_csr(storage)?;
    let stats = IndexStats {
        num_vertices: n,
        num_edges: graph.num_edges(),
        k,
        gk_vertices: hierarchy.num_gk_vertices(),
        gk_edges: hierarchy.num_gk_edges(),
        label_entries: labels.num_entries(),
        label_bytes: labels.memory_bytes(),
        avg_label_len: labels.avg_label_len(),
        max_label_len: labels.max_label_len(),
        hierarchy_time: t1 - t0,
        labeling_time: t2 - t1,
        build_time: t2 - t0,
    };
    Ok(IsLabelIndex::from_parts(
        graph, hierarchy, labels, config, stats,
    ))
}

/// Convenience: stage a CSR graph into storage and build externally.
pub fn build_external_from_csr(
    storage: &dyn Storage,
    g: &CsrGraph,
    config: BuildConfig,
    em: EmConfig,
) -> io::Result<IsLabelIndex> {
    let dg = DiskGraph::from_csr(storage, "embuild.input", g)?;
    let index = build_external(storage, &dg, config, em);
    dg.delete(storage)?;
    index
}

fn adj_name(level: u32) -> String {
    format!("embuild.adj.L{level}")
}

fn label_name(level: u32) -> String {
    format!("embuild.labels.L{level}")
}

// ---------------------------------------------------------------------------
// Algorithm 2 — external greedy independent set
// ---------------------------------------------------------------------------

/// Sorts `G_i` by degree, streams it with a bounded exclusion buffer, writes
/// `ADJ(L_i)` and assigns levels. Returns `L_i` ascending.
fn select_level(
    storage: &dyn Storage,
    gi: &DiskGraph,
    level: u32,
    level_of: &mut [u32],
    em: &EmConfig,
    sort_config: SortConfig,
) -> io::Result<Vec<VertexId>> {
    // Degree sort (the paper's sort(|G_i|) step). The id component of the
    // sort key makes the order total — the same (degree, id) order the
    // in-memory builder uses.
    let sorted_name = format!("embuild.degsort.L{level}");
    sort_file::<AdjByDegree>(storage, &gi.name, &sorted_name, sort_config)?;

    let mut li: Vec<VertexId> = Vec::new();
    // Vertices seen in the stream; present vertices without records are
    // isolated in G_i and join L_i unconditionally (degree 0, nothing to
    // exclude) — mirroring their position at the front of the (degree, id)
    // order.
    let mut has_record: FxHashSet<VertexId> = FxHashSet::default();

    let mut adj_writer = RecordWriter::new(storage.create(&adj_name(level))?);
    let mut excluded: FxHashSet<VertexId> = FxHashSet::default();
    let mut stream_name = sorted_name;
    let mut reader = RecordReader::new(storage.open(&stream_name)?);
    let mut purge_round = 0usize;
    while let Some(AdjByDegree(rec)) = reader.next::<AdjByDegree>()? {
        has_record.insert(rec.vertex);
        if excluded.contains(&rec.vertex) {
            continue;
        }
        // Choose rec.vertex into L_i and archive its adjacency.
        li.push(rec.vertex);
        for &(u, _, _) in &rec.edges {
            excluded.insert(u);
        }
        adj_writer.write(&rec)?;

        // Bounded L': purge by rewriting the remaining stream without the
        // excluded vertices (the paper's mid-scan cleanup), then clear.
        if excluded.len() >= em.exclusion_capacity {
            purge_round += 1;
            let purged_name = format!("embuild.degsort.L{level}.purge{purge_round}");
            let mut w = RecordWriter::new(storage.create(&purged_name)?);
            while let Some(rest) = reader.next::<AdjByDegree>()? {
                has_record.insert(rest.0.vertex);
                if !excluded.contains(&rest.0.vertex) {
                    w.write(&rest)?;
                }
            }
            w.finish()?;
            storage.delete(&stream_name)?;
            excluded.clear();
            stream_name = purged_name;
            reader = RecordReader::new(storage.open(&stream_name)?);
        }
    }
    adj_writer.finish()?;
    storage.delete(&stream_name)?;

    for v in 0..level_of.len() as VertexId {
        if level_of[v as usize] == 0 && !has_record.contains(&v) {
            li.push(v);
        }
    }
    for &v in &li {
        debug_assert_eq!(level_of[v as usize], 0, "vertex {v} already assigned");
        level_of[v as usize] = level;
    }
    li.sort_unstable();
    Ok(li)
}

// ---------------------------------------------------------------------------
// Algorithm 3 — external graph reduction
// ---------------------------------------------------------------------------

/// Streams `ADJ(L_i)` to emit `EA`, sorts it, and merge-scans with `G_i` to
/// produce `G_{i+1}`.
fn build_next_graph(
    storage: &dyn Storage,
    gi: &DiskGraph,
    level: u32,
    level_of: &[u32],
    sort_config: SortConfig,
) -> io::Result<DiskGraph> {
    // Emit EA: for every peeled v and neighbor pair (a, b), both directed
    // records (a, b, ω(a,v)+ω(v,b), via=v) and (b, a, ·, ·).
    let ea_raw = format!("embuild.ea.L{level}.raw");
    {
        let mut w = RecordWriter::new(storage.create(&ea_raw)?);
        let mut scan = RecordReader::new(storage.open(&adj_name(level))?);
        while let Some(rec) = scan.next::<AdjRecord>()? {
            let v = rec.vertex;
            for (x, &(a, wa, _)) in rec.edges.iter().enumerate() {
                for &(b, wb, _) in &rec.edges[x + 1..] {
                    let weight = wa.checked_add(wb).expect(
                        "augmenting edge weight overflows u32: input weights are too large",
                    );
                    w.write(&(a, b, weight, v))?;
                    w.write(&(b, a, weight, v))?;
                }
            }
        }
        w.finish()?;
    }
    // Sort EA by (u, v, weight, via): the first record per (u, v) carries
    // the minimum weight, ties by smallest via — the same tie-break the
    // in-memory builder realizes by processing L_i in ascending id order.
    let ea_sorted = format!("embuild.ea.L{level}");
    sort_file::<(u32, u32, u32, u32)>(storage, &ea_raw, &ea_sorted, sort_config)?;
    storage.delete(&ea_raw)?;

    // Merge-scan G_i with the sorted EA.
    let next_name = format!("embuild.g.L{}", level + 1);
    let mut ea = PeekableEa::new(RecordReader::new(storage.open(&ea_sorted)?));
    let mut writer = RecordWriter::new(storage.create(&next_name)?);
    let mut num_vertices = 0usize;
    let mut half_edges = 0usize;
    let mut scan = gi.scan(storage)?;
    while let Some(rec) = scan.next()? {
        let v = rec.vertex;
        // Every EA endpoint had an edge to its peeled via vertex in G_i, so
        // it owns a G_i record; the stream stays aligned.
        debug_assert!(
            ea.peek()?.is_none_or(|e| e.0 >= v),
            "EA endpoint without G_i record"
        );
        if level_of[v as usize] == level {
            continue; // peeled: the record is already archived in ADJ(L_i)
        }
        // Merge-join v's surviving edges with v's EA entries (both ascending
        // by target id).
        let mut merged: Vec<(VertexId, Weight, VertexId)> = Vec::new();
        let mut old = rec
            .edges
            .iter()
            .filter(|&&(t, _, _)| level_of[t as usize] != level)
            .peekable();
        loop {
            let ea_here = match ea.peek()? {
                Some(e) if e.0 == v => Some(*e),
                _ => None,
            };
            match (old.peek(), ea_here) {
                (None, None) => break,
                (Some(&&(t, w, via)), None) => {
                    merged.push((t, w, via));
                    old.next();
                }
                (None, Some((_, t, w, via))) => {
                    push_first(&mut merged, t, w, via);
                    ea.advance()?;
                }
                (Some(&&(ot, ow, ovia)), Some((_, et, ew, evia))) => {
                    if ot < et {
                        merged.push((ot, ow, ovia));
                        old.next();
                    } else if et < ot {
                        push_first(&mut merged, et, ew, evia);
                        ea.advance()?;
                    } else {
                        // Collision: strictly smaller EA weight replaces the
                        // existing edge, ties keep it ("update ω with the
                        // smaller weight").
                        if ew < ow {
                            merged.push((et, ew, evia));
                        } else {
                            merged.push((ot, ow, ovia));
                        }
                        old.next();
                        // Drain the remaining (worse) EA duplicates of (v, t).
                        while ea.peek()?.is_some_and(|e| e.0 == v && e.1 == et) {
                            ea.advance()?;
                        }
                    }
                }
            }
        }
        if !merged.is_empty() {
            num_vertices += 1;
            half_edges += merged.len();
            writer.write(&AdjRecord {
                vertex: v,
                edges: merged,
            })?;
        }
    }
    debug_assert!(ea.peek()?.is_none(), "unconsumed EA records");
    writer.finish()?;
    storage.delete(&ea_sorted)?;

    DiskGraph::assemble(
        storage,
        &next_name,
        gi.universe,
        num_vertices,
        half_edges / 2,
    )
}

/// Appends `(t, w, via)` unless `t` was already emitted for this vertex (EA
/// is sorted, so the first record per target carries the minimum).
fn push_first(
    merged: &mut Vec<(VertexId, Weight, VertexId)>,
    t: VertexId,
    w: Weight,
    via: VertexId,
) {
    if merged.last().map(|&(lt, _, _)| lt) != Some(t) {
        merged.push((t, w, via));
    }
}

/// One-record lookahead over the EA stream.
struct PeekableEa<R: io::Read> {
    reader: RecordReader<R>,
    head: Option<(u32, u32, u32, u32)>,
    primed: bool,
}

impl<R: io::Read> PeekableEa<R> {
    fn new(reader: RecordReader<R>) -> Self {
        Self {
            reader,
            head: None,
            primed: false,
        }
    }

    fn peek(&mut self) -> io::Result<Option<&(u32, u32, u32, u32)>> {
        if !self.primed {
            self.head = self.reader.next()?;
            self.primed = true;
        }
        Ok(self.head.as_ref())
    }

    fn advance(&mut self) -> io::Result<()> {
        self.peek()?;
        self.head = self.reader.next()?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Residual graph materialization
// ---------------------------------------------------------------------------

/// Via vertices of residual augmenting edges, keyed by `(min, max)` pair.
type GkViaMap = FxHashMap<(VertexId, VertexId), VertexId>;

fn materialize_gk(
    storage: &dyn Storage,
    gk: &DiskGraph,
    n: usize,
    keep_path_info: bool,
) -> io::Result<(CsrGraph, GkViaMap)> {
    let mut b = islabel_graph::GraphBuilder::new(n);
    let mut vias = FxHashMap::default();
    let mut scan = gk.scan(storage)?;
    while let Some(rec) = scan.next()? {
        for &(t, w, via) in &rec.edges {
            if rec.vertex < t {
                b.add_edge(rec.vertex, t, w);
                if keep_path_info && via != NO_VIA {
                    vias.insert((rec.vertex, t), via);
                }
            }
        }
    }
    Ok((b.build(), vias))
}

// ---------------------------------------------------------------------------
// Algorithm 4 — external top-down labeling (block nested-loop join)
// ---------------------------------------------------------------------------

/// A vertex's final label on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
struct LabelRecord {
    vertex: VertexId,
    /// `(ancestor, d, first_hop)` ascending by ancestor.
    entries: Vec<(VertexId, Dist, VertexId)>,
}

impl ExtRecord for LabelRecord {
    type Key = VertexId;

    fn key(&self) -> Self::Key {
        self.vertex
    }

    fn encode(&self, out: &mut Vec<u8>) {
        use bytes::BufMut;
        out.put_u32_le(self.vertex);
        out.put_u32_le(self.entries.len() as u32);
        for &(a, d, h) in &self.entries {
            out.put_u32_le(a);
            out.put_u64_le(d);
            out.put_u32_le(h);
        }
    }

    fn decode(mut buf: &[u8]) -> Self {
        use bytes::Buf;
        let vertex = buf.get_u32_le();
        let count = buf.get_u32_le() as usize;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            entries.push((buf.get_u32_le(), buf.get_u64_le(), buf.get_u32_le()));
        }
        Self { vertex, entries }
    }

    fn approx_size(&self) -> usize {
        8 + self.entries.len() * 16 + 24
    }
}

/// One in-flight label of the current block.
struct BlockEntry {
    vertex: VertexId,
    /// Min-merged accumulator (`ancestor -> (d, first hop)`).
    acc: FxHashMap<VertexId, (Dist, VertexId)>,
}

/// Labels level `k−1` down to `1`, writing the `labels.L{i}` files.
///
/// The join works off each vertex's *direct* (peel-adjacency) entries, which
/// is exactly what Corollary 1 licenses: `label(v)` is the min-merge of
/// `ω(v, u) + label(u)` over the direct neighbors `u`. Neighbors living in
/// `G_k` contribute their trivial self-only labels inline, so no label file
/// is materialized for `G_k`.
fn label_top_down(
    storage: &dyn Storage,
    k: u32,
    level_of: &[u32],
    em: &EmConfig,
) -> io::Result<()> {
    for i in (1..k).rev() {
        let mut bl = RecordReader::new(storage.open(&adj_name(i))?);
        let mut writer = RecordWriter::new(storage.create(&label_name(i))?);
        loop {
            // Load one block of BL under the memory budget.
            let mut block: Vec<BlockEntry> = Vec::new();
            // Join index: neighbor u -> [(block slot, ω(v, u))].
            let mut join: FxHashMap<VertexId, Vec<(usize, Weight)>> = FxHashMap::default();
            let mut block_bytes = 0usize;
            while block_bytes < em.memory_budget {
                let Some(rec) = bl.next::<AdjRecord>()? else {
                    break;
                };
                let slot = block.len();
                let mut acc = FxHashMap::default();
                acc.insert(rec.vertex, (0 as Dist, rec.vertex));
                for &(u, w, _) in &rec.edges {
                    debug_assert!(level_of[u as usize] > i);
                    // Fold u's self entry inline: this covers G_k neighbors
                    // (whose labels are trivially {(u, 0)} and never written
                    // to a file) and peeled neighbors that were isolated at
                    // peel time (same situation). For everything else the
                    // BU join below re-derives the same value, a no-op.
                    relax(&mut acc, u, w as Dist, u);
                    if level_of[u as usize] != k {
                        join.entry(u).or_default().push((slot, w));
                    }
                }
                block_bytes += rec.approx_size() * 4 + 64;
                block.push(BlockEntry {
                    vertex: rec.vertex,
                    acc,
                });
            }
            if block.is_empty() {
                break;
            }

            // Scan BU — the final labels of all higher peeled levels — once
            // per block (the paper's block nested loop).
            for j in (i + 1)..k {
                let mut bu = RecordReader::new(storage.open(&label_name(j))?);
                while let Some(lab) = bu.next::<LabelRecord>()? {
                    let Some(holders) = join.get(&lab.vertex) else {
                        continue;
                    };
                    for &(slot, w) in holders {
                        let acc = &mut block[slot].acc;
                        for &(anc, d, _) in &lab.entries {
                            relax(acc, anc, w as Dist + d, lab.vertex);
                        }
                    }
                }
            }

            for entry in block {
                let mut entries: Vec<(VertexId, Dist, VertexId)> =
                    entry.acc.iter().map(|(&a, &(d, h))| (a, d, h)).collect();
                entries.sort_unstable_by_key(|&(a, _, _)| a);
                writer.write(&LabelRecord {
                    vertex: entry.vertex,
                    entries,
                })?;
            }
        }
        writer.finish()?;
    }
    Ok(())
}

/// Min-merge with the deterministic tie-break (equal distance keeps the
/// smaller first hop) shared with the in-memory Algorithm 4, which realizes
/// the same rule through its ascending-neighbor iteration.
fn relax(acc: &mut FxHashMap<VertexId, (Dist, VertexId)>, anc: VertexId, d: Dist, hop: VertexId) {
    match acc.entry(anc) {
        std::collections::hash_map::Entry::Vacant(slot) => {
            slot.insert((d, hop));
        }
        std::collections::hash_map::Entry::Occupied(mut slot) => {
            let (cur_d, cur_h) = *slot.get();
            if d < cur_d || (d == cur_d && hop < cur_h) {
                *slot.get_mut() = (d, hop);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use islabel_extmem::storage::MemStorage;
    use islabel_graph::generators::{barabasi_albert, erdos_renyi_gnm, WeightModel};

    fn assert_equivalent(g: &CsrGraph, config: BuildConfig, em: EmConfig, tag: &str) {
        let storage = MemStorage::new();
        let em_index = build_external_from_csr(&storage, g, config, em).unwrap();
        let im_index = IsLabelIndex::build(g, config);

        assert_eq!(
            em_index.labels(),
            im_index.labels(),
            "{tag}: labels diverge"
        );
        assert_eq!(
            em_index.hierarchy().levels(),
            im_index.hierarchy().levels(),
            "{tag}: level sets diverge"
        );
        assert_eq!(
            em_index.hierarchy().gk(),
            im_index.hierarchy().gk(),
            "{tag}: G_k diverges"
        );
        assert_eq!(em_index.stats().k, im_index.stats().k, "{tag}: k diverges");
        // All temp files cleaned up.
        assert!(
            storage.names().is_empty(),
            "{tag}: leftover temp files {:?}",
            storage.names()
        );

        // And the answers agree with ground truth.
        let n = g.num_vertices();
        for q in 0..40usize {
            let s = ((q * 7919) % n) as VertexId;
            let t = ((q * 104729 + 1) % n) as VertexId;
            assert_eq!(
                em_index.distance(s, t),
                crate::reference::dijkstra_p2p(g, s, t),
                "{tag}: query ({s}, {t})"
            );
        }
    }

    #[test]
    fn equivalence_is_structural_not_just_behavioral() {
        use islabel_extmem::storage::MemStorage;
        use islabel_graph::generators::{erdos_renyi_gnm, WeightModel};
        let g = erdos_renyi_gnm(30, 70, WeightModel::Unit, 11);
        for config in [
            BuildConfig::full(),
            BuildConfig::fixed_k(3),
            BuildConfig::sigma(0.7),
        ] {
            let storage = MemStorage::new();
            let em_index =
                build_external_from_csr(&storage, &g, config, EmConfig::tiny_for_tests()).unwrap();
            let im_index = IsLabelIndex::build(&g, config);
            assert_eq!(em_index.stats().k, im_index.stats().k, "{config:?} k");
            assert_eq!(
                em_index.hierarchy().levels(),
                im_index.hierarchy().levels(),
                "{config:?} levels"
            );
            for v in 0..30u32 {
                assert_eq!(
                    em_index.hierarchy().peel_adj(v),
                    im_index.hierarchy().peel_adj(v),
                    "{config:?} peel_adj({v})"
                );
            }
            assert_eq!(
                em_index.hierarchy().gk(),
                im_index.hierarchy().gk(),
                "{config:?} gk"
            );
            for v in 0..30u32 {
                let em_l: Vec<_> = em_index.labels().label(v).iter().collect();
                let im_l: Vec<_> = im_index.labels().label(v).iter().collect();
                assert_eq!(em_l, im_l, "{config:?} label({v}) dists");
                assert_eq!(
                    em_index.labels().label(v).first_hops,
                    im_index.labels().label(v).first_hops,
                    "{config:?} label({v}) hops"
                );
            }
        }
    }

    #[test]
    fn equivalent_on_random_graphs_default_config() {
        for seed in 0..3u64 {
            let g = erdos_renyi_gnm(150, 400, WeightModel::UniformRange(1, 9), seed);
            assert_equivalent(&g, BuildConfig::default(), EmConfig::default(), "er");
        }
    }

    #[test]
    fn equivalent_under_tiny_memory_budget() {
        // Forces multiple sort runs, merge passes, exclusion purges and
        // label blocks.
        let g = barabasi_albert(300, 3, WeightModel::UniformRange(1, 5), 7);
        assert_equivalent(
            &g,
            BuildConfig::default(),
            EmConfig::tiny_for_tests(),
            "ba-tiny-mem",
        );
    }

    #[test]
    fn equivalent_across_k_policies() {
        let g = erdos_renyi_gnm(120, 300, WeightModel::Unit, 11);
        for config in [
            BuildConfig::full(),
            BuildConfig::fixed_k(3),
            BuildConfig::sigma(0.7),
        ] {
            assert_equivalent(&g, config, EmConfig::tiny_for_tests(), "policies");
        }
    }

    #[test]
    fn equivalent_with_isolated_vertices_and_components() {
        let mut b = islabel_graph::GraphBuilder::new(30);
        // Two path components; vertices 20..30 stay isolated.
        for v in 0..9u32 {
            b.add_edge(v, v + 1, (v % 3) + 1);
        }
        for v in 10..18u32 {
            b.add_edge(v, v + 1, 2);
        }
        let g = b.build();
        assert_equivalent(
            &g,
            BuildConfig::default(),
            EmConfig::tiny_for_tests(),
            "components",
        );
    }

    #[test]
    fn path_queries_work_after_external_build() {
        let g = barabasi_albert(150, 3, WeightModel::UniformRange(1, 4), 5);
        let storage = MemStorage::new();
        let index =
            build_external_from_csr(&storage, &g, BuildConfig::default(), EmConfig::default())
                .unwrap();
        for q in 0..25usize {
            let s = ((q * 13) % 150) as VertexId;
            let t = ((q * 41 + 3) % 150) as VertexId;
            let expect = crate::reference::dijkstra_p2p(&g, s, t);
            match (index.shortest_path(s, t), expect) {
                (Some(p), Some(d)) => {
                    assert_eq!(p.length, d);
                    p.validate_against(&g).unwrap();
                }
                (None, None) => {}
                (p, d) => panic!("({s}, {t}): {p:?} vs {d:?}"),
            }
        }
    }

    #[test]
    fn io_is_counted_during_build() {
        let g = erdos_renyi_gnm(200, 600, WeightModel::Unit, 3);
        let storage = MemStorage::new();
        let _ = build_external_from_csr(&storage, &g, BuildConfig::default(), EmConfig::default())
            .unwrap();
        let snap = storage.stats().snapshot();
        assert!(snap.bytes_written > 10_000, "writes {}", snap.bytes_written);
        assert!(snap.bytes_read > 10_000, "reads {}", snap.bytes_read);
    }
}
