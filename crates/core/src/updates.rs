//! Lazy dynamic updates (paper Section 8.3).
//!
//! The paper's update story is deliberately lazy: inserted vertices join
//! `G_k`, affected *descendant* labels are patched with new upper-bound
//! entries, deletions remove label entries, and "the above lazy update
//! mechanism would have little impact on the query performance for a
//! moderate amount of updates, and we can rebuild the index periodically."
//!
//! We implement that contract with an overlay kept beside the immutable
//! index:
//!
//! * **Guarantee after insertions** (vertices or edges): every reported
//!   distance is the length of a real path in the updated graph, so results
//!   are *upper bounds* of the true distance. They are exact whenever some
//!   true shortest path is covered by a single patch (or by the original
//!   index); only an optimum that routes through interactions *between*
//!   separate updates — which no individual patch sees — can be
//!   overestimated. `rebuild()` restores exactness.
//! * **Guarantee after deletions**: deleting a `G_k` vertex (including any
//!   dynamically inserted vertex) stays *exact* — no label chain or residual
//!   edge routes through other `G_k` vertices. Deleting a *peeled* vertex
//!   marks the index stale ([`Overlay::stale`]): surviving augmenting edges
//!   and label entries may still represent paths through the deleted vertex,
//!   so distances can err in either direction until `rebuild()`.
//! * Queries naming a deleted endpoint return `None`; deleted ancestors are
//!   filtered out of every label at query time.
//!
//! **Kernel routing**: the dense compact-id kernel ([`crate::dense`]) maps
//! the *base* `G_k` vertex set, and a non-pristine index stays on it:
//! sessions build a [`crate::dense::DensePatch`] at creation time —
//! inserted vertices become an order-preserving append-only tail of dense
//! ids, deletions a tombstone bitmap, and inserted residual edges extra
//! adjacency — and run the same zero-alloc search over the patched view
//! (overlay-merged labels are produced into session-owned buffers at seed
//! time). The sparse hashmap kernel over `Overlay::gk_view` remains the
//! reference implementation that one-shot queries use and the conformance
//! suite pins the dense path against; `rebuild()` folds the overlay into a
//! fresh base index.
//!
//! **Durability**: every mutation is recorded in an ordered op log
//! ([`UpdateOp`]) inside the overlay. When a write-ahead log is attached
//! ([`IsLabelIndex::attach_wal`](crate::IsLabelIndex::attach_wal)) each op
//! is appended to disk *before* it is applied, and
//! [`crate::persist::load_index_with_wal`] replays the log to reconstruct
//! the exact overlay after a crash; [`crate::persist::try_save_index`]
//! seals the same ops into the artifact, so a non-pristine index persists
//! and reloads losslessly (see [`crate::persist::wal`]).

use crate::dense::{DensePatch, GkIdMap};
use crate::hierarchy::VertexHierarchy;
use crate::index::IsLabelIndex;
use crate::label::{LabelSet, LabelView};
use crate::query::GkGraph;
use islabel_graph::{CsrGraph, Dist, FxHashMap, FxHashSet, VertexId, Weight};

/// One dynamic update in application order — the unit of the write-ahead
/// log ([`crate::persist::wal`]) and of the sealed-ops section of a
/// persisted artifact. Replaying a prefix of the recorded ops through the
/// normal mutation path reconstructs the overlay of that moment exactly
/// (the patching algorithms are deterministic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateOp {
    /// [`IsLabelIndex::insert_vertex`] with the given adjacency.
    InsertVertex {
        /// `(neighbor, weight)` pairs of the new vertex.
        edges: Vec<(VertexId, Weight)>,
    },
    /// [`IsLabelIndex::insert_edge`].
    InsertEdge {
        /// One endpoint.
        a: VertexId,
        /// The other endpoint.
        b: VertexId,
        /// Positive edge weight.
        w: Weight,
    },
    /// [`IsLabelIndex::delete_vertex`].
    DeleteVertex {
        /// The tombstoned vertex.
        v: VertexId,
    },
}

impl UpdateOp {
    /// Checks this op against the overlay state it would apply to,
    /// mirroring the mutation path's assertions — so WAL replay can reject
    /// a checksum-valid but semantically impossible record cleanly instead
    /// of panicking mid-recovery. (A `DeleteVertex` of an already-deleted
    /// vertex is also rejected: the mutation path never logs the idempotent
    /// no-op, so such a record cannot occur in a consistent log.)
    pub(crate) fn validate(&self, overlay: &Overlay) -> Result<(), String> {
        let universe = overlay.universe();
        let check = |v: VertexId, role: &str| -> Result<(), String> {
            if (v as usize) >= universe {
                return Err(format!("{role} {v} out of range"));
            }
            if overlay.is_deleted(v) {
                return Err(format!("{role} {v} is deleted"));
            }
            Ok(())
        };
        match self {
            UpdateOp::InsertVertex { edges } => {
                for &(v, w) in edges {
                    check(v, "neighbor")?;
                    if w == 0 {
                        return Err("weights must be positive".to_string());
                    }
                }
            }
            UpdateOp::InsertEdge { a, b, w } => {
                check(*a, "vertex")?;
                check(*b, "vertex")?;
                if a == b {
                    return Err("self-loops are not allowed".to_string());
                }
                if *w == 0 {
                    return Err("weights must be positive".to_string());
                }
            }
            UpdateOp::DeleteVertex { v } => {
                if (*v as usize) >= universe {
                    return Err(format!("vertex {v} out of range"));
                }
                if overlay.is_deleted(*v) {
                    return Err(format!("vertex {v} already deleted"));
                }
            }
        }
        Ok(())
    }
}

/// Overlay state accumulated by dynamic updates.
#[derive(Debug, Default)]
pub struct Overlay {
    base_n: usize,
    extra_vertices: usize,
    /// Extra residual-graph adjacency (both directions), covering inserted
    /// vertices and inserted `G_k`-to-`G_k` edges.
    gk_extra: FxHashMap<VertexId, Vec<(VertexId, Weight)>>,
    /// Tombstoned vertices.
    deleted: FxHashSet<VertexId>,
    /// Extra label entries per vertex, ascending by ancestor, min-merged.
    label_patches: FxHashMap<VertexId, Vec<(VertexId, Dist)>>,
    /// Every inserted edge verbatim, for [`Overlay::materialize`].
    inserted_edges: Vec<(VertexId, VertexId, Weight)>,
    /// Reverse first-hop DAG (`children[u]` = vertices whose peel adjacency
    /// lists `u`), built on first use.
    children: Option<Vec<Vec<VertexId>>>,
    stale: bool,
    /// Every applied mutation in order — the source of WAL records and of
    /// the sealed-ops section of a persisted artifact. Idempotent no-ops
    /// (re-deleting a deleted vertex) are not recorded.
    ops: Vec<UpdateOp>,
}

/// A label after overlay application: borrowed when untouched, materialized
/// when patched or filtered.
pub(crate) enum EffLabel<'a> {
    Base(LabelView<'a>),
    Owned {
        ancestors: Vec<VertexId>,
        dists: Vec<Dist>,
    },
}

impl EffLabel<'_> {
    /// Views the entries (owned labels carry no first hops — path
    /// reconstruction is only offered on pristine indexes).
    pub(crate) fn view(&self) -> LabelView<'_> {
        match self {
            EffLabel::Base(v) => *v,
            EffLabel::Owned { ancestors, dists } => LabelView {
                ancestors,
                dists,
                first_hops: &[],
            },
        }
    }
}

impl Overlay {
    /// Fresh overlay over a base universe of `base_n` vertices.
    pub fn new(base_n: usize) -> Self {
        Self {
            base_n,
            ..Default::default()
        }
    }

    /// Current universe (base plus inserted vertices).
    pub fn universe(&self) -> usize {
        self.base_n + self.extra_vertices
    }

    /// Whether no update has been applied.
    pub fn is_pristine(&self) -> bool {
        self.extra_vertices == 0
            && self.deleted.is_empty()
            && self.gk_extra.is_empty()
            && self.label_patches.is_empty()
            && self.inserted_edges.is_empty()
            && self.ops.is_empty()
    }

    /// The ordered mutation log (see [`UpdateOp`]).
    pub(crate) fn ops(&self) -> &[UpdateOp] {
        &self.ops
    }

    /// Whether deletions of peeled vertices have made distances unreliable.
    pub fn stale(&self) -> bool {
        self.stale
    }

    /// Whether `v` is tombstoned.
    pub fn is_deleted(&self, v: VertexId) -> bool {
        !self.deleted.is_empty() && self.deleted.contains(&v)
    }

    /// Effective `G_k` membership: inserted vertices always live in `G_k`.
    pub fn effective_in_gk(&self, h: &VertexHierarchy, v: VertexId) -> bool {
        if (v as usize) >= self.base_n {
            true
        } else {
            h.is_in_gk(v)
        }
    }

    /// The label of `v` with patches merged and deleted ancestors removed.
    pub(crate) fn effective_label<'a>(&'a self, labels: &'a LabelSet, v: VertexId) -> EffLabel<'a> {
        if (v as usize) < self.base_n
            && !self.label_patches.contains_key(&v)
            && self.deleted.is_empty()
        {
            return EffLabel::Base(labels.label(v));
        }
        let mut ancestors = Vec::new();
        let mut dists = Vec::new();
        self.merge_label_into(labels, v, &mut ancestors, &mut dists);
        EffLabel::Owned { ancestors, dists }
    }

    /// Buffer-reusing form of [`Overlay::effective_label`] for the session
    /// dense path: untouched labels are returned borrowed from the base
    /// set, patched ones are merged into the caller's buffers (pre-size
    /// them to `max_label_len + max_patch_len` for zero steady-state
    /// allocations).
    pub(crate) fn effective_label_into<'a>(
        &self,
        labels: &'a LabelSet,
        v: VertexId,
        ancestors: &'a mut Vec<VertexId>,
        dists: &'a mut Vec<Dist>,
    ) -> LabelView<'a> {
        if (v as usize) < self.base_n
            && !self.label_patches.contains_key(&v)
            && self.deleted.is_empty()
        {
            return labels.label(v);
        }
        self.merge_label_into(labels, v, ancestors, dists);
        LabelView {
            ancestors,
            dists,
            first_hops: &[],
        }
    }

    /// Longest label patch, in entries (pre-sizes session label buffers).
    pub(crate) fn max_patch_len(&self) -> usize {
        self.label_patches.values().map(Vec::len).max().unwrap_or(0)
    }

    /// Merges `v`'s base entries (if any) with its patches, min per
    /// ancestor, dropping deleted ancestors, into `ancestors`/`dists`.
    fn merge_label_into(
        &self,
        labels: &LabelSet,
        v: VertexId,
        ancestors: &mut Vec<VertexId>,
        dists: &mut Vec<Dist>,
    ) {
        ancestors.clear();
        dists.clear();
        let base = ((v as usize) < self.base_n).then(|| labels.label(v));
        let empty: &[(VertexId, Dist)] = &[];
        let patch: &[(VertexId, Dist)] = self.label_patches.get(&v).map_or(empty, |p| p.as_slice());
        let (mut i, mut j) = (0usize, 0usize);
        let (banc, bdist): (&[VertexId], &[Dist]) =
            base.map_or((&[], &[]), |b| (b.ancestors, b.dists));
        while i < banc.len() || j < patch.len() {
            let take_base = match (banc.get(i), patch.get(j)) {
                (Some(&ba), Some(&(pa, _))) => {
                    if ba == pa {
                        // Same ancestor on both sides: keep the minimum.
                        let d = bdist[i].min(patch[j].1);
                        if !self.is_deleted(ba) {
                            ancestors.push(ba);
                            dists.push(d);
                        }
                        i += 1;
                        j += 1;
                        continue;
                    }
                    ba < pa
                }
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!(),
            };
            if take_base {
                if !self.is_deleted(banc[i]) {
                    ancestors.push(banc[i]);
                    dists.push(bdist[i]);
                }
                i += 1;
            } else {
                if !self.is_deleted(patch[j].0) {
                    ancestors.push(patch[j].0);
                    dists.push(patch[j].1);
                }
                j += 1;
            }
        }
    }

    /// Remaps the overlay's residual deltas into compact-id space for the
    /// session dense path: inserted vertices become tail ids (global
    /// `base_n + j` → dense `|ids| + j`, preserving id order), deletions
    /// become tombstones, and the extra residual adjacency is translated
    /// list by list in push order — so
    /// [`PatchedDense`](crate::dense::PatchedDense) iterates exactly the
    /// edges [`Overlay::gk_view`] does.
    pub(crate) fn dense_patch(&self, ids: &GkIdMap) -> DensePatch {
        let m = ids.len();
        let to_dense = |v: VertexId| -> Option<u32> {
            if (v as usize) < self.base_n {
                ids.dense(v)
            } else {
                Some((m + (v as usize - self.base_n)) as u32)
            }
        };
        let mut patch = DensePatch::new(m, self.extra_vertices);
        for &v in &self.deleted {
            if let Some(d) = to_dense(v) {
                patch.mark_dead(d);
            }
        }
        for (&u, list) in &self.gk_extra {
            let du = to_dense(u).expect("gk_extra key is an effective G_k vertex");
            for &(v, w) in list {
                let dv = to_dense(v).expect("gk_extra target is an effective G_k vertex");
                patch.push_edge(du, dv, w);
            }
        }
        patch
    }

    /// The `G_k` seeds of a label: entries whose ancestor is effectively in
    /// `G_k`.
    pub(crate) fn gk_seeds(
        &self,
        h: &VertexHierarchy,
        label: LabelView<'_>,
    ) -> Vec<(VertexId, Dist)> {
        label
            .iter()
            .filter(|&(a, _)| self.effective_in_gk(h, a))
            .collect()
    }

    /// Residual-graph view with the overlay applied.
    pub(crate) fn gk_view<'a>(&'a self, base: &'a CsrGraph) -> OverlayGk<'a> {
        OverlayGk {
            base,
            overlay: self,
        }
    }

    /// Materializes the fully updated graph: base edges minus tombstones,
    /// plus every inserted edge. Deleted vertices become isolated.
    pub fn materialize(&self, base: &CsrGraph) -> CsrGraph {
        let mut b = islabel_graph::GraphBuilder::new(self.universe());
        b.reserve(base.num_edges() + self.inserted_edges.len());
        for (u, v, w) in base.edge_list() {
            if !self.is_deleted(u) && !self.is_deleted(v) {
                b.add_edge(u, v, w);
            }
        }
        for &(u, v, w) in &self.inserted_edges {
            if !self.is_deleted(u) && !self.is_deleted(v) {
                b.add_edge(u, v, w);
            }
        }
        b.build()
    }

    // -----------------------------------------------------------------
    // Mutations, written as associated functions taking the whole index
    // so they can borrow hierarchy/labels immutably beside the overlay.
    // -----------------------------------------------------------------

    /// Implements [`IsLabelIndex::insert_vertex`].
    pub(crate) fn insert_vertex(
        index: &mut IsLabelIndex,
        edges: &[(VertexId, Weight)],
    ) -> VertexId {
        let u = index.overlay.universe() as VertexId;
        for &(v, w) in edges {
            assert!(
                (v as usize) < index.overlay.universe(),
                "neighbor {v} out of range"
            );
            assert!(!index.overlay.is_deleted(v), "neighbor {v} is deleted");
            assert!(w > 0, "weights must be positive");
        }
        index.overlay.ops.push(UpdateOp::InsertVertex {
            edges: edges.to_vec(),
        });
        index.overlay.extra_vertices += 1;
        // The new vertex lives in G_k with a self-only label.
        index.overlay.label_patches.insert(u, vec![(u, 0)]);

        for &(v, w) in edges {
            index.overlay.inserted_edges.push((u, v, w));
            if index.overlay.effective_in_gk(&index.hierarchy, v) {
                // "If v is in G_k, then we simply add the edge (u, v)."
                push_gk_edge(&mut index.overlay.gk_extra, u, v, w);
            } else {
                // "Otherwise ... add (u, ω(u, v)) to label(v)" and patch all
                // descendants of v with the accumulated distance.
                Overlay::patch_with_entries(index, v, &[(u, w as Dist)]);
            }
        }
        u
    }

    /// Implements [`IsLabelIndex::insert_edge`].
    pub(crate) fn insert_edge(index: &mut IsLabelIndex, a: VertexId, b: VertexId, w: Weight) {
        assert!(
            (a as usize) < index.overlay.universe(),
            "vertex {a} out of range"
        );
        assert!(
            (b as usize) < index.overlay.universe(),
            "vertex {b} out of range"
        );
        assert!(a != b, "self-loops are not allowed");
        assert!(
            !index.overlay.is_deleted(a) && !index.overlay.is_deleted(b),
            "endpoint deleted"
        );
        assert!(w > 0, "weights must be positive");
        index.overlay.ops.push(UpdateOp::InsertEdge { a, b, w });
        index.overlay.inserted_edges.push((a, b, w));

        let a_gk = index.overlay.effective_in_gk(&index.hierarchy, a);
        let b_gk = index.overlay.effective_in_gk(&index.hierarchy, b);
        if a_gk && b_gk {
            push_gk_edge(&mut index.overlay.gk_extra, a, b, w);
            return;
        }
        // For each non-G_k endpoint x, teach x (and its descendants) the
        // other endpoint's entire label shifted by w — each patched value is
        // the length of a real path x → other → ancestor.
        for (x, y) in [(a, b), (b, a)] {
            if !index.overlay.effective_in_gk(&index.hierarchy, x) {
                let shifted: Vec<(VertexId, Dist)> = index
                    .overlay
                    .effective_label(&index.labels, y)
                    .view()
                    .iter()
                    .map(|(anc, d)| (anc, d + w as Dist))
                    .collect();
                Overlay::patch_with_entries(index, x, &shifted);
            }
        }
    }

    /// Implements [`IsLabelIndex::delete_vertex`].
    pub(crate) fn delete_vertex(index: &mut IsLabelIndex, v: VertexId) {
        assert!(
            (v as usize) < index.overlay.universe(),
            "vertex {v} out of range"
        );
        if index.overlay.is_deleted(v) {
            return;
        }
        index.overlay.ops.push(UpdateOp::DeleteVertex { v });
        let was_peeled = (v as usize) < index.overlay.base_n && !index.hierarchy.is_in_gk(v);
        index.overlay.deleted.insert(v);
        index.overlay.label_patches.remove(&v);
        if let Some(list) = index.overlay.gk_extra.remove(&v) {
            for (nbr, _) in list {
                if let Some(mirror) = index.overlay.gk_extra.get_mut(&nbr) {
                    mirror.retain(|&(x, _)| x != v);
                }
            }
        }
        if was_peeled {
            // Augmenting edges and label entries may still represent paths
            // through v; only a rebuild can reconcile them (paper: "rebuild
            // the index periodically").
            index.overlay.stale = true;
        }
    }

    /// Patches `target` and all its descendants with `entries` (descendants
    /// get each distance shifted by their label distance to `target`).
    fn patch_with_entries(
        index: &mut IsLabelIndex,
        target: VertexId,
        entries: &[(VertexId, Dist)],
    ) {
        // Collect (vertex, shift) pairs first so all label reads happen
        // before any patch write.
        let mut victims: Vec<(VertexId, Dist)> = vec![(target, 0)];
        Overlay::ensure_children(index);
        let children = index.overlay.children.as_ref().expect("just built");
        let mut visited: FxHashSet<VertexId> = FxHashSet::default();
        visited.insert(target);
        let mut stack = vec![target];
        while let Some(x) = stack.pop() {
            if (x as usize) >= children.len() {
                continue; // inserted vertices have no children
            }
            for &c in &children[x as usize] {
                if visited.insert(c) {
                    stack.push(c);
                }
            }
        }
        for &x in visited.iter() {
            if x == target || index.overlay.is_deleted(x) {
                continue;
            }
            // d(x, target) from x's effective label; target is an ancestor
            // of every descendant by construction of the first-hop DAG.
            if let Some(d) = index
                .overlay
                .effective_label(&index.labels, x)
                .view()
                .get(target)
            {
                victims.push((x, d));
            }
        }

        for (x, shift) in victims {
            let patch = index.overlay.label_patches.entry(x).or_default();
            for &(anc, d) in entries {
                merge_patch(patch, anc, d + shift);
            }
        }
    }

    /// Builds the reverse first-hop DAG once.
    fn ensure_children(index: &mut IsLabelIndex) {
        if index.overlay.children.is_some() {
            return;
        }
        let n = index.overlay.base_n;
        let mut children: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for x in 0..n as VertexId {
            for e in index.hierarchy.peel_adj(x) {
                children[e.to as usize].push(x);
            }
        }
        index.overlay.children = Some(children);
    }
}

/// Inserts a sorted patch entry, keeping the minimum on collision.
fn merge_patch(patch: &mut Vec<(VertexId, Dist)>, anc: VertexId, d: Dist) {
    match patch.binary_search_by_key(&anc, |&(a, _)| a) {
        Ok(i) => patch[i].1 = patch[i].1.min(d),
        Err(i) => patch.insert(i, (anc, d)),
    }
}

fn push_gk_edge(
    gk_extra: &mut FxHashMap<VertexId, Vec<(VertexId, Weight)>>,
    u: VertexId,
    v: VertexId,
    w: Weight,
) {
    gk_extra.entry(u).or_default().push((v, w));
    gk_extra.entry(v).or_default().push((u, w));
}

/// Residual graph plus overlay: base `G_k` edges with tombstones applied,
/// chained with inserted adjacency.
pub(crate) struct OverlayGk<'a> {
    base: &'a CsrGraph,
    overlay: &'a Overlay,
}

impl GkGraph for OverlayGk<'_> {
    fn edges_of(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let alive = !self.overlay.is_deleted(v);
        let base = (alive && (v as usize) < self.base.num_vertices())
            .then(|| self.base.edges(v))
            .into_iter()
            .flatten();
        let extra = alive
            .then(|| self.overlay.gk_extra.get(&v))
            .flatten()
            .into_iter()
            .flat_map(|list| list.iter().copied());
        base.chain(extra)
            .filter(|&(u, _)| !self.overlay.is_deleted(u))
    }
}

#[cfg(test)]
mod tests {
    use crate::config::BuildConfig;
    use crate::index::IsLabelIndex;
    use crate::reference::dijkstra_p2p;
    use islabel_graph::generators::{barabasi_albert, erdos_renyi_gnm, WeightModel};
    use islabel_graph::{GraphBuilder, VertexId};

    fn check_upper_bound_and_rebuild_exact(
        index: &mut IsLabelIndex,
        queries: &[(VertexId, VertexId)],
    ) {
        let current = index.current_graph();
        for &(s, t) in queries {
            let truth = dijkstra_p2p(&current, s, t);
            let got = index.distance(s, t);
            match (got, truth) {
                (Some(g), Some(tr)) => {
                    assert!(g >= tr, "({s}, {t}): reported {g} below true {tr}")
                }
                (None, Some(_)) => {} // may miss a path; upper-bound contract
                (Some(_), None) => panic!("({s}, {t}): reported a distance for unreachable pair"),
                (None, None) => {}
            }
        }
        index.rebuild();
        assert!(!index.has_updates());
        let current = index.current_graph();
        for &(s, t) in queries {
            assert_eq!(
                index.distance(s, t),
                dijkstra_p2p(&current, s, t),
                "post-rebuild ({s}, {t})"
            );
        }
    }

    #[test]
    fn insert_vertex_adjacent_to_gk_is_exact() {
        let g = barabasi_albert(150, 3, WeightModel::Unit, 5);
        let mut index = IsLabelIndex::build(&g, BuildConfig::default());
        let gk_a = index.hierarchy().gk_members()[0];
        let gk_b = index.hierarchy().gk_members()[1];
        let u = index.insert_vertex(&[(gk_a, 2), (gk_b, 5)]);
        assert!(index.has_updates());
        assert!(!index.is_stale());
        assert_eq!(index.num_vertices(), 151);

        let current = index.current_graph();
        // Queries to/from the new vertex match ground truth exactly: the new
        // vertex is in G_k and both its edges are searchable.
        for t in [gk_a, gk_b, 0, 17, 42] {
            assert_eq!(
                index.distance(u, t),
                dijkstra_p2p(&current, u, t),
                "u -> {t}"
            );
            assert_eq!(
                index.distance(t, u),
                dijkstra_p2p(&current, t, u),
                "{t} -> u"
            );
        }
    }

    #[test]
    fn insert_vertex_adjacent_to_peeled_is_upper_bound() {
        let g = barabasi_albert(150, 3, WeightModel::UniformRange(1, 3), 6);
        let mut index = IsLabelIndex::build(&g, BuildConfig::default());
        let peeled: Vec<VertexId> = g
            .vertices()
            .filter(|&v| !index.is_in_gk(v))
            .take(2)
            .collect();
        assert_eq!(peeled.len(), 2, "test needs peeled vertices");
        let u = index.insert_vertex(&[(peeled[0], 1), (peeled[1], 4)]);

        let queries: Vec<(VertexId, VertexId)> = (0..30)
            .map(|i| (u, (i * 5) % 150))
            .chain([(peeled[0], u), (u, u)])
            .collect();
        check_upper_bound_and_rebuild_exact(&mut index, &queries);
    }

    #[test]
    fn insert_edge_between_gk_vertices_is_exact() {
        let g = erdos_renyi_gnm(120, 360, WeightModel::UniformRange(2, 9), 7);
        let mut index = IsLabelIndex::build(&g, BuildConfig::default());
        let members = index.hierarchy().gk_members().to_vec();
        assert!(members.len() >= 2);
        let (a, b) = (members[0], *members.last().unwrap());
        index.insert_edge(a, b, 1);
        let current = index.current_graph();
        for (s, t) in [(a, b), (0, 119), (a, 60), (5, b)] {
            assert_eq!(
                index.distance(s, t),
                dijkstra_p2p(&current, s, t),
                "({s}, {t})"
            );
        }
    }

    #[test]
    fn insert_edge_touching_peeled_vertex_is_upper_bound() {
        let g = barabasi_albert(100, 2, WeightModel::UniformRange(1, 5), 8);
        let mut index = IsLabelIndex::build(&g, BuildConfig::default());
        let peeled = g.vertices().find(|&v| !index.is_in_gk(v)).unwrap();
        let far = g.vertices().rev().find(|&v| v != peeled).unwrap();
        index.insert_edge(peeled, far, 1);
        let queries: Vec<(VertexId, VertexId)> = (0..25)
            .map(|i| ((i * 3) % 100, (i * 11 + 7) % 100))
            .collect();
        check_upper_bound_and_rebuild_exact(&mut index, &queries);
    }

    #[test]
    fn delete_gk_vertex_stays_exact() {
        let g = erdos_renyi_gnm(120, 300, WeightModel::Unit, 9);
        let mut index = IsLabelIndex::build(&g, BuildConfig::default());
        let victim = index.hierarchy().gk_members()[0];
        index.delete_vertex(victim);
        assert!(
            !index.is_stale(),
            "deleting a G_k vertex must not mark stale"
        );
        assert_eq!(index.distance(victim, 0), None);
        assert_eq!(index.distance(0, victim), None);

        let current = index.current_graph();
        for (s, t) in [(0u32, 119u32), (3, 40), (10, 90), (55, 56)] {
            assert_eq!(
                index.distance(s, t),
                dijkstra_p2p(&current, s, t),
                "({s}, {t})"
            );
        }
    }

    #[test]
    fn delete_peeled_vertex_marks_stale_and_rebuild_recovers() {
        let g = barabasi_albert(100, 2, WeightModel::Unit, 10);
        let mut index = IsLabelIndex::build(&g, BuildConfig::default());
        let victim = g.vertices().find(|&v| !index.is_in_gk(v)).unwrap();
        index.delete_vertex(victim);
        assert!(index.is_stale());
        assert_eq!(index.distance(victim, 1), None);

        index.rebuild();
        assert!(!index.is_stale());
        let current = index.current_graph();
        for (s, t) in [(0u32, 99u32), (2, 50), (victim, 3)] {
            assert_eq!(
                index.distance(s, t),
                dijkstra_p2p(&current, s, t),
                "({s}, {t})"
            );
        }
    }

    #[test]
    fn delete_is_idempotent_and_double_insert_works() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(2, 3, 1);
        let mut index = IsLabelIndex::build(&b.build(), BuildConfig::default());
        index.delete_vertex(1);
        index.delete_vertex(1);
        // Vertex 1 was peeled: the index is stale (label entries may still
        // reflect paths through it — the documented lazy semantics), but
        // queries naming the deleted endpoint must answer None.
        assert!(index.is_stale());
        assert_eq!(index.distance(1, 2), None);
        assert_eq!(index.distance(0, 1), None);

        let u = index.insert_vertex(&[(0, 1), (2, 1)]);
        let v = index.insert_vertex(&[(u, 1)]);
        assert_eq!(index.distance(0, 2), Some(2)); // 0-u-2 bypasses deleted 1
        assert_eq!(index.distance(v, 2), Some(2));

        // Rebuild reconciles everything exactly.
        index.rebuild();
        let g = index.current_graph();
        assert_eq!(index.distance(0, 2), dijkstra_p2p(&g, 0, 2));
        assert_eq!(index.distance(0, 2), Some(2));
        assert_eq!(index.distance(0, 1), None);
    }

    #[test]
    fn chained_inserts_compose() {
        // Build a chain of inserted vertices hanging off the graph and check
        // distances along it (pure G_k reasoning, hence exact).
        let g = erdos_renyi_gnm(60, 150, WeightModel::Unit, 11);
        let mut index = IsLabelIndex::build(&g, BuildConfig::default());
        let anchor = index.hierarchy().gk_members()[0];
        let mut prev = anchor;
        let mut ids = Vec::new();
        for _ in 0..5 {
            let u = index.insert_vertex(&[(prev, 2)]);
            ids.push(u);
            prev = u;
        }
        assert_eq!(index.distance(anchor, *ids.last().unwrap()), Some(10));
        assert_eq!(index.distance(ids[0], ids[4]), Some(8));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_edge_to_unknown_vertex_panics() {
        let g = erdos_renyi_gnm(10, 20, WeightModel::Unit, 1);
        let mut index = IsLabelIndex::build(&g, BuildConfig::default());
        index.insert_edge(0, 99, 1);
    }

    #[test]
    fn materialize_reflects_all_updates() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 5);
        b.add_edge(1, 2, 5);
        let mut index = IsLabelIndex::build(&b.build(), BuildConfig::default());
        let u = index.insert_vertex(&[(0, 1)]);
        index.insert_edge(u, 2, 1);
        index.delete_vertex(1);
        let g = index.current_graph();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.degree(1), 0); // deleted => isolated
        assert_eq!(g.edge_weight(0, u), Some(1));
        assert_eq!(g.edge_weight(u, 2), Some(1));
        assert_eq!(g.num_edges(), 2);
    }
}
