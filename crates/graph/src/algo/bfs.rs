//! Breadth-first search utilities (hop distances, reachability).

use crate::csr::CsrGraph;
use crate::ids::{Dist, VertexId, INF};
use std::collections::VecDeque;

/// Hop distances (ignoring weights) from `source` to every vertex;
/// unreachable vertices get [`INF`].
pub fn bfs_distances(g: &CsrGraph, source: VertexId) -> Vec<Dist> {
    let mut dist = vec![INF; g.num_vertices()];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &u in g.neighbors(v) {
            if dist[u as usize] == INF {
                dist[u as usize] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn path_graph_distances() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 9);
        b.add_edge(1, 2, 9);
        b.add_edge(2, 3, 9);
        let g = b.build();
        // BFS ignores weights.
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn disconnected_vertices_are_inf() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1);
        let g = b.build();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], INF);
        assert_eq!(d[3], INF);
    }
}
