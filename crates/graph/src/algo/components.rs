//! Connected components and largest-component extraction.
//!
//! The paper extracts the largest connected component of its Web dataset
//! before indexing ("there are many connected components in G, we extract
//! the largest connected component for our experiments", Section 7);
//! [`largest_component`] reproduces that preparation step, relabeling
//! vertices densely.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::ids::VertexId;

/// Result of a components computation.
#[derive(Debug, Clone)]
pub struct ComponentInfo {
    /// Component id of each vertex, in `0..num_components`.
    pub component_of: Vec<u32>,
    /// Number of components.
    pub num_components: usize,
    /// Vertex count of each component.
    pub sizes: Vec<usize>,
}

/// Labels connected components with an iterative DFS (no recursion, safe for
/// deep/large graphs).
pub fn connected_components(g: &CsrGraph) -> ComponentInfo {
    let n = g.num_vertices();
    const UNSEEN: u32 = u32::MAX;
    let mut component_of = vec![UNSEEN; n];
    let mut sizes = Vec::new();
    let mut stack = Vec::new();
    for start in g.vertices() {
        if component_of[start as usize] != UNSEEN {
            continue;
        }
        let cid = sizes.len() as u32;
        let mut size = 0usize;
        component_of[start as usize] = cid;
        stack.push(start);
        while let Some(v) = stack.pop() {
            size += 1;
            for &u in g.neighbors(v) {
                if component_of[u as usize] == UNSEEN {
                    component_of[u as usize] = cid;
                    stack.push(u);
                }
            }
        }
        sizes.push(size);
    }
    ComponentInfo {
        component_of,
        num_components: sizes.len(),
        sizes,
    }
}

/// Extracts the largest connected component as a new graph with dense vertex
/// ids, returning the graph and the mapping `new id -> old id`.
///
/// Ties between equal-size components break toward the one containing the
/// smallest original vertex id, keeping the operation deterministic.
pub fn largest_component(g: &CsrGraph) -> (CsrGraph, Vec<VertexId>) {
    let info = connected_components(g);
    if info.num_components <= 1 {
        return (g.clone(), g.vertices().collect());
    }
    let best = info
        .sizes
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(i, _)| i as u32)
        .unwrap();

    // Dense relabeling in ascending old-id order.
    let mut new_of_old = vec![VertexId::MAX; g.num_vertices()];
    let mut old_of_new = Vec::with_capacity(info.sizes[best as usize]);
    for v in g.vertices() {
        if info.component_of[v as usize] == best {
            new_of_old[v as usize] = old_of_new.len() as VertexId;
            old_of_new.push(v);
        }
    }

    let mut b = GraphBuilder::new(old_of_new.len());
    for (u, v, w) in g.edge_list() {
        if info.component_of[u as usize] == best {
            b.add_edge(new_of_old[u as usize], new_of_old[v as usize], w);
        }
    }
    (b.build(), old_of_new)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_components() -> CsrGraph {
        // Component A: 0-1-2 (3 vertices), component B: 3-4 (2 vertices),
        // vertex 5 isolated.
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(3, 4, 7);
        b.build()
    }

    #[test]
    fn counts_components() {
        let info = connected_components(&two_components());
        assert_eq!(info.num_components, 3);
        let mut sizes = info.sizes.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 3]);
    }

    #[test]
    fn same_component_same_label() {
        let info = connected_components(&two_components());
        assert_eq!(info.component_of[0], info.component_of[1]);
        assert_eq!(info.component_of[1], info.component_of[2]);
        assert_ne!(info.component_of[0], info.component_of[3]);
        assert_ne!(info.component_of[3], info.component_of[5]);
    }

    #[test]
    fn largest_component_extracts_and_relabels() {
        let (lcc, old_ids) = largest_component(&two_components());
        assert_eq!(lcc.num_vertices(), 3);
        assert_eq!(lcc.num_edges(), 2);
        assert_eq!(old_ids, vec![0, 1, 2]);
        assert!(lcc.has_edge(0, 1));
        assert!(lcc.has_edge(1, 2));
    }

    #[test]
    fn connected_graph_is_identity() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        let g = b.build();
        let (lcc, old_ids) = largest_component(&g);
        assert_eq!(lcc, g);
        assert_eq!(old_ids, vec![0, 1, 2]);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(0);
        let info = connected_components(&g);
        assert_eq!(info.num_components, 0);
    }
}
