//! Graph statistics in the shape of the paper's Table 2
//! (|V|, |E|, average degree, maximum degree, storage size).

use crate::csr::CsrGraph;

/// Summary statistics of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of undirected edges.
    pub num_edges: usize,
    /// Average degree `2|E| / |V|`.
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Approximate resident size in bytes of the CSR representation.
    pub memory_bytes: usize,
}

impl GraphStats {
    /// Computes statistics in one pass.
    pub fn of(g: &CsrGraph) -> Self {
        Self {
            num_vertices: g.num_vertices(),
            num_edges: g.num_edges(),
            avg_degree: g.avg_degree(),
            max_degree: g.max_degree(),
            memory_bytes: g.memory_bytes(),
        }
    }
}

/// Renders byte counts the way the paper's tables do ("5.6 GB", "200 MB").
pub fn human_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

/// Renders large counts the way the paper does ("164.7M", "86K").
pub fn human_count(count: usize) -> String {
    if count >= 1_000_000 {
        format!("{:.1}M", count as f64 / 1_000_000.0)
    } else if count >= 1_000 {
        format!("{:.1}K", count as f64 / 1_000.0)
    } else {
        count.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn stats_of_small_graph() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1);
        b.add_edge(0, 2, 1);
        b.add_edge(0, 3, 1);
        let s = GraphStats::of(&b.build());
        assert_eq!(s.num_vertices, 4);
        assert_eq!(s.num_edges, 3);
        assert_eq!(s.max_degree, 3);
        assert!((s.avg_degree - 1.5).abs() < 1e-9);
        assert!(s.memory_bytes > 0);
    }

    #[test]
    fn human_bytes_formatting() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.0 KB");
        assert_eq!(human_bytes(5 * 1024 * 1024), "5.0 MB");
        assert_eq!(human_bytes(3 * 1024 * 1024 * 1024), "3.0 GB");
    }

    #[test]
    fn human_count_formatting() {
        assert_eq!(human_count(42), "42");
        assert_eq!(human_count(86_000), "86.0K");
        assert_eq!(human_count(164_700_000), "164.7M");
    }
}
