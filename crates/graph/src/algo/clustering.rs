//! Degree distributions and clustering coefficients.
//!
//! Clustering is the structural property that controls how IS-LABEL's
//! hierarchy construction behaves: peeling a vertex whose neighborhood is
//! triangle-rich mostly *re-weights* existing edges instead of adding new
//! ones, so clustered graphs keep shrinking level after level (deep
//! hierarchies — the paper's Web), while locally tree-like graphs densify
//! and stop early. These diagnostics back the synthetic dataset design
//! (see `datasets` and DESIGN.md).

use crate::csr::CsrGraph;
use crate::ids::VertexId;

/// Histogram of vertex degrees: `histogram[d]` counts vertices of degree
/// `d` (trailing zeros trimmed).
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.vertices() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Local clustering coefficient of `v`: the fraction of neighbor pairs
/// that are themselves adjacent (0 for degree < 2).
pub fn local_clustering(g: &CsrGraph, v: VertexId) -> f64 {
    let ns = g.neighbors(v);
    if ns.len() < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for (i, &a) in ns.iter().enumerate() {
        // Count edges (a, b) with b a later neighbor of v; adjacency lists
        // are sorted, so one merge pass per neighbor suffices.
        let later = &ns[i + 1..];
        let a_ns = g.neighbors(a);
        let (mut x, mut y) = (0usize, 0usize);
        while x < a_ns.len() && y < later.len() {
            match a_ns[x].cmp(&later[y]) {
                std::cmp::Ordering::Less => x += 1,
                std::cmp::Ordering::Greater => y += 1,
                std::cmp::Ordering::Equal => {
                    closed += 1;
                    x += 1;
                    y += 1;
                }
            }
        }
    }
    let pairs = ns.len() * (ns.len() - 1) / 2;
    closed as f64 / pairs as f64
}

/// Average local clustering coefficient over all vertices of degree ≥ 2
/// (Watts–Strogatz definition restricted to meaningful vertices). For
/// large graphs, `sample_stride > 1` evaluates every `stride`-th vertex.
pub fn avg_clustering(g: &CsrGraph, sample_stride: usize) -> f64 {
    assert!(sample_stride >= 1);
    let mut total = 0.0;
    let mut count = 0usize;
    for v in g.vertices().step_by(sample_stride) {
        if g.degree(v) >= 2 {
            total += local_clustering(g, v);
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators::{barabasi_albert, clustered_communities, WeightModel};

    #[test]
    fn triangle_is_fully_clustered() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(0, 2, 1);
        let g = b.build();
        for v in 0..3 {
            assert_eq!(local_clustering(&g, v), 1.0);
        }
        assert_eq!(avg_clustering(&g, 1), 1.0);
    }

    #[test]
    fn star_has_zero_clustering() {
        let mut b = GraphBuilder::new(5);
        for v in 1..5u32 {
            b.add_edge(0, v, 1);
        }
        let g = b.build();
        assert_eq!(local_clustering(&g, 0), 0.0);
        assert_eq!(local_clustering(&g, 1), 0.0); // degree 1
        assert_eq!(avg_clustering(&g, 1), 0.0);
    }

    #[test]
    fn histogram_counts_degrees() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1);
        b.add_edge(0, 2, 1);
        b.add_edge(0, 3, 1);
        let g = b.build();
        let h = degree_histogram(&g);
        assert_eq!(h, vec![0, 3, 0, 1]); // three leaves, one hub of degree 3
        assert_eq!(h.iter().sum::<usize>(), 4);
    }

    #[test]
    fn community_graphs_are_far_more_clustered_than_ba() {
        // The property the Web-like dataset depends on.
        let comm = clustered_communities(2000, 10, 16, 0.1, WeightModel::Unit, 1);
        let ba = barabasi_albert(2000, 7, WeightModel::Unit, 1);
        let cc = avg_clustering(&comm, 1);
        let cb = avg_clustering(&ba, 1);
        assert!(cc > 0.6, "community clustering {cc}");
        assert!(cb < 0.2, "BA clustering {cb}");
    }

    #[test]
    fn sampling_approximates_full_average() {
        let g = clustered_communities(3000, 8, 14, 0.1, WeightModel::Unit, 5);
        let full = avg_clustering(&g, 1);
        let sampled = avg_clustering(&g, 7);
        assert!(
            (full - sampled).abs() < 0.1,
            "full {full} vs sampled {sampled}"
        );
    }
}
