//! Basic graph algorithms and statistics used by dataset preparation,
//! tests and the experiment harness.

pub mod bfs;
pub mod clustering;
pub mod components;
pub mod stats;

pub use bfs::bfs_distances;
pub use clustering::{avg_clustering, degree_histogram, local_clustering};
pub use components::{connected_components, largest_component, ComponentInfo};
pub use stats::GraphStats;
