//! A fast, non-cryptographic hasher for integer keys.
//!
//! The standard library's SipHash is robust against HashDoS but slow for the
//! `u32`-keyed maps that dominate hierarchy construction. This is the FxHash
//! algorithm used by rustc (multiply by a large odd constant after rotating
//! and xoring), reimplemented here because `rustc-hash` is not part of the
//! approved offline dependency set. Hash quality is sufficient for our keys:
//! dense vertex identifiers with no adversarial input.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx hash function: `state = (state.rotate_left(5) ^ word) * SEED`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Chunked 8-byte mixing; the tail is zero-padded. Our keys are almost
        // always u32/u64 so the fixed-width paths below are the hot ones.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_one<T: std::hash::Hash>(value: T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(42u32), hash_one(42u32));
        assert_eq!(hash_one((1u32, 2u32)), hash_one((1u32, 2u32)));
    }

    #[test]
    fn distinguishes_nearby_integers() {
        // Fx is weak but must at least separate sequential ids.
        let hashes: Vec<u64> = (0u32..1000).map(hash_one).collect();
        let distinct: FxHashSet<u64> = hashes.iter().copied().collect();
        assert_eq!(distinct.len(), 1000);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..10_000u32 {
            m.insert(i, i * 2);
        }
        for i in 0..10_000u32 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
        assert_eq!(m.len(), 10_000);
    }

    #[test]
    fn byte_slices_hash_consistently() {
        assert_eq!(
            hash_one(b"hello world".as_slice()),
            hash_one(b"hello world".as_slice())
        );
        assert_ne!(
            hash_one(b"hello world".as_slice()),
            hash_one(b"hello worle".as_slice())
        );
    }
}
