//! Immutable undirected graph in compressed sparse row (CSR) form.
//!
//! This is the canonical at-rest representation: adjacency lists are stored
//! in two flat arrays (`neighbors`, `weights`) indexed by a per-vertex offset
//! table, with each list sorted by neighbor id. It matches the paper's
//! assumption that "a graph is stored in its adjacency list representation
//! ... vertices are ordered in ascending order of their vertex IDs"
//! (Section 2) and gives cache-friendly sequential scans.

use crate::ids::{VertexId, Weight};

/// A weighted, undirected simple graph in CSR layout.
///
/// Every undirected edge `(u, v)` appears twice: once in `u`'s list and once
/// in `v`'s. Self-loops and parallel edges are rejected by the builders.
///
/// # Examples
///
/// ```
/// use islabel_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1, 5);
/// b.add_edge(1, 2, 7);
/// let g = b.build();
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.edge_weight(1, 2), Some(7));
/// assert_eq!(g.degree(1), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v + 1]` indexes `v`'s adjacency in the flat arrays.
    offsets: Vec<usize>,
    /// Neighbor ids, sorted ascending within each vertex's slice.
    neighbors: Vec<VertexId>,
    /// Parallel to `neighbors`.
    weights: Vec<Weight>,
}

impl CsrGraph {
    /// Builds a CSR graph directly from pre-validated parts.
    ///
    /// Used by [`crate::builder::GraphBuilder`] and the binary reader; panics
    /// (in debug builds) if the parts are structurally inconsistent.
    pub(crate) fn from_parts(
        offsets: Vec<usize>,
        neighbors: Vec<VertexId>,
        weights: Vec<Weight>,
    ) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap(), neighbors.len());
        debug_assert_eq!(neighbors.len(), weights.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        Self {
            offsets,
            neighbors,
            weights,
        }
    }

    /// An empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        Self {
            offsets: vec![0; n + 1],
            neighbors: Vec::new(),
            weights: Vec::new(),
        }
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `|E|` (each stored twice internally).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// The paper's `|G| = |V| + |E|`, used by the k-selection criterion.
    #[inline]
    pub fn size(&self) -> usize {
        self.num_vertices() + self.num_edges()
    }

    /// Degree of `v` (`deg_G(v) = |adj_G(v)|`).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Neighbor ids of `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Weights parallel to [`Self::neighbors`].
    #[inline]
    pub fn weights(&self, v: VertexId) -> &[Weight] {
        &self.weights[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Iterates `(neighbor, weight)` pairs of `v` in ascending neighbor order.
    #[inline]
    pub fn edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.neighbors(v)
            .iter()
            .copied()
            .zip(self.weights(v).iter().copied())
    }

    /// Iterates every vertex id `0..n`.
    #[inline]
    pub fn vertices(&self) -> std::ops::Range<VertexId> {
        0..self.num_vertices() as VertexId
    }

    /// Iterates every undirected edge exactly once as `(u, v, w)` with `u < v`.
    pub fn edge_list(&self) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + '_ {
        self.vertices()
            .flat_map(move |u| self.edges(u).map(move |(v, w)| (u, v, w)))
            .filter(|&(u, v, _)| u < v)
    }

    /// Whether the edge `(u, v)` exists.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.edge_weight(u, v).is_some()
    }

    /// Weight of the edge `(u, v)`, if present. Binary search over `u`'s
    /// sorted adjacency, so `O(log deg(u))`.
    #[inline]
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        let ns = self.neighbors(u);
        ns.binary_search(&v).ok().map(|i| self.weights(u)[i])
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average degree `2|E| / |V|`.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.neighbors.len() as f64 / self.num_vertices() as f64
        }
    }

    /// Approximate resident size in bytes (offset, neighbor and weight
    /// arrays); reported in the Table 2 reproduction.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.neighbors.len() * std::mem::size_of::<VertexId>()
            + self.weights.len() * std::mem::size_of::<Weight>()
    }

    /// Raw CSR parts `(offsets, neighbors, weights)`, for serialization.
    pub fn parts(&self) -> (&[usize], &[VertexId], &[Weight]) {
        (&self.offsets, &self.neighbors, &self.weights)
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;

    fn triangle() -> crate::CsrGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 2);
        b.add_edge(0, 2, 3);
        b.build()
    }

    #[test]
    fn basic_accessors() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.size(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.weights(0), &[1, 3]);
        assert_eq!(g.max_degree(), 2);
        assert!((g.avg_degree() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn edge_weight_lookup_is_symmetric() {
        let g = triangle();
        for (u, v, w) in [(0, 1, 1), (1, 2, 2), (0, 2, 3)] {
            assert_eq!(g.edge_weight(u, v), Some(w));
            assert_eq!(g.edge_weight(v, u), Some(w));
        }
        assert_eq!(g.edge_weight(0, 0), None);
    }

    #[test]
    fn edge_list_yields_each_edge_once() {
        let g = triangle();
        let edges: Vec<_> = g.edge_list().collect();
        assert_eq!(edges, vec![(0, 1, 1), (0, 2, 3), (1, 2, 2)]);
    }

    #[test]
    fn empty_graph() {
        let g = crate::CsrGraph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    fn isolated_vertices_coexist_with_edges() {
        let mut b = GraphBuilder::new(10);
        b.add_edge(2, 7, 4);
        let g = b.build();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.degree(2), 1);
        assert_eq!(g.neighbors(7), &[2]);
    }
}
