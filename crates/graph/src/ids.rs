//! Fundamental scalar types shared by the whole workspace.
//!
//! The paper (Section 2) works with weighted undirected simple graphs whose
//! edge weights are positive integers. We use `u32` vertex identifiers (the
//! paper's largest graph has 164.7M vertices, well inside `u32`) and `u32`
//! weights; distances are accumulated in `u64` so that summing up to `2^32`
//! unit-weight edges cannot overflow.

/// Identifier of a vertex. Vertices of a graph with `n` vertices are always
/// the dense range `0..n`.
pub type VertexId = u32;

/// Weight of an edge; the paper requires `ω : E → N+`, i.e. weights `>= 1`.
pub type Weight = u32;

/// A path length / distance. `u64` cannot overflow for any graph expressible
/// with `u32` vertex ids and `u32` weights.
pub type Dist = u64;

/// The paper's `∞`: the distance reported for disconnected vertex pairs.
pub const INF: Dist = u64::MAX;

/// Saturating distance addition that treats [`INF`] as absorbing.
///
/// `add_dist(INF, x) == INF` for every `x`, mirroring arithmetic over the
/// extended naturals used implicitly by Equation 1 of the paper.
#[inline]
pub fn add_dist(a: Dist, b: Dist) -> Dist {
    a.saturating_add(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inf_is_absorbing() {
        assert_eq!(add_dist(INF, 0), INF);
        assert_eq!(add_dist(INF, 12345), INF);
        assert_eq!(add_dist(3, INF), INF);
    }

    #[test]
    fn finite_addition_is_exact() {
        assert_eq!(add_dist(2, 3), 5);
        assert_eq!(add_dist(0, 0), 0);
    }

    #[test]
    fn max_weight_paths_do_not_overflow() {
        // A path of u32::MAX edges each of weight u32::MAX fits in u64; going
        // beyond that saturates to INF (treated as unreachable) instead of
        // wrapping to a bogus small distance.
        let huge = u32::MAX as Dist * u32::MAX as Dist;
        assert!(huge < INF);
        assert_eq!(add_dist(huge, 1), huge + 1);
        assert_eq!(add_dist(huge, huge), INF);
        assert_eq!(add_dist(INF - 1, INF - 1), INF);
    }
}
