//! Edge-accumulating builders that produce CSR graphs.
//!
//! Builders accept edges in any order, ignore self-loops, and resolve
//! parallel edges by keeping the minimum weight — the same resolution rule
//! the paper applies when an augmenting edge collides with an existing edge
//! (Section 4.1). Construction is sort-based, so building is
//! `O(|E| log |E|)` with no per-edge hashing.

use crate::csr::CsrGraph;
use crate::digraph::CsrDigraph;
use crate::ids::{VertexId, Weight};

/// Builder for undirected [`CsrGraph`]s.
///
/// # Examples
///
/// ```
/// use islabel_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1, 3);
/// b.add_edge(1, 0, 2); // parallel edge: min weight (2) wins
/// b.add_edge(2, 2, 9); // self-loop: ignored
/// let g = b.build();
/// assert_eq!(g.num_edges(), 1);
/// assert_eq!(g.edge_weight(0, 1), Some(2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    num_vertices: usize,
    /// Normalized edges with `u < v`.
    edges: Vec<(VertexId, VertexId, Weight)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with exactly `n` vertices (`0..n`).
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "vertex ids must fit in u32");
        Self {
            num_vertices: n,
            edges: Vec::new(),
        }
    }

    /// Creates a builder and bulk-loads `edges`.
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (VertexId, VertexId, Weight)>,
    ) -> Self {
        let mut b = Self::new(n);
        for (u, v, w) in edges {
            b.add_edge(u, v, w);
        }
        b
    }

    /// Pre-allocates space for `additional` more edges.
    pub fn reserve(&mut self, additional: usize) {
        self.edges.reserve(additional);
    }

    /// The fixed vertex-universe size this builder was created with.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of (not yet deduplicated) edges added so far.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges have been added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Adds an undirected edge. Self-loops are silently dropped; weights must
    /// be positive (the paper's `ω : E → N+`).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or the weight is zero.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, w: Weight) {
        assert!(
            (u as usize) < self.num_vertices && (v as usize) < self.num_vertices,
            "edge ({u}, {v}) out of range for {} vertices",
            self.num_vertices
        );
        assert!(
            w > 0,
            "edge weights must be positive integers (paper, Section 2)"
        );
        if u == v {
            return;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b, w));
    }

    /// Finalizes into a [`CsrGraph`], deduplicating parallel edges to their
    /// minimum weight.
    pub fn build(mut self) -> CsrGraph {
        // Sort normalized edges, then collapse duplicates keeping min weight.
        self.edges.sort_unstable();
        self.edges.dedup_by(|next, kept| {
            if next.0 == kept.0 && next.1 == kept.1 {
                kept.2 = kept.2.min(next.2);
                true
            } else {
                false
            }
        });

        // Counting pass: each undirected edge contributes to both endpoints.
        let n = self.num_vertices;
        let mut counts = vec![0usize; n + 1];
        for &(u, v, _) in &self.edges {
            counts[u as usize + 1] += 1;
            counts[v as usize + 1] += 1;
        }
        for i in 1..=n {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();

        // Two fill passes over the sorted edge list keep each adjacency slice
        // sorted without any post-pass: for vertex x, partners smaller than x
        // are written first (pass 1, ascending because the edge list is
        // (u, v)-lexicographic), then partners larger than x (pass 2, also
        // ascending). Since every pass-1 partner < x < every pass-2 partner,
        // the concatenation is sorted.
        let total = self.edges.len() * 2;
        let mut neighbors = vec![0 as VertexId; total];
        let mut weights = vec![0 as Weight; total];
        let mut cursor = counts;
        for &(u, v, w) in &self.edges {
            // Pass 1: record u (the smaller endpoint) in v's slice.
            let cv = &mut cursor[v as usize];
            neighbors[*cv] = u;
            weights[*cv] = w;
            *cv += 1;
        }
        for &(u, v, w) in &self.edges {
            // Pass 2: record v (the larger endpoint) in u's slice.
            let cu = &mut cursor[u as usize];
            neighbors[*cu] = v;
            weights[*cu] = w;
            *cu += 1;
        }
        debug_assert!((0..n).all(|x| neighbors[offsets[x]..offsets[x + 1]].is_sorted()));

        CsrGraph::from_parts(offsets, neighbors, weights)
    }
}

/// Builder for directed [`CsrDigraph`]s; identical policy (no self-loops,
/// parallel arcs keep the minimum weight), but `(u, v)` and `(v, u)` are
/// distinct arcs.
#[derive(Debug, Clone, Default)]
pub struct DigraphBuilder {
    num_vertices: usize,
    arcs: Vec<(VertexId, VertexId, Weight)>,
}

impl DigraphBuilder {
    /// Creates a builder for a digraph with exactly `n` vertices.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "vertex ids must fit in u32");
        Self {
            num_vertices: n,
            arcs: Vec::new(),
        }
    }

    /// Creates a builder and bulk-loads `arcs`.
    pub fn from_arcs(
        n: usize,
        arcs: impl IntoIterator<Item = (VertexId, VertexId, Weight)>,
    ) -> Self {
        let mut b = Self::new(n);
        for (u, v, w) in arcs {
            b.add_arc(u, v, w);
        }
        b
    }

    /// Adds the directed arc `u -> v`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or the weight is zero.
    pub fn add_arc(&mut self, u: VertexId, v: VertexId, w: Weight) {
        assert!(
            (u as usize) < self.num_vertices && (v as usize) < self.num_vertices,
            "arc ({u}, {v}) out of range for {} vertices",
            self.num_vertices
        );
        assert!(w > 0, "arc weights must be positive integers");
        if u == v {
            return;
        }
        self.arcs.push((u, v, w));
    }

    /// Finalizes into a [`CsrDigraph`] with both out- and in-adjacency.
    pub fn build(mut self) -> CsrDigraph {
        self.arcs.sort_unstable();
        self.arcs.dedup_by(|next, kept| {
            if next.0 == kept.0 && next.1 == kept.1 {
                kept.2 = kept.2.min(next.2);
                true
            } else {
                false
            }
        });
        CsrDigraph::from_arcs_sorted(self.num_vertices, &self.arcs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_keeps_min_weight() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 9);
        b.add_edge(1, 0, 4);
        b.add_edge(0, 1, 6);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(4));
    }

    #[test]
    fn self_loops_dropped() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(1, 1, 5);
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0);
    }

    #[test]
    fn adjacency_is_sorted() {
        // Insert edges in scrambled order and verify sorted slices.
        let mut b = GraphBuilder::new(6);
        for (u, v) in [(3, 1), (5, 3), (3, 0), (2, 3), (3, 4)] {
            b.add_edge(u, v, 1);
        }
        let g = b.build();
        assert_eq!(g.neighbors(3), &[0, 1, 2, 4, 5]);
    }

    #[test]
    fn from_edges_matches_incremental() {
        let edges = [(0, 1, 2), (1, 2, 3), (2, 0, 4)];
        let a = GraphBuilder::from_edges(3, edges).build();
        let mut b = GraphBuilder::new(3);
        for (u, v, w) in edges {
            b.add_edge(u, v, w);
        }
        assert_eq!(a, b.build());
    }

    #[test]
    fn digraph_directions_are_distinct() {
        let mut b = DigraphBuilder::new(3);
        b.add_arc(0, 1, 5);
        b.add_arc(1, 0, 7);
        let g = b.build();
        assert_eq!(g.arc_weight(0, 1), Some(5));
        assert_eq!(g.arc_weight(1, 0), Some(7));
        assert_eq!(g.num_arcs(), 2);
    }

    #[test]
    fn digraph_dedup_keeps_min() {
        let mut b = DigraphBuilder::new(2);
        b.add_arc(0, 1, 5);
        b.add_arc(0, 1, 3);
        let g = b.build();
        assert_eq!(g.arc_weight(0, 1), Some(3));
    }
}
