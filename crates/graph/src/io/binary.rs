//! Compact binary CSR snapshot.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic   "ISGB"           4 bytes
//! version u32              currently 1
//! n       u64              vertex count
//! m2      u64              directed half-edge count (= 2|E|)
//! offsets (n + 1) × u64
//! neighbors m2 × u32
//! weights   m2 × u32
//! ```
//!
//! Loading performs full structural validation so that a corrupt or
//! truncated file can never produce an out-of-bounds CSR.

use crate::csr::CsrGraph;
use crate::ids::{VertexId, Weight};
use bytes::{Buf, BufMut};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"ISGB";
const VERSION: u32 = 1;

/// Serializes `g` to `writer`.
pub fn write_csr_binary<W: Write>(g: &CsrGraph, writer: &mut W) -> io::Result<()> {
    let (offsets, neighbors, weights) = g.parts();
    let mut header = Vec::with_capacity(24);
    header.put_slice(MAGIC);
    header.put_u32_le(VERSION);
    header.put_u64_le(g.num_vertices() as u64);
    header.put_u64_le(neighbors.len() as u64);
    writer.write_all(&header)?;

    // Stream the arrays in chunks to avoid one giant intermediate buffer.
    let mut buf = Vec::with_capacity(64 * 1024);
    for chunk in offsets.chunks(8 * 1024) {
        buf.clear();
        for &o in chunk {
            buf.put_u64_le(o as u64);
        }
        writer.write_all(&buf)?;
    }
    for chunk in neighbors.chunks(16 * 1024) {
        buf.clear();
        for &v in chunk {
            buf.put_u32_le(v);
        }
        writer.write_all(&buf)?;
    }
    for chunk in weights.chunks(16 * 1024) {
        buf.clear();
        for &w in chunk {
            buf.put_u32_le(w);
        }
        writer.write_all(&buf)?;
    }
    Ok(())
}

/// Deserializes a graph previously written by [`write_csr_binary`].
pub fn read_csr_binary<R: Read>(reader: &mut R) -> io::Result<CsrGraph> {
    let mut header = [0u8; 24];
    reader.read_exact(&mut header)?;
    let mut h = &header[..];
    let mut magic = [0u8; 4];
    h.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(bad_data("bad magic (not an ISGB file)"));
    }
    let version = h.get_u32_le();
    if version != VERSION {
        return Err(bad_data(&format!("unsupported version {version}")));
    }
    let n = h.get_u64_le() as usize;
    let m2 = h.get_u64_le() as usize;

    let mut body = Vec::new();
    reader.read_to_end(&mut body)?;
    let expected = (n + 1) * 8 + m2 * 4 + m2 * 4;
    if body.len() != expected {
        return Err(bad_data(&format!(
            "expected {expected} body bytes, found {}",
            body.len()
        )));
    }
    let mut b = &body[..];
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(b.get_u64_le() as usize);
    }
    let mut neighbors: Vec<VertexId> = Vec::with_capacity(m2);
    for _ in 0..m2 {
        neighbors.push(b.get_u32_le());
    }
    let mut weights: Vec<Weight> = Vec::with_capacity(m2);
    for _ in 0..m2 {
        weights.push(b.get_u32_le());
    }

    // Structural validation.
    if offsets.first() != Some(&0) || offsets.last() != Some(&m2) {
        return Err(bad_data("offset bounds corrupt"));
    }
    if !offsets.windows(2).all(|w| w[0] <= w[1]) {
        return Err(bad_data("offsets not monotone"));
    }
    if neighbors.iter().any(|&v| v as usize >= n) {
        return Err(bad_data("neighbor id out of range"));
    }
    if weights.contains(&0) {
        return Err(bad_data("zero edge weight"));
    }
    Ok(CsrGraph::from_parts(offsets, neighbors, weights))
}

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators::{erdos_renyi_gnm, WeightModel};

    #[test]
    fn roundtrip_small() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 3);
        b.add_edge(2, 3, 9);
        let g = b.build();
        let mut buf = Vec::new();
        write_csr_binary(&g, &mut buf).unwrap();
        let g2 = read_csr_binary(&mut &buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn roundtrip_random() {
        let g = erdos_renyi_gnm(500, 2000, WeightModel::UniformRange(1, 100), 17);
        let mut buf = Vec::new();
        write_csr_binary(&g, &mut buf).unwrap();
        assert_eq!(read_csr_binary(&mut &buf[..]).unwrap(), g);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_csr_binary(&mut &b"XXXX0000000000000000000000"[..]).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn rejects_truncation() {
        let g = erdos_renyi_gnm(50, 100, WeightModel::Unit, 1);
        let mut buf = Vec::new();
        write_csr_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(read_csr_binary(&mut &buf[..]).is_err());
    }

    #[test]
    fn rejects_corrupt_neighbor() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1);
        let g = b.build();
        let mut buf = Vec::new();
        write_csr_binary(&g, &mut buf).unwrap();
        // Clobber a neighbor id with an out-of-range value.
        let neighbors_start = 24 + 3 * 8;
        buf[neighbors_start..neighbors_start + 4].copy_from_slice(&99u32.to_le_bytes());
        assert!(read_csr_binary(&mut &buf[..]).is_err());
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = CsrGraph::empty(7);
        let mut buf = Vec::new();
        write_csr_binary(&g, &mut buf).unwrap();
        assert_eq!(read_csr_binary(&mut &buf[..]).unwrap(), g);
    }
}
