//! Graph serialization: a human-readable edge-list text format and a compact
//! binary CSR snapshot.

mod binary;
mod edgelist;

pub use binary::{read_csr_binary, write_csr_binary};
pub use edgelist::{parse_edge_list, read_edge_list, write_edge_list, EdgeListError};
