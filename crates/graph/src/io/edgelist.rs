//! Whitespace-separated edge-list format.
//!
//! ```text
//! # comment lines start with '#' or '%'
//! <num_vertices>
//! <u> <v> [w]      # one edge per line; weight defaults to 1
//! ```
//!
//! This is the lingua franca of graph repositories (SNAP, DIMACS-ish), so
//! downstream users can feed their own data in directly.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::ids::{VertexId, Weight};
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Errors raised while parsing an edge list.
#[derive(Debug)]
pub enum EdgeListError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number.
    Parse { line: usize, message: String },
}

impl fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeListError::Io(e) => write!(f, "I/O error: {e}"),
            EdgeListError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for EdgeListError {}

impl From<std::io::Error> for EdgeListError {
    fn from(e: std::io::Error) -> Self {
        EdgeListError::Io(e)
    }
}

/// Reads an edge list from any reader (buffered internally).
pub fn read_edge_list<R: Read>(reader: R) -> Result<CsrGraph, EdgeListError> {
    let mut reader = BufReader::new(reader);
    // Reuse one line buffer to avoid per-line allocation (perf guide idiom).
    let mut line = String::new();
    let mut lineno = 0usize;
    let mut builder: Option<GraphBuilder> = None;

    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        match &mut builder {
            None => {
                let n: usize = parse_field(fields.next(), lineno, "vertex count")?;
                if fields.next().is_some() {
                    return Err(EdgeListError::Parse {
                        line: lineno,
                        message: "header must contain only the vertex count".into(),
                    });
                }
                builder = Some(GraphBuilder::new(n));
            }
            Some(b) => {
                let u: VertexId = parse_field(fields.next(), lineno, "source vertex")?;
                let v: VertexId = parse_field(fields.next(), lineno, "target vertex")?;
                let w: Weight = match fields.next() {
                    Some(f) => f.parse().map_err(|_| EdgeListError::Parse {
                        line: lineno,
                        message: format!("invalid weight '{f}'"),
                    })?,
                    None => 1,
                };
                if fields.next().is_some() {
                    return Err(EdgeListError::Parse {
                        line: lineno,
                        message: "too many fields".into(),
                    });
                }
                if (u as usize) >= b.num_vertices() || (v as usize) >= b.num_vertices() {
                    return Err(EdgeListError::Parse {
                        line: lineno,
                        message: format!("edge ({u}, {v}) out of range"),
                    });
                }
                if w == 0 {
                    return Err(EdgeListError::Parse {
                        line: lineno,
                        message: "weights must be positive".into(),
                    });
                }
                if u != v {
                    b.add_edge(u, v, w);
                }
            }
        }
    }
    Ok(builder.unwrap_or_else(|| GraphBuilder::new(0)).build())
}

fn parse_field<T: std::str::FromStr>(
    field: Option<&str>,
    line: usize,
    what: &str,
) -> Result<T, EdgeListError> {
    let f = field.ok_or_else(|| EdgeListError::Parse {
        line,
        message: format!("missing {what}"),
    })?;
    f.parse().map_err(|_| EdgeListError::Parse {
        line,
        message: format!("invalid {what} '{f}'"),
    })
}

/// Parses an edge list from an in-memory string.
pub fn parse_edge_list(text: &str) -> Result<CsrGraph, EdgeListError> {
    read_edge_list(text.as_bytes())
}

/// Writes `g` in the edge-list format (with a header comment).
pub fn write_edge_list<W: Write>(g: &CsrGraph, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# islabel edge list: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    writeln!(w, "{}", g.num_vertices())?;
    for (u, v, weight) in g.edge_list() {
        writeln!(w, "{u} {v} {weight}")?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 3);
        b.add_edge(1, 4, 7);
        b.add_edge(2, 3, 1);
        let g = b.build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let parsed = read_edge_list(&buf[..]).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn comments_and_default_weights() {
        let g = parse_edge_list("# hi\n% there\n3\n0 1\n1 2 5\n").unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.edge_weight(0, 1), Some(1));
        assert_eq!(g.edge_weight(1, 2), Some(5));
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = parse_edge_list("").unwrap();
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let err = parse_edge_list("2\n0 5 1\n").unwrap_err();
        assert!(matches!(err, EdgeListError::Parse { line: 2, .. }), "{err}");
        let err = parse_edge_list("2\n0 x\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn zero_weight_rejected() {
        let err = parse_edge_list("2\n0 1 0\n").unwrap_err();
        assert!(err.to_string().contains("positive"), "{err}");
    }

    #[test]
    fn self_loops_skipped() {
        let g = parse_edge_list("2\n0 0 3\n0 1 2\n").unwrap();
        assert_eq!(g.num_edges(), 1);
    }
}
