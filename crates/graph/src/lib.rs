#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! # islabel-graph
//!
//! Graph substrate for the IS-LABEL reproduction.
//!
//! This crate provides everything below the index itself:
//!
//! * Compact identifier and weight types ([`VertexId`], [`Weight`], [`Dist`]).
//! * An immutable CSR graph for query-time workloads ([`CsrGraph`]) and a
//!   directed variant ([`CsrDigraph`]).
//! * A mutable hash-adjacency graph used while peeling independent sets
//!   ([`AdjacencyGraph`]).
//! * Deterministic random-graph generators ([`generators`]) and the five
//!   synthetic stand-ins for the paper's datasets ([`datasets`]).
//! * Text and binary graph I/O ([`io`]).
//! * Basic graph algorithms and statistics ([`algo`]).
//! * A fast integer hasher ([`hash`]) used throughout the workspace.
//!
//! The paper studies weighted, undirected simple graphs `G = (V, E, ω)` with
//! positive integer weights (Section 2); those conventions are baked into the
//! types here: weights are `u32 >= 1`, distances are `u64` with
//! [`INF`] denoting "unreachable" (the paper's `∞`).

pub mod adjacency;
pub mod algo;
pub mod builder;
pub mod csr;
pub mod datasets;
pub mod digraph;
pub mod generators;
pub mod hash;
pub mod ids;
pub mod io;

pub use adjacency::AdjacencyGraph;
pub use builder::{DigraphBuilder, GraphBuilder};
pub use csr::CsrGraph;
pub use datasets::{Dataset, Scale};
pub use digraph::CsrDigraph;
pub use hash::{FxHashMap, FxHashSet};
pub use ids::{Dist, VertexId, Weight, INF};
