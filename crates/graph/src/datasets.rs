//! Synthetic stand-ins for the paper's five evaluation datasets.
//!
//! The paper evaluates on real graphs we cannot redistribute (Table 2):
//!
//! | dataset   |   |V|    |   |E|    | avg deg | max deg | character |
//! |-----------|--------|--------|---------|---------|-----------|
//! | BTC       | 164.7M | 361.1M | 2.19    | 105,618 | RDF, ultra-sparse, extreme hubs |
//! | Web       | 6.9M   | 113.0M | 16.40   | 31,734  | web crawl LCC, weights {1,2} |
//! | as-Skitter| 1.7M   | 22.2M  | 13.08   | 35,455  | internet topology |
//! | wiki-Talk | 2.4M   | 9.3M   | 3.89    | 100,029 | talk-page graph, star-heavy |
//! | Google    | 0.9M   | 8.6M   | 9.87    | 6,332   | web pages |
//!
//! Each stand-in is generated to match the *structural statistics that drive
//! IS-LABEL's behaviour* — average degree, degree skew (hub magnitude
//! relative to `n`), and weight model — at a laptop scale chosen by
//! [`Scale`]. The largest connected component is extracted exactly as the
//! paper does for Web. Generation is fully deterministic (fixed seeds).

use crate::algo::components::largest_component;
use crate::csr::CsrGraph;
use crate::generators::{barabasi_albert, erdos_renyi_gnm, WeightModel};
use crate::ids::VertexId;

/// The five evaluation datasets of the paper, plus their relative sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Billion Triple Challenge RDF graph stand-in: ultra-sparse (avg degree
    /// ~2.2) with extreme hubs. The paper's largest graph.
    BtcLike,
    /// UK web-crawl stand-in: dense for this suite (avg degree ~16), weights
    /// in {1, 2} as produced by the paper's hop-based conversion.
    WebLike,
    /// Internet-topology stand-in: avg degree ~13 with heavy tail.
    SkitterLike,
    /// Wikipedia talk-page stand-in: sparse (avg degree ~3.9) with the most
    /// extreme hub skew of the suite.
    WikiTalkLike,
    /// Google web-graph stand-in: avg degree ~10, moderate skew.
    GoogleLike,
}

impl Dataset {
    /// All datasets in the paper's table order.
    pub const ALL: [Dataset; 5] = [
        Dataset::BtcLike,
        Dataset::WebLike,
        Dataset::SkitterLike,
        Dataset::WikiTalkLike,
        Dataset::GoogleLike,
    ];

    /// Short name used in table output (matches the paper's rows).
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::BtcLike => "BTC-like",
            Dataset::WebLike => "Web-like",
            Dataset::SkitterLike => "as-Skitter-like",
            Dataset::WikiTalkLike => "wiki-Talk-like",
            Dataset::GoogleLike => "Google-like",
        }
    }

    /// Target vertex count before LCC extraction at a given scale. Relative
    /// sizes mirror the paper (BTC largest, Google smallest).
    fn target_n(&self, scale: Scale) -> usize {
        let base = match self {
            Dataset::BtcLike => 24_000,
            Dataset::WebLike => 8_000,
            Dataset::SkitterLike => 5_000,
            Dataset::WikiTalkLike => 6_500,
            Dataset::GoogleLike => 4_000,
        };
        (base as f64 * scale.factor()) as usize
    }

    /// Generates the dataset at `scale`, returning the largest connected
    /// component with densely relabeled vertices.
    pub fn generate(&self, scale: Scale) -> CsrGraph {
        let n = self.target_n(scale);
        let raw = match self {
            // BTC: avg deg 2.19 => BA tree-like backbone (m=1, avg deg ~2)
            // plus ~10% extra random edges; BA supplies the RDF-style hubs.
            Dataset::BtcLike => {
                let backbone = barabasi_albert(n, 1, WeightModel::Unit, 0xB7C0);
                let extra = erdos_renyi_gnm(n, n / 10, WeightModel::Unit, 0xB7C1);
                union(&backbone, &extra)
            }
            // Web: avg deg 16.4, weights {1,2} (the paper's hop-based
            // conversion), moderate hubs (max degree ~0.5% of n), and —
            // decisively — the clustered community structure that made Web
            // the paper's deepest hierarchy (k = 19 at σ = 0.95) while a
            // σ = 0.90 threshold truncates it drastically (Table 7).
            // Clique communities + hub backbone + dangling leaves reproduce
            // all three facts; see `generators::clustered_communities`.
            Dataset::WebLike => crate::generators::clustered_communities(
                n,
                12,
                28,
                0.25,
                WeightModel::UniformRange(1, 2),
                0x3EB0,
            ),
            // as-Skitter: avg deg 13.1, unweighted. Internet topology is
            // clustered (routers in PoPs) with random long-haul cross
            // links; clique communities plus an ER sprinkle land on the
            // paper's degree profile and its shallow hierarchy (k = 6).
            Dataset::SkitterLike => {
                let communities = crate::generators::clustered_communities(
                    n,
                    12,
                    16,
                    0.10,
                    WeightModel::Unit,
                    0x5C17,
                );
                let cross = erdos_renyi_gnm(n, n / 2, WeightModel::Unit, 0x5C18);
                union(&communities, &cross)
            }
            // wiki-Talk: avg deg 3.9 with hubs around 4% of n — matching
            // BA(m=2), whose preferential hubs reach that relative magnitude
            // at this scale.
            Dataset::WikiTalkLike => barabasi_albert(n, 2, WeightModel::Unit, 0x317A),
            // Google: avg deg 9.9 with moderate hubs (max degree ~0.7% of
            // n) and web-style clustering; smaller communities with a light
            // ER sprinkle match both the degree profile and the paper's
            // k = 7 hierarchy depth.
            Dataset::GoogleLike => {
                let communities = crate::generators::clustered_communities(
                    n,
                    8,
                    12,
                    0.10,
                    WeightModel::Unit,
                    0x6006,
                );
                let cross = erdos_renyi_gnm(n, n / 4, WeightModel::Unit, 0x6007);
                union(&communities, &cross)
            }
        };
        largest_component(&raw).0
    }
}

/// Dataset scale. The paper runs at millions-to-hundreds-of-millions of
/// vertices on disk; we default to tens of thousands in memory, which
/// preserves every trend the evaluation reports (see DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// ~1/10 of [`Scale::Small`]; for unit tests.
    Tiny,
    /// Base laptop scale (default for the quick experiment runs).
    Small,
    /// 4× small; default for reported experiment tables.
    Medium,
    /// 16× small; for the scalability runs.
    Large,
    /// Explicit multiplier over the per-dataset base size.
    Custom(u32),
}

impl Scale {
    fn factor(&self) -> f64 {
        match self {
            Scale::Tiny => 0.1,
            Scale::Small => 1.0,
            Scale::Medium => 4.0,
            Scale::Large => 16.0,
            Scale::Custom(f) => *f as f64,
        }
    }
}

/// Union of two graphs over the same vertex universe (min weight on
/// collisions).
fn union(a: &CsrGraph, b: &CsrGraph) -> CsrGraph {
    assert_eq!(a.num_vertices(), b.num_vertices());
    let mut builder = crate::builder::GraphBuilder::new(a.num_vertices());
    builder.reserve(a.num_edges() + b.num_edges());
    for (u, v, w) in a.edge_list().chain(b.edge_list()) {
        builder.add_edge(u, v, w);
    }
    builder.build()
}

/// Remaps a vertex set expressed in old ids through a relabeling table.
/// Convenience for callers who keep both the LCC graph and original ids.
pub fn remap_vertices(old_ids: &[VertexId], table: &[VertexId]) -> Vec<VertexId> {
    old_ids.iter().map(|&v| table[v as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::components::connected_components;

    #[test]
    fn all_datasets_generate_and_are_connected() {
        for ds in Dataset::ALL {
            let g = ds.generate(Scale::Tiny);
            assert!(g.num_vertices() > 100, "{} too small", ds.name());
            assert_eq!(
                connected_components(&g).num_components,
                1,
                "{} LCC",
                ds.name()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::GoogleLike.generate(Scale::Tiny);
        let b = Dataset::GoogleLike.generate(Scale::Tiny);
        assert_eq!(a, b);
    }

    #[test]
    fn degree_profiles_match_paper_shape() {
        // avg degree ordering from Table 2:
        // Web (16.4) > Skitter (13.1) > Google (9.9) > wiki-Talk (3.9) > BTC (2.19)
        let avg = |ds: Dataset| ds.generate(Scale::Small).avg_degree();
        let web = avg(Dataset::WebLike);
        let skitter = avg(Dataset::SkitterLike);
        let google = avg(Dataset::GoogleLike);
        let wiki = avg(Dataset::WikiTalkLike);
        let btc = avg(Dataset::BtcLike);
        assert!(web > skitter, "web {web} vs skitter {skitter}");
        assert!(skitter > google, "skitter {skitter} vs google {google}");
        assert!(google > wiki, "google {google} vs wiki {wiki}");
        assert!(wiki > btc, "wiki {wiki} vs btc {btc}");
        assert!(btc > 2.0 && btc < 3.5, "btc avg degree {btc}");
    }

    #[test]
    fn web_like_has_weights_in_1_2() {
        let g = Dataset::WebLike.generate(Scale::Tiny);
        for (_, _, w) in g.edge_list() {
            assert!(w == 1 || w == 2);
        }
    }

    #[test]
    fn wiki_talk_like_is_hubbiest() {
        let hubbiness = |ds: Dataset| {
            let g = ds.generate(Scale::Small);
            g.max_degree() as f64 / g.num_vertices() as f64
        };
        let wiki = hubbiness(Dataset::WikiTalkLike);
        let google = hubbiness(Dataset::GoogleLike);
        assert!(wiki > google, "wiki {wiki} vs google {google}");
    }

    #[test]
    fn scales_are_monotone() {
        let tiny = Dataset::BtcLike.generate(Scale::Tiny).num_vertices();
        let small = Dataset::BtcLike.generate(Scale::Small).num_vertices();
        assert!(small > tiny * 5);
    }

    #[test]
    fn relabeled_ids_are_dense() {
        let g = Dataset::WebLike.generate(Scale::Tiny);
        let max_id = g.vertices().max().unwrap() as usize;
        assert_eq!(max_id + 1, g.num_vertices());
    }

    #[test]
    fn union_merges_min_weight() {
        let mut a = crate::builder::GraphBuilder::new(3);
        a.add_edge(0, 1, 5);
        let mut b = crate::builder::GraphBuilder::new(3);
        b.add_edge(0, 1, 3);
        b.add_edge(1, 2, 1);
        let u = union(&a.build(), &b.build());
        assert_eq!(u.edge_weight(0, 1), Some(3));
        assert_eq!(u.num_edges(), 2);
    }

    const _: () = {
        // Compile-time exhaustiveness: ALL must cover every variant.
        assert!(Dataset::ALL.len() == 5);
    };
}
