//! Immutable directed graph with both out- and in-adjacency in CSR form.
//!
//! Section 8.2 of the paper extends IS-LABEL to directed graphs; the directed
//! index needs forward adjacency for out-labels and reverse adjacency for
//! in-labels (and for the backward half of the bidirectional search), so both
//! orientations are materialized.

use crate::csr::CsrGraph;
use crate::ids::{VertexId, Weight};

/// A weighted directed simple graph in dual-CSR layout (forward + reverse).
///
/// # Examples
///
/// ```
/// use islabel_graph::DigraphBuilder;
///
/// let mut b = DigraphBuilder::new(3);
/// b.add_arc(0, 1, 2);
/// b.add_arc(1, 2, 3);
/// let g = b.build();
/// assert_eq!(g.out_neighbors(1), &[2]);
/// assert_eq!(g.in_neighbors(1), &[0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrDigraph {
    out_offsets: Vec<usize>,
    out_neighbors: Vec<VertexId>,
    out_weights: Vec<Weight>,
    in_offsets: Vec<usize>,
    in_neighbors: Vec<VertexId>,
    in_weights: Vec<Weight>,
    num_arcs: usize,
}

impl CsrDigraph {
    /// Builds from arcs already sorted lexicographically and deduplicated.
    pub(crate) fn from_arcs_sorted(n: usize, arcs: &[(VertexId, VertexId, Weight)]) -> Self {
        let mut out_offsets = vec![0usize; n + 1];
        let mut in_offsets = vec![0usize; n + 1];
        for &(u, v, _) in arcs {
            out_offsets[u as usize + 1] += 1;
            in_offsets[v as usize + 1] += 1;
        }
        for i in 1..=n {
            out_offsets[i] += out_offsets[i - 1];
            in_offsets[i] += in_offsets[i - 1];
        }

        let mut out_neighbors = vec![0 as VertexId; arcs.len()];
        let mut out_weights = vec![0 as Weight; arcs.len()];
        let mut out_cursor = out_offsets.clone();
        let mut in_neighbors = vec![0 as VertexId; arcs.len()];
        let mut in_weights = vec![0 as Weight; arcs.len()];
        let mut in_cursor = in_offsets.clone();
        // Arcs are (u, v)-sorted, so out slices fill in ascending target
        // order, and for fixed v the sources u also arrive ascending.
        for &(u, v, w) in arcs {
            let cu = &mut out_cursor[u as usize];
            out_neighbors[*cu] = v;
            out_weights[*cu] = w;
            *cu += 1;
            let cv = &mut in_cursor[v as usize];
            in_neighbors[*cv] = u;
            in_weights[*cv] = w;
            *cv += 1;
        }

        Self {
            out_offsets,
            out_neighbors,
            out_weights,
            in_offsets,
            in_neighbors,
            in_weights,
            num_arcs: arcs.len(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of directed arcs.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.num_arcs
    }

    /// Iterates every vertex id.
    #[inline]
    pub fn vertices(&self) -> std::ops::Range<VertexId> {
        0..self.num_vertices() as VertexId
    }

    /// Out-neighbors of `v`, ascending.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.out_neighbors[self.out_offsets[v as usize]..self.out_offsets[v as usize + 1]]
    }

    /// Weights parallel to [`Self::out_neighbors`].
    #[inline]
    pub fn out_weights(&self, v: VertexId) -> &[Weight] {
        &self.out_weights[self.out_offsets[v as usize]..self.out_offsets[v as usize + 1]]
    }

    /// In-neighbors of `v`, ascending.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.in_neighbors[self.in_offsets[v as usize]..self.in_offsets[v as usize + 1]]
    }

    /// Weights parallel to [`Self::in_neighbors`].
    #[inline]
    pub fn in_weights(&self, v: VertexId) -> &[Weight] {
        &self.in_weights[self.in_offsets[v as usize]..self.in_offsets[v as usize + 1]]
    }

    /// Iterates outgoing `(target, weight)` arcs of `v`.
    #[inline]
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.out_neighbors(v)
            .iter()
            .copied()
            .zip(self.out_weights(v).iter().copied())
    }

    /// Iterates incoming `(source, weight)` arcs of `v`.
    #[inline]
    pub fn in_edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.in_neighbors(v)
            .iter()
            .copied()
            .zip(self.in_weights(v).iter().copied())
    }

    /// Approximate resident size in bytes (both CSR orientations).
    pub fn memory_bytes(&self) -> usize {
        (self.out_offsets.len() + self.in_offsets.len()) * std::mem::size_of::<usize>()
            + (self.out_neighbors.len() + self.in_neighbors.len()) * std::mem::size_of::<VertexId>()
            + (self.out_weights.len() + self.in_weights.len()) * std::mem::size_of::<Weight>()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_neighbors(v).len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_neighbors(v).len()
    }

    /// Weight of the arc `u -> v`, if present.
    #[inline]
    pub fn arc_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        self.out_neighbors(u)
            .binary_search(&v)
            .ok()
            .map(|i| self.out_weights(u)[i])
    }

    /// Iterates every arc as `(u, v, w)`.
    pub fn arc_list(&self) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + '_ {
        self.vertices()
            .flat_map(move |u| self.out_edges(u).map(move |(v, w)| (u, v, w)))
    }

    /// The underlying undirected skeleton: an undirected edge for every arc
    /// (minimum weight when both directions exist). Used by the directed
    /// index's independent-set selection, which "can be applied in the same
    /// way by simply ignoring the direction of the edges" (Section 8.2).
    pub fn undirected_skeleton(&self) -> CsrGraph {
        let mut b = crate::builder::GraphBuilder::new(self.num_vertices());
        b.reserve(self.num_arcs());
        for (u, v, w) in self.arc_list() {
            b.add_edge(u, v, w);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::DigraphBuilder;

    fn sample() -> crate::CsrDigraph {
        // 0 -> 1 -> 2, 2 -> 0, 0 -> 2
        let mut b = DigraphBuilder::new(3);
        b.add_arc(0, 1, 1);
        b.add_arc(1, 2, 2);
        b.add_arc(2, 0, 3);
        b.add_arc(0, 2, 4);
        b.build()
    }

    #[test]
    fn degrees_and_adjacency() {
        let g = sample();
        assert_eq!(g.num_arcs(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 1);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.in_neighbors(2), &[0, 1]);
        assert_eq!(g.in_weights(2), &[4, 2]);
    }

    #[test]
    fn arc_list_roundtrip() {
        let g = sample();
        let arcs: Vec<_> = g.arc_list().collect();
        assert_eq!(arcs, vec![(0, 1, 1), (0, 2, 4), (1, 2, 2), (2, 0, 3)]);
    }

    #[test]
    fn skeleton_merges_antiparallel_arcs() {
        let g = sample();
        let u = g.undirected_skeleton();
        assert_eq!(u.num_edges(), 3);
        // 2->0 (3) and 0->2 (4) merge to weight 3.
        assert_eq!(u.edge_weight(0, 2), Some(3));
    }

    #[test]
    fn in_out_arc_counts_agree() {
        let g = sample();
        let out_total: usize = g.vertices().map(|v| g.out_degree(v)).sum();
        let in_total: usize = g.vertices().map(|v| g.in_degree(v)).sum();
        assert_eq!(out_total, in_total);
        assert_eq!(out_total, g.num_arcs());
    }
}
