//! Mutable hash-adjacency graph used during hierarchy construction.
//!
//! Peeling an independent set `L_i` off `G_i` (paper Algorithm 2/3) removes
//! vertices and inserts augmenting edges, a workload CSR cannot serve. This
//! structure trades memory for O(1) expected edge insert/relax/delete.
//!
//! Each edge carries an optional *via* vertex: when the paper creates an
//! augmenting edge `(u, w)` replacing the 2-hop path `⟨u, v, w⟩`, recording
//! `v` is exactly the bookkeeping Section 8.1 prescribes for shortest-*path*
//! (not just distance) queries.

use crate::csr::CsrGraph;
use crate::hash::FxHashMap;
use crate::ids::{VertexId, Weight};

/// Sentinel meaning "original edge, no intermediate vertex".
pub const NO_VIA: VertexId = VertexId::MAX;

/// Payload of one adjacency entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeInfo {
    /// Current (possibly relaxed) weight of the edge.
    pub weight: Weight,
    /// Intermediate vertex if this edge is an augmenting edge, else [`NO_VIA`].
    pub via: VertexId,
}

impl EdgeInfo {
    /// An original (non-augmenting) edge of weight `w`.
    pub fn original(w: Weight) -> Self {
        Self {
            weight: w,
            via: NO_VIA,
        }
    }

    /// The via vertex as an `Option`.
    pub fn via_opt(&self) -> Option<VertexId> {
        (self.via != NO_VIA).then_some(self.via)
    }
}

/// A mutable, weighted, undirected simple graph over a fixed id universe
/// `0..n`, supporting vertex removal and min-relaxing edge insertion.
#[derive(Debug, Clone)]
pub struct AdjacencyGraph {
    adj: Vec<FxHashMap<VertexId, EdgeInfo>>,
    present: Vec<bool>,
    num_present: usize,
    num_edges: usize,
}

impl AdjacencyGraph {
    /// An edgeless graph with all of `0..n` present.
    pub fn new(n: usize) -> Self {
        Self {
            adj: vec![FxHashMap::default(); n],
            present: vec![true; n],
            num_present: n,
            num_edges: 0,
        }
    }

    /// Copies a CSR graph; every edge starts as an original edge.
    pub fn from_csr(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let mut adj: Vec<FxHashMap<VertexId, EdgeInfo>> = Vec::with_capacity(n);
        for v in g.vertices() {
            let mut m = FxHashMap::default();
            m.reserve(g.degree(v));
            for (u, w) in g.edges(v) {
                m.insert(u, EdgeInfo::original(w));
            }
            adj.push(m);
        }
        Self {
            adj,
            present: vec![true; n],
            num_present: n,
            num_edges: g.num_edges(),
        }
    }

    /// Size of the id universe (including removed vertices).
    #[inline]
    pub fn universe(&self) -> usize {
        self.adj.len()
    }

    /// Number of vertices still present.
    #[inline]
    pub fn num_present(&self) -> usize {
        self.num_present
    }

    /// Number of edges among present vertices.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The paper's `|G| = |V| + |E|` over the *current* graph; drives the
    /// k-selection criterion `|G_{i+1}| / |G_i| > σ`.
    #[inline]
    pub fn size(&self) -> usize {
        self.num_present + self.num_edges
    }

    /// Whether `v` is still in the graph.
    #[inline]
    pub fn is_present(&self, v: VertexId) -> bool {
        self.present[v as usize]
    }

    /// Current degree of `v` (0 after removal).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v as usize].len()
    }

    /// Iterates present vertices in ascending id order.
    pub fn present_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.universe() as VertexId).filter(move |&v| self.is_present(v))
    }

    /// Unordered iteration over `v`'s adjacency.
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeInfo)> + '_ {
        self.adj[v as usize].iter().map(|(&u, &e)| (u, e))
    }

    /// `v`'s adjacency sorted by neighbor id — used wherever determinism
    /// matters (tie-breaking, serialization, EM/IM equivalence tests).
    pub fn neighbors_sorted(&self, v: VertexId) -> Vec<(VertexId, EdgeInfo)> {
        let mut out: Vec<_> = self.neighbors(v).collect();
        out.sort_unstable_by_key(|&(u, _)| u);
        out
    }

    /// Weight of edge `(u, v)` if present.
    pub fn edge(&self, u: VertexId, v: VertexId) -> Option<EdgeInfo> {
        self.adj[u as usize].get(&v).copied()
    }

    /// Inserts `(u, v)` or relaxes it to the smaller weight, mirroring the
    /// paper's augmenting-edge merge rule
    /// `ω(u,w) = min(ω(u,w), ω(u,v) + ω(v,w))`. Returns `true` if the edge
    /// was inserted or its weight strictly decreased.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if an endpoint has been removed or `u == v`.
    pub fn upsert_edge_min(
        &mut self,
        u: VertexId,
        v: VertexId,
        weight: Weight,
        via: VertexId,
    ) -> bool {
        debug_assert!(u != v, "self-loop");
        debug_assert!(self.is_present(u) && self.is_present(v), "endpoint removed");
        let info = EdgeInfo { weight, via };
        let slot = self.adj[u as usize].entry(v);
        let changed = match slot {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                if weight < o.get().weight {
                    *o.get_mut() = info;
                    true
                } else {
                    false
                }
            }
            std::collections::hash_map::Entry::Vacant(vac) => {
                vac.insert(info);
                self.num_edges += 1;
                true
            }
        };
        if changed {
            self.adj[v as usize].insert(u, info);
        }
        changed
    }

    /// Removes `v` and its incident edges, returning the former adjacency
    /// sorted by neighbor id. This is the `ADJ(L_i)` capture of Algorithm 2:
    /// the peeled vertex's adjacency is archived for augmenting-edge creation
    /// (Algorithm 3), label initialization (Algorithm 4) and path expansion
    /// (Section 8.1).
    pub fn remove_vertex(&mut self, v: VertexId) -> Vec<(VertexId, EdgeInfo)> {
        assert!(self.is_present(v), "vertex {v} already removed");
        let map = std::mem::take(&mut self.adj[v as usize]);
        let mut out: Vec<(VertexId, EdgeInfo)> = map.into_iter().collect();
        out.sort_unstable_by_key(|&(u, _)| u);
        for &(u, _) in &out {
            self.adj[u as usize].remove(&v);
        }
        self.num_edges -= out.len();
        self.present[v as usize] = false;
        self.num_present -= 1;
        out
    }

    /// Freezes the current graph into a CSR over the same id universe
    /// (removed vertices become isolated). Augmenting-edge via annotations
    /// are returned separately as a sorted `(u, v) -> via` table (only edges
    /// with a via vertex appear, each once with `u < v`).
    pub fn to_csr_with_vias(&self) -> (CsrGraph, Vec<(VertexId, VertexId, VertexId)>) {
        let mut b = crate::builder::GraphBuilder::new(self.universe());
        b.reserve(self.num_edges);
        let mut vias = Vec::new();
        for v in self.present_vertices() {
            for (u, e) in self.neighbors(v) {
                if v < u {
                    b.add_edge(v, u, e.weight);
                    if let Some(via) = e.via_opt() {
                        vias.push((v, u, via));
                    }
                }
            }
        }
        vias.sort_unstable();
        (b.build(), vias)
    }

    /// Freezes into CSR, discarding via annotations.
    pub fn to_csr(&self) -> CsrGraph {
        self.to_csr_with_vias().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn path4() -> AdjacencyGraph {
        // 0 - 1 - 2 - 3 with weights 1, 2, 3
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 2);
        b.add_edge(2, 3, 3);
        AdjacencyGraph::from_csr(&b.build())
    }

    #[test]
    fn from_csr_preserves_structure() {
        let g = path4();
        assert_eq!(g.num_present(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.edge(1, 2), Some(EdgeInfo::original(2)));
        assert_eq!(g.edge(0, 2), None);
    }

    #[test]
    fn remove_vertex_returns_sorted_adjacency_and_updates_counts() {
        let mut g = path4();
        let adj = g.remove_vertex(1);
        assert_eq!(
            adj,
            vec![(0, EdgeInfo::original(1)), (2, EdgeInfo::original(2))]
        );
        assert!(!g.is_present(1));
        assert_eq!(g.num_present(), 3);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.edge(0, 1), None);
    }

    #[test]
    fn upsert_relaxes_to_minimum() {
        let mut g = path4();
        // Simulate the augmenting edge for removing vertex 1: (0, 2) w=3.
        assert!(g.upsert_edge_min(0, 2, 3, 1));
        assert_eq!(g.edge(0, 2).unwrap().weight, 3);
        assert_eq!(g.edge(2, 0).unwrap().via, 1);
        // A worse weight does not overwrite.
        assert!(!g.upsert_edge_min(0, 2, 5, NO_VIA));
        assert_eq!(g.edge(0, 2).unwrap().weight, 3);
        // A better one does, and replaces the via annotation.
        assert!(g.upsert_edge_min(2, 0, 2, NO_VIA));
        assert_eq!(
            g.edge(0, 2),
            Some(EdgeInfo {
                weight: 2,
                via: NO_VIA
            })
        );
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn size_tracks_paper_definition() {
        let mut g = path4();
        assert_eq!(g.size(), 4 + 3);
        g.remove_vertex(3);
        assert_eq!(g.size(), 3 + 2);
    }

    #[test]
    fn csr_roundtrip_with_vias() {
        let mut g = path4();
        g.remove_vertex(1);
        g.upsert_edge_min(0, 2, 3, 1);
        let (csr, vias) = g.to_csr_with_vias();
        assert_eq!(csr.num_vertices(), 4); // universe retained, 1 isolated
        assert_eq!(csr.degree(1), 0);
        assert_eq!(csr.edge_weight(0, 2), Some(3));
        assert_eq!(csr.edge_weight(2, 3), Some(3));
        assert_eq!(vias, vec![(0, 2, 1)]);
    }

    #[test]
    #[should_panic(expected = "already removed")]
    fn double_remove_panics() {
        let mut g = path4();
        g.remove_vertex(0);
        g.remove_vertex(0);
    }

    #[test]
    fn present_vertices_ascending() {
        let mut g = path4();
        g.remove_vertex(2);
        let vs: Vec<_> = g.present_vertices().collect();
        assert_eq!(vs, vec![0, 1, 3]);
    }
}
