//! Edge-weight assignment models.

use crate::ids::Weight;
use rand::Rng;

/// How edge weights are drawn. The paper's graphs are mostly unweighted
/// (unit weights); its Web graph carries weights in `{1, 2}` from the
/// "reachable within w hops" conversion described in Section 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightModel {
    /// Every edge has weight 1 (an unweighted graph).
    Unit,
    /// Weights drawn uniformly from `lo..=hi` (both `>= 1`).
    UniformRange(Weight, Weight),
}

impl WeightModel {
    /// Draws one weight.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or contains 0.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Weight {
        match *self {
            WeightModel::Unit => 1,
            WeightModel::UniformRange(lo, hi) => {
                assert!(lo >= 1 && lo <= hi, "invalid weight range [{lo}, {hi}]");
                rng.gen_range(lo..=hi)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn unit_is_always_one() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(WeightModel::Unit.sample(&mut rng), 1);
        }
    }

    #[test]
    fn uniform_covers_range() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            let w = WeightModel::UniformRange(1, 4).sample(&mut rng);
            seen[(w - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "invalid weight range")]
    fn zero_weight_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        WeightModel::UniformRange(0, 3).sample(&mut rng);
    }
}
