//! Erdős–Rényi random graphs (G(n, m) and G(n, p)).

use super::WeightModel;
use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::ids::VertexId;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// G(n, m): exactly `m` distinct uniform random edges (or as many as the
/// simple graph admits).
///
/// Sampling is rejection-based over the builder's dedup, which is efficient
/// for the sparse graphs this project targets (`m ≪ n²`).
pub fn erdos_renyi_gnm(n: usize, m: usize, weights: WeightModel, seed: u64) -> CsrGraph {
    assert!(
        n >= 2 || m == 0,
        "need at least two vertices to place edges"
    );
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    let m = m.min(max_edges);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    b.reserve(m);
    let mut seen = crate::hash::FxHashSet::default();
    seen.reserve(m);
    while seen.len() < m {
        let u = rng.gen_range(0..n as VertexId);
        let v = rng.gen_range(0..n as VertexId);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            b.add_edge(u, v, weights.sample(&mut rng));
        }
    }
    b.build()
}

/// G(n, p): every possible edge independently present with probability `p`.
///
/// Uses geometric skipping so the cost is proportional to the number of
/// edges generated, not to `n²`.
pub fn erdos_renyi_gnp(n: usize, p: f64, weights: WeightModel, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    if p <= 0.0 || n < 2 {
        return b.build();
    }
    if p >= 1.0 {
        for u in 0..n as VertexId {
            for v in (u + 1)..n as VertexId {
                b.add_edge(u, v, weights.sample(&mut rng));
            }
        }
        return b.build();
    }
    // Iterate candidate edge indices 0..n(n-1)/2 with geometric jumps.
    let log1mp = (1.0 - p).ln();
    let total = n as u128 * (n as u128 - 1) / 2;
    let mut idx: u128 = 0;
    loop {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        let skip = (r.ln() / log1mp).floor() as u128;
        idx = idx.saturating_add(skip).saturating_add(1);
        if idx > total {
            break;
        }
        let (u, v) = edge_from_index(n, idx - 1);
        b.add_edge(u, v, weights.sample(&mut rng));
    }
    b.build()
}

/// Maps a linear index in `0..n(n-1)/2` to the corresponding `(u, v)`, u < v,
/// in row-major upper-triangular order.
fn edge_from_index(n: usize, idx: u128) -> (VertexId, VertexId) {
    // Row u owns (n - 1 - u) entries. Walk rows; n is laptop-scale here and
    // this runs once per generated edge, so the linear scan would be O(n) —
    // instead solve the quadratic for the row.
    let n = n as u128;
    // Number of cells before row u: S(u) = u*n - u*(u+1)/2.
    // Find largest u with S(u) <= idx via the quadratic formula.
    let fidx = idx as f64;
    let fn_ = n as f64;
    let mut u = ((2.0 * fn_ - 1.0 - ((2.0 * fn_ - 1.0).powi(2) - 8.0 * fidx).max(0.0).sqrt()) / 2.0)
        .floor() as u128;
    // Guard against float rounding.
    let s = |u: u128| u * n - u * (u + 1) / 2;
    while u > 0 && s(u) > idx {
        u -= 1;
    }
    while s(u + 1) <= idx {
        u += 1;
    }
    let v = u + 1 + (idx - s(u));
    (u as VertexId, v as VertexId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_produces_requested_edge_count() {
        let g = erdos_renyi_gnm(100, 300, WeightModel::Unit, 5);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 300);
    }

    #[test]
    fn gnm_clamps_to_complete_graph() {
        let g = erdos_renyi_gnm(5, 1000, WeightModel::Unit, 5);
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn gnp_zero_and_one() {
        let g = erdos_renyi_gnp(20, 0.0, WeightModel::Unit, 1);
        assert_eq!(g.num_edges(), 0);
        let g = erdos_renyi_gnp(20, 1.0, WeightModel::Unit, 1);
        assert_eq!(g.num_edges(), 190);
    }

    #[test]
    fn gnp_density_roughly_matches_p() {
        let n = 200;
        let p = 0.05;
        let g = erdos_renyi_gnp(n, p, WeightModel::Unit, 99);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.num_edges() as f64;
        assert!(
            (got - expected).abs() < expected * 0.25,
            "got {got}, expected ~{expected}"
        );
    }

    #[test]
    fn edge_from_index_enumerates_upper_triangle() {
        let n = 6;
        let mut seen = Vec::new();
        for idx in 0..(n * (n - 1) / 2) as u128 {
            seen.push(edge_from_index(n, idx));
        }
        let mut expect = Vec::new();
        for u in 0..n as VertexId {
            for v in (u + 1)..n as VertexId {
                expect.push((u, v));
            }
        }
        assert_eq!(seen, expect);
    }
}
