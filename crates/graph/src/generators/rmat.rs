//! R-MAT (recursive matrix) graphs.
//!
//! R-MAT recursively subdivides the adjacency matrix with probabilities
//! `(a, b, c, d)`; skewed parameters yield the power-law, community-clustered
//! structure of web graphs and RDF graphs (the paper's Web, Google and BTC
//! datasets). Higher `a` concentrates edges among low-id vertices, producing
//! extreme hub degrees like wiki-Talk's max degree of 100K on 2.4M vertices.

use super::WeightModel;
use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::ids::VertexId;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Quadrant probabilities of the recursive matrix subdivision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Top-left (both endpoints in the low half).
    pub a: f64,
    /// Top-right.
    pub b: f64,
    /// Bottom-left.
    pub c: f64,
    /// Bottom-right.
    pub d: f64,
}

impl Default for RmatParams {
    /// The classic Graph500-style parameters.
    fn default() -> Self {
        Self {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
        }
    }
}

impl RmatParams {
    /// A heavily skewed parameterization producing extreme hubs.
    pub fn skewed() -> Self {
        Self {
            a: 0.7,
            b: 0.15,
            c: 0.1,
            d: 0.05,
        }
    }

    fn validate(&self) {
        let sum = self.a + self.b + self.c + self.d;
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "R-MAT probabilities must sum to 1, got {sum}"
        );
        assert!(
            self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && self.d >= 0.0,
            "R-MAT probabilities must be non-negative"
        );
    }
}

/// Generates an undirected R-MAT graph with `2^scale` vertices and
/// `edge_factor · 2^scale` sampled edges (fewer after dedup/self-loop
/// removal, as usual for R-MAT).
pub fn rmat(
    scale: u32,
    edge_factor: usize,
    params: RmatParams,
    weights: WeightModel,
    seed: u64,
) -> CsrGraph {
    params.validate();
    assert!((1..=31).contains(&scale), "scale out of range");
    let n = 1usize << scale;
    let m = edge_factor * n;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    b.reserve(m);
    for _ in 0..m {
        let (u, v) = sample_cell(scale, params, &mut rng);
        if u != v {
            b.add_edge(u, v, weights.sample(&mut rng));
        }
    }
    b.build()
}

fn sample_cell<R: Rng>(scale: u32, p: RmatParams, rng: &mut R) -> (VertexId, VertexId) {
    let mut u: VertexId = 0;
    let mut v: VertexId = 0;
    for _ in 0..scale {
        u <<= 1;
        v <<= 1;
        let r: f64 = rng.gen();
        if r < p.a {
            // top-left: no bits set
        } else if r < p.a + p.b {
            v |= 1;
        } else if r < p.a + p.b + p.c {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_count_is_power_of_two() {
        let g = rmat(10, 4, RmatParams::default(), WeightModel::Unit, 3);
        assert_eq!(g.num_vertices(), 1024);
        // Dedup and self-loop removal lose some of the 4096 samples.
        assert!(g.num_edges() > 2000 && g.num_edges() <= 4096);
    }

    #[test]
    fn skew_produces_hubs() {
        let g = rmat(12, 4, RmatParams::skewed(), WeightModel::Unit, 9);
        assert!(g.max_degree() as f64 > g.avg_degree() * 20.0);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_params_panic() {
        rmat(
            4,
            2,
            RmatParams {
                a: 0.5,
                b: 0.5,
                c: 0.5,
                d: 0.5,
            },
            WeightModel::Unit,
            0,
        );
    }
}
