//! Deterministic random-graph generators.
//!
//! The paper evaluates on five real networks (BTC, Web, as-Skitter,
//! wiki-Talk, Google) that are not redistributable here; [`crate::datasets`]
//! composes these generators into synthetic stand-ins matched on the
//! published structural statistics. Every generator takes an explicit seed
//! and is reproducible across runs and platforms.
//!
//! All generators produce simple graphs (no self-loops, no parallel edges —
//! the builders enforce this) and take a [`WeightModel`] describing how edge
//! weights are drawn.

mod barabasi_albert;
mod communities;
mod erdos_renyi;
mod grid;
mod rmat;
mod watts_strogatz;
mod weights;

pub use barabasi_albert::barabasi_albert;
pub use communities::clustered_communities;
pub use erdos_renyi::{erdos_renyi_gnm, erdos_renyi_gnp};
pub use grid::grid2d;
pub use rmat::{rmat, RmatParams};
pub use watts_strogatz::watts_strogatz;
pub use weights::WeightModel;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::components::connected_components;

    #[test]
    fn all_generators_are_deterministic() {
        let a = barabasi_albert(500, 3, WeightModel::Unit, 7);
        let b = barabasi_albert(500, 3, WeightModel::Unit, 7);
        assert_eq!(a, b);

        let a = erdos_renyi_gnm(400, 900, WeightModel::UniformRange(1, 10), 3);
        let b = erdos_renyi_gnm(400, 900, WeightModel::UniformRange(1, 10), 3);
        assert_eq!(a, b);

        let p = RmatParams::default();
        let a = rmat(8, 4, p, WeightModel::Unit, 11);
        let b = rmat(8, 4, p, WeightModel::Unit, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = erdos_renyi_gnm(400, 900, WeightModel::Unit, 1);
        let b = erdos_renyi_gnm(400, 900, WeightModel::Unit, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn ba_graph_is_connected() {
        let g = barabasi_albert(1000, 2, WeightModel::Unit, 42);
        let cc = connected_components(&g);
        assert_eq!(cc.num_components, 1);
    }

    #[test]
    fn weight_models_respected() {
        let g = erdos_renyi_gnm(200, 500, WeightModel::UniformRange(3, 5), 9);
        for (_, _, w) in g.edge_list() {
            assert!((3..=5).contains(&w));
        }
        let g = erdos_renyi_gnm(200, 500, WeightModel::Unit, 9);
        for (_, _, w) in g.edge_list() {
            assert_eq!(w, 1);
        }
    }
}
