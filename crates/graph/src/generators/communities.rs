//! Clustered community graphs (clique communities + hub backbone + leaves).
//!
//! Real web graphs combine three structural ingredients that drive
//! IS-LABEL's level-by-level behavior:
//!
//! 1. **dense, triangle-rich communities** — when a community member is
//!    peeled, most of its 2-hop repairs land on edges that already exist,
//!    so the graph keeps *shrinking* level after level instead of
//!    densifying (this is what produced the paper's deep k = 19 hierarchy
//!    on its Web dataset);
//! 2. **a hub backbone** joining communities (moderate maximum degree);
//! 3. **a dangling periphery** of degree-1 pages that dissolves in the
//!    first level or two, making early levels shrink much faster than late
//!    ones (which is why a slightly lower σ threshold truncates the
//!    hierarchy dramatically — the paper's Table 7).
//!
//! This generator assembles exactly those ingredients: cliques of sizes
//! drawn uniformly from `[clique_lo, clique_hi]`, a preferential-attachment
//! backbone over one representative per clique, and `leaf_fraction` of the
//! vertices attached as degree-1 leaves.

use super::{barabasi_albert, WeightModel};
use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::ids::VertexId;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Generates a clustered community graph (see module docs).
///
/// # Panics
///
/// Panics if `clique_lo < 2`, `clique_lo > clique_hi`, `leaf_fraction` is
/// not in `[0, 1)`, or the parameters leave fewer than one clique.
pub fn clustered_communities(
    n: usize,
    clique_lo: usize,
    clique_hi: usize,
    leaf_fraction: f64,
    weights: WeightModel,
    seed: u64,
) -> CsrGraph {
    assert!(clique_lo >= 2, "cliques need at least 2 vertices");
    assert!(clique_lo <= clique_hi, "empty clique size range");
    assert!(
        (0.0..1.0).contains(&leaf_fraction),
        "leaf fraction must be in [0, 1)"
    );
    let n_leaves = (n as f64 * leaf_fraction) as usize;
    let n_core = n - n_leaves;
    assert!(
        n_core >= clique_lo,
        "not enough core vertices for one clique"
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // Clique communities over the core ids, one representative each.
    let mut reps: Vec<VertexId> = Vec::new();
    let mut start = 0usize;
    while start < n_core {
        let size = rng.gen_range(clique_lo..=clique_hi).min(n_core - start);
        for i in start..start + size {
            for j in (i + 1)..start + size {
                b.add_edge(i as VertexId, j as VertexId, weights.sample(&mut rng));
            }
        }
        reps.push(start as VertexId);
        start += size;
    }

    // Hub backbone over the representatives (preferential attachment gives
    // the moderate-hub profile of a crawl).
    if reps.len() >= 3 {
        let backbone = barabasi_albert(reps.len(), 2, weights, seed ^ 0xB0B0);
        for (u, v, w) in backbone.edge_list() {
            b.add_edge(reps[u as usize], reps[v as usize], w);
        }
    } else if reps.len() == 2 {
        b.add_edge(reps[0], reps[1], weights.sample(&mut rng));
    }

    // Dangling periphery: degree-1 leaves on random core vertices.
    for leaf in n_core..n {
        let host = rng.gen_range(0..n_core as VertexId);
        b.add_edge(leaf as VertexId, host, weights.sample(&mut rng));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::components::connected_components;

    #[test]
    fn structure_matches_parameters() {
        let g = clustered_communities(2000, 12, 28, 0.25, WeightModel::UniformRange(1, 2), 1);
        assert_eq!(g.num_vertices(), 2000);
        // Core ≈ 1500 in cliques of mean 20: avg degree in the teens.
        assert!(
            g.avg_degree() > 10.0 && g.avg_degree() < 20.0,
            "avg {}",
            g.avg_degree()
        );
        // 500 leaves of degree 1.
        let leaves = g.vertices().filter(|&v| g.degree(v) == 1).count();
        assert!(leaves >= 450, "leaves {leaves}");
        assert_eq!(connected_components(&g).num_components, 1);
    }

    #[test]
    fn deterministic() {
        let a = clustered_communities(500, 8, 16, 0.2, WeightModel::Unit, 9);
        let b = clustered_communities(500, 8, 16, 0.2, WeightModel::Unit, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn high_clustering() {
        // Spot check: most neighbors of a mid-clique vertex are themselves
        // adjacent (the property that keeps peel repairs cheap).
        let g = clustered_communities(400, 10, 10, 0.0, WeightModel::Unit, 3);
        // Vertex 5 sits inside the first clique (ids 0..10); its neighbors
        // 1..10 minus itself are pairwise adjacent.
        let ns = g.neighbors(5).to_vec();
        let mut closed = 0usize;
        let mut total = 0usize;
        for (i, &a) in ns.iter().enumerate() {
            for &b in &ns[i + 1..] {
                total += 1;
                if g.has_edge(a, b) {
                    closed += 1;
                }
            }
        }
        assert!(
            closed as f64 / total as f64 > 0.7,
            "clustering {closed}/{total}"
        );
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_cliques_rejected() {
        clustered_communities(100, 1, 5, 0.0, WeightModel::Unit, 0);
    }

    #[test]
    fn zero_leaves_supported() {
        let g = clustered_communities(300, 6, 6, 0.0, WeightModel::Unit, 2);
        assert!(g.vertices().all(|v| g.degree(v) >= 5));
    }
}
