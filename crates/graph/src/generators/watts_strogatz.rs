//! Watts–Strogatz small-world graphs.
//!
//! A ring lattice with random rewiring: high clustering and small diameter.
//! Used in tests and ablations as a structurally different regime from the
//! heavy-tailed generators (its near-uniform degrees make independent-set
//! peeling behave very differently).

use super::WeightModel;
use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::ids::VertexId;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Watts–Strogatz graph: `n` vertices on a ring, each joined to its `k`
/// nearest neighbors (`k` even), then each lattice edge rewired with
/// probability `beta` to a uniform random target.
///
/// # Panics
///
/// Panics if `k` is odd, `k >= n`, or `beta` is not a probability.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, weights: WeightModel, seed: u64) -> CsrGraph {
    assert!(k.is_multiple_of(2), "k must be even");
    assert!(k < n, "k must be smaller than n");
    assert!((0.0..=1.0).contains(&beta), "beta must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    b.reserve(n * k / 2);
    for u in 0..n {
        for j in 1..=(k / 2) {
            let v = (u + j) % n;
            let (mut s, mut t) = (u as VertexId, v as VertexId);
            if rng.gen::<f64>() < beta {
                // Rewire the far endpoint to a random vertex (retrying on
                // self-loops; parallel edges collapse in the builder).
                loop {
                    let cand = rng.gen_range(0..n as VertexId);
                    if cand != s {
                        t = cand;
                        break;
                    }
                }
            }
            if s > t {
                std::mem::swap(&mut s, &mut t);
            }
            b.add_edge(s, t, weights.sample(&mut rng));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unrewired_is_ring_lattice() {
        let g = watts_strogatz(10, 4, 0.0, WeightModel::Unit, 0);
        assert_eq!(g.num_edges(), 20);
        // Every vertex connects to ±1, ±2 on the ring.
        assert_eq!(g.neighbors(0), &[1, 2, 8, 9]);
        assert_eq!(g.degree(5), 4);
    }

    #[test]
    fn rewiring_changes_structure_but_keeps_sparsity() {
        let g = watts_strogatz(500, 6, 0.3, WeightModel::Unit, 4);
        // Rewiring can only merge parallel edges, never add.
        assert!(g.num_edges() <= 1500);
        assert!(g.num_edges() > 1400);
    }

    #[test]
    #[should_panic(expected = "k must be even")]
    fn odd_k_panics() {
        watts_strogatz(10, 3, 0.1, WeightModel::Unit, 0);
    }
}
