//! Barabási–Albert preferential attachment graphs.
//!
//! Produces the heavy-tailed degree distributions typical of the social and
//! collaboration networks in the paper's evaluation (as-Skitter, wiki-Talk):
//! a few high-degree hubs and a long tail of low-degree vertices — precisely
//! the regime where greedy min-degree independent sets peel many vertices
//! per level.

use super::WeightModel;
use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::ids::VertexId;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Barabási–Albert graph: starts from a small clique of `m + 1` vertices and
/// attaches each new vertex to `m` existing vertices chosen with probability
/// proportional to their degree (implemented with the repeated-endpoints
/// urn). The result is connected and has roughly `m · n` edges.
///
/// # Panics
///
/// Panics if `m == 0` or `n <= m`.
pub fn barabasi_albert(n: usize, m: usize, weights: WeightModel, seed: u64) -> CsrGraph {
    assert!(m >= 1, "attachment count m must be >= 1");
    assert!(n > m, "need more vertices than the attachment count");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    b.reserve(n * m);

    // The urn holds one entry per edge endpoint, so sampling an entry is
    // degree-proportional sampling.
    let mut urn: Vec<VertexId> = Vec::with_capacity(2 * n * m);

    // Seed clique on vertices 0..=m keeps the graph connected from the start.
    for u in 0..=(m as VertexId) {
        for v in (u + 1)..=(m as VertexId) {
            b.add_edge(u, v, weights.sample(&mut rng));
            urn.push(u);
            urn.push(v);
        }
    }

    let mut targets = crate::hash::FxHashSet::default();
    for v in (m + 1)..n {
        let v = v as VertexId;
        targets.clear();
        // Rejection-sample m distinct targets.
        while targets.len() < m {
            let t = urn[rng.gen_range(0..urn.len())];
            targets.insert(t);
        }
        for &t in &targets {
            b.add_edge(v, t, weights.sample(&mut rng));
            urn.push(v);
            urn.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::components::connected_components;

    #[test]
    fn edge_count_and_connectivity() {
        let n = 1000;
        let m = 3;
        let g = barabasi_albert(n, m, WeightModel::Unit, 123);
        // Clique edges + m per subsequent vertex.
        let expected = m * (m + 1) / 2 + (n - m - 1) * m;
        assert_eq!(g.num_edges(), expected);
        assert_eq!(connected_components(&g).num_components, 1);
    }

    #[test]
    fn has_heavy_tail() {
        let g = barabasi_albert(5000, 2, WeightModel::Unit, 77);
        let max = g.max_degree() as f64;
        let avg = g.avg_degree();
        // Preferential attachment should produce hubs far above the mean.
        assert!(max > avg * 8.0, "max {max} vs avg {avg}");
    }

    #[test]
    #[should_panic(expected = "m must be >= 1")]
    fn zero_m_panics() {
        barabasi_albert(10, 0, WeightModel::Unit, 0);
    }

    #[test]
    #[should_panic(expected = "more vertices")]
    fn tiny_n_panics() {
        barabasi_albert(3, 3, WeightModel::Unit, 0);
    }
}
