//! 2-D grid graphs (a road-network-like regime).
//!
//! Section 3 of the paper contrasts road networks (low highway dimension,
//! planar-ish) with general sparse graphs. Grids give us that contrasting
//! regime for tests and ablations without shipping real road data.

use super::WeightModel;
use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::ids::VertexId;
use rand::{rngs::StdRng, SeedableRng};

/// `rows × cols` 4-connected grid. Vertex `(r, c)` has id `r * cols + c`.
pub fn grid2d(rows: usize, cols: usize, weights: WeightModel, seed: u64) -> CsrGraph {
    let n = rows * cols;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    b.reserve(2 * n);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1), weights.sample(&mut rng));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c), weights.sample(&mut rng));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_structure() {
        let g = grid2d(3, 4, WeightModel::Unit, 0);
        assert_eq!(g.num_vertices(), 12);
        // Horizontal: 3 rows × 3; vertical: 2 rows × 4.
        assert_eq!(g.num_edges(), 9 + 8);
        // Corner has degree 2, inner vertex degree 4.
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(5), 4);
    }

    #[test]
    fn degenerate_grids() {
        let line = grid2d(1, 5, WeightModel::Unit, 0);
        assert_eq!(line.num_edges(), 4);
        let dot = grid2d(1, 1, WeightModel::Unit, 0);
        assert_eq!(dot.num_vertices(), 1);
        assert_eq!(dot.num_edges(), 0);
    }
}
