//! Runtime engine selection: the [`Engine`] selector and the
//! [`build_oracle`] registry.
//!
//! Both the source paper and the broader 2-hop literature frame IS-LABEL as
//! one member of a family of distance indexes that answer the same query;
//! the registry makes that concrete: pick an [`Engine`], get a
//! `Box<dyn DistanceOracle>`, and every consumer (CLI, benches, serving
//! code) stays engine-agnostic.

use crate::{BiDijkstraOracle, PllIndex, VcConfig, VcIndex};
use islabel_core::oracle::DistanceOracle;
use islabel_core::{BuildConfig, DiIsLabelIndex, Error, IsLabelIndex, KSelection};
use islabel_graph::{CsrGraph, DigraphBuilder};

/// Every distance engine the workspace can build from an undirected graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// The IS-LABEL index (the paper's method).
    IsLabel,
    /// The directed IS-LABEL index over the symmetrized graph (each
    /// undirected edge becomes an antiparallel arc pair) — exercises the
    /// Section 8.2 machinery behind the same interface.
    DiIsLabel,
    /// Pruned Landmark Labeling (2-hop family representative).
    Pll,
    /// VC-Index converted for point-to-point querying (Cheng et al.).
    Vc,
    /// In-memory bidirectional Dijkstra (IM-DIJ), state-pooled.
    BiDijkstra,
}

impl Engine {
    /// Every engine, in presentation order.
    pub const ALL: [Engine; 5] = [
        Engine::IsLabel,
        Engine::DiIsLabel,
        Engine::Pll,
        Engine::Vc,
        Engine::BiDijkstra,
    ];

    /// The stable name [`Engine::parse`] accepts and
    /// [`DistanceOracle::engine_name`] reports.
    pub fn name(&self) -> &'static str {
        match self {
            Engine::IsLabel => "islabel",
            Engine::DiIsLabel => "di-islabel",
            Engine::Pll => "pll",
            Engine::Vc => "vc",
            Engine::BiDijkstra => "bidij",
        }
    }

    /// Parses an engine name (the CLI's `--engine` values).
    pub fn parse(name: &str) -> Result<Engine, Error> {
        Engine::ALL
            .iter()
            .copied()
            .find(|e| e.name() == name)
            .ok_or_else(|| {
                Error::InvalidConfig(format!(
                    "unknown engine '{name}' (expected one of: islabel, di-islabel, pll, vc, \
                     bidij)"
                ))
            })
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds the selected engine over `g` behind the shared trait.
///
/// `config` is validated up front for every engine; beyond that it applies
/// where it is meaningful — fully for the IS-LABEL engines, as the σ
/// threshold for VC-Index (whose hierarchy uses the same stopping rule),
/// and not at all for PLL and bidirectional Dijkstra, which take no
/// construction parameters.
pub fn build_oracle(
    engine: Engine,
    g: &CsrGraph,
    config: &BuildConfig,
) -> Result<Box<dyn DistanceOracle>, Error> {
    config.try_validate()?;
    Ok(match engine {
        Engine::IsLabel => Box::new(IsLabelIndex::try_build(g, *config)?),
        Engine::DiIsLabel => {
            let mut b = DigraphBuilder::new(g.num_vertices());
            for (u, v, w) in g.edge_list() {
                b.add_arc(u, v, w);
                b.add_arc(v, u, w);
            }
            Box::new(DiIsLabelIndex::try_build(&b.build(), *config)?)
        }
        Engine::Pll => Box::new(PllIndex::build(g)),
        Engine::Vc => {
            let sigma = match config.k_selection {
                KSelection::SigmaThreshold(s) => s,
                _ => VcConfig::default().sigma,
            };
            Box::new(VcIndex::build(g, VcConfig { sigma }))
        }
        Engine::BiDijkstra => Box::new(BiDijkstraOracle::new(g.clone())),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use islabel_core::oracle::BatchOptions;
    use islabel_graph::generators::{erdos_renyi_gnm, WeightModel};

    #[test]
    fn names_roundtrip_through_parse() {
        for engine in Engine::ALL {
            assert_eq!(Engine::parse(engine.name()).unwrap(), engine);
            assert_eq!(engine.to_string(), engine.name());
        }
        assert!(matches!(
            Engine::parse("dijkstra3000"),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn registry_builds_agreeing_oracles() {
        let g = erdos_renyi_gnm(80, 180, WeightModel::UniformRange(1, 5), 0x11);
        let config = BuildConfig::default();
        let oracles: Vec<Box<dyn DistanceOracle>> = Engine::ALL
            .iter()
            .map(|&e| build_oracle(e, &g, &config).unwrap())
            .collect();
        let pairs: Vec<(u32, u32)> = (0..40u32).map(|i| (i % 80, (i * 11 + 3) % 80)).collect();
        let reference = oracles[0]
            .distance_batch(&pairs, BatchOptions::sequential())
            .unwrap();
        for oracle in &oracles[1..] {
            assert_eq!(
                oracle
                    .distance_batch(&pairs, BatchOptions::sequential())
                    .unwrap(),
                reference,
                "{} diverges from islabel",
                oracle.engine_name()
            );
        }
        // Reported names match the selectors that built them.
        for (oracle, engine) in oracles.iter().zip(Engine::ALL) {
            assert_eq!(oracle.engine_name(), engine.name());
            assert_eq!(oracle.num_vertices(), 80);
        }
    }

    #[test]
    fn registry_rejects_bad_config_for_every_engine() {
        let g = erdos_renyi_gnm(10, 20, WeightModel::Unit, 1);
        let bad = BuildConfig {
            k_selection: KSelection::SigmaThreshold(0.0),
            ..BuildConfig::default()
        };
        for engine in Engine::ALL {
            assert!(
                matches!(build_oracle(engine, &g, &bad), Err(Error::InvalidConfig(_))),
                "{engine} accepted a bad config"
            );
        }
    }
}
