//! Plain Dijkstra with reusable buffers.
//!
//! The "conventional algorithm" the paper's introduction argues against for
//! large graphs; used as ground truth in tests and as a baseline in the
//! benches. Buffers are reused across queries (touched-list reset) so that
//! repeated querying doesn't pay an `O(n)` clear per query.

use islabel_graph::{CsrGraph, Dist, VertexId, INF};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Reusable single-source / point-to-point Dijkstra.
pub struct Dijkstra {
    dist: Vec<Dist>,
    touched: Vec<VertexId>,
    heap: BinaryHeap<Reverse<(Dist, VertexId)>>,
}

impl std::fmt::Debug for Dijkstra {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dijkstra").finish_non_exhaustive()
    }
}

impl Dijkstra {
    /// Allocates buffers for graphs of `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            dist: vec![INF; n],
            touched: Vec::new(),
            heap: BinaryHeap::new(),
        }
    }

    fn reset(&mut self) {
        for &v in &self.touched {
            self.dist[v as usize] = INF;
        }
        self.touched.clear();
        self.heap.clear();
    }

    /// Point-to-point distance with early termination at `t`.
    pub fn distance(&mut self, g: &CsrGraph, s: VertexId, t: VertexId) -> Option<Dist> {
        if s == t {
            return Some(0);
        }
        self.reset();
        self.dist[s as usize] = 0;
        self.touched.push(s);
        self.heap.push(Reverse((0, s)));
        while let Some(Reverse((d, v))) = self.heap.pop() {
            if v == t {
                return Some(d);
            }
            if d > self.dist[v as usize] {
                continue;
            }
            for (u, w) in g.edges(v) {
                let nd = d + w as Dist;
                if nd < self.dist[u as usize] {
                    if self.dist[u as usize] == INF {
                        self.touched.push(u);
                    }
                    self.dist[u as usize] = nd;
                    self.heap.push(Reverse((nd, u)));
                }
            }
        }
        None
    }

    /// Full single-source shortest paths; the returned slice is valid until
    /// the next call.
    pub fn sssp(&mut self, g: &CsrGraph, s: VertexId) -> &[Dist] {
        self.reset();
        self.dist[s as usize] = 0;
        self.touched.push(s);
        self.heap.push(Reverse((0, s)));
        while let Some(Reverse((d, v))) = self.heap.pop() {
            if d > self.dist[v as usize] {
                continue;
            }
            for (u, w) in g.edges(v) {
                let nd = d + w as Dist;
                if nd < self.dist[u as usize] {
                    if self.dist[u as usize] == INF {
                        self.touched.push(u);
                    }
                    self.dist[u as usize] = nd;
                    self.heap.push(Reverse((nd, u)));
                }
            }
        }
        &self.dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use islabel_graph::generators::{erdos_renyi_gnm, WeightModel};
    use islabel_graph::GraphBuilder;

    #[test]
    fn p2p_matches_reference() {
        let g = erdos_renyi_gnm(120, 300, WeightModel::UniformRange(1, 9), 5);
        let mut dij = Dijkstra::new(120);
        for (s, t) in [(0u32, 119u32), (5, 5), (3, 40), (100, 7)] {
            assert_eq!(
                dij.distance(&g, s, t),
                islabel_core::reference::dijkstra_p2p(&g, s, t),
                "({s}, {t})"
            );
        }
    }

    #[test]
    fn buffers_reset_between_queries() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1);
        b.add_edge(2, 3, 1);
        let g = b.build();
        let mut dij = Dijkstra::new(4);
        assert_eq!(dij.distance(&g, 0, 1), Some(1));
        // Second query must not see stale distances from the first.
        assert_eq!(dij.distance(&g, 2, 0), None);
        assert_eq!(dij.distance(&g, 2, 3), Some(1));
    }

    #[test]
    fn sssp_matches_reference() {
        let g = erdos_renyi_gnm(90, 200, WeightModel::UniformRange(1, 4), 8);
        let mut dij = Dijkstra::new(90);
        let expect = islabel_core::reference::dijkstra_all(&g, 13);
        assert_eq!(dij.sssp(&g, 13), &expect[..]);
    }
}
