//! Pruned Landmark Labeling — the canonical practical 2-hop labeling
//! (Akiba, Iwata, Yoshida; SIGMOD 2013), in its weighted "pruned Dijkstra"
//! form.
//!
//! Section 3 of the IS-LABEL paper argues that the 2-hop family (Cohen et
//! al.) cannot be built for large graphs — its optimization problem is
//! NP-hard and heuristic constructions were still too costly in 2012. PLL
//! is the strongest member of that family in practice, so we use it as the
//! concrete 2-hop representative for the construction-cost ablation
//! (ablation C) and as yet another exact-query cross-check.
//!
//! Construction: process vertices in descending-degree order; from each
//! landmark run a Dijkstra that *prunes* any vertex whose distance is
//! already covered by previously assigned labels. Every vertex ends up with
//! a label of `(landmark rank, distance)` pairs; a query is a merge-join of
//! two labels — structurally the same Equation 1 evaluation IS-LABEL uses,
//! with total correctness instead of max-level-vertex correctness.

use islabel_core::oracle::{DistanceOracle, QueryError, QuerySession};
use islabel_graph::{CsrGraph, Dist, VertexId, INF};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// A pruned-landmark 2-hop index.
pub struct PllIndex {
    /// Per vertex: `(landmark rank, dist)` ascending by rank.
    labels: Vec<Vec<(u32, Dist)>>,
    build_time: Duration,
}

impl std::fmt::Debug for PllIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PllIndex").finish_non_exhaustive()
    }
}

impl PllIndex {
    /// Builds the index (descending-degree landmark order).
    pub fn build(g: &CsrGraph) -> Self {
        let t0 = Instant::now();
        let n = g.num_vertices();
        // Landmark order: by descending degree, ties by id — the standard
        // effective ordering for scale-free graphs.
        let mut order: Vec<VertexId> = g.vertices().collect();
        order.sort_by_key(|&v| (Reverse(g.degree(v)), v));

        let mut labels: Vec<Vec<(u32, Dist)>> = vec![Vec::new(); n];
        let mut dist = vec![INF; n];
        let mut touched: Vec<VertexId> = Vec::new();
        let mut heap: BinaryHeap<Reverse<(Dist, VertexId)>> = BinaryHeap::new();

        // Scratch array of the current landmark's label for O(1) lookups
        // during the pruning query.
        let mut lm_dist = vec![INF; n.max(1)];

        for (rank, &landmark) in order.iter().enumerate() {
            let rank = rank as u32;
            // Load landmark's own label into the scratch table.
            for &(r, d) in &labels[landmark as usize] {
                lm_dist[r as usize] = d;
            }

            dist[landmark as usize] = 0;
            touched.push(landmark);
            heap.push(Reverse((0, landmark)));
            while let Some(Reverse((d, v))) = heap.pop() {
                if d > dist[v as usize] {
                    continue;
                }
                // Prune: can existing labels already certify dist(landmark,
                // v) <= d? (Merge via the scratch table.)
                let mut covered = false;
                for &(r, dv) in &labels[v as usize] {
                    let dl = lm_dist[r as usize];
                    if dl != INF && dl + dv <= d {
                        covered = true;
                        break;
                    }
                }
                if covered {
                    continue;
                }
                labels[v as usize].push((rank, d));
                for (u, w) in g.edges(v) {
                    let nd = d + w as Dist;
                    if nd < dist[u as usize] {
                        if dist[u as usize] == INF {
                            touched.push(u);
                        }
                        dist[u as usize] = nd;
                        heap.push(Reverse((nd, u)));
                    }
                }
            }

            for &(r, _) in &labels[landmark as usize] {
                lm_dist[r as usize] = INF;
            }
            for &v in &touched {
                dist[v as usize] = INF;
            }
            touched.clear();
            heap.clear();
        }
        // Labels are produced in ascending rank order already (each landmark
        // appends its own rank once); assert in debug builds.
        debug_assert!(labels.iter().all(|l| l.windows(2).all(|w| w[0].0 < w[1].0)));
        Self {
            labels,
            build_time: t0.elapsed(),
        }
    }

    /// Construction wall-clock time.
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// Number of vertices indexed.
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Total label entries.
    pub fn num_entries(&self) -> usize {
        self.labels.iter().map(|l| l.len()).sum()
    }

    /// Mean entries per vertex.
    pub fn avg_label_len(&self) -> f64 {
        if self.labels.is_empty() {
            0.0
        } else {
            self.num_entries() as f64 / self.labels.len() as f64
        }
    }

    /// Index size in bytes.
    pub fn index_bytes(&self) -> usize {
        self.num_entries() * 12 + self.labels.len() * std::mem::size_of::<Vec<(u32, Dist)>>()
    }

    /// Exact point-to-point distance by label merge-join.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `t` is out of range; use
    /// [`PllIndex::try_distance`] for the fallible form.
    pub fn distance(&self, s: VertexId, t: VertexId) -> Option<Dist> {
        self.try_distance(s, t).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Exact point-to-point distance with typed errors; `Ok(None)` means
    /// unreachable.
    pub fn try_distance(&self, s: VertexId, t: VertexId) -> Result<Option<Dist>, QueryError> {
        islabel_core::oracle::check_vertex(s, self.labels.len())?;
        islabel_core::oracle::check_vertex(t, self.labels.len())?;
        if s == t {
            return Ok(Some(0));
        }
        let (a, b) = (&self.labels[s as usize], &self.labels[t as usize]);
        let mut best = INF;
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    best = best.min(a[i].1 + b[j].1);
                    i += 1;
                    j += 1;
                }
            }
        }
        Ok((best < INF).then_some(best))
    }
}

impl DistanceOracle for PllIndex {
    fn engine_name(&self) -> &'static str {
        "pll"
    }

    fn num_vertices(&self) -> usize {
        PllIndex::num_vertices(self)
    }

    fn index_bytes(&self) -> usize {
        PllIndex::index_bytes(self)
    }

    fn try_distance(&self, s: VertexId, t: VertexId) -> Result<Option<Dist>, QueryError> {
        PllIndex::try_distance(self, s, t)
    }

    fn session(&self) -> Box<dyn QuerySession + '_> {
        Box::new(PllSession { index: self })
    }
}

/// [`QuerySession`] over a [`PllIndex`]. The 2-hop merge-join query reads
/// only the two label slices and needs no per-query scratch, so the
/// session is a plain borrow — it exists to give PLL the same per-thread
/// serving surface as the search-based engines.
pub struct PllSession<'a> {
    index: &'a PllIndex,
}

impl std::fmt::Debug for PllSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PllSession").finish_non_exhaustive()
    }
}

impl QuerySession for PllSession<'_> {
    fn engine_name(&self) -> &'static str {
        "pll"
    }

    fn distance(&mut self, s: VertexId, t: VertexId) -> Result<Option<Dist>, QueryError> {
        self.index.try_distance(s, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use islabel_core::reference::{dijkstra_all, dijkstra_p2p};
    use islabel_graph::generators::{barabasi_albert, erdos_renyi_gnm, WeightModel};

    #[test]
    fn exact_exhaustively_on_small_graphs() {
        for seed in 0..4u64 {
            let g = erdos_renyi_gnm(50, 110, WeightModel::UniformRange(1, 6), seed);
            let pll = PllIndex::build(&g);
            for s in g.vertices() {
                let truth = dijkstra_all(&g, s);
                for t in g.vertices() {
                    let expect = (truth[t as usize] < INF).then_some(truth[t as usize]);
                    assert_eq!(pll.distance(s, t), expect, "seed {seed} ({s}, {t})");
                }
            }
        }
    }

    #[test]
    fn exact_on_heavy_tailed_graph() {
        let g = barabasi_albert(300, 3, WeightModel::UniformRange(1, 3), 9);
        let pll = PllIndex::build(&g);
        for i in 0..80u32 {
            let (s, t) = ((i * 7) % 300, (i * 17 + 3) % 300);
            assert_eq!(pll.distance(s, t), dijkstra_p2p(&g, s, t), "({s}, {t})");
        }
    }

    #[test]
    fn pruning_keeps_labels_small_on_hub_graphs() {
        // On scale-free graphs PLL labels should stay tiny relative to n.
        let g = barabasi_albert(1000, 3, WeightModel::Unit, 4);
        let pll = PllIndex::build(&g);
        assert!(pll.avg_label_len() < 64.0, "avg {}", pll.avg_label_len());
        assert!(pll.num_entries() > 1000); // at least one entry per vertex
        assert!(pll.index_bytes() > 0);
    }

    #[test]
    fn disconnected_pairs() {
        let mut b = islabel_graph::GraphBuilder::new(4);
        b.add_edge(0, 1, 3);
        let pll = PllIndex::build(&b.build());
        assert_eq!(pll.distance(0, 1), Some(3));
        assert_eq!(pll.distance(0, 2), None);
        assert_eq!(pll.distance(2, 3), None);
        assert_eq!(pll.distance(3, 3), Some(0));
    }
}
