//! In-memory bidirectional Dijkstra — the paper's **IM-DIJ** baseline.
//!
//! Table 8 compares IS-LABEL against bidirectional Dijkstra run entirely in
//! memory over the original graph. This implementation alternates
//! extractions between the cheaper frontier and stops when
//! `min(FQ) + min(RQ) ≥ µ`, the same cutoff Algorithm 1 uses.
//!
//! The searcher runs on the same dense primitives as the IS-LABEL kernel
//! (the graph's own ids are already compact): [`StampedSlab`] tentative
//! distances with O(1) epoch-bump reset — replacing the old touched-list
//! walk — and the indexed 4-ary [`IndexedHeap`] with decrease-key, which
//! eliminates the lazy-deletion `clean_top` scan.

use islabel_core::dense::{IndexedHeap, StampedSlab};
use islabel_core::oracle::{check_vertex, DistanceOracle, QueryError, QuerySession};
use islabel_graph::{CsrGraph, Dist, VertexId, INF};
use std::sync::Mutex;

/// Reusable bidirectional Dijkstra.
pub struct BiDijkstra {
    dist_f: StampedSlab<Dist>,
    dist_r: StampedSlab<Dist>,
    fq: IndexedHeap,
    rq: IndexedHeap,
}

impl std::fmt::Debug for BiDijkstra {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BiDijkstra").finish_non_exhaustive()
    }
}

impl BiDijkstra {
    /// Allocates buffers for graphs of `n` vertices; both heaps are
    /// pre-sized (decrease-key bounds each by `n`), so later queries never
    /// allocate.
    pub fn new(n: usize) -> Self {
        Self {
            dist_f: StampedSlab::new(n),
            dist_r: StampedSlab::new(n),
            fq: IndexedHeap::new(n),
            rq: IndexedHeap::new(n),
        }
    }

    fn reset(&mut self) {
        self.dist_f.reset();
        self.dist_r.reset();
        self.fq.clear();
        self.rq.clear();
    }

    /// Point-to-point distance, plus the number of settled vertices (the
    /// search-volume diagnostic reported by the benches).
    pub fn distance_with_cost(
        &mut self,
        g: &CsrGraph,
        s: VertexId,
        t: VertexId,
    ) -> (Option<Dist>, usize) {
        if s == t {
            return (Some(0), 0);
        }
        self.reset();
        self.dist_f.set(s, 0);
        self.dist_r.set(t, 0);
        self.fq.push_or_decrease(s, 0);
        self.rq.push_or_decrease(t, 0);
        let mut mu = INF;
        let mut settled = 0usize;

        loop {
            let min_f = self.fq.peek_key();
            let min_r = self.rq.peek_key();
            if min_f == INF || min_r == INF {
                break;
            }
            if min_f.saturating_add(min_r) >= mu {
                break;
            }
            let forward = min_f <= min_r;
            let (q, dist_x, dist_y) = if forward {
                (&mut self.fq, &mut self.dist_f, &self.dist_r)
            } else {
                (&mut self.rq, &mut self.dist_r, &self.dist_f)
            };
            let (d, v) = q.pop().expect("finite peek_key means a live entry");
            settled += 1;
            if let Some(dy) = dist_y.get(v) {
                mu = mu.min(d + dy);
            }
            for (u, w) in g.edges(v) {
                let nd = d + w as Dist;
                if dist_x.get(u).is_none_or(|cur| nd < cur) {
                    dist_x.set(u, nd);
                    q.push_or_decrease(u, nd);
                    if let Some(dy) = dist_y.get(u) {
                        mu = mu.min(nd.saturating_add(dy));
                    }
                }
            }
        }
        ((mu < INF).then_some(mu), settled)
    }

    /// Point-to-point distance.
    pub fn distance(&mut self, g: &CsrGraph, s: VertexId, t: VertexId) -> Option<Dist> {
        self.distance_with_cost(g, s, t).0
    }
}

/// [`BiDijkstra`] behind the shared oracle contract (the paper's IM-DIJ
/// baseline as a drop-in engine).
///
/// The raw searcher needs `&mut` scratch state per query, which does not
/// fit the `&self + Sync` [`DistanceOracle`] contract; this wrapper owns
/// the graph and pools scratch states behind a mutex — each query checks
/// one out (allocating lazily on first use per level of concurrency) and
/// returns it afterwards, so concurrent batch workers never contend on a
/// single searcher.
pub struct BiDijkstraOracle {
    graph: CsrGraph,
    pool: Mutex<Vec<BiDijkstra>>,
}

impl std::fmt::Debug for BiDijkstraOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BiDijkstraOracle").finish_non_exhaustive()
    }
}

impl BiDijkstraOracle {
    /// Wraps a graph; scratch states are created on demand.
    pub fn new(graph: CsrGraph) -> Self {
        Self {
            graph,
            pool: Mutex::new(Vec::new()),
        }
    }

    /// The graph queries run over.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Fallible point-to-point distance; `Ok(None)` means unreachable.
    pub fn try_distance(&self, s: VertexId, t: VertexId) -> Result<Option<Dist>, QueryError> {
        check_vertex(s, self.graph.num_vertices())?;
        check_vertex(t, self.graph.num_vertices())?;
        let mut searcher = self.checkout();
        let d = searcher.distance(&self.graph, s, t);
        self.pool
            .lock()
            .expect("scratch pool poisoned")
            .push(searcher);
        Ok(d)
    }

    /// Opens a per-thread session that checks a searcher out of the pool
    /// for its whole lifetime (returned on drop), so a serving thread skips
    /// the per-query pool round-trip of
    /// [`try_distance`](BiDijkstraOracle::try_distance) entirely.
    pub fn session(&self) -> BiDijkstraSession<'_> {
        BiDijkstraSession {
            oracle: self,
            searcher: Some(self.checkout()),
        }
    }

    fn checkout(&self) -> BiDijkstra {
        self.pool
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_else(|| BiDijkstra::new(self.graph.num_vertices()))
    }
}

/// A pool checkout of one [`BiDijkstra`] searcher (see
/// [`QuerySession`]). Obtained from [`BiDijkstraOracle::session`]; the
/// searcher returns to the pool when the session drops.
pub struct BiDijkstraSession<'a> {
    oracle: &'a BiDijkstraOracle,
    searcher: Option<BiDijkstra>,
}

impl std::fmt::Debug for BiDijkstraSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BiDijkstraSession").finish_non_exhaustive()
    }
}

impl BiDijkstraSession<'_> {
    /// Exact distance through this session's dedicated searcher; same
    /// contract as [`BiDijkstraOracle::try_distance`].
    pub fn distance(&mut self, s: VertexId, t: VertexId) -> Result<Option<Dist>, QueryError> {
        check_vertex(s, self.oracle.graph.num_vertices())?;
        check_vertex(t, self.oracle.graph.num_vertices())?;
        let searcher = self.searcher.as_mut().expect("searcher held until drop");
        Ok(searcher.distance(&self.oracle.graph, s, t))
    }
}

impl QuerySession for BiDijkstraSession<'_> {
    fn engine_name(&self) -> &'static str {
        "bidij"
    }

    fn distance(&mut self, s: VertexId, t: VertexId) -> Result<Option<Dist>, QueryError> {
        BiDijkstraSession::distance(self, s, t)
    }
}

impl Drop for BiDijkstraSession<'_> {
    fn drop(&mut self) {
        if let Some(searcher) = self.searcher.take() {
            self.oracle
                .pool
                .lock()
                .expect("scratch pool poisoned")
                .push(searcher);
        }
    }
}

impl DistanceOracle for BiDijkstraOracle {
    fn engine_name(&self) -> &'static str {
        "bidij"
    }

    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// No auxiliary index: queries read the graph itself.
    fn index_bytes(&self) -> usize {
        self.graph.memory_bytes()
    }

    fn try_distance(&self, s: VertexId, t: VertexId) -> Result<Option<Dist>, QueryError> {
        BiDijkstraOracle::try_distance(self, s, t)
    }

    fn session(&self) -> Box<dyn QuerySession + '_> {
        Box::new(BiDijkstraOracle::session(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use islabel_graph::generators::{barabasi_albert, erdos_renyi_gnm, WeightModel};
    use islabel_graph::GraphBuilder;

    #[test]
    fn matches_unidirectional_dijkstra() {
        let g = erdos_renyi_gnm(150, 400, WeightModel::UniformRange(1, 9), 7);
        let mut bi = BiDijkstra::new(150);
        for i in 0..60u32 {
            let (s, t) = ((i * 3) % 150, (i * 11 + 1) % 150);
            assert_eq!(
                bi.distance(&g, s, t),
                islabel_core::reference::dijkstra_p2p(&g, s, t),
                "({s}, {t})"
            );
        }
    }

    #[test]
    fn disconnected_and_self() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 2);
        let g = b.build();
        let mut bi = BiDijkstra::new(4);
        assert_eq!(bi.distance(&g, 0, 3), None);
        assert_eq!(bi.distance(&g, 3, 3), Some(0));
        assert_eq!(bi.distance(&g, 1, 0), Some(2));
    }

    #[test]
    fn settles_fewer_than_full_dijkstra_on_average() {
        // The point of bidirectional search: two small balls instead of one
        // big one. Compare settled counts on a heavy-tailed graph.
        let g = barabasi_albert(2000, 3, WeightModel::Unit, 9);
        let mut bi = BiDijkstra::new(2000);
        let mut total_settled = 0usize;
        for i in 0..20u32 {
            let (s, t) = ((i * 97) % 2000, (i * 131 + 50) % 2000);
            let (_, settled) = bi.distance_with_cost(&g, s, t);
            total_settled += settled;
        }
        // Unidirectional would settle ~n per far query; 20 queries over a
        // 2000-vertex small-world graph should stay well under 20 * 2000.
        assert!(total_settled < 20 * 2000, "settled {total_settled}");
    }

    #[test]
    fn oracle_wrapper_pools_state_and_parallelizes() {
        use islabel_core::oracle::BatchOptions;
        let g = erdos_renyi_gnm(120, 300, WeightModel::UniformRange(1, 6), 4);
        let oracle = BiDijkstraOracle::new(g.clone());
        assert_eq!(oracle.engine_name(), "bidij");
        assert_eq!(DistanceOracle::num_vertices(&oracle), 120);
        assert!(oracle.index_bytes() > 0);

        let pairs: Vec<(VertexId, VertexId)> =
            (0..80u32).map(|i| (i % 120, (i * 13 + 7) % 120)).collect();
        let expect: Vec<Option<Dist>> = pairs
            .iter()
            .map(|&(s, t)| islabel_core::reference::dijkstra_p2p(&g, s, t))
            .collect();
        // Parallel batch over the pooled scratch states must match.
        let got = oracle
            .distance_batch(&pairs, BatchOptions::with_threads(4))
            .unwrap();
        assert_eq!(got, expect);
        // The pool retains at most one state per concurrent worker.
        assert!(oracle.pool.lock().unwrap().len() <= 4);
        // Out-of-range is typed, not a panic.
        assert!(matches!(
            oracle.try_distance(0, 500),
            Err(QueryError::VertexOutOfRange { .. })
        ));
    }

    #[test]
    fn reuse_across_queries_is_clean() {
        let g = erdos_renyi_gnm(60, 150, WeightModel::Unit, 2);
        let mut bi = BiDijkstra::new(60);
        let expect: Vec<Option<Dist>> = (0..30u32)
            .map(|i| islabel_core::reference::dijkstra_p2p(&g, i, 59 - i))
            .collect();
        for round in 0..3 {
            for (i, e) in expect.iter().enumerate() {
                let i = i as u32;
                assert_eq!(bi.distance(&g, i, 59 - i), *e, "round {round} query {i}");
            }
        }
    }
}
