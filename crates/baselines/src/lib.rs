#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! # islabel-baselines
//!
//! Every comparison method the paper's evaluation needs:
//!
//! * [`Dijkstra`] — textbook single-source / point-to-point Dijkstra with
//!   reusable buffers.
//! * [`BiDijkstra`] — in-memory bidirectional Dijkstra, the paper's
//!   **IM-DIJ** baseline (Table 8).
//! * [`VcIndex`] — a clean-room reimplementation of the vertex-cover
//!   distance index of Cheng et al. (SIGMOD 2012), converted for
//!   point-to-point querying by early termination exactly as the paper did
//!   (**VC-Index(P2P)**, Tables 8 and 9).
//! * [`PllIndex`] — Pruned Landmark Labeling, the canonical practical
//!   2-hop labeling; stands in for the Cohen et al. 2-hop family whose
//!   construction cost Section 3 argues is prohibitive (ablation C).
//!
//! Every engine implements
//! [`DistanceOracle`](islabel_core::oracle::DistanceOracle); the
//! [`registry`] module builds any of them behind `Box<dyn DistanceOracle>`
//! from an [`Engine`] selector.

pub mod bidijkstra;
pub mod dijkstra;
pub mod pll;
pub mod registry;
pub mod vc_index;

pub use bidijkstra::{BiDijkstra, BiDijkstraOracle};
pub use dijkstra::Dijkstra;
pub use pll::PllIndex;
pub use registry::{build_oracle, Engine};
pub use vc_index::{VcConfig, VcIndex, VcQueryCost};
