//! VC-Index converted for point-to-point querying — the paper's main
//! comparator (Tables 8 and 9).
//!
//! Cheng et al. (SIGMOD 2012) index *single-source* distance queries with a
//! hierarchy of vertex covers: each level removes the complement of a
//! vertex cover — which is exactly an independent set — and patches the
//! remaining cover graph with distance-preserving edges. The index stores
//! the reduced graphs, **not labels**; queries are searches over them. The
//! IS-LABEL authors "modified the source code to make it work specifically
//! for point to point distance queries by making the program stop once the
//! distance from s to t is found".
//!
//! This clean-room reimplementation keeps those structural facts:
//!
//! * **Index** = the union of all per-level removed-vertex adjacencies plus
//!   the top core graph (every stored edge is a distance-preserving
//!   shortcut). No labels — which is why Table 9's index sizes are far
//!   smaller than IS-LABEL's label sizes.
//! * **Query** = Dijkstra from `s` over that union structure with early
//!   termination once `t` settles. Distances are exact: the union contains,
//!   for every vertex pair, a path of true shortest length (the V-shaped
//!   up-then-down route through the hierarchy), and every stored edge
//!   weight is the length of some real path.
//! * The query reports its touched data volume so the experiment harness
//!   can model the disk-resident behavior of the original system (the
//!   published VC-Index(P2P) numbers are dominated by scanning reduced
//!   graphs from disk).

use islabel_core::dense::{IndexedHeap, StampedSlab};
use islabel_core::hierarchy::VertexHierarchy;
use islabel_core::oracle::{check_vertex, DistanceOracle, QueryError, QuerySession};
use islabel_core::{BuildConfig, KSelection};
use islabel_graph::{CsrGraph, Dist, GraphBuilder, VertexId};
use std::time::{Duration, Instant};

/// VC-Index construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct VcConfig {
    /// Level-termination threshold, analogous to the paper's σ (stop when a
    /// cover reduction shrinks the graph by less than `1 − sigma`).
    pub sigma: f64,
}

impl Default for VcConfig {
    fn default() -> Self {
        Self { sigma: 0.95 }
    }
}

/// Per-query cost counters (drive the modeled-I/O reporting in Table 8).
#[derive(Debug, Clone, Copy, Default)]
pub struct VcQueryCost {
    /// Vertices settled by the search.
    pub settled: usize,
    /// Adjacency entries scanned.
    pub edges_scanned: usize,
    /// Bytes of index data touched (adjacency entries × entry size).
    pub bytes_touched: usize,
}

/// The vertex-cover index, P2P-converted.
pub struct VcIndex {
    /// Union of all reduced-graph adjacencies (see module docs).
    search_graph: CsrGraph,
    levels: u32,
    core_vertices: usize,
    core_edges: usize,
    build_time: Duration,
}

impl std::fmt::Debug for VcIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VcIndex").finish_non_exhaustive()
    }
}

impl VcIndex {
    /// Builds the index over `g`.
    pub fn build(g: &CsrGraph, config: VcConfig) -> Self {
        let t0 = Instant::now();
        // The cover hierarchy is the same reduction IS-LABEL uses (removing
        // an independent set == keeping a vertex cover), so we reuse the
        // hierarchy builder and then materialize the union search structure
        // instead of labels.
        let build_cfg = BuildConfig {
            k_selection: KSelection::SigmaThreshold(config.sigma),
            keep_path_info: false,
            ..BuildConfig::default()
        };
        let h = VertexHierarchy::build(g, &build_cfg);

        let mut b = GraphBuilder::new(g.num_vertices());
        for v in g.vertices() {
            for e in h.peel_adj(v) {
                b.add_edge(v, e.to, e.weight);
            }
        }
        for (u, v, w) in h.gk().edge_list() {
            b.add_edge(u, v, w);
        }
        let search_graph = b.build();
        Self {
            search_graph,
            levels: h.k(),
            core_vertices: h.num_gk_vertices(),
            core_edges: h.num_gk_edges(),
            build_time: t0.elapsed(),
        }
    }

    /// Number of reduction levels.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Number of vertices indexed.
    pub fn num_vertices(&self) -> usize {
        self.search_graph.num_vertices()
    }

    /// Vertices of the top core graph.
    pub fn core_vertices(&self) -> usize {
        self.core_vertices
    }

    /// Edges of the top core graph.
    pub fn core_edges(&self) -> usize {
        self.core_edges
    }

    /// Construction wall-clock time (Table 9).
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// Index size in bytes (Table 9): the stored reduced-graph adjacencies.
    pub fn index_bytes(&self) -> usize {
        self.search_graph.memory_bytes()
    }

    /// Point-to-point distance with early termination (the P2P conversion).
    ///
    /// # Panics
    ///
    /// Panics if `s` or `t` is out of range; use
    /// [`VcIndex::try_distance`] for the fallible form.
    pub fn distance(&self, s: VertexId, t: VertexId) -> Option<Dist> {
        self.try_distance(s, t).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Point-to-point distance with typed errors; `Ok(None)` means
    /// unreachable.
    pub fn try_distance(&self, s: VertexId, t: VertexId) -> Result<Option<Dist>, QueryError> {
        check_vertex(s, self.num_vertices())?;
        check_vertex(t, self.num_vertices())?;
        Ok(self.distance_with_cost(s, t).0)
    }

    /// Distance plus touched-volume counters.
    ///
    /// One-shot convenience: allocates a fresh [`VcSession`] per call. Any
    /// caller issuing repeated cost queries should hold a session and use
    /// [`VcSession::distance_with_cost`], which reuses the slab and heap.
    pub fn distance_with_cost(&self, s: VertexId, t: VertexId) -> (Option<Dist>, VcQueryCost) {
        let mut cost = VcQueryCost::default();
        let d = self.session().dijkstra(s, t, &mut cost);
        (d, cost)
    }

    /// Opens a per-thread [`VcSession`] whose Dijkstra buffers (stamped
    /// distance slab, indexed heap) persist across queries; the typed twin
    /// of [`DistanceOracle::session`].
    pub fn session(&self) -> VcSession<'_> {
        let n = self.search_graph.num_vertices();
        VcSession {
            index: self,
            dist: StampedSlab::new(n),
            heap: IndexedHeap::new(n),
        }
    }
}

impl DistanceOracle for VcIndex {
    fn engine_name(&self) -> &'static str {
        "vc"
    }

    fn num_vertices(&self) -> usize {
        VcIndex::num_vertices(self)
    }

    fn index_bytes(&self) -> usize {
        VcIndex::index_bytes(self)
    }

    fn try_distance(&self, s: VertexId, t: VertexId) -> Result<Option<Dist>, QueryError> {
        VcIndex::try_distance(self, s, t)
    }

    fn session(&self) -> Box<dyn QuerySession + '_> {
        Box::new(VcIndex::session(self))
    }
}

/// Reusable query state for one [`VcIndex`]: the stamped distance slab and
/// indexed heap of the early-terminating Dijkstra (see
/// [`QuerySession`]). Obtained from [`VcIndex::session`].
pub struct VcSession<'a> {
    index: &'a VcIndex,
    dist: StampedSlab<Dist>,
    heap: IndexedHeap,
}

impl std::fmt::Debug for VcSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VcSession").finish_non_exhaustive()
    }
}

impl VcSession<'_> {
    /// Exact distance through the reused search buffers; same contract as
    /// [`VcIndex::try_distance`].
    pub fn distance(&mut self, s: VertexId, t: VertexId) -> Result<Option<Dist>, QueryError> {
        Ok(self.distance_with_cost(s, t)?.0)
    }

    /// Distance plus touched-volume counters through the reused buffers —
    /// the session-hot-path twin of [`VcIndex::distance_with_cost`].
    pub fn distance_with_cost(
        &mut self,
        s: VertexId,
        t: VertexId,
    ) -> Result<(Option<Dist>, VcQueryCost), QueryError> {
        let g = &self.index.search_graph;
        check_vertex(s, g.num_vertices())?;
        check_vertex(t, g.num_vertices())?;
        let mut cost = VcQueryCost::default();
        let d = self.dijkstra(s, t, &mut cost);
        Ok((d, cost))
    }

    /// The early-terminating Dijkstra core over the union search structure.
    /// O(1) epoch-bump reset replaces the old touched-list walk; the
    /// indexed heap's decrease-key means every pop is a settle, so the
    /// `settled` counter is exact without a staleness re-check.
    fn dijkstra(&mut self, s: VertexId, t: VertexId, cost: &mut VcQueryCost) -> Option<Dist> {
        let g = &self.index.search_graph;
        if s == t {
            return Some(0);
        }
        self.dist.reset();
        self.heap.clear();
        self.dist.set(s, 0);
        self.heap.push_or_decrease(s, 0);
        let mut answer = None;
        while let Some((d, v)) = self.heap.pop() {
            cost.settled += 1;
            if v == t {
                answer = Some(d);
                break;
            }
            cost.edges_scanned += g.degree(v);
            for (u, w) in g.edges(v) {
                let nd = d + w as Dist;
                if self.dist.get(u).is_none_or(|cur| nd < cur) {
                    self.dist.set(u, nd);
                    self.heap.push_or_decrease(u, nd);
                }
            }
        }
        cost.bytes_touched = cost.edges_scanned * 8;
        answer
    }
}

impl QuerySession for VcSession<'_> {
    fn engine_name(&self) -> &'static str {
        "vc"
    }

    fn distance(&mut self, s: VertexId, t: VertexId) -> Result<Option<Dist>, QueryError> {
        VcSession::distance(self, s, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use islabel_core::reference::dijkstra_p2p;
    use islabel_graph::generators::{barabasi_albert, erdos_renyi_gnm, WeightModel};

    #[test]
    fn exact_on_random_graphs() {
        for seed in 0..4u64 {
            let g = erdos_renyi_gnm(100, 250, WeightModel::UniformRange(1, 8), seed);
            let vc = VcIndex::build(&g, VcConfig::default());
            for i in 0..50u32 {
                let (s, t) = ((i * 3) % 100, (i * 7 + 2) % 100);
                assert_eq!(
                    vc.distance(s, t),
                    dijkstra_p2p(&g, s, t),
                    "seed {seed} ({s}, {t})"
                );
            }
        }
    }

    #[test]
    fn exact_on_heavy_tailed_graph() {
        let g = barabasi_albert(400, 3, WeightModel::UniformRange(1, 4), 3);
        let vc = VcIndex::build(&g, VcConfig::default());
        for i in 0..60u32 {
            let (s, t) = ((i * 13) % 400, (i * 29 + 7) % 400);
            assert_eq!(vc.distance(s, t), dijkstra_p2p(&g, s, t), "({s}, {t})");
        }
    }

    #[test]
    fn index_stores_graphs_not_labels() {
        // VC-Index stores reduced graphs: the search structure must contain
        // at least the information of the input graph (shortcuts included)
        // and must report a meaningful footprint for Table 9.
        let g = barabasi_albert(800, 5, WeightModel::Unit, 5);
        let vc = VcIndex::build(&g, VcConfig::default());
        assert!(vc.index_bytes() > 0);
        assert!(vc.levels() >= 2);
        // The union structure carries the original edges plus shortcuts.
        assert!(vc.search_graph.num_edges() >= g.num_edges());
        // Whole-graph coverage: every vertex keeps some adjacency unless it
        // was isolated in the input.
        for v in g.vertices() {
            if g.degree(v) > 0 {
                assert!(
                    vc.search_graph.degree(v) > 0,
                    "vertex {v} lost its adjacency"
                );
            }
        }
    }

    #[test]
    fn query_cost_counters_populate() {
        let g = erdos_renyi_gnm(200, 600, WeightModel::Unit, 1);
        let vc = VcIndex::build(&g, VcConfig::default());
        let (d, cost) = vc.distance_with_cost(0, 150);
        assert!(d.is_some());
        assert!(cost.settled > 0);
        assert!(cost.edges_scanned > 0);
        assert_eq!(cost.bytes_touched, cost.edges_scanned * 8);
        // Early termination: a self query touches nothing.
        let (_, zero) = vc.distance_with_cost(5, 5);
        assert_eq!(zero.settled, 0);
    }

    #[test]
    fn disconnected_pairs() {
        let mut b = islabel_graph::GraphBuilder::new(5);
        b.add_edge(0, 1, 1);
        b.add_edge(2, 3, 1);
        let vc = VcIndex::build(&b.build(), VcConfig::default());
        assert_eq!(vc.distance(0, 3), None);
        assert_eq!(vc.distance(0, 1), Some(1));
        assert_eq!(vc.distance(4, 4), Some(0));
    }

    #[test]
    fn search_volume_exceeds_islabel_settles() {
        // The Table 8 story: VC-Index(P2P) explores a volume proportional to
        // the distance ball, IS-LABEL settles only inside G_k.
        let g = barabasi_albert(1500, 3, WeightModel::Unit, 8);
        let vc = VcIndex::build(&g, VcConfig::default());
        let is = islabel_core::IsLabelIndex::build(&g, islabel_core::BuildConfig::default());
        let mut vc_settled = 0usize;
        let mut is_settled = 0usize;
        for i in 0..20u32 {
            let (s, t) = ((i * 97) % 1500, (i * 211 + 13) % 1500);
            vc_settled += vc.distance_with_cost(s, t).1.settled;
            is_settled += is.query(s, t).settled;
        }
        assert!(
            vc_settled > is_settled,
            "vc settled {vc_settled} vs islabel {is_settled}"
        );
    }
}
