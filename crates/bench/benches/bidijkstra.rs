//! Benchmarks of the query pipeline's two stages in isolation: Equation 1
//! alone (full hierarchy) versus label-seeded bidirectional search on `G_k`
//! (k-level hierarchy) — the Table 6 trade-off at microbench resolution.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use islabel_bench::QueryWorkload;
use islabel_core::{BuildConfig, IsLabelIndex};
use islabel_graph::{Dataset, Scale};

fn stage_benches(c: &mut Criterion) {
    let g = Dataset::BtcLike.generate(Scale::Tiny);
    let n = g.num_vertices();
    let workload = QueryWorkload::random(n, 256, 0xD1);
    let pairs = workload.pairs.clone();

    let mut group = c.benchmark_group("stages");
    // Pure Equation 1 (G_k empty).
    let full = IsLabelIndex::build(&g, BuildConfig::full());
    let mut i = 0usize;
    group.bench_function(BenchmarkId::new("eq1-only", "full-hierarchy"), |b| {
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            black_box(full.distance(s, t))
        })
    });

    // Label-seeded bi-Dijkstra at several k values: larger k => smaller G_k
    // => more Eq-1 work, less search.
    for k in [2u32, 4, 8] {
        let index = IsLabelIndex::build(&g, BuildConfig::fixed_k(k));
        let mut i = 0usize;
        group.bench_function(BenchmarkId::new("seeded-search", format!("k{k}")), |b| {
            b.iter(|| {
                let (s, t) = pairs[i % pairs.len()];
                i += 1;
                black_box(index.distance(s, t))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, stage_benches);
criterion_main!(benches);
