//! Query-latency microbenchmarks: IS-LABEL (in-memory) vs bidirectional
//! Dijkstra vs VC-Index(P2P) vs PLL, per dataset.
//!
//! Criterion complements the `table*` binaries: tables reproduce the
//! paper's absolute methodology (batches + modeled I/O), these benches give
//! statistically robust per-query CPU latencies.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use islabel_baselines::{BiDijkstra, PllIndex, VcConfig, VcIndex};
use islabel_bench::QueryWorkload;
use islabel_core::{BuildConfig, IsLabelIndex};
use islabel_graph::{Dataset, Scale};

fn query_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("query");
    for ds in [Dataset::BtcLike, Dataset::WebLike, Dataset::GoogleLike] {
        let g = ds.generate(Scale::Tiny);
        let n = g.num_vertices();
        let workload = QueryWorkload::random(n, 256, 0xBE);
        let pairs = workload.pairs.clone();

        let index = IsLabelIndex::build(&g, BuildConfig::default());
        let vc = VcIndex::build(&g, VcConfig::default());
        let pll = PllIndex::build(&g);
        let mut bidij = BiDijkstra::new(n);

        let mut i = 0usize;
        group.bench_function(BenchmarkId::new("is-label", ds.name()), |b| {
            b.iter(|| {
                let (s, t) = pairs[i % pairs.len()];
                i += 1;
                black_box(index.distance(s, t))
            })
        });
        let mut i = 0usize;
        group.bench_function(BenchmarkId::new("im-dij", ds.name()), |b| {
            b.iter(|| {
                let (s, t) = pairs[i % pairs.len()];
                i += 1;
                black_box(bidij.distance(&g, s, t))
            })
        });
        let mut i = 0usize;
        group.bench_function(BenchmarkId::new("vc-index", ds.name()), |b| {
            b.iter(|| {
                let (s, t) = pairs[i % pairs.len()];
                i += 1;
                black_box(vc.distance(s, t))
            })
        });
        let mut i = 0usize;
        group.bench_function(BenchmarkId::new("pll", ds.name()), |b| {
            b.iter(|| {
                let (s, t) = pairs[i % pairs.len()];
                i += 1;
                black_box(pll.distance(s, t))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, query_benches);
criterion_main!(benches);
