//! Ablation bench: how the independent-set selection strategy (DESIGN.md's
//! called-out design choice, paper Section 6.1.1) affects build time.
//! Companion to the `ablation_strategy` binary, which reports label-size
//! and query-time effects.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use islabel_core::{BuildConfig, IsLabelIndex, IsStrategy};
use islabel_graph::{Dataset, Scale};

fn strategy_benches(c: &mut Criterion) {
    let g = Dataset::BtcLike.generate(Scale::Tiny);
    let mut group = c.benchmark_group("is_strategy");
    group.sample_size(10);
    for (name, strategy) in [
        ("min-degree", IsStrategy::MinDegreeGreedy),
        ("random", IsStrategy::Random(7)),
        ("max-degree", IsStrategy::MaxDegreeGreedy),
    ] {
        let config = BuildConfig {
            is_strategy: strategy,
            ..BuildConfig::default()
        };
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| black_box(IsLabelIndex::build(&g, config)))
        });
    }
    group.finish();
}

criterion_group!(benches, strategy_benches);
criterion_main!(benches);
