//! Microbenchmarks of the dense search-kernel primitives:
//!
//! * `intersect_min` (linear merge) vs `intersect_min_adaptive` (galloping)
//!   at controlled length skews — the Equation 1 cost at the two ends of
//!   the label-size distribution;
//! * the indexed 4-ary heap with decrease-key vs the lazy-deletion
//!   `BinaryHeap` pattern it replaces, on an identical Dijkstra-shaped
//!   push/decrease/pop stream.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use islabel_core::dense::IndexedHeap;
use islabel_core::label::LabelView;
use islabel_core::query::{intersect_min, intersect_min_adaptive};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A sorted synthetic label of `len` entries with ancestor stride
/// `stride`; `salt` varies only the distances, so two labels built with
/// strides 2 and 3 share every ancestor divisible by 6 — the intersection
/// exercises both the hit and the miss branch, like real hub labels.
fn make_label(len: usize, stride: u32, salt: u64) -> (Vec<u32>, Vec<u64>) {
    let anc: Vec<u32> = (0..len as u32).map(|i| i * stride).collect();
    let d: Vec<u64> = (0..len as u64).map(|i| (i * 7 + salt) % 100 + 1).collect();
    (anc, d)
}

fn bench_intersect(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersect_skew");
    // (short, long): balanced pairs stay on the linear merge; skewed pairs
    // cross the galloping threshold. Strides 2 vs 3 overlap on every
    // third short entry.
    for (sa, sb) in [(512usize, 512usize), (16, 512), (16, 4096), (4, 65536)] {
        let (a_anc, a_d) = make_label(sa, 2, 1);
        let (b_anc, b_d) = make_label(sb, 3, 2);
        let a = LabelView {
            ancestors: &a_anc,
            dists: &a_d,
            first_hops: &[],
        };
        let b = LabelView {
            ancestors: &b_anc,
            dists: &b_d,
            first_hops: &[],
        };
        group.throughput(Throughput::Elements((sa + sb) as u64));
        group.bench_function(BenchmarkId::new("linear", format!("{sa}x{sb}")), |bch| {
            bch.iter(|| black_box(intersect_min(a, b)))
        });
        group.bench_function(BenchmarkId::new("adaptive", format!("{sa}x{sb}")), |bch| {
            bch.iter(|| black_box(intersect_min_adaptive(a, b)))
        });
    }
    group.finish();
}

/// A deterministic Dijkstra-shaped operation stream over `n` vertices:
/// `(vertex, key)` pushes with many key improvements, interleaved with
/// pops — the exact access pattern of the search kernel's frontier.
fn op_stream(n: u32, ops: usize) -> Vec<(u32, u64)> {
    let mut state = 0x5EED_CAFE_F00D_u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..ops)
        .map(|_| ((next() % n as u64) as u32, next() % 10_000))
        .collect()
}

fn bench_heaps(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontier_heap");
    for n in [1024u32, 16_384] {
        let stream = op_stream(n, n as usize * 4);
        group.throughput(Throughput::Elements(stream.len() as u64));

        group.bench_function(BenchmarkId::new("indexed_4ary", n), |bch| {
            let mut heap = IndexedHeap::new(n as usize);
            bch.iter(|| {
                heap.clear();
                for &(v, key) in &stream {
                    heap.push_or_decrease(v, key);
                }
                let mut sum = 0u64;
                while let Some((k, _)) = heap.pop() {
                    sum = sum.wrapping_add(k);
                }
                black_box(sum)
            })
        });

        group.bench_function(BenchmarkId::new("binary_lazy_deletion", n), |bch| {
            let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
            let mut best = vec![u64::MAX; n as usize];
            let mut settled = vec![false; n as usize];
            bch.iter(|| {
                heap.clear();
                best.fill(u64::MAX);
                settled.fill(false);
                for &(v, key) in &stream {
                    // The lazy-deletion relax: push on improvement, leave
                    // stale entries behind.
                    if key < best[v as usize] {
                        best[v as usize] = key;
                        heap.push(Reverse((key, v)));
                    }
                }
                let mut sum = 0u64;
                while let Some(Reverse((k, v))) = heap.pop() {
                    if settled[v as usize] || k > best[v as usize] {
                        continue; // clean_top
                    }
                    settled[v as usize] = true;
                    sum = sum.wrapping_add(k);
                }
                black_box(sum)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_intersect, bench_heaps);
criterion_main!(benches);
