//! Microbenchmarks of the Equation 1 merge-join at controlled label sizes —
//! the CPU component of the paper's "sequential scanning" claim.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use islabel_core::label::LabelView;
use islabel_core::query::intersect_min;

/// Two synthetic labels of `len` entries each, sharing roughly half their
/// ancestors.
fn make_labels(len: usize) -> (Vec<u32>, Vec<u64>, Vec<u32>, Vec<u64>) {
    let a_anc: Vec<u32> = (0..len as u32).map(|i| i * 2).collect();
    let a_d: Vec<u64> = (0..len as u64).map(|i| (i * 7) % 100 + 1).collect();
    let b_anc: Vec<u32> = (0..len as u32)
        .map(|i| if i % 2 == 0 { i * 2 } else { i * 2 + 1 })
        .collect();
    let b_d: Vec<u64> = (0..len as u64).map(|i| (i * 13) % 100 + 1).collect();
    (a_anc, a_d, b_anc, b_d)
}

fn label_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersect_min");
    for len in [8usize, 64, 512, 4096] {
        let (a_anc, a_d, b_anc, b_d) = make_labels(len);
        group.throughput(Throughput::Elements(2 * len as u64));
        group.bench_function(BenchmarkId::from_parameter(len), |bch| {
            let a = LabelView {
                ancestors: &a_anc,
                dists: &a_d,
                first_hops: &[],
            };
            let b = LabelView {
                ancestors: &b_anc,
                dists: &b_d,
                first_hops: &[],
            };
            bch.iter(|| black_box(intersect_min(a, b)))
        });
    }
    group.finish();
}

criterion_group!(benches, label_ops);
criterion_main!(benches);
