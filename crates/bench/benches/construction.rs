//! Index-construction benchmarks: in-memory build, external-memory build
//! (counted-I/O in-memory backend), and the baseline indexes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use islabel_baselines::{PllIndex, VcConfig, VcIndex};
use islabel_core::embuild::{build_external_from_csr, EmConfig};
use islabel_core::{BuildConfig, IsLabelIndex};
use islabel_extmem::MemStorage;
use islabel_graph::{Dataset, Scale};

fn construction_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    group.sample_size(10);
    for ds in [Dataset::BtcLike, Dataset::GoogleLike] {
        let g = ds.generate(Scale::Tiny);
        group.bench_function(BenchmarkId::new("is-label", ds.name()), |b| {
            b.iter(|| black_box(IsLabelIndex::build(&g, BuildConfig::default())))
        });
        group.bench_function(BenchmarkId::new("is-label-no-paths", ds.name()), |b| {
            let config = BuildConfig {
                keep_path_info: false,
                ..BuildConfig::default()
            };
            b.iter(|| black_box(IsLabelIndex::build(&g, config)))
        });
        group.bench_function(BenchmarkId::new("is-label-external", ds.name()), |b| {
            b.iter(|| {
                let storage = MemStorage::new();
                black_box(
                    build_external_from_csr(
                        &storage,
                        &g,
                        BuildConfig::default(),
                        EmConfig::default(),
                    )
                    .unwrap(),
                )
            })
        });
        group.bench_function(BenchmarkId::new("vc-index", ds.name()), |b| {
            b.iter(|| black_box(VcIndex::build(&g, VcConfig::default())))
        });
        group.bench_function(BenchmarkId::new("pll", ds.name()), |b| {
            b.iter(|| black_box(PllIndex::build(&g)))
        });
    }
    group.finish();
}

criterion_group!(benches, construction_benches);
criterion_main!(benches);
