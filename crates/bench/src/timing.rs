//! Timing helpers.

use std::time::{Duration, Instant};

/// Runs `f`, returning its result and wall-clock duration.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed())
}

/// Formats a duration as fractional milliseconds, the unit of the paper's
/// query-time tables.
pub fn ms(d: Duration) -> String {
    format!("{:.2} ms", d.as_secs_f64() * 1e3)
}

/// Formats a duration as fractional seconds, the unit of the paper's
/// indexing-time tables.
pub fn secs(d: Duration) -> String {
    format!("{:.2} s", d.as_secs_f64())
}

/// Nearest-rank percentile of pre-sorted nanosecond latencies, in
/// microseconds — the shared definition behind every `BENCH_*.json`
/// latency field (`query_hotpath`, `net_throughput`).
pub fn percentile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64 / 1e3
}

/// Mean duration per item.
pub fn per_query(total: Duration, n: usize) -> Duration {
    if n == 0 {
        Duration::ZERO
    } else {
        total / n as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(ms(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(secs(Duration::from_millis(2500)), "2.50 s");
    }

    #[test]
    fn per_query_division() {
        assert_eq!(
            per_query(Duration::from_millis(100), 10),
            Duration::from_millis(10)
        );
        assert_eq!(per_query(Duration::from_millis(100), 0), Duration::ZERO);
    }

    #[test]
    fn time_measures() {
        let (v, d) = time(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(1));
    }
}
