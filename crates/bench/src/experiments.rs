//! One runner per paper table (Section 7) plus the ablations promised in
//! DESIGN.md. Each returns a [`Table`] ready to print; the `table*`
//! binaries are thin wrappers.
//!
//! Where the paper's numbers depend on its 7200 RPM disk, we report
//! *modeled* I/O time from counted seeks/bytes (10 ms per seek, 100 MB/s
//! sequential — the same accounting the paper uses when it attributes
//! Time (a) to "10ms per disk I/O"), and CPU time measured directly.

use crate::table::Table;
use crate::timing::{ms, per_query, secs, time};
use crate::workload::{env_datasets, env_num_queries, QueryWorkload};
use islabel_baselines::{build_oracle, BiDijkstraOracle, Engine, PllIndex, VcConfig, VcIndex};
use islabel_core::disklabel::{DiskLabelStore, FetchedLabel};
use islabel_core::{
    BatchOptions, BuildConfig, DistanceOracle, IsLabelIndex, IsStrategy, QueryType,
};
use islabel_extmem::storage::{MemStorage, Storage};
use islabel_extmem::IoCostModel;
use islabel_graph::algo::stats::{human_bytes, human_count};
use islabel_graph::{CsrGraph, Dataset, Dist, VertexId};
use std::time::Duration;

/// Aggregated timings of a disk-label query batch.
#[derive(Debug, Default, Clone, Copy)]
pub struct DiskQueryStats {
    /// Modeled label-retrieval time (the paper's Time (a)).
    pub time_a: Duration,
    /// Measured CPU time of Equation 1 + the `G_k` search (Time (b)).
    pub time_b: Duration,
    /// Number of queries run.
    pub queries: usize,
    /// Label fetches performed (0–2 per query depending on type).
    pub fetches: u64,
}

impl DiskQueryStats {
    /// Mean total per query.
    pub fn avg_total(&self) -> Duration {
        per_query(self.time_a + self.time_b, self.queries)
    }

    /// Mean Time (a) per query.
    pub fn avg_a(&self) -> Duration {
        per_query(self.time_a, self.queries)
    }

    /// Mean Time (b) per query.
    pub fn avg_b(&self) -> Duration {
        per_query(self.time_b, self.queries)
    }
}

/// Runs a workload against disk-resident labels, splitting Time (a)
/// (modeled label fetch I/O) from Time (b) (measured search CPU).
///
/// Endpoints inside `G_k` need no fetch — their label is the self entry —
/// exactly why Table 5's Type 1 rows show Time (a) = 0.
pub fn run_disk_queries(
    index: &IsLabelIndex,
    store: &DiskLabelStore,
    storage: &dyn Storage,
    cost: &IoCostModel,
    workload: &QueryWorkload,
) -> DiskQueryStats {
    let mut stats = DiskQueryStats {
        queries: workload.len(),
        ..Default::default()
    };
    let io = storage.stats();
    for &(s, t) in &workload.pairs {
        let before = io.snapshot();
        let ls = fetch_or_self(index, store, storage, s);
        let lt = fetch_or_self(index, store, storage, t);
        let delta = io.snapshot().since(&before);
        stats.time_a += cost.modeled_time(&delta);
        stats.fetches += delta.seeks;

        let (_, dt) = time(|| index.distance_from_labels(ls.view(), lt.view()));
        stats.time_b += dt;
    }
    stats
}

fn fetch_or_self(
    index: &IsLabelIndex,
    store: &DiskLabelStore,
    storage: &dyn Storage,
    v: VertexId,
) -> FetchedLabel {
    if index.is_in_gk(v) {
        // label(v) = {(v, 0)} for residual vertices — no disk access.
        FetchedLabel {
            ancestors: vec![v],
            dists: vec![0],
        }
    } else {
        store.fetch(storage, v).expect("label fetch")
    }
}

/// Total wall-clock of answering `pairs` sequentially through the shared
/// [`DistanceOracle`] trait — every engine is measured over the identical
/// call path, so rows of a comparison table differ only by engine.
pub fn oracle_total_time(oracle: &dyn DistanceOracle, pairs: &[(VertexId, VertexId)]) -> Duration {
    let (_, dt) = time(|| {
        let mut acc = 0u64;
        for &(s, t) in pairs {
            if let Some(d) = oracle.try_distance(s, t).expect("workload in range") {
                acc = acc.wrapping_add(d);
            }
        }
        acc
    });
    dt
}

/// Builds the index plus its disk-label store on counted in-memory storage.
pub fn build_disk_backed(
    g: &CsrGraph,
    config: BuildConfig,
) -> (IsLabelIndex, MemStorage, DiskLabelStore) {
    let index = IsLabelIndex::build(g, config);
    let storage = MemStorage::new();
    let store = DiskLabelStore::write(&storage, "labels", index.labels()).expect("write labels");
    (index, storage, store)
}

// ---------------------------------------------------------------------------
// Table 2 — datasets
// ---------------------------------------------------------------------------

/// Table 2: dataset statistics (ours, paper targets in parentheses in the
/// dataset doc comments).
pub fn table2() -> Table {
    let mut t = Table::new(
        "Table 2 — real datasets (synthetic stand-ins; see DESIGN.md)",
        &["dataset", "|V|", "|E|", "Avg. Deg", "Max Deg", "CSR size"],
    );
    for (ds, g) in env_datasets() {
        t.row(vec![
            ds.name().into(),
            human_count(g.num_vertices()),
            human_count(g.num_edges()),
            format!("{:.2}", g.avg_degree()),
            g.max_degree().to_string(),
            human_bytes(g.memory_bytes()),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Tables 3 & 7 — index construction at a σ threshold
// ---------------------------------------------------------------------------

/// Table 3 (σ = 0.95) / Table 7 (σ = 0.90): construction results.
pub fn construction_table(sigma: f64, with_query_time: bool) -> Table {
    let headers: Vec<&str> = if with_query_time {
        vec![
            "dataset",
            "k",
            "|V_Gk|",
            "|E_Gk|",
            "Label size",
            "Indexing time",
            "Query time",
        ]
    } else {
        vec![
            "dataset",
            "k",
            "|V_Gk|",
            "|E_Gk|",
            "Label size",
            "Indexing time",
        ]
    };
    let mut t = Table::new(
        format!("Index construction with threshold {sigma}"),
        &headers,
    );
    let nq = env_num_queries();
    for (ds, g) in env_datasets() {
        let (index, storage, store) = build_disk_backed(&g, BuildConfig::sigma(sigma));
        let s = index.stats();
        let mut row = vec![
            ds.name().to_string(),
            s.k.to_string(),
            human_count(s.gk_vertices),
            human_count(s.gk_edges),
            human_bytes(s.label_bytes),
            secs(s.build_time),
        ];
        if with_query_time {
            let workload = QueryWorkload::random(g.num_vertices(), nq, 0x9A);
            let qs = run_disk_queries(&index, &store, &storage, &IoCostModel::default(), &workload);
            row.push(ms(qs.avg_total()));
        }
        t.row(row);
    }
    t
}

/// Table 3 — σ = 0.95 (the paper's default threshold).
pub fn table3() -> Table {
    let mut t = construction_table(0.95, false);
    t.set_title("Table 3 — index construction results with threshold 0.95");
    t
}

/// Table 7 — σ = 0.90.
pub fn table7() -> Table {
    let mut t = construction_table(0.90, true);
    t.set_title("Table 7 — construction, label size, G_k size and query time, threshold 0.9");
    t
}

// ---------------------------------------------------------------------------
// Table 4 — query time split, σ = 0.95
// ---------------------------------------------------------------------------

/// Table 4: average query time with Time (a) / Time (b) split.
pub fn table4() -> Table {
    let mut t = Table::new(
        "Table 4 — query time with threshold 0.95 (Time (a) modeled at 10 ms/seek)",
        &["dataset", "k", "Total query time", "Time (a)", "Time (b)"],
    );
    let nq = env_num_queries();
    for (ds, g) in env_datasets() {
        let (index, storage, store) = build_disk_backed(&g, BuildConfig::default());
        let workload = QueryWorkload::random(g.num_vertices(), nq, 0x4A);
        let qs = run_disk_queries(&index, &store, &storage, &IoCostModel::default(), &workload);
        t.row(vec![
            ds.name().into(),
            index.stats().k.to_string(),
            ms(qs.avg_total()),
            ms(qs.avg_a()),
            ms(qs.avg_b()),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Table 5 — query time by query type
// ---------------------------------------------------------------------------

/// Table 5: per-type query times on the two datasets the paper shows
/// (BTC-like and Web-like).
pub fn table5() -> Table {
    let mut t = Table::new(
        "Table 5 — query time for 3 query types (1: both in G_k, 2: one, 3: neither)",
        &["dataset", "k", "type", "Total", "Time (a)", "Time (b)"],
    );
    let nq = env_num_queries();
    let scale = crate::workload::env_scale();
    for ds in [Dataset::BtcLike, Dataset::WebLike] {
        let g = ds.generate(scale);
        let (index, storage, store) = build_disk_backed(&g, BuildConfig::default());
        for qtype in [
            QueryType::BothInGk,
            QueryType::OneInGk,
            QueryType::NeitherInGk,
        ] {
            let Some(workload) = QueryWorkload::of_type(&index, qtype, nq, 0x55) else {
                t.row(vec![
                    ds.name().into(),
                    index.stats().k.to_string(),
                    qtype.number().to_string(),
                    "n/a".into(),
                    "n/a".into(),
                    "n/a".into(),
                ]);
                continue;
            };
            let qs = run_disk_queries(&index, &store, &storage, &IoCostModel::default(), &workload);
            t.row(vec![
                ds.name().into(),
                index.stats().k.to_string(),
                qtype.number().to_string(),
                ms(qs.avg_total()),
                ms(qs.avg_a()),
                ms(qs.avg_b()),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------------
// Table 6 — sweep over k
// ---------------------------------------------------------------------------

/// Table 6: construction and query time at k − 1, k, k + 1 around the
/// automatically selected k, for BTC-like and Web-like.
pub fn table6() -> Table {
    let mut t = Table::new(
        "Table 6 — index construction time, label size, G_k size and query time vs k",
        &[
            "dataset",
            "k",
            "|V_Gk|",
            "|E_Gk|",
            "Label size",
            "Indexing time",
            "Query time",
        ],
    );
    let nq = env_num_queries();
    let scale = crate::workload::env_scale();
    for ds in [Dataset::BtcLike, Dataset::WebLike] {
        let g = ds.generate(scale);
        // Auto k from the σ = 0.95 rule.
        let auto = IsLabelIndex::build(&g, BuildConfig::default()).stats().k;
        for k in [auto.saturating_sub(1).max(2), auto, auto + 1] {
            let (index, storage, store) = build_disk_backed(&g, BuildConfig::fixed_k(k));
            let s = index.stats();
            let workload = QueryWorkload::random(g.num_vertices(), nq, 0x66);
            let qs = run_disk_queries(&index, &store, &storage, &IoCostModel::default(), &workload);
            t.row(vec![
                ds.name().into(),
                format!("{}{}", s.k, if s.k == auto { " (auto)" } else { "" }),
                human_count(s.gk_vertices),
                human_count(s.gk_edges),
                human_bytes(s.label_bytes),
                secs(s.build_time),
                ms(qs.avg_total()),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------------
// Tables 8 & 9 — comparison with other methods
// ---------------------------------------------------------------------------

/// Table 8: average query time of IS-LABEL (disk, modeled I/O), IM-ISL
/// (in-memory IS-LABEL), VC-Index(P2P) (modeled disk-resident search) and
/// IM-DIJ (in-memory bidirectional Dijkstra).
pub fn table8() -> Table {
    let mut t = Table::new(
        "Table 8 — query time of IS-LABEL, IM-ISL, VC-Index(P2P) and IM-DIJ",
        &["dataset", "IS-LABEL", "IM-ISL", "VC-Index(P2P)", "IM-DIJ"],
    );
    let nq = env_num_queries();
    let cost = IoCostModel::default();
    for (ds, g) in env_datasets() {
        let n = g.num_vertices();
        let workload = QueryWorkload::random(n, nq, 0x88);

        // IS-LABEL: disk labels, Time (a) modeled + Time (b) measured.
        let (index, storage, store) = build_disk_backed(&g, BuildConfig::default());
        let qs = run_disk_queries(&index, &store, &storage, &cost, &workload);
        let islabel_avg = qs.avg_total();

        // IM-ISL: everything in memory, through the shared trait.
        let im_total = oracle_total_time(&index, &workload.pairs);

        // VC-Index(P2P): measured CPU + modeled I/O over touched bytes (the
        // original system scans its disk-resident reduced graphs).
        let vc = VcIndex::build(&g, VcConfig::default());
        let mut vc_session = vc.session();
        let mut vc_total = Duration::ZERO;
        for &(s, t) in &workload.pairs {
            // Session form: the timed region measures search work, not the
            // per-call buffer setup of the one-shot convenience.
            let ((_, qcost), dt) = time(|| vc_session.distance_with_cost(s, t).expect("in range"));
            vc_total += dt;
            let blocks = cost.scan_blocks(qcost.bytes_touched as u64);
            vc_total += cost.seek_latency * blocks as u32
                + Duration::from_secs_f64(
                    qcost.bytes_touched as f64 / cost.sequential_bytes_per_sec as f64,
                );
        }

        // IM-DIJ, state-pooled behind the same trait.
        let bidij = BiDijkstraOracle::new(g.clone());
        let dij_total = oracle_total_time(&bidij, &workload.pairs);

        // Cross-check the methods on a sample (fail loudly on divergence),
        // uniformly through the trait.
        let engines: [&dyn DistanceOracle; 3] = [&index, &vc, &bidij];
        for &(s, t) in workload.pairs.iter().take(25) {
            let answers: Vec<Option<Dist>> = engines
                .iter()
                .map(|e| e.try_distance(s, t).expect("in range"))
                .collect();
            assert!(
                answers.windows(2).all(|w| w[0] == w[1]),
                "method divergence on ({s}, {t}): {answers:?}"
            );
        }

        t.row(vec![
            ds.name().into(),
            ms(islabel_avg),
            ms(per_query(im_total, nq)),
            ms(per_query(vc_total, nq)),
            ms(per_query(dij_total, nq)),
        ]);
    }
    t
}

/// Table 9: VC-Index construction time and index size.
pub fn table9() -> Table {
    let mut t = Table::new(
        "Table 9 — indexing costs for VC-Index",
        &["dataset", "Index construction time", "Index size", "levels"],
    );
    for (ds, g) in env_datasets() {
        let vc = VcIndex::build(&g, VcConfig::default());
        t.row(vec![
            ds.name().into(),
            secs(vc.build_time()),
            human_bytes(vc.index_bytes()),
            vc.levels().to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Engine matrix — every DistanceOracle engine through the registry
// ---------------------------------------------------------------------------

/// All five engines built through [`build_oracle`] on one graph and driven
/// through the identical trait call path: build time, index size,
/// sequential latency and default-parallelism batch throughput. The table
/// the unified API makes possible — one loop, zero per-engine code.
pub fn engine_matrix() -> Table {
    let mut t = Table::new(
        "Engine matrix — every DistanceOracle on BTC-like via build_oracle",
        &[
            "engine",
            "build time",
            "index bytes",
            "avg query",
            "batch throughput (q/s)",
        ],
    );
    let g = Dataset::BtcLike.generate(crate::workload::env_scale());
    let nq = env_num_queries();
    let workload = QueryWorkload::random(g.num_vertices(), nq, 0xEE);
    let config = BuildConfig::default();
    let mut reference: Option<Vec<Option<Dist>>> = None;
    for engine in Engine::ALL {
        let (oracle, build_dt) = time(|| build_oracle(engine, &g, &config).expect("valid config"));
        let seq = oracle_total_time(oracle.as_ref(), &workload.pairs);
        let (answers, batch_dt) = time(|| {
            oracle
                .distance_batch(&workload.pairs, BatchOptions::default())
                .expect("workload in range")
        });
        // Every engine must agree with the first — the registry's whole
        // point is interchangeability.
        match &reference {
            None => reference = Some(answers),
            Some(expect) => assert_eq!(&answers, expect, "{engine} diverges"),
        }
        t.row(vec![
            engine.name().into(),
            secs(build_dt),
            human_bytes(oracle.index_bytes()),
            ms(per_query(seq, nq)),
            format!("{:.0}", nq as f64 / batch_dt.as_secs_f64()),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

/// Ablation A: independent-set selection strategy (DESIGN.md calls out the
/// greedy min-degree choice; this quantifies it).
pub fn ablation_strategy() -> Table {
    let mut t = Table::new(
        "Ablation A — independent-set strategy (BTC-like)",
        &[
            "strategy",
            "k",
            "|V_Gk|",
            "Label size",
            "Indexing time",
            "Query time",
        ],
    );
    let g = Dataset::BtcLike.generate(crate::workload::env_scale());
    let nq = env_num_queries().min(200);
    let workload = QueryWorkload::random(g.num_vertices(), nq, 0xAB);
    for (name, strategy) in [
        ("min-degree greedy (paper)", IsStrategy::MinDegreeGreedy),
        ("random order", IsStrategy::Random(7)),
        ("max-degree greedy", IsStrategy::MaxDegreeGreedy),
    ] {
        let config = BuildConfig {
            is_strategy: strategy,
            ..BuildConfig::default()
        };
        let index = IsLabelIndex::build(&g, config);
        let s = index.stats();
        let (_, qt) = time(|| {
            let mut acc = 0u64;
            for &(s, t) in &workload.pairs {
                acc = acc.wrapping_add(index.distance(s, t).unwrap_or(0));
            }
            acc
        });
        t.row(vec![
            name.into(),
            s.k.to_string(),
            human_count(s.gk_vertices),
            human_bytes(s.label_bytes),
            secs(s.build_time),
            ms(per_query(qt, nq)),
        ]);
    }
    t
}

/// Ablation B: σ sweep — the index-cost / query-cost trade-off curve
/// (Web-like, the dataset where Table 7 shows the trade-off most clearly).
pub fn ablation_sigma() -> Table {
    let mut t = Table::new(
        "Ablation B — σ sweep (Web-like)",
        &[
            "sigma",
            "k",
            "|V_Gk|",
            "|E_Gk|",
            "Label size",
            "Indexing time",
            "Query time",
        ],
    );
    let g = Dataset::WebLike.generate(crate::workload::env_scale());
    let nq = env_num_queries().min(200);
    let workload = QueryWorkload::random(g.num_vertices(), nq, 0xB5);
    for sigma in [0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99] {
        let index = IsLabelIndex::build(&g, BuildConfig::sigma(sigma));
        let s = index.stats();
        let (_, qt) = time(|| {
            let mut acc = 0u64;
            for &(s, t) in &workload.pairs {
                acc = acc.wrapping_add(index.distance(s, t).unwrap_or(0));
            }
            acc
        });
        t.row(vec![
            format!("{sigma:.2}"),
            s.k.to_string(),
            human_count(s.gk_vertices),
            human_count(s.gk_edges),
            human_bytes(s.label_bytes),
            secs(s.build_time),
            ms(per_query(qt, nq)),
        ]);
    }
    t
}

/// Ablation D: query throughput scaling with worker threads (the paper's
/// queries are independent, so a serving deployment parallelizes them
/// trivially; this measures how far that goes on one machine).
pub fn ablation_parallel() -> Table {
    let mut t = Table::new(
        "Ablation D — parallel query throughput (BTC-like, in-memory)",
        &["threads", "total time", "throughput (q/s)", "speedup"],
    );
    let g = Dataset::BtcLike.generate(crate::workload::env_scale());
    let index = IsLabelIndex::build(&g, BuildConfig::default());
    let nq = env_num_queries().max(2000);
    let workload = QueryWorkload::random(g.num_vertices(), nq, 0xD4);
    let mut base = Duration::ZERO;
    for threads in [1usize, 2, 4, 8] {
        let (answers, dt) = time(|| index.distance_batch_parallel(&workload.pairs, threads));
        assert_eq!(answers.len(), nq);
        if threads == 1 {
            base = dt;
        }
        t.row(vec![
            threads.to_string(),
            ms(dt),
            format!("{:.0}", nq as f64 / dt.as_secs_f64()),
            format!("{:.2}x", base.as_secs_f64() / dt.as_secs_f64()),
        ]);
    }
    t
}

/// Ablation C: 2-hop labeling (PLL) construction cost vs IS-LABEL across
/// growing graphs — the Section 3 scalability argument, measured.
pub fn ablation_twohop() -> Table {
    let mut t = Table::new(
        "Ablation C — 2-hop (PLL) vs IS-LABEL construction across graph sizes (BA, m = 5)",
        &[
            "n",
            "PLL build",
            "PLL size",
            "IS-LABEL build",
            "IS-LABEL labels",
        ],
    );
    for n in [2_000usize, 4_000, 8_000, 16_000] {
        let g = islabel_graph::generators::barabasi_albert(
            n,
            5,
            islabel_graph::generators::WeightModel::Unit,
            0xC2,
        );
        let (pll, pll_time) = time(|| PllIndex::build(&g));
        let index = IsLabelIndex::build(&g, BuildConfig::default());
        t.row(vec![
            human_count(n),
            secs(pll_time),
            human_bytes(pll.index_bytes()),
            secs(index.stats().build_time),
            human_bytes(index.stats().label_bytes),
        ]);
    }
    t
}

/// Serving-throughput scaling: queries/sec through the sharded
/// [`QueryService`](islabel_serve::QueryService) at 1/2/4/8 worker shards
/// against the single-thread session baseline, on an Erdős–Rényi graph of
/// `n ≥ 50k` vertices (`ISLABEL_SERVE_N` / `ISLABEL_SERVE_QUERIES`
/// override the defaults).
///
/// Every configuration answers the identical workload and is asserted
/// equal to the baseline answers — the table measures the serving layer,
/// not a different query.
pub fn serve_throughput() -> Table {
    let n: usize = std::env::var("ISLABEL_SERVE_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50_000);
    let nq: usize = std::env::var("ISLABEL_SERVE_QUERIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40_000);
    let batch = 256usize;
    let g = islabel_graph::generators::erdos_renyi_gnm(
        n,
        3 * n,
        islabel_graph::generators::WeightModel::UniformRange(1, 10),
        0x5EED,
    );
    let (index, build_dt) = time(|| IsLabelIndex::build(&g, BuildConfig::default()));
    let oracle: std::sync::Arc<dyn DistanceOracle> = std::sync::Arc::new(index);
    let workload = QueryWorkload::random(n, nq, 0x5EED);

    let mut t = Table::new(
        format!(
            "Serving throughput — QueryService over IS-LABEL on ER (n = {}, m = {}, {} queries, \
             batch {batch}; build {})",
            human_count(n),
            human_count(3 * n),
            human_count(nq),
            secs(build_dt),
        ),
        &["mode", "shards", "wall time", "queries/sec", "vs 1 session"],
    );

    // Baseline: one thread, one session, no service in between.
    let (expect, base_dt) = time(|| {
        let mut session = oracle.session();
        workload
            .pairs
            .iter()
            .map(|&(s, q)| session.distance(s, q).expect("workload in range"))
            .collect::<Vec<_>>()
    });
    let base_ops = nq as f64 / base_dt.as_secs_f64();
    t.row(vec![
        "session (direct)".into(),
        "-".into(),
        secs(base_dt),
        format!("{base_ops:.0}"),
        "1.00x".into(),
    ]);

    for shards in [1usize, 2, 4, 8] {
        let service = islabel_serve::QueryService::start(
            std::sync::Arc::clone(&oracle),
            islabel_serve::ServeConfig {
                shards,
                queue_capacity: 4096,
            },
        );
        let (answers, dt) = time(|| {
            let tickets: Vec<_> = workload
                .pairs
                .chunks(batch)
                .map(|c| service.submit(c))
                .collect();
            tickets
                .into_iter()
                .flat_map(|ticket| ticket.wait().expect("workload in range"))
                .collect::<Vec<_>>()
        });
        assert_eq!(answers, expect, "{shards}-shard service diverges");
        service.shutdown();
        let ops = nq as f64 / dt.as_secs_f64();
        t.row(vec![
            "QueryService".into(),
            shards.to_string(),
            secs(dt),
            format!("{ops:.0}"),
            format!("{:.2}x", ops / base_ops),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    // These smoke tests run the full experiment plumbing at test speed
    // (tiny scale, few queries) — they catch integration breakage without
    // waiting for real benchmark runs.

    fn with_tiny_env<R>(f: impl FnOnce() -> R) -> R {
        // Tests may run concurrently in one process; the env vars are read
        // at call time, so serialize access.
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = LOCK.lock().unwrap();
        std::env::set_var("ISLABEL_SCALE", "tiny");
        std::env::set_var("ISLABEL_QUERIES", "20");
        let r = f();
        std::env::remove_var("ISLABEL_SCALE");
        std::env::remove_var("ISLABEL_QUERIES");
        r
    }

    #[test]
    fn table2_through_table9_render() {
        with_tiny_env(|| {
            for t in [
                table2(),
                table3(),
                table4(),
                table5(),
                table6(),
                table8(),
                table9(),
            ] {
                let s = t.to_string();
                assert!(!s.is_empty());
            }
            // Table 7 exercises the same path as 3 with queries; keep it in
            // the same guard to stay serial.
            let s = table7().to_string();
            assert!(!s.is_empty());
        });
    }

    #[test]
    fn engine_matrix_renders_all_engines() {
        with_tiny_env(|| {
            let s = engine_matrix().to_string();
            for engine in Engine::ALL {
                assert!(s.contains(engine.name()), "missing {engine} in:\n{s}");
            }
        });
    }

    #[test]
    fn disk_query_stats_split_time_a_by_type() {
        with_tiny_env(|| {
            let g = Dataset::BtcLike.generate(islabel_graph::Scale::Tiny);
            let (index, storage, store) = build_disk_backed(&g, BuildConfig::default());
            let cost = IoCostModel::default();
            // Type 1 (both in G_k): zero fetches -> Time (a) == 0.
            if let Some(w) = QueryWorkload::of_type(&index, QueryType::BothInGk, 5, 1) {
                let qs = run_disk_queries(&index, &store, &storage, &cost, &w);
                assert_eq!(qs.fetches, 0);
                assert_eq!(qs.time_a, Duration::ZERO);
            }
            // Type 3: two fetches per query.
            if let Some(w) = QueryWorkload::of_type(&index, QueryType::NeitherInGk, 5, 1) {
                let qs = run_disk_queries(&index, &store, &storage, &cost, &w);
                assert_eq!(qs.fetches, 10);
                assert!(qs.time_a >= Duration::from_millis(100)); // 10 seeks * 10 ms
            }
        });
    }

    #[test]
    fn disk_queries_match_in_memory() {
        with_tiny_env(|| {
            let g = Dataset::GoogleLike.generate(islabel_graph::Scale::Tiny);
            let (index, storage, store) = build_disk_backed(&g, BuildConfig::default());
            let w = QueryWorkload::random(g.num_vertices(), 30, 3);
            for &(s, t) in &w.pairs {
                let ls = fetch_or_self(&index, &store, &storage, s);
                let lt = fetch_or_self(&index, &store, &storage, t);
                assert_eq!(
                    index.distance_from_labels(ls.view(), lt.view()),
                    index.distance(s, t),
                    "({s}, {t})"
                );
            }
        });
    }
}
