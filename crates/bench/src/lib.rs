#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! # islabel-bench
//!
//! Experiment harness reproducing the IS-LABEL paper's evaluation
//! (Section 7): one runner per table, shared workload generation, timing
//! utilities and an ASCII table renderer.
//!
//! Binaries (one per paper table, plus ablations):
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `table2` | Table 2 — dataset statistics |
//! | `table3` | Table 3 — index construction, σ = 0.95 |
//! | `table4` | Table 4 — query time split Time (a) / Time (b) |
//! | `table5` | Table 5 — query time by query type |
//! | `table6` | Table 6 — sweep over k |
//! | `table7` | Table 7 — construction and querying at σ = 0.90 |
//! | `table8` | Table 8 — IS-LABEL vs IM-ISL vs VC-Index(P2P) vs IM-DIJ |
//! | `table9` | Table 9 — VC-Index construction costs |
//! | `engine_matrix` | every `DistanceOracle` engine via the registry |
//! | `ablation_strategy` | independent-set strategy ablation |
//! | `ablation_sigma` | σ sweep ablation |
//! | `ablation_twohop` | 2-hop (PLL) construction-cost curve |
//! | `ablation_parallel` | query throughput vs worker threads |
//! | `run_all` | everything above in sequence |
//!
//! Environment knobs: `ISLABEL_SCALE` (`tiny`/`small`/`medium`/`large`,
//! default `small`) and `ISLABEL_QUERIES` (default 1000).

pub mod experiments;
pub mod table;
pub mod timing;
pub mod workload;

pub use table::Table;
pub use workload::{env_num_queries, env_scale, QueryWorkload};
