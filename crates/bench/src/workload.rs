//! Query workload generation.
//!
//! The paper evaluates with "1000 randomly generated queries" per dataset
//! (Section 7.2), and Table 5 additionally needs pools restricted by query
//! type (both/one/neither endpoint in `G_k`).

use islabel_core::{IsLabelIndex, QueryType};
use islabel_graph::{Dataset, Scale, VertexId};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A list of query pairs.
#[derive(Debug, Clone)]
pub struct QueryWorkload {
    /// `(s, t)` pairs.
    pub pairs: Vec<(VertexId, VertexId)>,
}

impl QueryWorkload {
    /// `count` uniform random pairs over `0..n` (the paper's workload).
    pub fn random(n: usize, count: usize, seed: u64) -> Self {
        assert!(n >= 2, "need at least two vertices");
        let mut rng = StdRng::seed_from_u64(seed);
        let pairs = (0..count)
            .map(|_| {
                let s = rng.gen_range(0..n as VertexId);
                let mut t = rng.gen_range(0..n as VertexId);
                while t == s {
                    t = rng.gen_range(0..n as VertexId);
                }
                (s, t)
            })
            .collect();
        Self { pairs }
    }

    /// `count` random pairs of a specific Table 5 query type, sampled with
    /// rejection against the index's `G_k` membership. Returns `None` when
    /// the type is unrealizable (e.g. `G_k` has fewer than 2 vertices).
    pub fn of_type(
        index: &IsLabelIndex,
        qtype: QueryType,
        count: usize,
        seed: u64,
    ) -> Option<Self> {
        let n = index.num_vertices();
        let gk: Vec<VertexId> = index.hierarchy().gk_members().to_vec();
        let non_gk: Vec<VertexId> = (0..n as VertexId).filter(|&v| !index.is_in_gk(v)).collect();
        let feasible = match qtype {
            QueryType::BothInGk => gk.len() >= 2,
            QueryType::OneInGk => !gk.is_empty() && !non_gk.is_empty(),
            QueryType::NeitherInGk => non_gk.len() >= 2,
        };
        if !feasible {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let pick = |pool: &[VertexId], rng: &mut StdRng| pool[rng.gen_range(0..pool.len())];
        let pairs = (0..count)
            .map(|_| loop {
                let (s, t) = match qtype {
                    QueryType::BothInGk => (pick(&gk, &mut rng), pick(&gk, &mut rng)),
                    QueryType::OneInGk => (pick(&gk, &mut rng), pick(&non_gk, &mut rng)),
                    QueryType::NeitherInGk => (pick(&non_gk, &mut rng), pick(&non_gk, &mut rng)),
                };
                if s != t {
                    break (s, t);
                }
            })
            .collect();
        Some(Self { pairs })
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Dataset scale from `ISLABEL_SCALE` (default `small`).
pub fn env_scale() -> Scale {
    match std::env::var("ISLABEL_SCALE")
        .unwrap_or_default()
        .to_lowercase()
        .as_str()
    {
        "tiny" => Scale::Tiny,
        "medium" => Scale::Medium,
        "large" => Scale::Large,
        "small" | "" => Scale::Small,
        other => panic!("unknown ISLABEL_SCALE '{other}' (tiny|small|medium|large)"),
    }
}

/// Query count from `ISLABEL_QUERIES` (default 1000, the paper's count).
pub fn env_num_queries() -> usize {
    std::env::var("ISLABEL_QUERIES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000)
}

/// All five paper datasets at the environment scale.
pub fn env_datasets() -> Vec<(Dataset, islabel_graph::CsrGraph)> {
    let scale = env_scale();
    Dataset::ALL
        .iter()
        .map(|&ds| (ds, ds.generate(scale)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use islabel_core::BuildConfig;
    use islabel_graph::generators::{barabasi_albert, WeightModel};

    #[test]
    fn random_workload_is_deterministic_and_valid() {
        let a = QueryWorkload::random(100, 50, 7);
        let b = QueryWorkload::random(100, 50, 7);
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.len(), 50);
        for &(s, t) in &a.pairs {
            assert!(s < 100 && t < 100 && s != t);
        }
    }

    #[test]
    fn typed_workloads_respect_membership() {
        let g = barabasi_albert(300, 4, WeightModel::Unit, 3);
        let index = IsLabelIndex::build(&g, BuildConfig::default());
        assert!(index.stats().gk_vertices >= 2, "need a residual graph");
        for qtype in [
            QueryType::BothInGk,
            QueryType::OneInGk,
            QueryType::NeitherInGk,
        ] {
            let w = QueryWorkload::of_type(&index, qtype, 30, 1).unwrap();
            for &(s, t) in &w.pairs {
                assert_eq!(index.query_type(s, t), qtype, "({s}, {t})");
            }
        }
    }

    #[test]
    fn infeasible_type_returns_none() {
        // Full hierarchy: G_k empty, so BothInGk is unrealizable.
        let g = barabasi_albert(50, 2, WeightModel::Unit, 3);
        let index = IsLabelIndex::build(&g, BuildConfig::full());
        assert!(QueryWorkload::of_type(&index, QueryType::BothInGk, 5, 1).is_none());
        assert!(QueryWorkload::of_type(&index, QueryType::NeitherInGk, 5, 1).is_some());
    }
}
