//! The dynamic-update benchmark behind `BENCH_PR6.json`: durable ingest
//! throughput through the write-ahead log, and query latency of a
//! non-pristine index (pending updates) against the pristine baseline —
//! the PR-6 claim that an updated index keeps serving on the dense kernel
//! instead of falling off a latency cliff.
//!
//! ```text
//! update_throughput [--smoke] [--out PATH]
//! ```
//!
//! Three query paths are timed over the same workload:
//!
//! * `pristine_dense` — session on the freshly built index (the PR-4 hot
//!   path, the baseline);
//! * `overlay_dense` — session on the same index after ingesting updates:
//!   the dense kernel over the session's `PatchedDense` view (inserted
//!   tail + tombstones);
//! * `overlay_hashmap` — one-shot `try_distance` on the updated index:
//!   the hashmap overlay kernel (the reference the dense path is pinned
//!   against).
//!
//! `--smoke` shrinks the graph and cross-checks every overlay answer:
//! `overlay_dense == overlay_hashmap` bit-for-bit, and both match (or
//! upper-bound, when the index is stale) reference Dijkstra over the
//! materialized current graph. Env knobs: `ISLABEL_UPDATE_N` (default
//! 20 000 vertices), `ISLABEL_UPDATE_OPS` (default 500 pending updates —
//! within the ≤1k band the acceptance ratio is specified for), and
//! `ISLABEL_UPDATE_QUERIES` (default 4 000).
//!
//! Schema (`islabel-bench-pr6/v1`): `ingest` carries durable ops/sec and
//! WAL bytes; `query.{pristine_dense,overlay_dense,overlay_hashmap}`
//! carry `p50_us`/`p99_us`/`qps`; `overlay_vs_pristine_p50_ratio` is the
//! acceptance number (must stay within 1.5x).

use islabel_bench::timing::percentile_us;
use islabel_core::persist::try_save_index_to_path;
use islabel_core::reference::dijkstra_p2p;
use islabel_core::{BuildConfig, IsLabelIndex};
use islabel_graph::generators::{barabasi_albert, WeightModel};
use islabel_graph::{Dist, VertexId, Weight};
use std::path::PathBuf;
use std::time::Instant;

struct PathStats {
    p50_us: f64,
    p99_us: f64,
    qps: f64,
    queries: usize,
}

/// Times one query closure over all pairs; per-query latencies feed the
/// percentiles, the whole-loop wall clock feeds qps.
fn time_path(
    pairs: &[(VertexId, VertexId)],
    mut answer: impl FnMut(VertexId, VertexId) -> Option<Dist>,
) -> (PathStats, Vec<Option<Dist>>) {
    let mut latencies = Vec::with_capacity(pairs.len());
    let mut answers = Vec::with_capacity(pairs.len());
    let t0 = Instant::now();
    for &(s, t) in pairs {
        let q0 = Instant::now();
        let d = answer(s, t);
        latencies.push(q0.elapsed().as_nanos() as u64);
        answers.push(d);
    }
    let total = t0.elapsed().as_secs_f64();
    latencies.sort_unstable();
    (
        PathStats {
            p50_us: percentile_us(&latencies, 0.50),
            p99_us: percentile_us(&latencies, 0.99),
            qps: if total == 0.0 {
                0.0
            } else {
                pairs.len() as f64 / total
            },
            queries: pairs.len(),
        },
        answers,
    )
}

fn query_pairs(n: usize, count: usize, seed: u64) -> Vec<(VertexId, VertexId)> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..count)
        .map(|_| {
            let s = (next() % n as u64) as VertexId;
            let mut t = (next() % n as u64) as VertexId;
            if t == s {
                t = (t + 1) % n as VertexId;
            }
            (s, t)
        })
        .collect()
}

/// Streams `ops` valid updates (70% edge inserts, 20% vertex inserts, 10%
/// deletions, live endpoints only) through the WAL-attached index; every
/// op is durable before it is applied. Returns (elapsed_secs, applied).
fn ingest(index: &mut IsLabelIndex, ops: usize, seed: u64) -> (f64, usize) {
    let base_n = index.num_vertices();
    let mut alive = vec![true; base_n];
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut pick_live = |alive: &Vec<bool>| -> Option<VertexId> {
        (0..64)
            .map(|_| (next() % alive.len() as u64) as usize)
            .find(|&v| alive[v])
            .map(|v| v as VertexId)
    };
    let mut applied = 0usize;
    let t0 = Instant::now();
    for i in 0..ops {
        let roll = (i * 2654435761) % 100;
        if roll < 70 {
            let (Some(a), Some(b)) = (pick_live(&alive), pick_live(&alive)) else {
                continue;
            };
            if a == b {
                continue;
            }
            index.insert_edge(a, b, (i % 10 + 1) as Weight);
        } else if roll < 90 {
            let Some(a) = pick_live(&alive) else { continue };
            let w = (i % 10 + 1) as Weight;
            index.insert_vertex(&[(a, w)]);
            alive.push(true);
        } else {
            let Some(v) = pick_live(&alive) else { continue };
            index.delete_vertex(v);
            alive[v as usize] = false;
        }
        applied += 1;
    }
    (t0.elapsed().as_secs_f64(), applied)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR6.json".to_string());

    let env_or = |key: &str, default: usize| -> usize {
        std::env::var(key)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let n = if smoke {
        400
    } else {
        env_or("ISLABEL_UPDATE_N", 20_000)
    };
    let ops = if smoke {
        60
    } else {
        env_or("ISLABEL_UPDATE_OPS", 500)
    };
    let queries = if smoke {
        200
    } else {
        env_or("ISLABEL_UPDATE_QUERIES", 4_000)
    };

    let g = barabasi_albert(n, 3, WeightModel::UniformRange(1, 10), 0x6EED);
    let pairs = query_pairs(n, queries, 0xBEEF ^ n as u64);
    eprintln!(
        "[update_throughput] building index (n = {n}, m = {}) ...",
        g.num_edges()
    );
    let t0 = Instant::now();
    let mut index = IsLabelIndex::build(&g, BuildConfig::default());
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Pristine baseline: the PR-4 dense session hot path.
    eprintln!("[update_throughput] pristine_dense ...");
    let mut session = index.session();
    let (pristine, _) = time_path(&pairs, |s, t| session.distance(s, t).expect("in range"));
    drop(session);

    // Durable ingest: artifact saved, WAL attached, every op logged and
    // fsync-batched before application — the crash-consistency deal.
    let dir: PathBuf =
        std::env::temp_dir().join(format!("islabel-update-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench tempdir");
    let index_path = dir.join("bench.islx");
    let wal_path = dir.join("bench.wal");
    try_save_index_to_path(&index, &index_path).expect("save pristine artifact");
    index.attach_wal(&wal_path).expect("attach WAL");
    eprintln!("[update_throughput] ingesting {ops} ops through the WAL ...");
    let (ingest_secs, applied) = ingest(&mut index, ops, 0xACE);
    let wal_bytes = std::fs::metadata(&wal_path).map_or(0, |m| m.len());
    let pending = index.pending_ops();
    let stale = index.is_stale();

    // Non-pristine serving: dense kernel over the patched view (session)
    // vs the hashmap overlay kernel (one-shot reference).
    eprintln!("[update_throughput] overlay_dense ({pending} pending ops) ...");
    let mut session = index.session();
    let (overlay_dense, dense_answers) =
        time_path(&pairs, |s, t| session.distance(s, t).expect("in range"));
    drop(session);
    eprintln!("[update_throughput] overlay_hashmap ...");
    let (overlay_hashmap, hashmap_answers) =
        time_path(&pairs, |s, t| index.try_distance(s, t).expect("in range"));

    // The two overlay paths must agree bit-for-bit, measured or not.
    assert_eq!(
        dense_answers, hashmap_answers,
        "patched dense session disagrees with the hashmap overlay kernel"
    );
    if smoke {
        eprintln!("[update_throughput] smoke cross-check vs reference Dijkstra ...");
        let current = index.current_graph();
        for (&(s, t), &got) in pairs.iter().zip(&dense_answers) {
            let truth = dijkstra_p2p(&current, s, t);
            match (got, truth, stale) {
                (got, truth, false) => assert_eq!(got, truth, "exact while fresh ({s}, {t})"),
                (Some(d), Some(tr), true) => assert!(d >= tr, "upper bound ({s}, {t})"),
                (Some(_), None, true) => panic!("distance for unreachable pair ({s}, {t})"),
                _ => {}
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();

    let ratio = overlay_dense.p50_us / pristine.p50_us;
    println!(
        "{:<16} {:>8} {:>9} {:>9} {:>11}",
        "path", "queries", "p50_us", "p99_us", "qps"
    );
    for (name, s) in [
        ("pristine_dense", &pristine),
        ("overlay_dense", &overlay_dense),
        ("overlay_hashmap", &overlay_hashmap),
    ] {
        println!(
            "{:<16} {:>8} {:>9.2} {:>9.2} {:>11.0}",
            name, s.queries, s.p50_us, s.p99_us, s.qps
        );
    }
    println!(
        "ingest: {applied} durable ops in {:.2}s ({:.0} ops/s, {wal_bytes} WAL bytes, stale = {stale})",
        ingest_secs,
        applied as f64 / ingest_secs.max(1e-9)
    );
    println!("overlay_dense / pristine_dense p50 ratio: {ratio:.3}");

    let fmt_path = |name: &str, s: &PathStats| {
        format!(
            "    \"{name}\": {{\"queries\": {}, \"p50_us\": {:.2}, \"p99_us\": {:.2}, \"qps\": {:.1}}}",
            s.queries, s.p50_us, s.p99_us, s.qps
        )
    };
    let json = format!(
        "{{\n  \"schema\": \"islabel-bench-pr6/v1\",\n  \"mode\": \"{}\",\n  \
         \"graph\": {{\"name\": \"ba\", \"n\": {}, \"m\": {}}},\n  \"build_ms\": {:.2},\n  \
         \"ingest\": {{\"ops\": {}, \"elapsed_s\": {:.4}, \"ops_per_sec\": {:.1}, \
         \"wal_bytes\": {}, \"pending_ops\": {}, \"stale\": {}}},\n  \"query\": {{\n{},\n{},\n{}\n  }},\n  \
         \"overlay_vs_pristine_p50_ratio\": {:.4}\n}}\n",
        if smoke { "smoke" } else { "full" },
        n,
        g.num_edges(),
        build_ms,
        applied,
        ingest_secs,
        applied as f64 / ingest_secs.max(1e-9),
        wal_bytes,
        pending,
        stale,
        fmt_path("pristine_dense", &pristine),
        fmt_path("overlay_dense", &overlay_dense),
        fmt_path("overlay_hashmap", &overlay_hashmap),
        ratio
    );
    std::fs::write(&out_path, &json).expect("write bench JSON");
    println!("wrote {out_path}");
}
