//! Prints the engine matrix: every `DistanceOracle` engine built through
//! the registry and measured over the identical trait call path.

fn main() {
    println!("{}", islabel_bench::experiments::engine_matrix());
}
