//! Ablation runner (see DESIGN.md's per-experiment index).

fn main() {
    println!("{}", islabel_bench::experiments::ablation_twohop());
}
