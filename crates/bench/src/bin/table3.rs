//! Reproduces the paper's Table 3. See `islabel-bench` docs for knobs.

fn main() {
    println!("{}", islabel_bench::experiments::table3());
}
