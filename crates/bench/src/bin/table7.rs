//! Reproduces the paper's Table 7. See `islabel-bench` docs for knobs.

fn main() {
    println!("{}", islabel_bench::experiments::table7());
}
