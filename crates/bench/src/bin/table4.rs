//! Reproduces the paper's Table 4. See `islabel-bench` docs for knobs.

fn main() {
    println!("{}", islabel_bench::experiments::table4());
}
